"""KernelSpec parsing, registry and API integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import evaluate_ordering
from repro.errors import ValidationError
from repro.gpu.perf import model_run
from repro.gpu.specs import scaled_platform
from repro.graphs.corpus import load_graph
from repro.trace import KernelSpec, kernel_kinds
from repro.trace.kernel_traces import spmm_csr_trace, spmv_coo_trace, spmv_csr_trace
from repro.sparse.convert import csr_to_coo


class TestParse:
    def test_simple_kinds(self):
        for name in ("spmv-csr", "spmv-coo", "spmv-csc"):
            spec = KernelSpec.parse(name)
            assert spec == KernelSpec(name=name, kind=name, k=None)

    def test_parametric(self):
        spec = KernelSpec.parse("spmm-csr-256")
        assert spec.kind == "spmm-csr"
        assert spec.k == 256
        assert spec.name == "spmm-csr-256"

    @pytest.mark.parametrize(
        "bad",
        [
            "spmm-csr-0",
            "spmm-csr--4",
            "spmm-csr-",
            "spmm-csr-04",
            "spmm-csr-4.5",
            "spmm-csr-x",
            "fft",
            "",
            "SPMV-CSR",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValidationError):
            KernelSpec.parse(bad)

    def test_non_string_rejected(self):
        with pytest.raises(ValidationError):
            KernelSpec.parse(4)

    def test_coerce(self):
        spec = KernelSpec.parse("spmm-csr-4")
        assert KernelSpec.coerce(spec) is spec
        assert KernelSpec.coerce("spmm-csr-4") == spec

    def test_registry_listing(self):
        kinds = kernel_kinds()
        assert "spmv-csr" in kinds
        assert "spmm-csr-<k>" in kinds

    def test_frozen(self):
        spec = KernelSpec.parse("spmv-csr")
        with pytest.raises(AttributeError):
            spec.name = "other"


class TestBuildTrace:
    @pytest.fixture(scope="class")
    def graph(self):
        return load_graph("test-comm")

    @pytest.fixture(scope="class")
    def platform(self):
        return scaled_platform("test")

    def test_matches_direct_builders(self, graph, platform):
        csr = graph.adjacency
        lb = platform.line_bytes
        pairs = [
            ("spmv-csr", spmv_csr_trace(csr, line_bytes=lb)),
            ("spmv-coo", spmv_coo_trace(csr_to_coo(csr), line_bytes=lb)),
            ("spmm-csr-4", spmm_csr_trace(csr, k=4, line_bytes=lb)),
        ]
        for name, direct in pairs:
            built = KernelSpec.parse(name).build_trace(csr, platform)
            assert built.kernel == direct.kernel
            assert np.array_equal(built.lines, direct.lines)
            assert built.regions == direct.regions

    def test_graph_unwrapped(self, graph, platform):
        from_graph = KernelSpec.parse("spmv-csr").build_trace(graph, platform)
        from_csr = KernelSpec.parse("spmv-csr").build_trace(graph.adjacency, platform)
        assert np.array_equal(from_graph.lines, from_csr.lines)

    def test_schedule_forwarded(self, graph, platform):
        sequential = KernelSpec.parse("spmv-csr").build_trace(graph.adjacency, platform)
        interleaved = KernelSpec.parse("spmv-csr").build_trace(
            graph.adjacency, platform, schedule="interleaved"
        )
        assert interleaved.schedule == "interleaved"
        assert not np.array_equal(sequential.lines, interleaved.lines)

    def test_line_bytes_override(self, graph):
        built = KernelSpec.parse("spmv-csr").build_trace(graph.adjacency, line_bytes=64)
        assert built.line_bytes == 64


class TestApiIntegration:
    def test_evaluate_ordering_accepts_spec(self):
        graph = load_graph("test-mesh")
        platform = scaled_platform("test")
        via_str = evaluate_ordering(graph, platform=platform, kernel="spmm-csr-4")
        via_spec = evaluate_ordering(
            graph, platform=platform, kernel=KernelSpec.parse("spmm-csr-4")
        )
        assert via_str.stats == via_spec.stats

    @pytest.mark.parametrize("bad", ["spmm-csr-0", "spmm-csr--4", "fft"])
    def test_evaluate_ordering_rejects_malformed(self, bad):
        graph = load_graph("test-mesh")
        with pytest.raises(ValidationError):
            evaluate_ordering(graph, platform=scaled_platform("test"), kernel=bad)

    def test_model_run_builds_from_kernel(self):
        graph = load_graph("test-mesh")
        platform = scaled_platform("test")
        direct = model_run(
            KernelSpec.parse("spmv-csr").build_trace(graph.adjacency, platform),
            platform,
        )
        via_kernel = model_run(graph.adjacency, platform, kernel="spmv-csr")
        assert direct.stats == via_kernel.stats

    def test_model_run_requires_trace_or_kernel(self):
        graph = load_graph("test-mesh")
        with pytest.raises(ValidationError):
            model_run(graph.adjacency, scaled_platform("test"))

    def test_runner_accepts_spec_paths(self):
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(profile="test", use_cache=False)
        record = runner.run("test-comm", "original", kernel="spmm-csr-4")
        assert record.kernel == "spmm-csr-4"
        assert record.accesses > 0
