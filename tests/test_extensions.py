"""Tests for the beyond-the-paper extensions (DESIGN.md Section 7)."""

import numpy as np
import pytest

from repro.experiments import schedule_ablation, sensitivity
from repro.experiments.run_all import ABLATIONS, run_experiment
from repro.experiments.runner import ExperimentRunner
from repro.graphs.corpus import load_graph
from repro.reorder.louvain_order import LouvainOrder
from repro.reorder.registry import make_technique
from repro.sparse.permute import check_permutation


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    cache = tmp_path_factory.mktemp("ext-cache")
    return ExperimentRunner(profile="test", cache_dir=str(cache))


class TestLouvainOrder:
    def test_valid_permutation(self):
        graph = load_graph("test-comm")
        check_permutation(LouvainOrder().compute(graph), graph.n_nodes)

    def test_registered(self):
        assert make_technique("louvain").name == "louvain"

    def test_communities_contiguous(self):
        from repro.community.louvain import louvain

        graph = load_graph("test-comm")
        perm = LouvainOrder().compute(graph)
        labels = louvain(graph).assignment.labels
        sequence = labels[np.argsort(perm)]
        changes = int(np.sum(sequence[1:] != sequence[:-1]))
        assert changes == int(np.unique(labels).size) - 1

    def test_improves_over_scrambled(self):
        from repro.gpu.specs import scaled_platform
        from repro.api import evaluate_ordering

        graph = load_graph("test-comm")
        platform = scaled_platform("test")
        base = evaluate_ordering(graph, platform=platform)
        perm = LouvainOrder().compute(graph)
        ordered = evaluate_ordering(graph, perm, platform=platform)
        assert ordered.normalized_traffic < base.normalized_traffic


class TestCacheSensitivity:
    def test_convergence_at_extremes(self, runner):
        report = sensitivity.run(
            profile="test", runner=runner, factors=(0.25, 1, 64)
        )
        gaps = [row[4] for row in report.rows]
        # Huge cache: both orderings compulsory-only -> gap near 1.
        assert gaps[-1] == pytest.approx(1.0, abs=0.05)
        # The mid-capacity gap is the largest or near it.
        assert report.summary["max_gap"] >= gaps[-1]

    def test_runnable_by_name(self, runner):
        report = run_experiment(
            "ablation-cache-sensitivity", profile="test", runner=runner
        )
        assert report.experiment == "ablation-cache-sensitivity"


class TestScheduleAblation:
    def test_ranking_preserved(self, runner):
        report = schedule_ablation.run(profile="test", runner=runner)
        summary = report.summary
        for schedule in ("sequential", "interleaved"):
            assert (
                summary[f"mean_rabbit_{schedule}"]
                <= summary[f"mean_random_{schedule}"] + 1e-9
            )

    def test_ablations_registry(self):
        assert "ablation-schedule" in ABLATIONS
        assert "ablation-cache-sensitivity" in ABLATIONS
