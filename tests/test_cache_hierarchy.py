"""Two-level hierarchy simulator."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.hierarchy import simulate_hierarchy
from repro.cache import simulate
from repro.errors import ValidationError


def configs(l1_bytes=64, l2_bytes=256):
    return (
        CacheConfig(capacity_bytes=l1_bytes, line_bytes=32, ways=2),
        CacheConfig(capacity_bytes=l2_bytes, line_bytes=32, ways=4),
    )


class TestValidation:
    def test_line_size_mismatch(self):
        l1 = CacheConfig(capacity_bytes=64, line_bytes=32, ways=2)
        l2 = CacheConfig(capacity_bytes=512, line_bytes=64, ways=4)
        with pytest.raises(ValidationError):
            simulate_hierarchy(np.asarray([0]), l1, l2)

    def test_l1_larger_than_l2_rejected(self):
        l1 = CacheConfig(capacity_bytes=512, line_bytes=32, ways=4)
        l2 = CacheConfig(capacity_bytes=64, line_bytes=32, ways=2)
        with pytest.raises(ValidationError):
            simulate_hierarchy(np.asarray([0]), l1, l2)


class TestBehaviour:
    def test_l2_sees_only_l1_misses(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 40, 2000)
        l1, l2 = configs()
        stats = simulate_hierarchy(trace, l1, l2)
        stats.check_consistency()
        assert stats.l2.accesses == stats.l1.misses
        assert stats.l2.accesses <= stats.l1.accesses

    def test_l2_alone_equals_hierarchy_dram_traffic_upper_bound(self):
        """Filtering through an LRU L1 can change L2 contents, but DRAM
        traffic stays within sane bounds of the single-level L2 run."""
        rng = np.random.default_rng(1)
        trace = rng.integers(0, 30, 3000)
        l1, l2 = configs()
        hierarchy = simulate_hierarchy(trace, l1, l2)
        flat = simulate(trace, l2)
        assert hierarchy.l2.misses >= flat.misses  # L1 filtering removes recency info
        assert hierarchy.l2.misses <= flat.misses * 3

    def test_tiny_working_set_all_l1_hits(self):
        trace = np.asarray([0, 1, 0, 1, 0, 1])
        l1, l2 = configs()
        stats = simulate_hierarchy(trace, l1, l2)
        assert stats.l1.hits == 4
        assert stats.l2.misses == 2  # compulsory only

    def test_hit_rates(self):
        trace = np.asarray([0, 0, 0, 0])
        l1, l2 = configs()
        stats = simulate_hierarchy(trace, l1, l2)
        assert stats.l1_hit_rate == pytest.approx(0.75)
        assert stats.dram_traffic_bytes == 32

    def test_empty_trace(self):
        l1, l2 = configs()
        stats = simulate_hierarchy(np.asarray([], dtype=np.int64), l1, l2)
        assert stats.l1.accesses == 0
        assert stats.l2.accesses == 0
