"""Node-masking (insular sub-matrix) semantics."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.mask import restrict_to_nodes


def sample():
    # 0->1, 1->2, 2->0, 3->3
    return coo_to_csr(COOMatrix(4, 4, [0, 1, 2, 3], [1, 2, 0, 3]))


class TestModes:
    def test_either_keeps_touching_entries(self):
        mask = np.asarray([True, False, False, False])
        kept = restrict_to_nodes(sample(), mask, mode="either")
        # entries touching node 0: (0,1) and (2,0)
        assert kept.nnz == 2

    def test_both_requires_both_endpoints(self):
        mask = np.asarray([True, True, False, False])
        kept = restrict_to_nodes(sample(), mask, mode="both")
        assert kept.nnz == 1  # only (0, 1)

    def test_row_mode(self):
        mask = np.asarray([False, True, False, False])
        kept = restrict_to_nodes(sample(), mask, mode="row")
        assert kept.nnz == 1  # (1, 2)
        assert np.array_equal(kept.row_slice(1), [2])

    def test_col_mode(self):
        mask = np.asarray([False, True, False, False])
        kept = restrict_to_nodes(sample(), mask, mode="col")
        assert kept.nnz == 1  # (0, 1)

    def test_all_selected_is_identity(self):
        csr = sample()
        kept = restrict_to_nodes(csr, np.ones(4, dtype=bool))
        assert kept == csr

    def test_none_selected_empties(self):
        kept = restrict_to_nodes(sample(), np.zeros(4, dtype=bool))
        assert kept.nnz == 0

    def test_shape_is_preserved(self):
        kept = restrict_to_nodes(sample(), np.zeros(4, dtype=bool))
        assert kept.shape == (4, 4)


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValidationError):
            restrict_to_nodes(sample(), np.ones(4, dtype=bool), mode="sideways")

    def test_bad_mask_shape(self):
        with pytest.raises(ShapeError):
            restrict_to_nodes(sample(), np.ones(3, dtype=bool))

    def test_rectangular_rejected(self):
        rect = coo_to_csr(COOMatrix(2, 3, [0], [2]))
        with pytest.raises(ShapeError):
            restrict_to_nodes(rect, np.ones(2, dtype=bool))
