"""Corpus characterization driver."""

import pytest

from repro.experiments import corpus_report
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    return ExperimentRunner(
        profile="test", cache_dir=str(tmp_path_factory.mktemp("report-cache"))
    )


class TestCorpusReport:
    def test_one_row_per_matrix(self, runner):
        report = corpus_report.run("test", runner=runner)
        assert len(report.rows) == len(runner.matrices())

    def test_structural_diversity(self, runner):
        """The corpus must span the paper's structural axes."""
        report = corpus_report.run("test", runner=runner)
        insularities = [row[9] for row in report.rows]
        skews = [row[8] for row in report.rows]
        assert max(insularities) - min(insularities) > 0.3
        assert max(skews) > 2 * min(skews)
        assert report.summary["n_categories"] >= 4

    def test_values_in_range(self, runner):
        report = corpus_report.run("test", runner=runner)
        for row in report.rows:
            _, _, order, nodes, nnz, avg_deg, max_deg, gini, skew, ins, frac, k = row
            assert order in ("native", "scrambled")
            assert 0 <= gini <= 1
            assert 0 <= skew <= 1
            assert 0 <= ins <= 1
            assert 0 <= frac <= 1
            assert max_deg >= avg_deg >= 1
            assert k >= 1

    def test_runnable_by_name(self, runner):
        from repro.experiments.run_all import run_experiment

        report = run_experiment("corpus-report", profile="test", runner=runner)
        assert report.experiment == "corpus-report"

    def test_renders(self, runner):
        text = corpus_report.run("test", runner=runner).to_text()
        assert "insularity" in text
