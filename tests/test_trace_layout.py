"""Address-space layout for traces."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.trace.layout import AddressSpace, Region


class TestAllocation:
    def test_regions_do_not_overlap(self):
        space = AddressSpace(line_bytes=32)
        a = space.allocate("a", 100, 4)
        b = space.allocate("b", 50, 4)
        assert a.end_line <= b.base_line

    def test_guard_line_between_regions(self):
        space = AddressSpace(line_bytes=32)
        a = space.allocate("a", 8, 4)  # exactly one line
        b = space.allocate("b", 8, 4)
        assert b.base_line == a.end_line + 1

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.allocate("a", 10, 4)
        with pytest.raises(ValidationError):
            space.allocate("a", 10, 4)

    def test_bad_spec_rejected(self):
        with pytest.raises(ValidationError):
            AddressSpace().allocate("a", -1, 4)
        with pytest.raises(ValidationError):
            AddressSpace().allocate("a", 1, 0)
        with pytest.raises(ValidationError):
            AddressSpace(line_bytes=0)

    def test_region_bounds_report(self):
        space = AddressSpace()
        space.allocate("x", 16, 4)
        space.allocate("y", 16, 4)
        bounds = space.region_bounds()
        assert [name for name, _, _ in bounds] == ["x", "y"]


class TestLineMapping:
    def test_lines_of(self):
        region = Region("x", base_line=10, n_elements=100, element_bytes=4, line_bytes=32)
        lines = region.lines_of(np.asarray([0, 7, 8, 15, 16]))
        assert np.array_equal(lines, [10, 10, 11, 11, 12])

    def test_n_lines_rounds_up(self):
        region = Region("x", 0, n_elements=9, element_bytes=4, line_bytes=32)
        assert region.n_lines == 2

    def test_byte_span_multi_line_gather(self):
        region = Region("b", 5, n_elements=1024, element_bytes=4, line_bytes=32)
        starts, span = region.byte_span_lines(np.asarray([0, 256]), 256)
        assert span == 32
        assert np.array_equal(starts, [5, 5 + 32])

    def test_byte_span_sub_line_gather(self):
        region = Region("b", 0, n_elements=64, element_bytes=4, line_bytes=32)
        starts, span = region.byte_span_lines(np.asarray([0, 8, 16]), 4)
        assert span == 1
        assert np.array_equal(starts, [0, 1, 2])

    def test_unaligned_gather_rejected(self):
        region = Region("b", 0, n_elements=64, element_bytes=4, line_bytes=32)
        with pytest.raises(ValidationError):
            region.byte_span_lines(np.asarray([0]), 12)  # 48 B not aligned
