"""Differential suite: vectorized simulators vs the reference oracle.

Seeded random traces and real kernel traces are replayed through both
the reference per-access simulators and the numpy engines in
``repro.cache.fast``; the resulting ``CacheStats`` must be equal
field-by-field (dataclass equality covers accesses, hits, misses,
evictions, dead-line counters and the per-region miss split).  The
geometry grid includes the direct-mapped (``ways=1``) and
fully-associative (``n_sets=1``) edge cases.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cache import CacheConfig, simulate
from repro.cache.belady import _simulate_belady
from repro.cache.fast import simulate_belady_fast, simulate_lru_fast
from repro.cache.lru import _simulate_lru
from repro.gpu.specs import scaled_platform
from repro.graphs.corpus import load_graph
from repro.trace.kernelspec import KernelSpec

#: (n_sets, ways) grid: direct-mapped, fully-associative, square, wide.
GEOMETRIES = [
    (1, 1),
    (1, 4),
    (1, 16),
    (4, 1),
    (16, 1),
    (4, 4),
    (16, 4),
    (8, 2),
    (64, 16),
]

REFERENCE = {"lru": _simulate_lru, "belady": _simulate_belady}
FAST = {"lru": simulate_lru_fast, "belady": simulate_belady_fast}


def config_for(n_sets: int, ways: int, line_bytes: int = 32) -> CacheConfig:
    return CacheConfig(
        capacity_bytes=n_sets * ways * line_bytes,
        line_bytes=line_bytes,
        ways=ways,
    )


def assert_identical_stats(reference, fast, context=""):
    for field in dataclasses.fields(reference):
        assert getattr(reference, field.name) == getattr(fast, field.name), (
            f"{context}: field {field.name!r} diverges: "
            f"reference={getattr(reference, field.name)!r} "
            f"fast={getattr(fast, field.name)!r}"
        )
    assert reference == fast


def random_trace(rng, style: str, n: int) -> np.ndarray:
    if style == "uniform":
        return rng.integers(0, max(1, n // 4 + 3), size=n)
    if style == "hot":
        hot = rng.integers(0, 8, size=n)
        cold = rng.integers(0, 10 * n + 1, size=n)
        pick = rng.random(n) < 0.6
        return np.where(pick, hot, cold)
    # "stream": sequential sweeps with an irregular gather interleaved
    sweep = np.arange(n) // 3
    gather = rng.integers(0, max(1, n // 2), size=n) + 10 * n
    out = np.empty(n, dtype=np.int64)
    out[0::2] = sweep[0::2]
    out[1::2] = gather[1::2]
    return out


@pytest.mark.parametrize("policy", ["lru", "belady"])
@pytest.mark.parametrize("geometry", GEOMETRIES)
@pytest.mark.parametrize("style", ["uniform", "hot", "stream"])
def test_random_traces(policy, geometry, style):
    n_sets, ways = geometry
    config = config_for(n_sets, ways)
    rng = np.random.default_rng(hash((policy, n_sets, ways, style)) % (2**32))
    for n in (0, 1, 2, ways, 4 * n_sets * ways, 5000):
        trace = random_trace(rng, style, n)
        regions = [("low", 0, max(1, n // 8)), ("mid", max(1, n // 8), n + 1)]
        reference = REFERENCE[policy](trace, config, regions)
        fast = FAST[policy](trace, config, regions)
        assert_identical_stats(
            reference, fast, f"{policy} {n_sets}x{ways} {style} n={n}"
        )


@pytest.mark.parametrize("policy", ["lru", "belady"])
def test_sparse_line_ids(policy):
    """Huge, sparse line-id ranges exercise the id-compaction path."""
    config = config_for(16, 4)
    rng = np.random.default_rng(99)
    trace = rng.integers(0, 2**60, size=400) * 3 + rng.integers(0, 7, size=400)
    reference = REFERENCE[policy](trace, config)
    fast = FAST[policy](trace, config)
    assert_identical_stats(reference, fast, f"{policy} sparse ids")


@pytest.mark.parametrize("policy", ["lru", "belady"])
@pytest.mark.parametrize("kernel", ["spmv-csr", "spmv-coo", "spmm-csr-4"])
@pytest.mark.parametrize("matrix", ["test-comm", "test-rmat"])
def test_real_kernel_traces(policy, kernel, matrix):
    """Real kernel traces with region splits, on two cache geometries."""
    graph = load_graph(matrix)
    platform = scaled_platform("test")
    trace = KernelSpec.parse(kernel).build_trace(graph.adjacency, platform)
    for n_sets, ways in [(4, 16), (64, 16)]:
        config = config_for(n_sets, ways, line_bytes=platform.line_bytes)
        reference = REFERENCE[policy](trace.lines, config, trace.regions)
        fast = FAST[policy](trace.lines, config, trace.regions)
        assert_identical_stats(
            reference, fast, f"{policy} {kernel} {matrix} {n_sets}x{ways}"
        )
        assert reference.region_misses  # the split actually exercised


@pytest.mark.parametrize("policy", ["lru", "belady"])
def test_dispatch_impls_agree(policy):
    """simulate() returns the same stats whichever impl is forced."""
    graph = load_graph("test-mesh")
    platform = scaled_platform("test")
    trace = KernelSpec.parse("spmv-csr").build_trace(graph.adjacency, platform)
    config = config_for(64, 4)
    results = {
        impl: simulate(trace, config, policy=policy, impl=impl)
        for impl in ("reference", "fast", "auto")
    }
    assert_identical_stats(results["reference"], results["fast"], policy)
    assert results["auto"] == results["reference"]
