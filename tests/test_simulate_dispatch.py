"""The public simulate() dispatch: impl resolution, env override, obs."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cache import CacheConfig, simulate
from repro.cache.dispatch import (
    IMPL_ENV_VAR,
    _FAST_MIN_ACCESSES,
    _FAST_MIN_SETS,
    _choose_impl,
    resolve_impl,
)
from repro.errors import ValidationError
from repro.gpu.specs import scaled_platform
from repro.graphs.corpus import load_graph
from repro.obs import Instrumentation, MemorySink, using
from repro.trace.kernelspec import KernelSpec


@pytest.fixture
def trace():
    rng = np.random.default_rng(3)
    return rng.integers(0, 400, size=6000)


@pytest.fixture
def config():
    return CacheConfig(capacity_bytes=64 * 16 * 32, line_bytes=32, ways=16)


class TestResolution:
    def test_explicit_impl_wins(self, trace, config, monkeypatch):
        monkeypatch.setenv(IMPL_ENV_VAR, "fast")
        reference = simulate(trace, config, impl="reference")
        fast = simulate(trace, config, impl="fast")
        assert reference == fast

    def test_env_override(self, trace, config, monkeypatch):
        for value in ("reference", "fast", "AUTO", " fast "):
            monkeypatch.setenv(IMPL_ENV_VAR, value)
            assert simulate(trace, config).accesses == trace.size
        monkeypatch.setenv(IMPL_ENV_VAR, "turbo")
        with pytest.raises(ValidationError):
            simulate(trace, config)

    def test_invalid_impl_rejected(self, trace, config):
        with pytest.raises(ValidationError):
            simulate(trace, config, impl="numba")

    def test_invalid_policy_rejected(self, trace, config):
        with pytest.raises(ValidationError):
            simulate(trace, config, policy="fifo")

    def test_resolve_impl_defaults_to_auto(self, monkeypatch):
        monkeypatch.delenv(IMPL_ENV_VAR, raising=False)
        assert resolve_impl(None) == "auto"
        monkeypatch.setenv(IMPL_ENV_VAR, "")
        assert resolve_impl(None) == "auto"

    def test_auto_heuristic(self):
        small_cache = CacheConfig(capacity_bytes=4 * 16 * 32, ways=16)  # 4 sets
        big_cache = CacheConfig(capacity_bytes=64 * 16 * 32, ways=16)  # 64 sets
        big_n = 10 * _FAST_MIN_ACCESSES
        for policy in ("lru", "belady"):
            assert _choose_impl(big_n, small_cache, policy) == "reference"
            assert _choose_impl(100, big_cache, policy) == "reference"
            assert _choose_impl(big_n, big_cache, policy) == "fast"
            assert big_cache.n_sets >= _FAST_MIN_SETS[policy]


class TestInputs:
    def test_kernel_trace_input_uses_its_regions(self, config):
        graph = load_graph("test-comm")
        trace = KernelSpec.parse("spmv-csr").build_trace(
            graph.adjacency, scaled_platform("test")
        )
        stats = simulate(trace, config)
        assert stats.region_misses
        assert sum(stats.region_misses.values()) == stats.misses
        suppressed = simulate(trace, config, regions=())
        assert suppressed.region_misses == {}
        assert suppressed.misses == stats.misses

    def test_ndarray_input_no_regions(self, trace, config):
        stats = simulate(trace, config)
        assert stats.region_misses == {}

    def test_policies_differ(self, trace, config):
        lru = simulate(trace, config, policy="lru")
        belady = simulate(trace, config, policy="belady")
        assert belady.misses <= lru.misses


class TestObsWiring:
    def test_span_and_counters(self, trace, config):
        sink = MemorySink()
        instr = Instrumentation(sink=sink)
        with using(instr):
            simulate(trace, config, policy="lru", impl="fast")
        spans = [e for e in sink.by_kind("span") if e["name"] == "cache-sim"]
        assert len(spans) == 1
        assert spans[0]["tags"]["policy"] == "lru"
        assert spans[0]["tags"]["impl"] == "fast"
        assert spans[0]["tags"]["accesses"] == trace.size
        assert instr.counters.get("cache.lru.accesses") == trace.size


class TestDeprecatedAliases:
    def test_aliases_warn_and_match_simulate(self, trace, config):
        from repro.cache import simulate_belady, simulate_lru

        with pytest.warns(DeprecationWarning, match="repro.cache.simulate"):
            lru = simulate_lru(trace, config)
        assert lru == simulate(trace, config, policy="lru", impl="reference")
        with pytest.warns(DeprecationWarning, match="repro.cache.simulate"):
            belady = simulate_belady(trace, config)
        assert belady == simulate(trace, config, policy="belady", impl="reference")

    def test_facade_exports(self):
        assert repro.simulate is simulate
        assert repro.KernelSpec is KernelSpec
        for name in ("simulate", "KernelSpec"):
            assert name in repro.__all__
