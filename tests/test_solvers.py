"""Iterative solvers: correctness, convergence, and invariances."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.graphs.corpus import load_graph
from repro.reorder.registry import make_technique
from repro.solvers import (
    conjugate_gradient,
    graph_laplacian,
    jacobi,
    pagerank,
)
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.kernels import spmv_csr
from repro.sparse.permute import permute_symmetric


@pytest.fixture(scope="module")
def mesh_system():
    graph = load_graph("test-mesh")
    matrix = graph_laplacian(graph, shift=0.5)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(matrix.n_rows)
    return matrix, b


class TestLaplacian:
    def test_row_sums_equal_shift(self, two_triangles):
        laplacian = graph_laplacian(two_triangles, shift=0.25)
        x = np.ones(laplacian.n_rows)
        assert np.allclose(spmv_csr(laplacian, x), 0.25)

    def test_symmetric(self, two_triangles):
        laplacian = graph_laplacian(two_triangles, shift=1.0)
        dense = laplacian.to_dense()
        assert np.allclose(dense, dense.T)

    def test_positive_definite_with_shift(self, two_triangles):
        dense = graph_laplacian(two_triangles, shift=0.5).to_dense()
        eigenvalues = np.linalg.eigvalsh(dense)
        assert eigenvalues.min() > 0


class TestConjugateGradient:
    def test_solves_system(self, mesh_system):
        matrix, b = mesh_system
        result = conjugate_gradient(matrix, b, tolerance=1e-10)
        assert result.converged
        assert np.allclose(spmv_csr(matrix, result.x), b, atol=1e-6)

    def test_residual_history_decreases_overall(self, mesh_system):
        matrix, b = mesh_system
        result = conjugate_gradient(matrix, b, tolerance=1e-10)
        assert result.residual_history[-1] < result.residual_history[0] * 1e-6

    def test_warm_start_converges_faster(self, mesh_system):
        matrix, b = mesh_system
        cold = conjugate_gradient(matrix, b, tolerance=1e-10)
        warm = conjugate_gradient(matrix, b, tolerance=1e-10, x0=cold.x)
        assert warm.iterations <= 2

    def test_solution_invariant_under_reordering(self, mesh_system):
        """Solving the permuted system gives the permuted solution —
        reordering is transparent to the solver."""
        matrix, b = mesh_system
        graph = load_graph("test-mesh")
        perm = make_technique("rabbit").compute(graph)
        permuted_matrix = permute_symmetric(matrix, perm)
        b_permuted = np.empty_like(b)
        b_permuted[perm] = b
        base = conjugate_gradient(matrix, b, tolerance=1e-10)
        reordered = conjugate_gradient(permuted_matrix, b_permuted, tolerance=1e-10)
        assert np.allclose(reordered.x[perm], base.x, atol=1e-6)

    def test_non_spd_detected(self):
        # Indefinite matrix: CG reports failure instead of looping.
        matrix = coo_to_csr(
            COOMatrix(2, 2, [0, 1], [0, 1], [1.0, -1.0])
        )
        result = conjugate_gradient(matrix, np.asarray([0.0, 1.0]), max_iterations=10)
        assert not result.converged

    def test_validation(self, mesh_system):
        matrix, b = mesh_system
        with pytest.raises(ValidationError):
            conjugate_gradient(matrix, b, tolerance=0.0)
        with pytest.raises(ShapeError):
            conjugate_gradient(matrix, b[:-1])


class TestJacobi:
    def test_solves_diagonally_dominant(self, mesh_system):
        matrix, b = mesh_system
        result = jacobi(matrix, b, tolerance=1e-8, max_iterations=5000)
        assert result.converged
        assert np.allclose(spmv_csr(matrix, result.x), b, atol=1e-5)

    def test_cg_converges_faster_than_jacobi(self, mesh_system):
        matrix, b = mesh_system
        cg_result = conjugate_gradient(matrix, b, tolerance=1e-8)
        jacobi_result = jacobi(matrix, b, tolerance=1e-8, max_iterations=5000)
        assert cg_result.iterations < jacobi_result.iterations

    def test_zero_diagonal_rejected(self):
        matrix = coo_to_csr(COOMatrix(2, 2, [0], [1], [1.0]))
        with pytest.raises(ValidationError):
            jacobi(matrix, np.ones(2))


class TestPageRank:
    def test_scores_sum_to_one(self):
        graph = load_graph("test-social")
        result = pagerank(graph)
        assert result.converged
        assert result.scores.sum() == pytest.approx(1.0)
        assert np.all(result.scores > 0)

    def test_hub_ranks_highest_on_star(self, star_graph):
        result = pagerank(star_graph)
        assert int(np.argmax(result.scores)) == 0

    def test_uniform_on_symmetric_ring(self):
        from repro.graphs.generators import watts_strogatz
        from repro.graphs.graph import Graph

        ring = Graph(coo_to_csr(watts_strogatz(32, 2, 0.0, seed=1)))
        result = pagerank(ring)
        assert np.allclose(result.scores, 1.0 / 32, atol=1e-6)

    def test_scores_invariant_under_reordering(self):
        graph = load_graph("test-social")
        perm = make_technique("rabbit++").compute(graph)
        from repro.graphs.graph import Graph

        permuted = Graph(permute_symmetric(graph.adjacency, perm))
        base = pagerank(graph)
        reordered = pagerank(permuted)
        assert np.allclose(reordered.scores[perm], base.scores, atol=1e-8)

    def test_dangling_nodes_handled(self):
        # Directed chain with a dangling sink.
        matrix = coo_to_csr(COOMatrix(3, 3, [0, 1], [1, 2]))
        from repro.graphs.graph import Graph

        result = pagerank(Graph(matrix, directed=True))
        assert result.scores.sum() == pytest.approx(1.0)
        assert result.converged

    def test_validation(self):
        graph = load_graph("test-social")
        with pytest.raises(ValidationError):
            pagerank(graph, damping=1.5)
        with pytest.raises(ValidationError):
            pagerank(graph, tolerance=0.0)
