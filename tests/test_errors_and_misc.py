"""Exception hierarchy and small cross-cutting behaviours."""

import numpy as np
import pytest

from repro.errors import (
    CorpusError,
    ExperimentError,
    FormatError,
    ReproError,
    ShapeError,
    ValidationError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ValidationError, ShapeError, FormatError, CorpusError, ExperimentError):
            assert issubclass(exc, ReproError)

    def test_validation_is_value_error(self):
        """Call sites using `except ValueError` keep working."""
        assert issubclass(ValidationError, ValueError)
        assert issubclass(ShapeError, ValueError)

    def test_corpus_error_is_key_error(self):
        assert issubclass(CorpusError, KeyError)

    def test_catchable_as_repro_error(self):
        from repro.sparse.coo import COOMatrix

        with pytest.raises(ReproError):
            COOMatrix(2, 2, [5], [0])


class TestRowOrderSchedules:
    def test_interleaved_is_a_permutation_of_rows(self):
        from repro.trace.kernel_traces import _row_order

        for n in (1, 7, 31, 64, 100):
            order = _row_order(n, "interleaved", 8)
            assert np.array_equal(np.sort(order), np.arange(n))

    def test_interleaved_round_robin_property(self):
        from repro.trace.kernel_traces import _row_order

        order = _row_order(16, "interleaved", 4)
        # First four visits take one row from each contiguous chunk.
        chunks = set(order[:4] // 4)
        assert chunks == {0, 1, 2, 3}

    def test_more_partitions_than_rows(self):
        from repro.trace.kernel_traces import _row_order

        order = _row_order(3, "interleaved", 16)
        assert np.array_equal(np.sort(order), np.arange(3))

    def test_bad_partition_count(self):
        from repro.errors import ValidationError
        from repro.trace.kernel_traces import _row_order

        with pytest.raises(ValidationError):
            _row_order(8, "interleaved", 0)


class TestTechniqueBase:
    def test_repr(self):
        from repro.reorder.simple import OriginalOrder

        assert "original" in repr(OriginalOrder())

    def test_compute_validates_subclass_output(self):
        from repro.errors import ValidationError
        from repro.graphs.graph import Graph
        from repro.reorder.base import ReorderingTechnique
        from repro.sparse.convert import coo_to_csr
        from repro.sparse.coo import COOMatrix

        class Broken(ReorderingTechnique):
            name = "broken"

            def _compute(self, graph):
                return np.zeros(graph.n_nodes, dtype=np.int64)  # repeats

        graph = Graph(coo_to_csr(COOMatrix(3, 3, [0], [1])))
        with pytest.raises(ValidationError):
            Broken().compute(graph)


class TestPlatformProfiles:
    def test_platforms_scale_monotonically(self):
        from repro.gpu.specs import scaled_platform

        full = scaled_platform("full")
        bench = scaled_platform("bench")
        test = scaled_platform("test")
        assert full.l2_capacity_bytes > bench.l2_capacity_bytes > test.l2_capacity_bytes

    def test_all_platforms_yield_valid_cache_configs(self):
        from repro.gpu.specs import A6000, scaled_platform

        for spec in (A6000, scaled_platform("full"), scaled_platform("bench"), scaled_platform("test")):
            config = spec.cache_config()
            assert config.n_sets >= 1


class TestCliAblations:
    def test_experiment_accepts_ablation_names(self, capsys):
        from repro.cli import main

        assert main(["experiment", "corpus-report", "--profile", "test"]) == 0
        out = capsys.readouterr().out
        assert "corpus-report" in out
