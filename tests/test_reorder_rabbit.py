"""RABBIT ordering tests."""

import numpy as np
import pytest

from repro.graphs.corpus import load_graph
from repro.metrics.locality import average_neighbor_span
from repro.reorder.rabbit import RabbitOrder
from repro.sparse.permute import check_permutation, permute_symmetric


class TestRabbitOrder:
    def test_valid_permutation(self, two_triangles):
        check_permutation(RabbitOrder().compute(two_triangles), 6)

    def test_communities_contiguous(self):
        graph = load_graph("test-comm")
        technique = RabbitOrder()
        perm = technique.compute(graph)
        labels = technique.last_result.assignment.labels
        by_new_id = np.argsort(perm)
        sequence = labels[by_new_id]
        changes = int(np.sum(sequence[1:] != sequence[:-1]))
        assert changes == technique.last_result.assignment.n_communities - 1

    def test_improves_locality_on_scrambled_community_graph(self):
        graph = load_graph("test-comm")
        perm = RabbitOrder().compute(graph)
        before = average_neighbor_span(graph.adjacency)
        after = average_neighbor_span(permute_symmetric(graph.adjacency, perm))
        assert after < 0.5 * before

    def test_detect_reuses_result(self):
        graph = load_graph("test-comm")
        technique = RabbitOrder()
        technique.compute(graph)
        first = technique.last_result
        assert technique.detect(graph) is first

    def test_detect_without_compute(self):
        graph = load_graph("test-comm")
        result = RabbitOrder().detect(graph)
        assert result.assignment.n_nodes == graph.n_nodes

    def test_deterministic(self, two_triangles):
        a = RabbitOrder().compute(two_triangles)
        b = RabbitOrder().compute(two_triangles)
        assert np.array_equal(a, b)
