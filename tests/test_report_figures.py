"""ASCII bar-chart rendering for figure-style reports."""

import pytest

from repro.errors import ValidationError
from repro.experiments.report import ExperimentReport, render_bars


class TestRenderBars:
    def test_proportional_lengths(self):
        text = render_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_baseline_subtracted(self):
        text = render_bars(["a", "b"], [1.0, 3.0], width=10, baseline=1.0)
        lines = text.splitlines()
        assert lines[0].count("#") == 0  # exactly at the baseline
        assert lines[1].count("#") == 10

    def test_values_still_printed(self):
        text = render_bars(["matrix-x"], [1.234])
        assert "1.234" in text
        assert "matrix-x" in text

    def test_labels_aligned(self):
        text = render_bars(["a", "longer"], [1.0, 1.0])
        lines = text.splitlines()
        assert lines[0].index("1.000") == lines[1].index("1.000")

    def test_empty(self):
        assert render_bars([], []) == "(empty)"

    def test_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            render_bars(["a"], [1.0, 2.0])

    def test_bad_width(self):
        with pytest.raises(ValidationError):
            render_bars(["a"], [1.0], width=0)

    def test_all_at_baseline(self):
        text = render_bars(["a", "b"], [1.0, 1.0], baseline=1.0)
        assert "#" not in text


class TestReportToFigure:
    def test_figure_from_rows(self):
        report = ExperimentReport(
            experiment="figX",
            title="demo",
            headers=["matrix", "value"],
            rows=[["m1", 1.2], ["m2", 2.4]],
        )
        figure = report.to_figure(baseline=1.0)
        assert "figX" in figure
        assert "m1" in figure and "m2" in figure
        lines = figure.splitlines()[1:]
        assert lines[1].count("#") > lines[0].count("#")

    def test_real_driver_renders(self, tmp_path):
        from repro.experiments import fig3
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner("test", cache_dir=str(tmp_path))
        report = fig3.run("test", runner=runner)
        figure = report.to_figure(value_column=2, baseline=1.0)
        assert "#" in figure
