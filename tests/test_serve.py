"""Serve-tier tests: store, coalescing, service pipeline, overload
machinery (admission, breakers, degraded mode, drain) and the HTTP
endpoint over a real socket (coalescing counter-asserted, byte-identical
store hits, deadline 504s that don't kill the server)."""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro import obs
from repro.errors import (
    BreakerOpenError,
    CorpusError,
    OverloadedError,
    ValidationError,
)
from repro.graphs.corpus import load_graph, load_matrix
from repro.graphs.io import write_matrix_market
from repro.obs import Instrumentation
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    install_injector,
    reset_faults,
)
from repro.serve.admission import Admission
from repro.serve.bench import bench_payload, wait_for_server, zipf_trace
from repro.serve.breaker import CircuitBreaker
from repro.serve.client import ClientResponse, ServeClient, idempotency_key
from repro.serve.coalesce import SingleFlight
from repro.serve.httpd import make_server, render_body
from repro.serve.service import ReorderService, ServeConfig
from repro.serve.store import (
    PermutationStore,
    eval_key,
    perm_key,
    structure_digest,
)


@pytest.fixture
def instr():
    """Enabled process-wide instrumentation (visible to server threads)."""
    instrumentation = Instrumentation(enabled=True)
    with obs.using(instrumentation):
        yield instrumentation


@pytest.fixture
def service(tmp_path, instr):
    return ReorderService(
        ServeConfig(profile="test", store_dir=str(tmp_path / "store"))
    )


@pytest.fixture
def faults():
    yield
    reset_faults()


def _install_fault(site: str, **rule) -> None:
    plan = FaultPlan.from_document([{"site": site, **rule}])
    install_injector(FaultInjector(plan))


def _install_faults(rules) -> None:
    install_injector(FaultInjector(FaultPlan.from_document(list(rules))))


# -- store ---------------------------------------------------------------


def test_structure_digest_ignores_values():
    csr = load_graph("test-comm").adjacency
    digest = structure_digest(csr)
    scaled = type(csr)(
        csr.n_rows, csr.n_cols, csr.row_offsets, csr.col_indices,
        csr.values * 3.0,
    )
    assert structure_digest(scaled) == digest
    other = load_graph("test-mesh").adjacency
    assert structure_digest(other) != digest


def test_keys_depend_on_every_component():
    keys = {
        perm_key("d1", "rcm", "auto"),
        perm_key("d2", "rcm", "auto"),
        perm_key("d1", "rabbit", "auto"),
        perm_key("d1", "rcm", "fast"),
        eval_key("d1", "rcm", "auto", "spmv-csr", "lru", "p"),
        eval_key("d1", "rcm", "auto", "spmv-csr", "belady", "p"),
        eval_key("d1", "rcm", "auto", "spmm-csr-4", "lru", "p"),
    }
    assert len(keys) == 7


def test_store_roundtrip_and_quarantine(tmp_path, instr):
    store = PermutationStore(str(tmp_path / "store"))
    key = perm_key("digest", "rcm", "auto")
    assert store.get("perm", key) is None
    path = store.put("perm", key, {"permutation": [0, 1, 2]})
    assert store.get("perm", key) == {"permutation": [0, 1, 2]}
    # Damage the entry: the read must miss and quarantine, not crash.
    with open(path, "r+b") as handle:
        handle.truncate(20)
    assert store.get("perm", key) is None
    assert store.stats()["quarantine"]["entries"] == 1
    with pytest.raises(ValueError):
        store.path("nope", key)


# -- coalescing ----------------------------------------------------------


def test_singleflight_coalesces_concurrent_callers(instr):
    flight = SingleFlight()
    calls = []
    release = threading.Event()
    started = threading.Barrier(4)
    results = []

    def compute():
        calls.append(1)
        release.wait(5.0)
        return "value"

    def worker():
        started.wait(5.0)
        results.append(flight.do("k", compute))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    # Hold the leader inside compute() until all three followers have
    # been classified (the wait counter ticks after the under-lock
    # leader/follower decision), so none can arrive late and lead a
    # fresh flight of its own.
    stop = time.monotonic() + 10.0
    while instr.counters.get("serve.coalesce.wait") < 3:
        assert time.monotonic() < stop, "followers never joined the flight"
        time.sleep(0.001)
    release.set()
    for t in threads:
        t.join(10.0)
    assert len(calls) == 1
    assert sorted(led for _, led in results) == [False, False, False, True]
    assert all(value == "value" for value, _ in results)
    assert flight.inflight() == 0


def test_singleflight_propagates_leader_error(instr):
    flight = SingleFlight()
    gate = threading.Event()
    errors = []

    def compute():
        gate.wait(5.0)
        raise RuntimeError("boom")

    def follower():
        try:
            flight.do("k", compute)
        except RuntimeError as exc:
            errors.append(str(exc))

    threads = [threading.Thread(target=follower) for _ in range(2)]
    threads[0].start()
    while flight.inflight() == 0:
        time.sleep(0.001)
    threads[1].start()
    gate.set()
    for t in threads:
        t.join(10.0)
    assert errors == ["boom", "boom"]
    # A later call starts a fresh flight (and fails on its own terms).
    with pytest.raises(RuntimeError):
        flight.do("k", compute)


def test_singleflight_sequential_calls_each_lead(instr):
    flight = SingleFlight()
    value, led = flight.do("k", lambda: 1)
    assert (value, led) == (1, True)
    value, led = flight.do("k", lambda: 2)
    assert (value, led) == (2, True)


# -- service pipeline ----------------------------------------------------


def test_handle_validates_requests(service):
    with pytest.raises(ValidationError):
        service.handle({})  # neither matrix nor mtx
    with pytest.raises(ValidationError):
        service.handle({"matrix": "test-comm", "mtx": "both"})
    with pytest.raises(ValidationError):
        service.handle({"matrix": "test-comm", "technique": "nope"})
    with pytest.raises(ValidationError):
        service.handle({"matrix": "test-comm", "kernel": "spmm-csr-0"})
    with pytest.raises(ValidationError):
        service.handle({"matrix": "test-comm", "policy": "mru"})
    with pytest.raises(ValidationError):
        service.handle({"matrix": "test-comm", "iterations": 0})
    with pytest.raises(ValidationError):
        service.handle({"matrix": "test-comm", "deadline_seconds": -1})
    with pytest.raises(CorpusError):
        service.handle({"matrix": "no-such-matrix"})


def test_miss_then_hit_byte_identical(service):
    request = {"matrix": "test-comm", "technique": "degsort"}
    first = service.handle(request)
    second = service.handle(request)
    assert first.store == "miss"
    assert second.store == "hit"
    assert render_body(first.payload) == render_body(second.payload)
    perm = first.payload["permutation"]
    n = first.payload["matrix"]["n_nodes"]
    assert sorted(perm) == list(range(n))


def test_upload_shares_store_entry_with_corpus_matrix(service, tmp_path):
    # Same structure => same content address: an .mtx upload of a corpus
    # matrix must *hit* the entry the named request created.
    named = service.handle({"matrix": "test-comm", "technique": "degsort"})
    path = tmp_path / "m.mtx"
    write_matrix_market(load_matrix("test-comm"), str(path))
    uploaded = service.handle(
        {"mtx": path.read_text(), "technique": "degsort"}
    )
    assert uploaded.store == "hit"
    assert uploaded.payload["matrix"]["digest"] == named.payload["matrix"]["digest"]
    assert uploaded.payload["permutation"] == named.payload["permutation"]


def test_auto_recommendation_is_predicted_and_amortization_framed(service, instr):
    result = service.handle(
        {"matrix": "test-comm", "technique": "auto", "iterations": 7}
    )
    rec = result.payload["recommendation"]
    assert rec["predicted"] is True
    assert rec["iterations"] == 7
    assert rec["baseline"]["technique"] == "original"
    assert [c["technique"] for c in rec["candidates"]] == list(
        service.config.candidates
    )
    for row in rec["candidates"]:
        expected = row["reorder_seconds"] + 7 * row["modeled_seconds"]
        assert row["total_seconds"] == pytest.approx(expected)
        assert row["speedup"] == pytest.approx(
            rec["baseline"]["modeled_seconds"] / row["modeled_seconds"]
        )
    # The chosen technique is the response's technique.
    assert result.payload["technique"] == rec["chosen"]
    if not rec["reorder_worth_it"]:
        assert rec["chosen"] == "original"
    else:
        best = min(c["total_seconds"] for c in rec["candidates"])
        chosen_row = next(
            c for c in rec["candidates"] if c["technique"] == rec["chosen"]
        )
        assert chosen_row["total_seconds"] <= best * 1.01
        assert best < rec["baseline"]["total_seconds"]
    # The prediction itself ran zero candidate reorderings: only the
    # chosen technique was evaluated after the choice.
    assert instr.counters.get("serve.compute.eval") <= 1
    assert instr.counters.get("serve.compute.permutation") <= 1


def test_handle_recommend_computes_nothing(service, instr):
    result = service.handle_recommend(
        {"matrix": "test-comm", "iterations": 50}
    )
    assert result.store == "predicted"
    body = result.payload
    assert body["v"] == 1
    assert body["technique"] == body["recommendation"]["chosen"]
    assert body["matrix"]["name"] == "test-comm"
    assert {c["technique"] for c in body["recommendation"]["candidates"]} == set(
        service.config.candidates
    )
    # The acceptance criterion: zero permutations, zero evaluations.
    assert instr.counters.get("serve.compute.eval") == 0
    assert instr.counters.get("serve.compute.permutation") == 0
    # A second call reuses the cached features and predictor.
    again = service.handle_recommend({"matrix": "test-comm", "iterations": 50})
    assert render_body(again.payload) == render_body(body)


def test_handle_recommend_validates(service):
    with pytest.raises(ValidationError):
        service.handle_recommend({})  # neither matrix nor mtx
    with pytest.raises(ValidationError, match="'policy'"):
        service.handle_recommend({"matrix": "test-comm", "policy": "lru"})
    with pytest.raises(ValidationError):
        service.handle_recommend({"matrix": "test-comm", "iterations": 0})
    with pytest.raises(CorpusError):
        service.handle_recommend({"matrix": "no-such"})


def test_unknown_request_key_names_the_key(service):
    with pytest.raises(ValidationError, match="'kernle'"):
        service.handle({"matrix": "test-comm", "kernle": "spmv-csr"})
    with pytest.raises(ValidationError, match="allowed keys"):
        service.handle({"matrix": "test-comm", "extra": 1})


def test_reorder_body_carries_wire_version(service):
    result = service.handle({"matrix": "test-comm", "technique": "degsort"})
    assert result.payload["v"] == 1
    assert result.payload["schema"] == 1


def test_compute_counters_tick_once_per_entry(service, instr):
    service.handle({"matrix": "test-comm", "technique": "degsort"})
    service.handle({"matrix": "test-comm", "technique": "degsort"})
    assert instr.counters.get("serve.compute.permutation") == 1
    assert instr.counters.get("serve.compute.eval") == 1
    assert instr.counters.get("serve.store.eval.hit") == 1


# -- HTTP over a real socket ---------------------------------------------


@pytest.fixture
def endpoint(service):
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(10.0)


def _post(base_url, payload, timeout=60.0):
    data = json.dumps(payload).encode() if isinstance(payload, dict) else payload
    request = urllib.request.Request(
        base_url + "/v1/reorder",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), exc.read()


def test_health_and_stats_endpoints(endpoint):
    with urllib.request.urlopen(endpoint + "/health", timeout=10) as response:
        assert json.loads(response.read()) == {"ok": True}
    _post(endpoint, {"matrix": "test-comm", "technique": "degsort"})
    with urllib.request.urlopen(endpoint + "/stats", timeout=10) as response:
        stats = json.loads(response.read())
    assert stats["service"]["store"]["perm"]["entries"] == 1
    assert stats["counters"]["serve.request.miss"] == 1
    assert stats["histograms"]["serve.request.miss"]["count"] == 1


def test_http_miss_then_hit_byte_identical(endpoint):
    request = {"matrix": "test-comm", "technique": "rcm"}
    status1, headers1, body1 = _post(endpoint, request)
    status2, headers2, body2 = _post(endpoint, request)
    assert (status1, status2) == (200, 200)
    assert headers1["X-Repro-Store"] == "miss"
    assert headers2["X-Repro-Store"] == "hit"
    assert body1 == body2  # bytes, not just JSON-equal
    assert float(headers2["X-Repro-Seconds"]) >= 0.0


def test_http_error_mapping(endpoint):
    status, _, body = _post(endpoint, b"{not json")
    assert status == 400
    assert "JSON" in json.loads(body)["error"]
    status, _, _ = _post(endpoint, {"matrix": "test-comm", "technique": "nope"})
    assert status == 400
    status, _, body = _post(endpoint, {"matrix": "no-such"})
    assert status == 404
    assert "no-such" in json.loads(body)["error"]
    request = urllib.request.Request(endpoint + "/nope", data=b"{}")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            status = response.status
    except urllib.error.HTTPError as exc:
        status = exc.code
    assert status == 404


def test_http_recommend_get_and_post(endpoint, instr):
    url = endpoint + "/v1/recommend?matrix=test-comm&iterations=25"
    with urllib.request.urlopen(url, timeout=60) as response:
        assert response.status == 200
        assert response.headers["X-Repro-Store"] == "predicted"
        via_get = json.loads(response.read())
    assert via_get["v"] == 1
    assert via_get["iterations"] == 25
    assert via_get["recommendation"]["predicted"] is True

    data = json.dumps({"matrix": "test-comm", "iterations": 25}).encode()
    request = urllib.request.Request(
        endpoint + "/v1/recommend",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        via_post = json.loads(response.read())
    assert via_post == via_get
    # Predicted end to end: no permutation or evaluation was computed.
    assert instr.counters.get("serve.compute.eval") == 0
    assert instr.counters.get("serve.compute.permutation") == 0


def test_http_recommend_rejects_unknown_key(endpoint):
    data = json.dumps({"matrix": "test-comm", "policy": "lru"}).encode()
    request = urllib.request.Request(
        endpoint + "/v1/recommend",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            status, body = response.status, response.read()
    except urllib.error.HTTPError as exc:
        status, body = exc.code, exc.read()
    assert status == 400
    assert "'policy'" in json.loads(body)["error"]


def test_http_coalesces_to_one_solver_invocation(endpoint, instr, faults):
    # Stall the (single) computation so concurrent identical requests
    # pile up behind the leader's flight instead of racing it.
    _install_fault("serve.compute", action="delay", seconds=0.5, times=1)
    results = []
    barrier = threading.Barrier(4)

    def client():
        barrier.wait(5.0)
        results.append(
            _post(endpoint, {"matrix": "test-comm", "technique": "hubsort"})
        )

    threads = [threading.Thread(target=client) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30.0)
    assert [status for status, _, _ in results] == [200] * 4
    # The coalescing proof: four concurrent requests, exactly one
    # reordering and one evaluation actually computed.
    assert instr.counters.get("serve.compute.permutation") == 1
    assert instr.counters.get("serve.compute.eval") == 1
    assert instr.counters.get("serve.coalesce.wait") >= 1
    bodies = {body for _, _, body in results}
    assert len(bodies) == 1  # every caller saw identical bytes


def test_http_deadline_returns_504_and_server_survives(endpoint, instr, faults):
    _install_fault("serve.compute", action="delay", seconds=0.6, times=1)
    status, _, body = _post(
        endpoint,
        {"matrix": "test-comm", "technique": "rcm", "deadline_seconds": 0.15},
    )
    assert status == 504
    assert "timeout" in json.loads(body)["error"]
    # Handler threads are not the main thread: enforcement must have
    # degraded to the cooperative path, observably.
    assert instr.counters.get("resilience.deadline_degraded") >= 1
    # The server is still alive and the entry is computable afterwards.
    status, headers, _ = _post(
        endpoint, {"matrix": "test-comm", "technique": "rcm"}
    )
    assert status == 200
    assert headers["X-Repro-Store"] in ("miss", "hit")


# -- bench helpers -------------------------------------------------------


def test_zipf_trace_is_deterministic_and_skewed():
    names = [f"m{i}" for i in range(6)]
    trace = zipf_trace(names, 400, skew=1.2, seed=7)
    assert trace == zipf_trace(names, 400, skew=1.2, seed=7)
    assert len(trace) == 400
    counts = {name: trace.count(name) for name in names}
    assert counts["m0"] > counts["m5"]  # rank 1 beats the tail
    with pytest.raises(ValidationError):
        zipf_trace([], 10)
    with pytest.raises(ValidationError):
        zipf_trace(names, 0)


def test_bench_payload_math():
    from repro.serve.bench import _LoadState
    from repro.serve.client import ClientResponse

    def _response(status, store=None, error=None):
        headers = {"X-Repro-Store": store} if store else {}
        return ClientResponse(status=status, body=None, headers=headers, error=error)

    state = _LoadState(["a"] * 9)
    for seconds in (0.001, 0.001, 0.002):
        state.record(seconds, _response(200, "hit"))
    for seconds in (0.05, 0.06):
        state.record(seconds, _response(200, "miss"))
    state.record(0.0, _response(504))
    state.record(0.0, _response(429))
    state.record(0.0, _response(-1, error="<urlopen error timed out>"))
    state.record(0.0, _response(-1, error="connection refused"))
    payload = bench_payload(state, server_stats=None, config={"x": 1})
    assert payload["requests"]["total"] == 5
    assert payload["requests"]["attempted"] == 9
    assert payload["requests"]["shed"] == 1
    assert payload["requests"]["errors"] == {
        "504": 1,
        "timeout": 1,
        "connection": 1,
    }
    assert payload["store_hit_rate"] == pytest.approx(3 / 5)
    assert payload["hit_speedup_p50"] > 10
    assert payload["client"]["hit"]["count"] == 3
    assert payload["client"]["miss"]["p50"] is not None
    assert state.accepted.count == 5


def test_wait_for_server_fails_fast_on_http_error():
    class _Unhealthy(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (http.server API)
            body = b'{"error": "store exploded"}'
            self.send_response(503)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):
            pass

    server = HTTPServer(("127.0.0.1", 0), _Unhealthy)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    started = time.monotonic()
    try:
        # HTTPError subclasses OSError; a naive except chain would poll
        # the unhealthy server for the full 30s instead of failing now.
        with pytest.raises(RuntimeError, match="503.*store exploded"):
            wait_for_server(f"http://{host}:{port}", timeout=30.0)
        assert time.monotonic() - started < 5.0
    finally:
        server.shutdown()
        server.server_close()
        thread.join(10.0)


def test_wait_for_server_times_out_when_nothing_listens():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    with pytest.raises(TimeoutError):
        wait_for_server(f"http://127.0.0.1:{port}", timeout=0.3)


# -- admission control ----------------------------------------------------


def test_admission_sheds_immediately_when_queue_full(instr):
    gate = Admission(max_inflight=1, max_queue=0, queue_timeout=0.25)
    with gate.admit("first"):
        assert gate.inflight() == 1
        started = time.monotonic()
        with pytest.raises(OverloadedError) as err:
            with gate.admit("second"):
                pass
        assert time.monotonic() - started < 0.2  # no queue, no wait
        assert err.value.retry_after == pytest.approx(0.25)
    assert instr.counters.get("serve.shed.queue_full") == 1
    assert gate.inflight() == 0
    with gate.admit("after-release"):  # the slot came back
        assert gate.inflight() == 1


def test_admission_queue_wait_times_out(instr):
    gate = Admission(max_inflight=1, max_queue=2, queue_timeout=0.05)
    with gate.admit():
        with pytest.raises(OverloadedError, match="slot wait"):
            with gate.admit():
                pass
    assert instr.counters.get("serve.shed.queue_timeout") == 1
    assert gate.depth() == 0


def test_admission_queued_caller_gets_released_slot(instr):
    gate = Admission(max_inflight=1, max_queue=1, queue_timeout=5.0)
    holding = threading.Event()

    def holder():
        with gate.admit():
            holding.set()
            time.sleep(0.1)

    thread = threading.Thread(target=holder)
    thread.start()
    assert holding.wait(5.0)
    with gate.admit():  # queues behind the holder, then runs
        assert gate.inflight() == 1
    thread.join(5.0)
    assert instr.counters.get("serve.shed.queue_timeout") == 0
    assert instr.counters.get("serve.shed.queue_full") == 0


def test_admission_validates_parameters():
    with pytest.raises(ValidationError):
        Admission(max_inflight=0)
    with pytest.raises(ValidationError):
        Admission(max_queue=-1)
    with pytest.raises(ValidationError):
        Admission(queue_timeout=0.0)


# -- circuit breaker ------------------------------------------------------


def _manual_clock():
    state = {"now": 0.0}
    return state, lambda: state["now"]


def test_breaker_lifecycle_closed_open_halfopen_closed(instr):
    clock_state, clock = _manual_clock()
    breaker = CircuitBreaker(
        "compute", window=4, min_failures=2, failure_rate=0.5,
        recovery_seconds=5.0, probe_budget=1, probe_successes=2, clock=clock,
    )
    assert breaker.acquire()
    breaker.success()
    assert breaker.acquire()
    breaker.failure()
    assert breaker.state == "closed"  # one failure is below min_failures
    assert breaker.acquire()
    breaker.failure()  # 2 failures / 3 outcomes -> open
    assert breaker.state == "open"
    assert instr.counters.get("serve.breaker.compute.opened") == 1
    assert not breaker.acquire()
    assert instr.counters.get("serve.breaker.compute.reject") == 1
    assert 0.0 < breaker.retry_after() <= 5.0

    clock_state["now"] = 5.0
    assert breaker.state == "half-open"
    assert instr.counters.get("serve.breaker.compute.half_open") == 1
    assert breaker.acquire()
    assert not breaker.acquire()  # probe budget of 1 is spent
    breaker.success()
    assert breaker.state == "half-open"  # needs probe_successes=2
    assert breaker.acquire()
    breaker.success()
    assert breaker.state == "closed"
    assert instr.counters.get("serve.breaker.compute.closed") == 1
    assert breaker.snapshot() == {
        "state": "closed",
        "window_failures": 0,
        "window_size": 0,
        "probes_inflight": 0,
    }


def test_breaker_halfopen_failure_reopens_and_cancel_is_neutral(instr):
    clock_state, clock = _manual_clock()
    breaker = CircuitBreaker(
        "store", window=4, min_failures=2, failure_rate=0.5,
        recovery_seconds=1.0, probe_budget=1, probe_successes=1, clock=clock,
    )
    breaker.failure()
    breaker.failure()
    assert breaker.state == "open"
    clock_state["now"] = 1.0
    assert breaker.state == "half-open"
    # cancel() returns the probe slot without recording an outcome.
    assert breaker.acquire()
    breaker.cancel()
    assert breaker.snapshot()["probes_inflight"] == 0
    assert breaker.state == "half-open"
    # A failed probe re-opens and restarts the recovery clock.
    assert breaker.acquire()
    breaker.failure()
    assert breaker.state == "open"
    assert instr.counters.get("serve.breaker.store.opened") == 2
    assert breaker.retry_after() == pytest.approx(1.0)


def test_breaker_needs_both_count_and_rate(instr):
    breaker = CircuitBreaker(
        "compute", window=8, min_failures=2, failure_rate=0.9
    )
    for _ in range(5):
        breaker.success()
    breaker.failure()
    breaker.failure()
    # 2 failures meets min_failures but 2/7 is far below the 0.9 rate.
    assert breaker.state == "closed"


def test_breaker_validates_parameters():
    for kwargs in (
        {"window": 0},
        {"min_failures": 0},
        {"failure_rate": 0.0},
        {"failure_rate": 1.5},
        {"recovery_seconds": 0.0},
        {"probe_budget": 0},
        {"probe_successes": 0},
    ):
        with pytest.raises(ValidationError):
            CircuitBreaker("x", **kwargs)


# -- resilient client -----------------------------------------------------


class _TopRng:
    """rng whose uniform() always returns the upper bound — makes the
    backoff ceiling directly observable."""

    def uniform(self, low, high):
        return high


def test_idempotency_key_is_canonical():
    key = idempotency_key({"b": 1, "a": 2})
    assert key == idempotency_key({"a": 2, "b": 1})
    assert len(key) == 64
    assert idempotency_key({"a": 2, "b": 2}) != key


def test_client_backoff_schedule_caps_and_honors_retry_after():
    client = ServeClient(
        "http://unused", backoff_base=0.1, backoff_cap=1.0, rng=_TopRng()
    )
    assert client._backoff(0, None) == pytest.approx(0.1)
    assert client._backoff(1, None) == pytest.approx(0.2)
    assert client._backoff(2, None) == pytest.approx(0.4)
    assert client._backoff(5, None) == pytest.approx(1.0)  # capped
    # Retry-After raises the ceiling to the server's ask...
    assert client._backoff(0, "0.5") == pytest.approx(0.5)
    # ...but never above the cap, and garbage hints are ignored.
    assert client._backoff(0, "30") == pytest.approx(1.0)
    assert client._backoff(0, "soon") == pytest.approx(0.1)
    assert client._backoff(0, "-2") == pytest.approx(0.1)


def test_client_retries_shed_and_transient_but_not_500():
    sleeps = []
    client = ServeClient(
        "http://unused", max_retries=3, backoff_base=0.01,
        backoff_cap=0.02, rng=_TopRng(), sleep=sleeps.append,
    )
    seen_headers = []
    outcomes = [
        ClientResponse(429, None, headers={"Retry-After": "0.015"}),
        ClientResponse(503, None),
        ClientResponse(200, {"ok": True}),
    ]

    def fake_attempt(path, body, headers):
        seen_headers.append(dict(headers))
        return outcomes.pop(0)

    client._attempt = fake_attempt
    response = client.post_json("/v1/reorder", {"matrix": "m"})
    assert response.ok
    assert (response.attempts, response.retries) == (3, 2)
    assert sleeps == [pytest.approx(0.015), pytest.approx(0.02)]
    assert response.retry_wait_seconds == pytest.approx(sum(sleeps))
    # Every attempt carried the same content-digest idempotency key.
    keys = {h["X-Repro-Idempotency-Key"] for h in seen_headers}
    assert keys == {idempotency_key({"matrix": "m"})}

    client._attempt = lambda *a: ClientResponse(500, None)
    response = client.post_json("/v1/reorder", {"matrix": "m"})
    assert (response.status, response.attempts) == (500, 1)  # no retry

    client._attempt = lambda *a: ClientResponse(-1, None, error="refused")
    response = client.post_json("/v1/reorder", {"matrix": "m"})
    assert (response.status, response.attempts) == (-1, 4)  # exhausted
    assert not response.ok


def test_client_validates_parameters():
    with pytest.raises(ValidationError):
        ServeClient("http://x", max_retries=-1)
    with pytest.raises(ValidationError):
        ServeClient("http://x", backoff_base=0.0)


# -- circuit breaking in the service pipeline -----------------------------


@pytest.fixture
def fragile_service(tmp_path, instr):
    """A service whose breakers trip after two failures and recover fast.

    The window is shrunk to 4 so a burst of failures reaches the rate
    threshold even when earlier healthy traffic sits in the window.
    """
    return ReorderService(
        ServeConfig(
            profile="test",
            store_dir=str(tmp_path / "store"),
            breaker_window=4,
            breaker_min_failures=2,
            breaker_recovery_seconds=0.2,
        )
    )


def _until(predicate, timeout=5.0, message="condition never became true"):
    stop = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < stop, message
        time.sleep(0.005)


def test_compute_breaker_opens_degrades_auto_and_recovers(
    fragile_service, instr, faults
):
    service = fragile_service
    _install_fault("serve.compute", action="raise", exception="runtime", times=2)
    for technique in ("degsort", "rcm"):
        with pytest.raises(RuntimeError, match="injected"):
            service.handle({"matrix": "test-comm", "technique": technique})
    assert instr.counters.get("serve.breaker.compute.opened") == 1
    assert service.breakers["compute"].state == "open"

    # An explicit technique cannot degrade: breaker-open surfaces (503).
    with pytest.raises(BreakerOpenError, match="compute breaker open"):
        service.handle({"matrix": "test-comm", "technique": "degsort"})

    # "auto" already holds a full predictor answer — serve it, marked.
    result = service.handle({"matrix": "test-comm", "technique": "auto"})
    assert (result.status, result.store) == (202, "degraded")
    assert result.payload["degraded"] is True
    assert result.payload["requested_technique"] == "auto"
    assert result.payload["model"]["predicted"] is True
    assert result.payload["model"]["modeled_seconds"] is not None
    assert result.payload["perm_key"] is None
    assert result.payload["permutation"] is None
    assert result.retry_after is not None and result.retry_after > 0
    assert instr.counters.get("serve.request.degrade") == 1
    # The degraded answer consumed no compute and queued nothing.
    assert instr.counters.get("serve.compute.eval") == 2  # the two failures

    # Recovery: after recovery_seconds the breaker admits probes; two
    # successes (probe_successes default) close it again.
    time.sleep(0.25)
    for technique in ("degsort", "rcm"):
        healthy = service.handle({"matrix": "test-comm", "technique": technique})
        assert healthy.status == 200
        assert healthy.payload["degraded"] is False
    assert instr.counters.get("serve.breaker.compute.half_open") == 1
    assert instr.counters.get("serve.breaker.compute.closed") == 1
    assert service.breakers["compute"].state == "closed"


def test_store_breaker_degrades_to_recompute(fragile_service, instr, faults):
    service = fragile_service
    request = {"matrix": "test-comm", "technique": "degsort"}
    assert service.handle(request).store == "miss"
    assert service.handle(request).store == "hit"

    # Two failing reads (outer lookup + in-flight re-check) trip the
    # store breaker; the request must still succeed by recomputing.
    _install_fault("serve.store.get", action="raise", exception="oserror", times=2)
    result = service.handle(request)
    assert (result.status, result.store) == (200, "miss")
    assert instr.counters.get("serve.breaker.store.opened") == 1
    assert instr.counters.get("serve.store.bypass") >= 2  # perm get + puts
    assert instr.counters.get("serve.compute.eval") == 2

    # Recovery: probes hit the (healthy, still-populated) store again.
    time.sleep(0.25)
    assert service.handle(request).store == "hit"
    assert service.handle(request).store == "hit"
    assert instr.counters.get("serve.breaker.store.closed") == 1
    assert service.breakers["store"].state == "closed"


def test_client_errors_inside_compute_do_not_trip_breaker(
    fragile_service, instr
):
    # spmm-csr-K parses fine but trace building rejects widths whose
    # gather is not a whole number of cache lines — a *client* error
    # surfacing inside the admitted compute.  A burst of those must not
    # open the compute breaker and 503 well-formed requests.
    service = fragile_service
    for width in (25, 26, 27):
        with pytest.raises(ValidationError, match="line size"):
            service.handle(
                {
                    "matrix": "test-comm",
                    "technique": "degsort",
                    "kernel": f"spmm-csr-{width}",
                }
            )
    assert service.breakers["compute"].state == "closed"
    assert instr.counters.get("serve.breaker.compute.opened") == 0
    healthy = service.handle({"matrix": "test-comm", "technique": "degsort"})
    assert (healthy.status, healthy.store) == (200, "miss")


def test_corrupt_put_quarantines_on_next_read(service, instr, faults):
    _install_fault(
        "serve.store.put", action="corrupt", mode="flip", match="eval:", times=1
    )
    request = {"matrix": "test-comm", "technique": "degsort"}
    assert service.handle(request).store == "miss"
    # The entry was damaged after the atomic write: the next read must
    # quarantine it and recompute — never crash, never serve garbage.
    assert service.handle(request).store == "miss"
    assert instr.counters.get("serve.compute.eval") == 2
    assert instr.counters.get("serve.compute.permutation") == 1  # perm survived
    assert service.store.stats()["quarantine"]["entries"] == 1
    # The recompute re-persisted a good entry.
    assert service.handle(request).store == "hit"


def test_stats_report_admission_breakers_and_errors(service):
    stats = service.stats()
    assert stats["admission"]["max_inflight"] == 4
    assert stats["admission"]["inflight"] == 0
    assert stats["admission"]["queued"] == 0
    assert set(stats["breakers"]) == {"compute", "store"}
    assert stats["breakers"]["compute"]["state"] == "closed"
    assert stats["errors_recorded"] == 0
    service.record_error("abc123", "/v1/reorder", "boom", "trace")
    assert service.stats()["errors_recorded"] == 1
    assert service.recent_errors()[0]["error_id"] == "abc123"


# -- store scan (doctor --store) ------------------------------------------


def test_store_scan_classifies_and_quarantines(tmp_path, instr):
    store = PermutationStore(str(tmp_path / "store"))
    store.put("perm", perm_key("d", "rcm", "auto"), {"permutation": [0]})
    victim = store.put(
        "eval", eval_key("d", "rcm", "auto", "spmv-csr", "lru", "p"), {"x": 1}
    )
    with open(victim, "r+b") as handle:
        handle.truncate(10)
    legacy_path = store.path("perm", perm_key("d2", "rcm", "auto"))
    os.makedirs(os.path.dirname(legacy_path), exist_ok=True)
    with open(legacy_path, "w", encoding="utf-8") as handle:
        json.dump({"permutation": [0]}, handle)  # pre-envelope format

    scan = store.scan()
    assert len(scan.ok) == 1 and scan.ok[0].startswith("perm/")
    assert len(scan.damaged) == 1 and scan.damaged[0][0].startswith("eval/")
    assert len(scan.legacy) == 1
    assert not scan.healthy
    assert os.path.exists(victim)  # read-only scan moved nothing

    store.scan(quarantine=True)
    assert not os.path.exists(victim)
    assert not os.path.exists(legacy_path)
    rescanned = store.scan()
    assert rescanned.healthy
    assert len(rescanned.ok) == 1
    assert len(rescanned.quarantined) == 2


# -- overload + chaos over a real socket ----------------------------------


def _make_endpoint(service):
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, thread, f"http://{host}:{port}"


def test_http_sheds_429_with_retry_after(tmp_path, instr, faults):
    service = ReorderService(
        ServeConfig(
            profile="test",
            store_dir=str(tmp_path / "store"),
            max_inflight=1,
            max_queue=0,
            queue_timeout=0.2,
        )
    )
    server, thread, base = _make_endpoint(service)
    try:
        _install_fault(
            "serve.compute", action="delay", seconds=1.0, match="degsort", times=1
        )
        results = []
        worker = threading.Thread(
            target=lambda: results.append(
                _post(base, {"matrix": "test-comm", "technique": "degsort"})
            )
        )
        worker.start()
        # Wait until the leader holds the only compute slot (the counter
        # ticks inside the admitted section, before the delay fault).
        _until(lambda: instr.counters.get("serve.compute.eval") >= 1)
        status, headers, body = _post(
            base, {"matrix": "test-comm", "technique": "rcm"}, timeout=10
        )
        assert status == 429
        assert headers["Retry-After"] == "1"  # ceil(queue_timeout)
        assert "queue full" in json.loads(body)["error"]
        assert instr.counters.get("serve.shed.queue_full") == 1
        worker.join(30.0)
        assert results and results[0][0] == 200  # admitted work completed
        # A shed 429 is not a 500: nothing was recorded as an error.
        assert service.recent_errors() == []
    finally:
        server.shutdown()
        server.server_close()
        thread.join(10.0)


def test_http_degraded_202_and_breaker_503_carry_retry_after(
    tmp_path, instr, faults
):
    service = ReorderService(
        ServeConfig(
            profile="test",
            store_dir=str(tmp_path / "store"),
            breaker_min_failures=2,
            breaker_recovery_seconds=60.0,
        )
    )
    server, thread, base = _make_endpoint(service)
    try:
        _install_fault("serve.compute", action="raise", exception="runtime", times=2)
        for technique in ("degsort", "rcm"):
            status, _, body = _post(
                base, {"matrix": "test-comm", "technique": technique}
            )
            assert status == 500
            assert json.loads(body)["error_id"]
        assert instr.counters.get("serve.breaker.compute.opened") == 1

        # Default technique is "auto": degraded 202, not an error.
        status, headers, body = _post(base, {"matrix": "test-comm"})
        assert status == 202
        parsed = json.loads(body)
        assert parsed["degraded"] is True
        assert parsed["recommendation"]["predicted"] is True
        assert headers["X-Repro-Store"] == "degraded"
        assert int(headers["Retry-After"]) >= 1

        # An explicit technique surfaces the open breaker as 503.
        status, headers, body = _post(
            base, {"matrix": "test-comm", "technique": "degsort"}
        )
        assert status == 503
        assert int(headers["Retry-After"]) >= 1
        assert "breaker open" in json.loads(body)["error"]
    finally:
        server.shutdown()
        server.server_close()
        thread.join(10.0)


def test_leader_failure_propagates_to_followers(endpoint, service, instr, faults):
    # The leader stalls (so followers can join its flight), then fails.
    _install_faults([
        {"site": "serve.compute", "action": "delay", "seconds": 0.5, "times": 1},
        {"site": "serve.compute", "action": "raise", "exception": "runtime",
         "times": 1},
    ])
    results = []
    barrier = threading.Barrier(3)

    def client():
        barrier.wait(5.0)
        results.append(
            _post(endpoint, {"matrix": "test-comm", "technique": "hubsort"})
        )

    threads = [threading.Thread(target=client) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30.0)
    assert not any(t.is_alive() for t in threads)  # no stuck waiters
    # Exactly one computation ran; its failure reached every caller.
    assert instr.counters.get("serve.compute.eval") == 1
    assert instr.counters.get("serve.coalesce.wait") >= 1
    assert [status for status, _, _ in results] == [500, 500, 500]
    for _, _, body in results:
        assert json.loads(body)["error_id"]
    # The failed flight persisted nothing.
    stats = service.store.stats()
    assert stats["eval"]["entries"] == 0
    assert stats["perm"]["entries"] == 0
    # The flight table is clean: the same key computes fine afterwards.
    status, headers, _ = _post(
        endpoint, {"matrix": "test-comm", "technique": "hubsort"}
    )
    assert (status, headers["X-Repro-Store"]) == (200, "miss")
    assert instr.counters.get("serve.compute.eval") == 2


def test_render_fault_maps_to_500_with_error_id(endpoint, service, instr, faults):
    _install_fault("serve.render", action="raise", exception="runtime", times=1)
    status, _, body = _post(endpoint, {"matrix": "test-comm", "technique": "degsort"})
    assert status == 500
    error_id = json.loads(body)["error_id"]
    assert error_id
    recorded = service.recent_errors()
    assert [entry["error_id"] for entry in recorded] == [error_id]
    assert recorded[0]["path"] == "/v1/reorder"
    assert "RuntimeError" in recorded[0]["error"]
    assert "Traceback" in recorded[0]["traceback"]
    assert instr.counters.get("serve.request.error.500") == 1
    # The response was lost after the work landed: next call is a hit.
    status, headers, _ = _post(endpoint, {"matrix": "test-comm", "technique": "degsort"})
    assert (status, headers["X-Repro-Store"]) == (200, "hit")


def test_drain_finishes_inflight_and_refuses_new_work(service, instr, faults):
    server, thread, base = _make_endpoint(service)
    try:
        with urllib.request.urlopen(base + "/ready", timeout=10) as response:
            assert json.loads(response.read()) == {
                "ready": True, "draining": False,
            }
        _install_fault("serve.compute", action="delay", seconds=1.0, times=1)
        results = []
        worker = threading.Thread(
            target=lambda: results.append(
                _post(base, {"matrix": "test-comm", "technique": "degsort"})
            )
        )
        worker.start()
        _until(lambda: server.active_requests() >= 1)

        drain_outcome = []
        drainer = threading.Thread(
            target=lambda: drain_outcome.append(server.drain(15.0))
        )
        drainer.start()
        _until(lambda: server.draining)

        # While draining: readiness flips, new service work is refused...
        try:
            urllib.request.urlopen(base + "/ready", timeout=10)
            ready_status = 200
        except urllib.error.HTTPError as exc:
            ready_status = exc.code
            assert json.loads(exc.read())["draining"] is True
        assert ready_status == 503
        status, headers, body = _post(
            base, {"matrix": "test-comm", "technique": "rcm"}, timeout=10
        )
        assert status == 503
        assert headers.get("Retry-After") == "1"
        assert "draining" in json.loads(body)["error"]
        # ...but liveness stays green: the process is alive, finishing.
        with urllib.request.urlopen(base + "/health", timeout=10) as response:
            assert json.loads(response.read()) == {"ok": True}

        worker.join(30.0)
        drainer.join(30.0)
        assert results and results[0][0] == 200  # in-flight ran to completion
        assert drain_outcome == [True]
        assert instr.counters.get("serve.drain.started") == 1
        assert instr.counters.get("serve.drain.clean") == 1
        assert instr.counters.get("serve.drain.timeout") == 0
    finally:
        server.shutdown()
        server.server_close()
        thread.join(10.0)
