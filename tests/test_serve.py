"""Serve-tier tests: store, coalescing, service pipeline, and the HTTP
endpoint over a real socket (coalescing counter-asserted, byte-identical
store hits, deadline 504s that don't kill the server)."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.errors import CorpusError, ValidationError
from repro.graphs.corpus import load_graph, load_matrix
from repro.graphs.io import write_matrix_market
from repro.obs import Instrumentation
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    install_injector,
    reset_faults,
)
from repro.serve.bench import bench_payload, zipf_trace
from repro.serve.coalesce import SingleFlight
from repro.serve.httpd import make_server, render_body
from repro.serve.service import ReorderService, ServeConfig
from repro.serve.store import (
    PermutationStore,
    eval_key,
    perm_key,
    structure_digest,
)


@pytest.fixture
def instr():
    """Enabled process-wide instrumentation (visible to server threads)."""
    instrumentation = Instrumentation(enabled=True)
    with obs.using(instrumentation):
        yield instrumentation


@pytest.fixture
def service(tmp_path, instr):
    return ReorderService(
        ServeConfig(profile="test", store_dir=str(tmp_path / "store"))
    )


@pytest.fixture
def faults():
    yield
    reset_faults()


def _install_fault(site: str, **rule) -> None:
    plan = FaultPlan.from_document([{"site": site, **rule}])
    install_injector(FaultInjector(plan))


# -- store ---------------------------------------------------------------


def test_structure_digest_ignores_values():
    csr = load_graph("test-comm").adjacency
    digest = structure_digest(csr)
    scaled = type(csr)(
        csr.n_rows, csr.n_cols, csr.row_offsets, csr.col_indices,
        csr.values * 3.0,
    )
    assert structure_digest(scaled) == digest
    other = load_graph("test-mesh").adjacency
    assert structure_digest(other) != digest


def test_keys_depend_on_every_component():
    keys = {
        perm_key("d1", "rcm", "auto"),
        perm_key("d2", "rcm", "auto"),
        perm_key("d1", "rabbit", "auto"),
        perm_key("d1", "rcm", "fast"),
        eval_key("d1", "rcm", "auto", "spmv-csr", "lru", "p"),
        eval_key("d1", "rcm", "auto", "spmv-csr", "belady", "p"),
        eval_key("d1", "rcm", "auto", "spmm-csr-4", "lru", "p"),
    }
    assert len(keys) == 7


def test_store_roundtrip_and_quarantine(tmp_path, instr):
    store = PermutationStore(str(tmp_path / "store"))
    key = perm_key("digest", "rcm", "auto")
    assert store.get("perm", key) is None
    path = store.put("perm", key, {"permutation": [0, 1, 2]})
    assert store.get("perm", key) == {"permutation": [0, 1, 2]}
    # Damage the entry: the read must miss and quarantine, not crash.
    with open(path, "r+b") as handle:
        handle.truncate(20)
    assert store.get("perm", key) is None
    assert store.stats()["quarantine"]["entries"] == 1
    with pytest.raises(ValueError):
        store.path("nope", key)


# -- coalescing ----------------------------------------------------------


def test_singleflight_coalesces_concurrent_callers(instr):
    flight = SingleFlight()
    calls = []
    release = threading.Event()
    started = threading.Barrier(4)
    results = []

    def compute():
        calls.append(1)
        release.wait(5.0)
        return "value"

    def worker():
        started.wait(5.0)
        results.append(flight.do("k", compute))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    # Hold the leader inside compute() until all three followers have
    # been classified (the wait counter ticks after the under-lock
    # leader/follower decision), so none can arrive late and lead a
    # fresh flight of its own.
    stop = time.monotonic() + 10.0
    while instr.counters.get("serve.coalesce.wait") < 3:
        assert time.monotonic() < stop, "followers never joined the flight"
        time.sleep(0.001)
    release.set()
    for t in threads:
        t.join(10.0)
    assert len(calls) == 1
    assert sorted(led for _, led in results) == [False, False, False, True]
    assert all(value == "value" for value, _ in results)
    assert flight.inflight() == 0


def test_singleflight_propagates_leader_error(instr):
    flight = SingleFlight()
    gate = threading.Event()
    errors = []

    def compute():
        gate.wait(5.0)
        raise RuntimeError("boom")

    def follower():
        try:
            flight.do("k", compute)
        except RuntimeError as exc:
            errors.append(str(exc))

    threads = [threading.Thread(target=follower) for _ in range(2)]
    threads[0].start()
    while flight.inflight() == 0:
        time.sleep(0.001)
    threads[1].start()
    gate.set()
    for t in threads:
        t.join(10.0)
    assert errors == ["boom", "boom"]
    # A later call starts a fresh flight (and fails on its own terms).
    with pytest.raises(RuntimeError):
        flight.do("k", compute)


def test_singleflight_sequential_calls_each_lead(instr):
    flight = SingleFlight()
    value, led = flight.do("k", lambda: 1)
    assert (value, led) == (1, True)
    value, led = flight.do("k", lambda: 2)
    assert (value, led) == (2, True)


# -- service pipeline ----------------------------------------------------


def test_handle_validates_requests(service):
    with pytest.raises(ValidationError):
        service.handle({})  # neither matrix nor mtx
    with pytest.raises(ValidationError):
        service.handle({"matrix": "test-comm", "mtx": "both"})
    with pytest.raises(ValidationError):
        service.handle({"matrix": "test-comm", "technique": "nope"})
    with pytest.raises(ValidationError):
        service.handle({"matrix": "test-comm", "kernel": "spmm-csr-0"})
    with pytest.raises(ValidationError):
        service.handle({"matrix": "test-comm", "policy": "mru"})
    with pytest.raises(ValidationError):
        service.handle({"matrix": "test-comm", "iterations": 0})
    with pytest.raises(ValidationError):
        service.handle({"matrix": "test-comm", "deadline_seconds": -1})
    with pytest.raises(CorpusError):
        service.handle({"matrix": "no-such-matrix"})


def test_miss_then_hit_byte_identical(service):
    request = {"matrix": "test-comm", "technique": "degsort"}
    first = service.handle(request)
    second = service.handle(request)
    assert first.store == "miss"
    assert second.store == "hit"
    assert render_body(first.payload) == render_body(second.payload)
    perm = first.payload["permutation"]
    n = first.payload["matrix"]["n_nodes"]
    assert sorted(perm) == list(range(n))


def test_upload_shares_store_entry_with_corpus_matrix(service, tmp_path):
    # Same structure => same content address: an .mtx upload of a corpus
    # matrix must *hit* the entry the named request created.
    named = service.handle({"matrix": "test-comm", "technique": "degsort"})
    path = tmp_path / "m.mtx"
    write_matrix_market(load_matrix("test-comm"), str(path))
    uploaded = service.handle(
        {"mtx": path.read_text(), "technique": "degsort"}
    )
    assert uploaded.store == "hit"
    assert uploaded.payload["matrix"]["digest"] == named.payload["matrix"]["digest"]
    assert uploaded.payload["permutation"] == named.payload["permutation"]


def test_auto_recommendation_is_predicted_and_amortization_framed(service, instr):
    result = service.handle(
        {"matrix": "test-comm", "technique": "auto", "iterations": 7}
    )
    rec = result.payload["recommendation"]
    assert rec["predicted"] is True
    assert rec["iterations"] == 7
    assert rec["baseline"]["technique"] == "original"
    assert [c["technique"] for c in rec["candidates"]] == list(
        service.config.candidates
    )
    for row in rec["candidates"]:
        expected = row["reorder_seconds"] + 7 * row["modeled_seconds"]
        assert row["total_seconds"] == pytest.approx(expected)
        assert row["speedup"] == pytest.approx(
            rec["baseline"]["modeled_seconds"] / row["modeled_seconds"]
        )
    # The chosen technique is the response's technique.
    assert result.payload["technique"] == rec["chosen"]
    if not rec["reorder_worth_it"]:
        assert rec["chosen"] == "original"
    else:
        best = min(c["total_seconds"] for c in rec["candidates"])
        chosen_row = next(
            c for c in rec["candidates"] if c["technique"] == rec["chosen"]
        )
        assert chosen_row["total_seconds"] <= best * 1.01
        assert best < rec["baseline"]["total_seconds"]
    # The prediction itself ran zero candidate reorderings: only the
    # chosen technique was evaluated after the choice.
    assert instr.counters.get("serve.compute.eval") <= 1
    assert instr.counters.get("serve.compute.permutation") <= 1


def test_handle_recommend_computes_nothing(service, instr):
    result = service.handle_recommend(
        {"matrix": "test-comm", "iterations": 50}
    )
    assert result.store == "predicted"
    body = result.payload
    assert body["v"] == 1
    assert body["technique"] == body["recommendation"]["chosen"]
    assert body["matrix"]["name"] == "test-comm"
    assert {c["technique"] for c in body["recommendation"]["candidates"]} == set(
        service.config.candidates
    )
    # The acceptance criterion: zero permutations, zero evaluations.
    assert instr.counters.get("serve.compute.eval") == 0
    assert instr.counters.get("serve.compute.permutation") == 0
    # A second call reuses the cached features and predictor.
    again = service.handle_recommend({"matrix": "test-comm", "iterations": 50})
    assert render_body(again.payload) == render_body(body)


def test_handle_recommend_validates(service):
    with pytest.raises(ValidationError):
        service.handle_recommend({})  # neither matrix nor mtx
    with pytest.raises(ValidationError, match="'policy'"):
        service.handle_recommend({"matrix": "test-comm", "policy": "lru"})
    with pytest.raises(ValidationError):
        service.handle_recommend({"matrix": "test-comm", "iterations": 0})
    with pytest.raises(CorpusError):
        service.handle_recommend({"matrix": "no-such"})


def test_unknown_request_key_names_the_key(service):
    with pytest.raises(ValidationError, match="'kernle'"):
        service.handle({"matrix": "test-comm", "kernle": "spmv-csr"})
    with pytest.raises(ValidationError, match="allowed keys"):
        service.handle({"matrix": "test-comm", "extra": 1})


def test_reorder_body_carries_wire_version(service):
    result = service.handle({"matrix": "test-comm", "technique": "degsort"})
    assert result.payload["v"] == 1
    assert result.payload["schema"] == 1


def test_compute_counters_tick_once_per_entry(service, instr):
    service.handle({"matrix": "test-comm", "technique": "degsort"})
    service.handle({"matrix": "test-comm", "technique": "degsort"})
    assert instr.counters.get("serve.compute.permutation") == 1
    assert instr.counters.get("serve.compute.eval") == 1
    assert instr.counters.get("serve.store.eval.hit") == 1


# -- HTTP over a real socket ---------------------------------------------


@pytest.fixture
def endpoint(service):
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(10.0)


def _post(base_url, payload, timeout=60.0):
    data = json.dumps(payload).encode() if isinstance(payload, dict) else payload
    request = urllib.request.Request(
        base_url + "/v1/reorder",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), exc.read()


def test_health_and_stats_endpoints(endpoint):
    with urllib.request.urlopen(endpoint + "/health", timeout=10) as response:
        assert json.loads(response.read()) == {"ok": True}
    _post(endpoint, {"matrix": "test-comm", "technique": "degsort"})
    with urllib.request.urlopen(endpoint + "/stats", timeout=10) as response:
        stats = json.loads(response.read())
    assert stats["service"]["store"]["perm"]["entries"] == 1
    assert stats["counters"]["serve.request.miss"] == 1
    assert stats["histograms"]["serve.request.miss"]["count"] == 1


def test_http_miss_then_hit_byte_identical(endpoint):
    request = {"matrix": "test-comm", "technique": "rcm"}
    status1, headers1, body1 = _post(endpoint, request)
    status2, headers2, body2 = _post(endpoint, request)
    assert (status1, status2) == (200, 200)
    assert headers1["X-Repro-Store"] == "miss"
    assert headers2["X-Repro-Store"] == "hit"
    assert body1 == body2  # bytes, not just JSON-equal
    assert float(headers2["X-Repro-Seconds"]) >= 0.0


def test_http_error_mapping(endpoint):
    status, _, body = _post(endpoint, b"{not json")
    assert status == 400
    assert "JSON" in json.loads(body)["error"]
    status, _, _ = _post(endpoint, {"matrix": "test-comm", "technique": "nope"})
    assert status == 400
    status, _, body = _post(endpoint, {"matrix": "no-such"})
    assert status == 404
    assert "no-such" in json.loads(body)["error"]
    request = urllib.request.Request(endpoint + "/nope", data=b"{}")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            status = response.status
    except urllib.error.HTTPError as exc:
        status = exc.code
    assert status == 404


def test_http_recommend_get_and_post(endpoint, instr):
    url = endpoint + "/v1/recommend?matrix=test-comm&iterations=25"
    with urllib.request.urlopen(url, timeout=60) as response:
        assert response.status == 200
        assert response.headers["X-Repro-Store"] == "predicted"
        via_get = json.loads(response.read())
    assert via_get["v"] == 1
    assert via_get["iterations"] == 25
    assert via_get["recommendation"]["predicted"] is True

    data = json.dumps({"matrix": "test-comm", "iterations": 25}).encode()
    request = urllib.request.Request(
        endpoint + "/v1/recommend",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        via_post = json.loads(response.read())
    assert via_post == via_get
    # Predicted end to end: no permutation or evaluation was computed.
    assert instr.counters.get("serve.compute.eval") == 0
    assert instr.counters.get("serve.compute.permutation") == 0


def test_http_recommend_rejects_unknown_key(endpoint):
    data = json.dumps({"matrix": "test-comm", "policy": "lru"}).encode()
    request = urllib.request.Request(
        endpoint + "/v1/recommend",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            status, body = response.status, response.read()
    except urllib.error.HTTPError as exc:
        status, body = exc.code, exc.read()
    assert status == 400
    assert "'policy'" in json.loads(body)["error"]


def test_http_coalesces_to_one_solver_invocation(endpoint, instr, faults):
    # Stall the (single) computation so concurrent identical requests
    # pile up behind the leader's flight instead of racing it.
    _install_fault("serve.compute", action="delay", seconds=0.5, times=1)
    results = []
    barrier = threading.Barrier(4)

    def client():
        barrier.wait(5.0)
        results.append(
            _post(endpoint, {"matrix": "test-comm", "technique": "hubsort"})
        )

    threads = [threading.Thread(target=client) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30.0)
    assert [status for status, _, _ in results] == [200] * 4
    # The coalescing proof: four concurrent requests, exactly one
    # reordering and one evaluation actually computed.
    assert instr.counters.get("serve.compute.permutation") == 1
    assert instr.counters.get("serve.compute.eval") == 1
    assert instr.counters.get("serve.coalesce.wait") >= 1
    bodies = {body for _, _, body in results}
    assert len(bodies) == 1  # every caller saw identical bytes


def test_http_deadline_returns_504_and_server_survives(endpoint, instr, faults):
    _install_fault("serve.compute", action="delay", seconds=0.6, times=1)
    status, _, body = _post(
        endpoint,
        {"matrix": "test-comm", "technique": "rcm", "deadline_seconds": 0.15},
    )
    assert status == 504
    assert "timeout" in json.loads(body)["error"]
    # Handler threads are not the main thread: enforcement must have
    # degraded to the cooperative path, observably.
    assert instr.counters.get("resilience.deadline_degraded") >= 1
    # The server is still alive and the entry is computable afterwards.
    status, headers, _ = _post(
        endpoint, {"matrix": "test-comm", "technique": "rcm"}
    )
    assert status == 200
    assert headers["X-Repro-Store"] in ("miss", "hit")


# -- bench helpers -------------------------------------------------------


def test_zipf_trace_is_deterministic_and_skewed():
    names = [f"m{i}" for i in range(6)]
    trace = zipf_trace(names, 400, skew=1.2, seed=7)
    assert trace == zipf_trace(names, 400, skew=1.2, seed=7)
    assert len(trace) == 400
    counts = {name: trace.count(name) for name in names}
    assert counts["m0"] > counts["m5"]  # rank 1 beats the tail
    with pytest.raises(ValidationError):
        zipf_trace([], 10)
    with pytest.raises(ValidationError):
        zipf_trace(names, 0)


def test_bench_payload_math():
    from repro.serve.bench import _LoadState

    state = _LoadState(["a"] * 6)
    for seconds in (0.001, 0.001, 0.002):
        state.record(seconds, 200, "hit")
    for seconds in (0.05, 0.06):
        state.record(seconds, 200, "miss")
    state.record(0.0, 504, None)
    payload = bench_payload(state, server_stats=None, config={"x": 1})
    assert payload["requests"]["total"] == 5
    assert payload["requests"]["errors"] == {"504": 1}
    assert payload["store_hit_rate"] == pytest.approx(3 / 5)
    assert payload["hit_speedup_p50"] > 10
    assert payload["client"]["hit"]["count"] == 3
    assert payload["client"]["miss"]["p50"] is not None
