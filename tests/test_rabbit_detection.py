"""Rabbit incremental-aggregation detector tests."""

import numpy as np
import pytest

from repro.community.louvain import louvain
from repro.community.modularity import modularity
from repro.community.rabbit import rabbit_communities
from repro.graphs.corpus import load_graph
from repro.graphs.generators import planted_partition, star_burst
from repro.graphs.graph import Graph
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix


class TestDetectionQuality:
    def test_two_triangles(self, two_triangles):
        result = rabbit_communities(two_triangles)
        assert result.assignment.n_communities == 2
        assert result.n_merges == 4

    def test_figure1_communities(self, figure1_graph, figure1_assignment):
        """Rabbit must never split a true community (it may merge the
        tiny 2-node community into a neighbor, as single-pass greedy
        aggregation legitimately does)."""
        result = rabbit_communities(figure1_graph)
        detected = result.assignment.labels
        truth = figure1_assignment.labels
        for community in np.unique(truth):
            members = np.flatnonzero(truth == community)
            assert np.unique(detected[members]).size == 1
        assert 2 <= result.assignment.n_communities <= 3

    def test_modularity_close_to_louvain(self):
        graph = load_graph("test-comm")
        q_rabbit = modularity(graph, rabbit_communities(graph).assignment)
        q_louvain = louvain(graph).modularity
        assert q_rabbit > 0.6 * q_louvain

    def test_planted_partition_purity(self):
        coo = planted_partition(256, 8, 12.0, mu=0.05, seed=2)
        graph = Graph(coo_to_csr(coo))
        labels = rabbit_communities(graph).assignment.labels
        truth = np.arange(256) % 8
        for community in np.unique(labels):
            members = np.flatnonzero(labels == community)
            dominant = np.bincount(truth[members]).max()
            assert dominant / members.size > 0.85

    def test_star_burst_gives_giant_communities(self):
        """The mawi corner case: detection terminates with communities
        covering most of the matrix (paper Section V-B)."""
        coo = star_burst(512, 4, leaf_links=1, seed=3)
        graph = Graph(coo_to_csr(coo))
        result = rabbit_communities(graph)
        sizes = result.assignment.sizes()
        assert sizes.max() > 0.25 * 512


class TestMechanics:
    def test_merge_count_consistency(self, two_triangles):
        result = rabbit_communities(two_triangles)
        assert (
            result.assignment.n_nodes - result.assignment.n_communities
            == result.n_merges
        )

    def test_dendrogram_matches_assignment(self):
        """Every dendrogram tree's leaves must be exactly one community."""
        graph = load_graph("test-social")
        result = rabbit_communities(graph)
        labels = result.assignment.labels
        order = result.dendrogram.dfs_leaf_order()
        # Walking the DFS order, the community label may only change
        # when crossing a tree boundary: k - 1 changes for k trees.
        changes = int(np.sum(labels[order][1:] != labels[order][:-1]))
        assert changes == result.assignment.n_communities - 1

    def test_deterministic(self):
        graph = load_graph("test-social")
        a = rabbit_communities(graph)
        b = rabbit_communities(graph)
        assert a.assignment == b.assignment
        assert np.array_equal(a.dendrogram.ordering(), b.dendrogram.ordering())

    def test_multi_pass_not_worse(self):
        graph = load_graph("test-social")
        q1 = modularity(graph, rabbit_communities(graph, n_passes=1).assignment)
        q3 = modularity(graph, rabbit_communities(graph, n_passes=3).assignment)
        assert q3 >= q1 - 1e-9


class TestEdgeCases:
    def test_empty_graph(self):
        graph = Graph(coo_to_csr(COOMatrix(0, 0, [], [])))
        result = rabbit_communities(graph)
        assert result.assignment.n_nodes == 0
        assert result.n_merges == 0

    def test_edgeless_graph_all_singletons(self):
        graph = Graph(coo_to_csr(COOMatrix(5, 5, [], [])))
        result = rabbit_communities(graph)
        assert result.assignment.n_communities == 5
        assert result.n_merges == 0

    def test_single_edge(self):
        graph = Graph(coo_to_csr(COOMatrix(2, 2, [0, 1], [1, 0])))
        result = rabbit_communities(graph)
        assert result.assignment.n_communities == 1

    def test_directed_input_is_symmetrized(self):
        directed = Graph(coo_to_csr(COOMatrix(3, 3, [0, 1], [1, 2])), directed=True)
        result = rabbit_communities(directed)
        assert result.assignment.n_communities >= 1
