"""Disk cache for large generated matrices."""

import os

import numpy as np
import pytest

from repro.errors import CacheIntegrityError
from repro.graphs.generators.powerlaw import rmat
from repro.graphs.graph import Graph
from repro.graphs.matrixcache import (
    GRAPH_META_FILENAME,
    build_rmat_cache,
    cached_rmat_graph,
    load_cached_graph,
    matrix_cache_root,
    rmat_cache_key,
)
from repro.sparse.memmap import is_memmap_backed

PARAMS = dict(scale=8, edge_factor=8, seed=5)


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


def entry_dir():
    return os.path.join(matrix_cache_root(), rmat_cache_key(**PARAMS))


class TestCachedRmatGraph:
    def test_small_scales_stay_in_ram(self, cache_env):
        graph = cached_rmat_graph(**PARAMS)  # default threshold is 14
        assert not is_memmap_backed(graph.adjacency)
        assert not os.path.exists(entry_dir())

    def test_cached_graph_matches_in_ram_build(self, cache_env):
        cached = cached_rmat_graph(**PARAMS, min_cache_scale=0)
        assert is_memmap_backed(cached.adjacency)
        reference = Graph.from_coo(rmat(**PARAMS), directed=True)
        assert np.array_equal(
            cached.adjacency.row_offsets, reference.adjacency.row_offsets
        )
        assert np.array_equal(
            cached.adjacency.col_indices, reference.adjacency.col_indices
        )
        assert np.array_equal(cached.adjacency.values, reference.adjacency.values)

    def test_undirected_view_preseeded_and_exact(self, cache_env):
        cached = cached_rmat_graph(**PARAMS, min_cache_scale=0)
        undirected = cached.to_undirected()
        assert is_memmap_backed(undirected.adjacency)
        assert undirected is cached.to_undirected()  # cached, no rebuild
        assert undirected.to_undirected() is undirected
        reference = Graph.from_coo(rmat(**PARAMS), directed=True).to_undirected()
        assert np.array_equal(
            undirected.adjacency.row_offsets, reference.adjacency.row_offsets
        )
        assert np.array_equal(
            undirected.adjacency.col_indices, reference.adjacency.col_indices
        )
        assert np.array_equal(undirected.adjacency.values, reference.adjacency.values)

    def test_second_load_is_a_hit(self, cache_env):
        cached_rmat_graph(**PARAMS, min_cache_scale=0)
        meta = os.path.join(entry_dir(), GRAPH_META_FILENAME)
        stamp = os.path.getmtime(meta)
        again = cached_rmat_graph(**PARAMS, min_cache_scale=0)
        assert os.path.getmtime(meta) == stamp  # not rebuilt
        assert again.n_nodes == 1 << PARAMS["scale"]

    def test_damaged_entry_quarantined_and_rebuilt(self, cache_env):
        first = cached_rmat_graph(**PARAMS, min_cache_scale=0)
        meta = os.path.join(entry_dir(), GRAPH_META_FILENAME)
        with open(meta, "a") as handle:
            handle.write("tail garbage")
        rebuilt = cached_rmat_graph(**PARAMS, min_cache_scale=0)
        assert np.array_equal(
            first.adjacency.col_indices, rebuilt.adjacency.col_indices
        )
        quarantine = cache_env / "quarantine"
        assert quarantine.is_dir() and any(quarantine.iterdir())

    def test_truncated_array_triggers_rebuild(self, cache_env):
        cached_rmat_graph(**PARAMS, min_cache_scale=0)
        victim = os.path.join(entry_dir(), "undirected", "col_indices.bin")
        with open(victim, "r+b") as handle:
            handle.truncate(os.path.getsize(victim) - 8)
        rebuilt = cached_rmat_graph(**PARAMS, min_cache_scale=0)
        assert rebuilt.to_undirected().adjacency.nnz > 0

    def test_distinct_parameters_distinct_entries(self, cache_env):
        cached_rmat_graph(**PARAMS, min_cache_scale=0)
        cached_rmat_graph(scale=8, edge_factor=8, seed=6, min_cache_scale=0)
        entries = os.listdir(matrix_cache_root())
        assert len(entries) == 2


class TestLoadCachedGraph:
    def test_absent_entry_raises_file_not_found(self, cache_env):
        with pytest.raises(FileNotFoundError):
            load_cached_graph(entry_dir())

    def test_parameter_mismatch_raises_integrity_error(self, cache_env):
        build_rmat_cache(entry_dir(), **PARAMS)
        with pytest.raises(CacheIntegrityError, match="does not match"):
            load_cached_graph(entry_dir(), expect={"seed": 999})

    def test_no_staging_left_behind(self, cache_env):
        build_rmat_cache(entry_dir(), **PARAMS)
        siblings = os.listdir(matrix_cache_root())
        assert siblings == [rmat_cache_key(**PARAMS)]
