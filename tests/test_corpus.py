"""Corpus registry and selection-process tests."""

import numpy as np
import pytest

from repro.errors import CorpusError, ValidationError
from repro.graphs.corpus import (
    CorpusEntry,
    MAX_NNZ,
    MIN_NODES,
    corpus_entries,
    corpus_names,
    get_entry,
    hash_name,
    load_graph,
    load_matrix,
    selection_report,
)


class TestRegistry:
    def test_profiles_are_disjoint_by_name(self):
        full = set(corpus_names("full"))
        bench = set(corpus_names("bench"))
        test = set(corpus_names("test"))
        assert not full & bench
        assert not full & test
        assert not bench & test

    def test_full_profile_is_broad(self):
        entries = corpus_entries("full")
        assert len(entries) >= 25
        categories = {entry.category for entry in entries}
        # The paper's corpus spans many source domains (Section III).
        assert len(categories) >= 8

    def test_test_profile_is_small(self):
        for entry in corpus_entries("test"):
            matrix = load_matrix(entry.name)
            assert matrix.n_rows <= 1024

    def test_unknown_profile(self):
        with pytest.raises(ValidationError):
            corpus_names("huge")

    def test_unknown_entry(self):
        with pytest.raises(CorpusError):
            get_entry("nope")

    def test_bad_publisher_order_rejected(self):
        with pytest.raises(ValidationError):
            CorpusEntry("x", "cat", lambda: None, publisher_order="mystery")

    def test_bad_profile_rejected(self):
        with pytest.raises(ValidationError):
            CorpusEntry("x", "cat", lambda: None, profiles=("huge",))


class TestLoading:
    def test_load_is_cached(self):
        assert load_matrix("test-mesh") is load_matrix("test-mesh")

    def test_load_deterministic_content(self):
        a = load_matrix("test-comm")
        entry = get_entry("test-comm")
        rebuilt = entry.builder()
        # Same structure modulo the (deterministic) scramble.
        assert a.nnz == rebuilt.nnz
        assert a.shape == rebuilt.shape

    def test_scrambled_differs_from_native(self):
        entry = get_entry("test-comm")
        assert entry.publisher_order == "scrambled"
        native = entry.builder()
        scrambled = load_matrix("test-comm")
        assert native != scrambled  # permutation applied

    def test_native_matches_builder(self):
        entry = get_entry("test-kmer")
        assert entry.publisher_order == "native"
        assert load_matrix("test-kmer") == entry.builder()

    def test_load_graph_directedness(self):
        assert load_graph("test-rmat").directed
        assert not load_graph("test-mesh").directed

    def test_hash_name_is_stable(self):
        # Guard against hash() randomization: must be process-independent.
        assert hash_name("soc-forum") == hash_name("soc-forum")
        assert hash_name("a") != hash_name("b")


class TestSelection:
    def test_all_test_entries_selected(self):
        records = selection_report("test")
        assert all(record.selected for record in records)

    def test_criteria_mirror_paper(self):
        """Every selected matrix's input vector exceeds the modeled L2."""
        from repro.gpu.specs import scaled_platform

        for profile in ("test", "bench"):
            platform = scaled_platform(profile)
            element_bytes = 4
            for record in selection_report(profile):
                if record.selected:
                    assert (
                        record.n_nodes * element_bytes >= platform.l2_capacity_bytes
                    ), record.name
                    assert record.nnz <= MAX_NNZ[profile]

    def test_records_expose_reason_when_rejected(self):
        records = selection_report("test")
        for record in records:
            if not record.selected:
                assert record.reason

    def test_min_nodes_footprint_rule(self):
        # The constant itself must encode "input vector bigger than L2".
        from repro.gpu.specs import scaled_platform

        for profile, min_nodes in MIN_NODES.items():
            platform = scaled_platform(profile)
            assert min_nodes * 4 >= platform.l2_capacity_bytes
