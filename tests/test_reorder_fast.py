"""Differential suite: vectorized reordering engines vs the reference.

Every technique with a fast path must produce **bit-identical**
permutations to the reference implementation on every graph — that is
the dispatch contract (:mod:`repro.reorder.dispatch`) that lets
``impl="auto"`` swap engines without perturbing any downstream
artifact.  The suite crosses the fast-path techniques with seeded
corpus generators and structural edge cases, checks the community
detectors underneath them, and pins the dispatch plumbing itself
(env override, validation, auto thresholds, cached transpose,
executor config round-trip).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.community.louvain import louvain
from repro.community.rabbit import rabbit_communities
from repro.errors import ValidationError
from repro.graphs.generators.community import dcsbm, star_burst
from repro.graphs.generators.powerlaw import rmat
from repro.graphs.generators.random_graphs import erdos_renyi
from repro.graphs.graph import Graph
from repro.reorder.dispatch import (
    AUTO_MIN_EDGES,
    AUTO_MIN_NODES,
    IMPL_ENV_VAR,
    choose_impl,
    resolve_for_graph,
    resolve_impl,
)
from repro.reorder.registry import make_technique
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.coo import COOMatrix
from repro.sparse.ops import transpose

FAST_TECHNIQUES = ("rabbit", "rabbit++", "louvain", "rcm", "gorder")


def _graph_from_coo(coo: COOMatrix, directed: bool = True) -> Graph:
    return Graph.from_coo(coo, directed=directed)


def _empty_graph() -> Graph:
    return _graph_from_coo(COOMatrix(0, 0, [], [], []))


def _single_node() -> Graph:
    return _graph_from_coo(COOMatrix(1, 1, [], [], []))


def _disconnected() -> Graph:
    """Three components: a triangle, an edge, and isolated nodes."""
    edges = [(0, 1), (1, 2), (0, 2), (4, 5)]
    rows = [u for u, v in edges] + [v for u, v in edges]
    cols = [v for u, v in edges] + [u for u, v in edges]
    return _graph_from_coo(COOMatrix(8, 8, rows, cols), directed=False)


GRAPHS = {
    "rmat10": lambda: _graph_from_coo(rmat(10, 8, seed=7)),
    "rmat9-dense": lambda: _graph_from_coo(rmat(9, 24, seed=11)),
    "dcsbm": lambda: _graph_from_coo(dcsbm(512, 8, 12.0, 0.15, seed=3)),
    "dcsbm-hubs": lambda: _graph_from_coo(
        dcsbm(384, 6, 10.0, 0.3, theta_exponent=0.9, seed=5)
    ),
    "erdos": lambda: _graph_from_coo(erdos_renyi(400, 9.0, seed=2)),
    "star-burst": lambda: _graph_from_coo(star_burst(300, 6, seed=4)),
    "empty": _empty_graph,
    "single": _single_node,
    "disconnected": _disconnected,
}


@pytest.fixture(scope="module")
def graphs():
    return {name: build() for name, build in GRAPHS.items()}


class TestTechniqueDifferential:
    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    @pytest.mark.parametrize("technique", FAST_TECHNIQUES)
    def test_identical_permutations(self, graphs, technique, graph_name):
        graph = graphs[graph_name]
        reference = make_technique(technique, impl="reference").compute(graph)
        fast = make_technique(technique, impl="fast").compute(graph)
        assert fast.dtype == reference.dtype
        assert np.array_equal(fast, reference)

    @pytest.mark.parametrize("technique", FAST_TECHNIQUES)
    def test_auto_matches_reference(self, graphs, technique):
        graph = graphs["rmat10"]
        reference = make_technique(technique, impl="reference").compute(graph)
        auto = make_technique(technique, impl="auto").compute(graph)
        assert np.array_equal(auto, reference)

    def test_identical_cache_stats_downstream(self, graphs):
        """Same permutation => byte-identical simulated cache stats."""
        from repro.cache.config import CacheConfig
        from repro.cache.dispatch import simulate
        from repro.sparse.permute import permute_symmetric
        from repro.trace.kernel_traces import spmv_csr_trace

        graph = graphs["dcsbm"].to_undirected()
        config = CacheConfig(capacity_bytes=16 * 1024, line_bytes=64, ways=8)
        stats = {}
        for impl in ("reference", "fast"):
            perm = make_technique("rabbit", impl=impl).compute(graph)
            permuted = permute_symmetric(graph.adjacency, perm)
            stats[impl] = simulate(spmv_csr_trace(permuted), config)
        assert stats["reference"] == stats["fast"]


class TestDetectorDifferential:
    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    def test_rabbit_detection(self, graphs, graph_name):
        graph = graphs[graph_name]
        ref = rabbit_communities(graph, impl="reference")
        fast = rabbit_communities(graph, impl="fast")
        assert np.array_equal(ref.assignment.labels, fast.assignment.labels)
        assert ref.n_merges == fast.n_merges
        assert np.array_equal(ref.dendrogram.ordering(), fast.dendrogram.ordering())

    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    def test_louvain_detection(self, graphs, graph_name):
        graph = graphs[graph_name]
        ref = louvain(graph, impl="reference")
        fast = louvain(graph, impl="fast")
        assert np.array_equal(ref.assignment.labels, fast.assignment.labels)
        assert ref.level_modularities == fast.level_modularities
        assert ref.modularity == fast.modularity


class TestDispatch:
    def test_resolve_impl_validates(self):
        assert resolve_impl("fast") == "fast"
        assert resolve_impl(None) == "auto"
        with pytest.raises(ValidationError, match="impl"):
            resolve_impl("fastest")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(IMPL_ENV_VAR, "reference")
        assert resolve_impl(None) == "reference"
        assert resolve_for_graph(None, 10**6, 10**7) == "reference"
        # Explicit argument beats the environment.
        assert resolve_impl("fast") == "fast"
        monkeypatch.setenv(IMPL_ENV_VAR, "bogus")
        with pytest.raises(ValidationError):
            resolve_impl(None)

    def test_auto_thresholds(self):
        assert choose_impl(AUTO_MIN_NODES, 0) == "fast"
        assert choose_impl(0, AUTO_MIN_EDGES) == "fast"
        assert choose_impl(AUTO_MIN_NODES - 1, AUTO_MIN_EDGES - 1) == "reference"

    def test_make_technique_rejects_bad_impl(self):
        with pytest.raises(ValidationError, match="impl"):
            make_technique("rabbit", impl="vectorised")

    def test_make_technique_sets_impl(self):
        assert make_technique("rabbit", impl="fast").impl == "fast"
        assert make_technique("rabbit").impl is None

    def test_env_steers_whole_run(self, graphs, monkeypatch):
        """A tiny graph defaults to the reference; the env var can force
        the fast engine anyway, and the output must not change."""
        graph = graphs["disconnected"]
        assert resolve_for_graph(None, graph.n_nodes, graph.n_edges) == "reference"
        default = make_technique("rcm").compute(graph)
        monkeypatch.setenv(IMPL_ENV_VAR, "fast")
        forced = make_technique("rcm").compute(graph)
        assert np.array_equal(default, forced)


class TestInAdjacencyCache:
    def test_matches_explicit_transpose(self, graphs):
        graph = graphs["rmat10"]
        expected = coo_to_csr(transpose(csr_to_coo(graph.adjacency)))
        got = graph.in_adjacency
        assert np.array_equal(got.row_offsets, expected.row_offsets)
        assert np.array_equal(got.col_indices, expected.col_indices)
        assert np.array_equal(got.values, expected.values)

    def test_cached_object_identity(self, graphs):
        graph = graphs["erdos"]
        assert graph.in_adjacency is graph.in_adjacency


class TestExecutorConfigRoundTrip:
    def test_runner_config_carries_impl(self, tmp_path):
        from repro.experiments.runner import ExperimentRunner
        from repro.parallel.executor import RunnerConfig

        runner = ExperimentRunner(
            profile="test", cache_dir=str(tmp_path), reorder_impl="reference"
        )
        config = RunnerConfig.from_runner(runner)
        assert config.reorder_impl == "reference"
        assert config.make_runner().reorder_impl == "reference"
