"""Graph view semantics."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.graphs.graph import Graph
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix


def directed_graph():
    # 0->1, 0->2, 1->2, 2->2 (self loop)
    coo = COOMatrix(3, 3, [0, 0, 1, 2], [1, 2, 2, 2])
    return Graph(coo_to_csr(coo), directed=True)


class TestBasics:
    def test_counts(self, two_triangles):
        assert two_triangles.n_nodes == 6
        assert two_triangles.n_edges == 14  # 7 undirected edges stored twice

    def test_average_degree(self, two_triangles):
        assert two_triangles.average_degree() == pytest.approx(14 / 6)

    def test_neighbors(self, two_triangles):
        assert set(two_triangles.neighbors(2).tolist()) == {0, 1, 3}

    def test_rejects_rectangular(self):
        rect = coo_to_csr(COOMatrix(2, 3, [0], [2]))
        with pytest.raises(ShapeError):
            Graph(rect)

    def test_degrees_directed(self):
        graph = directed_graph()
        assert np.array_equal(graph.out_degrees(), [2, 1, 1])
        assert np.array_equal(graph.in_degrees(), [0, 1, 3])
        assert np.array_equal(graph.degrees(), [2, 2, 4])

    def test_degrees_undirected_equal_out(self, path_graph):
        assert np.array_equal(path_graph.degrees(), path_graph.out_degrees())


class TestUndirectedView:
    def test_undirected_graph_validates(self, two_triangles):
        assert two_triangles.validate_undirected()

    def test_directed_graph_does_not_validate(self):
        assert not directed_graph().validate_undirected()

    def test_to_undirected_symmetrizes(self):
        undirected = directed_graph().to_undirected()
        assert undirected.validate_undirected()
        assert not undirected.directed

    def test_to_undirected_drops_self_loops(self):
        undirected = directed_graph().to_undirected()
        for node in range(undirected.n_nodes):
            assert node not in undirected.neighbors(node)

    def test_to_undirected_is_cached(self, two_triangles):
        assert two_triangles.to_undirected() is two_triangles.to_undirected()

    def test_repr(self, two_triangles):
        assert "undirected" in repr(two_triangles)
        assert "directed" in repr(directed_graph())
