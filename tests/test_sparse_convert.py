"""Round-trip and ordering semantics of COO <-> CSR conversion."""

import numpy as np
import pytest

from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.coo import COOMatrix


class TestCooToCsr:
    def test_dense_equivalence(self, small_coo):
        assert np.array_equal(coo_to_csr(small_coo).to_dense(), small_coo.to_dense())

    def test_sorted_within_rows_by_default(self):
        coo = COOMatrix(2, 4, [0, 0, 0], [3, 0, 2])
        csr = coo_to_csr(coo)
        assert np.array_equal(csr.col_indices, [0, 2, 3])

    def test_unsorted_preserves_coo_order(self):
        coo = COOMatrix(2, 4, [0, 0, 0], [3, 0, 2])
        csr = coo_to_csr(coo, sort_within_rows=False)
        assert np.array_equal(csr.col_indices, [3, 0, 2])

    def test_rows_grouped_even_if_coo_shuffled(self):
        coo = COOMatrix(3, 3, [2, 0, 2, 1], [0, 1, 2, 2], [1.0, 2.0, 3.0, 4.0])
        csr = coo_to_csr(coo)
        assert np.array_equal(csr.row_offsets, [0, 1, 2, 4])
        assert np.array_equal(csr.row_slice(2), [0, 2])

    def test_empty_rows(self):
        coo = COOMatrix(4, 4, [3], [3])
        csr = coo_to_csr(coo)
        assert np.array_equal(csr.row_offsets, [0, 0, 0, 0, 1])

    def test_duplicates_preserved(self):
        coo = COOMatrix(1, 2, [0, 0], [1, 1], [2.0, 3.0])
        csr = coo_to_csr(coo)
        assert csr.nnz == 2
        assert csr.to_dense()[0, 1] == pytest.approx(5.0)

    def test_empty_matrix(self):
        csr = coo_to_csr(COOMatrix(0, 0, [], []))
        assert csr.nnz == 0


class TestRoundTrip:
    def test_coo_csr_coo(self, small_coo):
        back = csr_to_coo(coo_to_csr(small_coo))
        assert back == small_coo

    def test_csr_to_coo_preserves_in_row_order(self):
        coo = COOMatrix(1, 4, [0, 0, 0], [3, 0, 2])
        csr = coo_to_csr(coo, sort_within_rows=False)
        back = csr_to_coo(csr)
        assert np.array_equal(back.cols, [3, 0, 2])

    def test_rectangular_roundtrip(self):
        coo = COOMatrix(2, 5, [0, 1, 1], [4, 0, 3])
        assert csr_to_coo(coo_to_csr(coo)) == coo
