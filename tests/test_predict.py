"""Effectiveness predictor: features, model math, the calibration lock
(Spearman >= 0.8 against the simulator), and pretrained coefficients."""

from __future__ import annotations

import numpy as np
import pytest

from repro import recommend
from repro.errors import ValidationError
from repro.experiments.runner import ExperimentRunner
from repro.gpu.specs import scaled_platform
from repro.graphs.corpus import load_graph
from repro.predict import (
    FEATURE_NAMES,
    TrafficPredictor,
    analytic_compulsory_bytes,
    build_dataset,
    feature_vector,
    fit_and_validate,
    load_pretrained,
    pretrained_pairs,
    spearman,
    structural_features,
)
from repro.predict.validate import DEFAULT_MIN_SPEARMAN
from repro.trace.kernelspec import KernelSpec


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    return ExperimentRunner(
        "test", cache_dir=str(tmp_path_factory.mktemp("memo"))
    )


class TestSpearman:
    def test_perfect_and_inverted(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_ties_are_averaged(self):
        rho = spearman([1, 1, 2, 3], [1, 2, 3, 4])
        assert -1.0 <= rho <= 1.0
        assert rho == pytest.approx(spearman([1, 1, 2, 3], [2, 1, 3, 4]))

    def test_validation(self):
        with pytest.raises(ValidationError):
            spearman([1], [2])
        with pytest.raises(ValidationError):
            spearman([1, 2], [1, 2, 3])

    def test_constant_input_is_zero(self):
        assert spearman([5, 5, 5], [1, 2, 3]) == 0.0


class TestFeatures:
    def test_feature_dict_is_complete_and_finite(self):
        graph = load_graph("test-comm")
        features = structural_features(graph, scaled_platform("test"))
        assert set(features) == set(FEATURE_NAMES)
        vec = feature_vector(features)
        assert vec.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(vec))

    def test_feature_vector_rejects_missing_keys(self):
        with pytest.raises(ValidationError, match="log_nodes"):
            feature_vector({})

    def test_analytic_compulsory_matches_trace(self):
        csr = load_graph("test-mesh").adjacency
        for kernel in ("spmv-csr", "spmv-coo", "spmm-csr-4", "spgemm-csr"):
            trace = KernelSpec.parse(kernel).build_trace(csr, line_bytes=32)
            assert (
                analytic_compulsory_bytes(csr, kernel)
                == trace.analytic_compulsory_bytes
            ), kernel


class TestCalibrationLock:
    """The ISSUE 8 acceptance gate, locked in-tree."""

    def test_spearman_floor_spmv(self, runner):
        predictor, result = fit_and_validate(runner=runner, kernel="spmv-csr")
        assert result.n_matrices >= 2
        assert result.spearman_fit >= DEFAULT_MIN_SPEARMAN
        assert result.passed
        assert set(predictor.techniques) == set(result.per_technique)

    def test_spearman_floor_spgemm(self, runner):
        _, result = fit_and_validate(runner=runner, kernel="spgemm-csr")
        assert result.spearman_fit >= DEFAULT_MIN_SPEARMAN

    def test_validation_payload(self, runner):
        _, result = fit_and_validate(runner=runner, kernel="spmv-csr")
        payload = result.to_json()
        assert payload["passed"] is True
        assert payload["kernel"] == "spmv-csr"
        assert -1.0 <= payload["spearman_loo"] <= 1.0


class TestModelSerialization:
    def test_json_roundtrip_preserves_predictions(self, runner):
        dataset = build_dataset(runner, kernel="spmv-csr")
        predictor = TrafficPredictor.fit(dataset)
        clone = TrafficPredictor.from_json(predictor.to_json())
        features = dataset.rows[0]["features"]
        for technique in predictor.techniques:
            a = predictor.predict_cell(features, technique)
            b = clone.predict_cell(features, technique)
            assert a == pytest.approx(b)
        assert clone.predict_baseline_norm_runtime(features) == pytest.approx(
            predictor.predict_baseline_norm_runtime(features)
        )

    def test_from_json_rejects_wrong_schema_and_layout(self, runner):
        dataset = build_dataset(runner, kernel="spmv-csr")
        payload = TrafficPredictor.fit(dataset).to_json()
        bad_schema = dict(payload, schema=99)
        with pytest.raises(ValidationError):
            TrafficPredictor.from_json(bad_schema)
        bad_layout = dict(payload, feature_names=["nope"])
        with pytest.raises(ValidationError):
            TrafficPredictor.from_json(bad_layout)

    def test_unknown_technique_raises(self, runner):
        dataset = build_dataset(runner, kernel="spmv-csr")
        predictor = TrafficPredictor.fit(dataset)
        with pytest.raises(ValidationError):
            predictor.predict_cell(dataset.rows[0]["features"], "gorder")


class TestPretrained:
    def test_committed_pairs_load(self):
        pairs = pretrained_pairs()
        assert ("test", "spmv-csr") in pairs
        for profile, kernel in pairs:
            predictor = load_pretrained(profile, kernel)
            assert predictor is not None
            assert predictor.kernel == kernel
        assert load_pretrained("test", "no-such-kernel") is None

    def test_pretrained_predictions_are_sane(self):
        predictor = load_pretrained("test", "spmv-csr")
        features = structural_features(
            load_graph("test-comm"), scaled_platform("test")
        )
        cell = predictor.predict_cell(features, "rabbit")
        assert cell["runtime_ratio"] > 0
        assert cell["reorder_seconds"] > 0
        assert -1.0 <= cell["traffic_reduction"] <= 1.0


class TestRecommendFacade:
    def test_recommend_runs_zero_reorderings(self):
        graph = load_graph("test-rmat")
        rec = recommend(graph, kernel="spmv-csr", profile="test", iterations=10)
        assert rec.kernel == "spmv-csr"
        assert rec.baseline_seconds > 0
        assert {row["technique"] for row in rec.candidates} == set(
            load_pretrained("test", "spmv-csr").techniques
        )
        if rec.reorder_worth_it:
            assert rec.best is not None
        else:
            assert rec.chosen == "original"
        payload = rec.to_json()
        assert payload["predicted"] is True
        assert payload["chosen"] == rec.chosen

    def test_horizon_monotonicity(self):
        # A longer horizon can only make reordering more attractive.
        graph = load_graph("test-rmat")
        short = recommend(graph, profile="test", iterations=2)
        long = recommend(graph, profile="test", iterations=10_000_000)
        if short.reorder_worth_it:
            assert long.reorder_worth_it
