"""SpGEMM (Gustavson CSR x CSR) workload: structure vs scipy, trace
invariants, the cluster-wise schedule win, and pipeline integration."""

from __future__ import annotations

import numpy as np
import pytest

scipy_sparse = pytest.importorskip("scipy.sparse")

from repro import evaluate_ordering, load_graph
from repro.cache import simulate
from repro.errors import ValidationError
from repro.experiments import spgemm
from repro.experiments.runner import ExperimentRunner
from repro.gpu.specs import scaled_platform
from repro.graphs.corpus import corpus_names
from repro.sparse.csr import CSRMatrix
from repro.trace.kernel_traces import (
    SPGEMM_IRREGULAR_REGIONS,
    spgemm_csr_structure,
    spgemm_csr_trace,
)
from repro.trace.kernelspec import KernelSpec


def to_scipy(csr: CSRMatrix):
    return scipy_sparse.csr_matrix(
        (np.ones(csr.nnz), csr.col_indices, csr.row_offsets),
        shape=(csr.n_rows, csr.n_cols),
    )


def random_square(n: int, density: float, seed: int) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density).astype(np.float64)
    sp = scipy_sparse.csr_matrix(dense)
    return CSRMatrix(n, n, sp.indptr, sp.indices, sp.data)


def assert_structure_matches_scipy(csr: CSRMatrix) -> None:
    c_row_nnz, flops = spgemm_csr_structure(csr)
    reference = to_scipy(csr) @ to_scipy(csr)
    reference.eliminate_zeros()
    assert np.array_equal(c_row_nnz, np.diff(reference.indptr))
    # Gustavson flops: one multiply-add per (a_ij, b_jk) pair.
    degrees = np.diff(csr.row_offsets)
    assert flops == int(degrees[csr.col_indices].sum())


class TestStructureDifferential:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_matrices(self, seed):
        csr = random_square(40 + 7 * seed, 0.02 + 0.03 * (seed % 3), seed)
        assert_structure_matches_scipy(csr)

    @pytest.mark.parametrize("name", corpus_names("test"))
    def test_corpus(self, name):
        assert_structure_matches_scipy(load_graph(name).adjacency)

    def test_adversarial_shapes(self):
        empty = CSRMatrix(3, 3, [0, 0, 0, 0], [], [])
        c_row_nnz, flops = spgemm_csr_structure(empty)
        assert flops == 0 and c_row_nnz.sum() == 0

        self_loop = CSRMatrix(1, 1, [0, 1], [0], [1.0])
        c_row_nnz, flops = spgemm_csr_structure(self_loop)
        assert flops == 1 and list(c_row_nnz) == [1]

        # One dense row referencing every column, others empty.
        n = 16
        dense_row = CSRMatrix(
            n, n, [0, n] + [n] * (n - 1), list(range(n)), [1.0] * n
        )
        assert_structure_matches_scipy(dense_row)

    def test_rejects_non_square(self):
        rect = CSRMatrix(2, 3, [0, 1, 2], [0, 2], [1.0, 1.0])
        with pytest.raises(ValidationError):
            spgemm_csr_structure(rect)
        with pytest.raises(ValidationError):
            spgemm_csr_trace(rect)


class TestTrace:
    def test_trace_is_deterministic_per_schedule(self):
        csr = load_graph("test-comm").adjacency
        for schedule in ("sequential", "interleaved", "clustered"):
            a = spgemm_csr_trace(csr, schedule=schedule)
            b = spgemm_csr_trace(csr, schedule=schedule)
            assert np.array_equal(a.lines, b.lines)
            assert a.schedule == schedule

    def test_trace_counts_and_regions(self):
        csr = load_graph("test-mesh").adjacency
        trace = spgemm_csr_trace(csr)
        c_row_nnz, flops = spgemm_csr_structure(csr)
        n, nnz, nnz_c = csr.n_rows, csr.nnz, int(c_row_nnz.sum())
        # Per row: one a_row_offsets and one c_row_offsets access; per A
        # entry: coords + values + b_row_offsets gather; per flop: the
        # b_coords/b_values pair; per C entry: coords + values.
        expected = 2 * n + 3 * nnz + 2 * flops + 2 * nnz_c
        assert trace.lines.size == expected
        assert trace.n_irregular == nnz + 2 * flops
        assert trace.irregular_regions == SPGEMM_IRREGULAR_REGIONS
        assert trace.analytic_compulsory_bytes == (
            3 * (n + 1) + 4 * nnz + 2 * nnz_c
        ) * 4
        region_names = [name for name, _, _ in trace.regions]
        assert "b_coords" in region_names and "c_values" in region_names

    def test_schedules_share_the_compulsory_footprint(self):
        # Schedules reorder the walk (and may collapse more trivially
        # consecutive hits) but touch the same distinct lines.
        csr = load_graph("test-rmat").adjacency
        seq = spgemm_csr_trace(csr, schedule="sequential")
        clu = spgemm_csr_trace(csr, schedule="clustered")
        assert np.array_equal(np.unique(seq.lines), np.unique(clu.lines))
        assert seq.analytic_compulsory_bytes == clu.analytic_compulsory_bytes

    def test_clustered_schedule_reduces_misses(self):
        # The arXiv 2507.21253 effect: sorting a cluster's A entries by
        # column makes repeated B-row walks coalesce in cache.
        csr = load_graph("test-rmat").adjacency
        config = scaled_platform("test").cache_config()
        seq = simulate(spgemm_csr_trace(csr, schedule="sequential"), config)
        clu = simulate(spgemm_csr_trace(csr, schedule="clustered"), config)
        assert clu.misses < seq.misses


class TestPipeline:
    def test_evaluate_ordering_rides_spgemm(self):
        graph = load_graph("test-comm")
        platform = scaled_platform("test")
        run = evaluate_ordering(graph, kernel="spgemm-csr", platform=platform)
        assert run.kernel == "spgemm-csr"
        assert run.normalized_traffic >= 1.0

    def test_kernelspec_builds_spgemm(self):
        spec = KernelSpec.parse("spgemm-csr")
        csr = load_graph("test-mesh").adjacency
        trace = spec.build_trace(csr, line_bytes=32, schedule="clustered")
        assert trace.kernel == "spgemm-csr"
        assert trace.schedule == "clustered"

    def test_runner_and_sweep_driver(self, tmp_path):
        runner = ExperimentRunner("test", cache_dir=str(tmp_path))
        record = runner.run("test-comm", "rabbit", kernel="spgemm-csr")
        assert record.kernel == "spgemm-csr"
        report = spgemm.run(
            runner=runner,
            matrices=["test-comm", "test-rmat"],
            techniques=("original", "rabbit"),
        )
        assert report.experiment == "spgemm-sweep"
        assert "mean_clustered_gain_original" in report.summary
        assert report.summary["mean_clustered_gain_original"] >= 1.0
        assert report.to_text()

    def test_bench_workload_selects_spgemm_graph(self):
        from repro.cache.benchsim import SPGEMM_SMOKE_GRAPH, build_bench_workload

        trace, config = build_bench_workload(smoke=True, kernel="spgemm-csr")
        assert trace.kernel == "spgemm-csr"
        assert trace.lines.size > 0
        n_nodes = 1 << SPGEMM_SMOKE_GRAPH["scale"]
        assert config.line_bytes > 0
        # flop-scaled trace: far longer than the node count.
        assert trace.lines.size > n_nodes
