"""Run ledger: manifest lifecycle, stale-run detection, CLI browsing."""

import json
import multiprocessing
import os
import time

from repro.cli import main
from repro.obs import FakeClock, Histogram, Instrumentation
from repro.obs.ledger import (
    STALE_AFTER_SECONDS,
    RunLedger,
    effective_status,
    find_run_dir,
    list_runs,
    load_manifest,
    resolve_runs_dir,
)


def dead_pid() -> int:
    """A pid guaranteed to have existed and exited (so the liveness
    probe sees ProcessLookupError, not a never-allocated pid)."""
    process = multiprocessing.Process(target=lambda: None)
    process.start()
    process.join()
    return process.pid


class TestResolveRunsDir:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", "/env/runs")
        assert resolve_runs_dir("/arg/runs") == "/arg/runs"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", "/env/runs")
        assert resolve_runs_dir(None) == "/env/runs"

    def test_default_is_cwd_runs(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNS_DIR", raising=False)
        assert resolve_runs_dir(None) == os.path.join(os.getcwd(), "runs")


class TestRunLedger:
    def test_create_writes_running_stub(self, tmp_path):
        ledger = RunLedger.create(
            str(tmp_path), kind="experiment", argv=["experiment", "fig2"],
            config={"profile": "test"},
        )
        manifest = json.load(open(ledger.manifest_path))
        assert manifest["status"] == "running"
        assert manifest["kind"] == "experiment"
        assert manifest["argv"] == ["experiment", "fig2"]
        assert manifest["config"] == {"profile": "test"}
        assert manifest["run_id"] == ledger.run_id

    def test_finalize_includes_telemetry_and_extras(self, tmp_path):
        ledger = RunLedger.create(str(tmp_path), kind="experiment", argv=[])
        instr = Instrumentation(clock=FakeClock(tick=1.0))
        with instr.span("reorder"):
            pass
        instr.counter("memo.run.hit", 3)
        instr.gauge("corpus.size", 5)
        ledger.record("failures", {"count": 1})
        document = ledger.finalize(instr, exit_code=0, status="ok")
        on_disk = json.load(open(ledger.manifest_path))
        assert on_disk == json.loads(json.dumps(document, default=str))
        assert on_disk["status"] == "ok"
        assert on_disk["exit_code"] == 0
        assert on_disk["span_totals"]["reorder"] == {"calls": 1, "seconds": 1.0}
        assert on_disk["histograms"]["reorder"]["count"] == 1
        assert on_disk["histograms"]["reorder"]["p50"] == 1.0
        assert on_disk["counters"] == {"memo.run.hit": 3}
        assert on_disk["gauges"] == {"corpus.size": 5}
        assert on_disk["failures"] == {"count": 1}
        assert on_disk["bench"] is None

    def test_finalize_without_instrumentation(self, tmp_path):
        ledger = RunLedger.create(str(tmp_path), kind="bench-check", argv=[])
        document = ledger.finalize(None, exit_code=1, status="failed")
        assert document["status"] == "failed"
        assert "span_totals" not in document


class TestQueries:
    def make_run(self, runs_dir, run_id, **extra):
        ledger = RunLedger.create(str(runs_dir), kind="experiment", argv=[], run_id=run_id)
        for key, value in extra.items():
            ledger.record(key, value)
        ledger.finalize(None, exit_code=0, status="ok")
        return ledger

    def test_find_run_dir_exact_and_prefix(self, tmp_path):
        self.make_run(tmp_path, "abcdef123456")
        self.make_run(tmp_path, "abzzzz999999")
        assert find_run_dir(str(tmp_path), "abcdef123456").endswith("abcdef123456")
        assert find_run_dir(str(tmp_path), "abc").endswith("abcdef123456")
        # Ambiguous prefix resolves to nothing rather than guessing.
        assert find_run_dir(str(tmp_path), "ab") is None
        assert find_run_dir(str(tmp_path), "zz") is None

    def test_load_manifest_prefix(self, tmp_path):
        self.make_run(tmp_path, "deadbeef0001")
        manifest = load_manifest(str(tmp_path), "dead")
        assert manifest["run_id"] == "deadbeef0001"

    def test_list_runs_newest_first_and_surfaces_damage(self, tmp_path):
        self.make_run(tmp_path, "older0000001")
        newer = self.make_run(tmp_path, "newer0000001")
        # Force deterministic ordering regardless of wall-clock ties.
        manifest = json.load(open(newer.manifest_path))
        manifest["started_at"] += 1000
        json.dump(manifest, open(newer.manifest_path, "w"))
        broken = tmp_path / "broken000001"
        broken.mkdir()
        (broken / "manifest.json").write_text("{not json")
        listed = list_runs(str(tmp_path))
        assert [m["run_id"] for m in listed[:2]] == ["newer0000001", "older0000001"]
        damaged = [m for m in listed if m["run_id"] == "broken000001"]
        assert damaged and damaged[0]["status"] == "unreadable"

    def test_list_runs_missing_dir(self, tmp_path):
        assert list_runs(str(tmp_path / "nope")) == []


class TestStaleRuns:
    """A crashed run's ``running`` stub must render as ``stale``, not
    look live forever in ``repro runs list``."""

    def stub(self, **overrides):
        manifest = {
            "status": "running",
            "pid": os.getpid(),
            "host": __import__("socket").gethostname(),
            "started_at": time.time(),
        }
        manifest.update(overrides)
        return manifest

    def test_finalized_statuses_pass_through(self):
        for status in ("ok", "failed", "error", "unreadable"):
            assert effective_status({"status": status, "pid": 1}) == status

    def test_live_pid_stays_running(self):
        assert effective_status(self.stub()) == "running"

    def test_dead_pid_is_stale(self):
        assert effective_status(self.stub(pid=dead_pid())) == "stale"

    def test_other_host_uses_age_heuristic(self):
        fresh = self.stub(host="elsewhere", pid=1)
        assert effective_status(fresh) == "running"
        old = self.stub(
            host="elsewhere", pid=1,
            started_at=time.time() - STALE_AFTER_SECONDS - 60,
        )
        assert effective_status(old) == "stale"

    def test_legacy_stub_without_pid_uses_age(self):
        now = time.time()
        legacy = {"status": "running", "started_at": now - 10}
        assert effective_status(legacy, now=now) == "running"
        assert (
            effective_status(legacy, now=now + STALE_AFTER_SECONDS + 60)
            == "stale"
        )

    def test_unparseable_start_time_is_stale(self):
        assert effective_status({"status": "running"}) == "stale"
        assert effective_status({"status": "running", "started_at": "?"}) == "stale"

    def test_runs_list_renders_crashed_run_as_stale(self, tmp_path, capsys):
        runs_dir = str(tmp_path / "ledger")
        crashed = RunLedger.create(runs_dir, kind="serve", argv=["serve"])
        # Simulate the crash: the stub survives, its pid does not.
        manifest = json.load(open(crashed.manifest_path))
        assert manifest["status"] == "running"
        manifest["pid"] = dead_pid()
        json.dump(manifest, open(crashed.manifest_path, "w"))
        live = RunLedger.create(runs_dir, kind="experiment", argv=[])
        finished = RunLedger.create(runs_dir, kind="experiment", argv=[])
        finished.finalize(None, exit_code=0, status="ok")
        assert main(["--runs-dir", runs_dir, "runs", "list"]) == 0
        rows = {
            line.split()[0]: line.split()[2]
            for line in capsys.readouterr().out.splitlines()
            if line.startswith((crashed.run_id, live.run_id, finished.run_id))
        }
        assert rows[crashed.run_id] == "stale"
        assert rows[live.run_id] == "running"  # this test's own live pid
        assert rows[finished.run_id] == "ok"


class TestRunsCli:
    def test_experiment_writes_ledger(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))
        runs_dir = str(tmp_path / "ledger")
        assert main(["--runs-dir", runs_dir, "experiment", "table1",
                     "--profile", "test"]) == 0
        runs = os.listdir(runs_dir)
        assert len(runs) == 1
        manifest = json.load(open(os.path.join(runs_dir, runs[0], "manifest.json")))
        assert manifest["kind"] == "experiment"
        assert manifest["status"] == "ok"
        assert manifest["exit_code"] == 0
        assert manifest["config"]["profile"] == "test"
        assert "run ledger:" in capsys.readouterr().err
        # The parent's events landed in the run directory.
        assert os.path.exists(os.path.join(runs_dir, runs[0], "events.jsonl"))

    def test_no_ledger_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))
        runs_dir = str(tmp_path / "ledger")
        assert main(["--runs-dir", runs_dir, "--no-ledger", "experiment",
                     "table1", "--profile", "test"]) == 0
        assert not os.path.exists(runs_dir)

    def test_runs_list_and_show(self, tmp_path, capsys):
        runs_dir = str(tmp_path / "ledger")
        ledger = RunLedger.create(runs_dir, kind="experiment", argv=["x"])
        ledger.finalize(None, exit_code=0, status="ok")
        assert main(["--runs-dir", runs_dir, "runs", "list"]) == 0
        out = capsys.readouterr().out
        assert ledger.run_id in out
        assert "experiment" in out
        assert main(["--runs-dir", runs_dir, "runs", "show", ledger.run_id[:6]]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == ledger.run_id

    def test_runs_show_empty_histogram_end_to_end(self, tmp_path, capsys):
        # An idle serve session finalizes with empty histograms (count
        # 0); the manifest must carry null percentiles and `repro runs
        # show` must render it — not crash on percentile-of-empty.
        runs_dir = str(tmp_path / "ledger")
        ledger = RunLedger.create(runs_dir, kind="serve", argv=["serve"])
        instr = Instrumentation(enabled=True)
        instr.counters.merge_histograms({"serve-request": Histogram()})
        ledger.finalize(instr, exit_code=0, status="ok")
        assert main(["--runs-dir", runs_dir, "runs", "show", ledger.run_id]) == 0
        shown = json.loads(capsys.readouterr().out)
        summary = shown["histograms"]["serve-request"]
        assert summary["count"] == 0
        assert summary["p50"] is None
        assert summary["p99"] is None
        assert shown["effective_status"] == "ok"

    def test_runs_show_unknown_id(self, tmp_path, capsys):
        assert main(["--runs-dir", str(tmp_path), "runs", "show", "nope"]) == 2
        assert "no run matching" in capsys.readouterr().err

    def test_runs_show_requires_id(self, tmp_path, capsys):
        assert main(["--runs-dir", str(tmp_path), "runs", "list"]) == 0
        assert main(["--runs-dir", str(tmp_path), "runs", "show"]) == 2

    def test_sweep_manifest_records_run_id(self, tmp_path, monkeypatch):
        from repro.resilience import SweepManifest

        cache = str(tmp_path / "memo")
        monkeypatch.setenv("REPRO_CACHE_DIR", cache)
        runs_dir = str(tmp_path / "ledger")
        assert main(["--runs-dir", runs_dir, "experiment", "table1",
                     "--profile", "test"]) == 0
        run_id = os.listdir(runs_dir)[0]
        manifest = SweepManifest.load(cache, "test")
        assert manifest is not None
        assert run_id in manifest.run_ids
