"""Run ledger: manifest lifecycle, runs-dir resolution, CLI browsing."""

import json
import os

from repro.cli import main
from repro.obs import FakeClock, Instrumentation
from repro.obs.ledger import (
    RunLedger,
    find_run_dir,
    list_runs,
    load_manifest,
    resolve_runs_dir,
)


class TestResolveRunsDir:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", "/env/runs")
        assert resolve_runs_dir("/arg/runs") == "/arg/runs"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", "/env/runs")
        assert resolve_runs_dir(None) == "/env/runs"

    def test_default_is_cwd_runs(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNS_DIR", raising=False)
        assert resolve_runs_dir(None) == os.path.join(os.getcwd(), "runs")


class TestRunLedger:
    def test_create_writes_running_stub(self, tmp_path):
        ledger = RunLedger.create(
            str(tmp_path), kind="experiment", argv=["experiment", "fig2"],
            config={"profile": "test"},
        )
        manifest = json.load(open(ledger.manifest_path))
        assert manifest["status"] == "running"
        assert manifest["kind"] == "experiment"
        assert manifest["argv"] == ["experiment", "fig2"]
        assert manifest["config"] == {"profile": "test"}
        assert manifest["run_id"] == ledger.run_id

    def test_finalize_includes_telemetry_and_extras(self, tmp_path):
        ledger = RunLedger.create(str(tmp_path), kind="experiment", argv=[])
        instr = Instrumentation(clock=FakeClock(tick=1.0))
        with instr.span("reorder"):
            pass
        instr.counter("memo.run.hit", 3)
        instr.gauge("corpus.size", 5)
        ledger.record("failures", {"count": 1})
        document = ledger.finalize(instr, exit_code=0, status="ok")
        on_disk = json.load(open(ledger.manifest_path))
        assert on_disk == json.loads(json.dumps(document, default=str))
        assert on_disk["status"] == "ok"
        assert on_disk["exit_code"] == 0
        assert on_disk["span_totals"]["reorder"] == {"calls": 1, "seconds": 1.0}
        assert on_disk["histograms"]["reorder"]["count"] == 1
        assert on_disk["histograms"]["reorder"]["p50"] == 1.0
        assert on_disk["counters"] == {"memo.run.hit": 3}
        assert on_disk["gauges"] == {"corpus.size": 5}
        assert on_disk["failures"] == {"count": 1}
        assert on_disk["bench"] is None

    def test_finalize_without_instrumentation(self, tmp_path):
        ledger = RunLedger.create(str(tmp_path), kind="bench-check", argv=[])
        document = ledger.finalize(None, exit_code=1, status="failed")
        assert document["status"] == "failed"
        assert "span_totals" not in document


class TestQueries:
    def make_run(self, runs_dir, run_id, **extra):
        ledger = RunLedger.create(str(runs_dir), kind="experiment", argv=[], run_id=run_id)
        for key, value in extra.items():
            ledger.record(key, value)
        ledger.finalize(None, exit_code=0, status="ok")
        return ledger

    def test_find_run_dir_exact_and_prefix(self, tmp_path):
        self.make_run(tmp_path, "abcdef123456")
        self.make_run(tmp_path, "abzzzz999999")
        assert find_run_dir(str(tmp_path), "abcdef123456").endswith("abcdef123456")
        assert find_run_dir(str(tmp_path), "abc").endswith("abcdef123456")
        # Ambiguous prefix resolves to nothing rather than guessing.
        assert find_run_dir(str(tmp_path), "ab") is None
        assert find_run_dir(str(tmp_path), "zz") is None

    def test_load_manifest_prefix(self, tmp_path):
        self.make_run(tmp_path, "deadbeef0001")
        manifest = load_manifest(str(tmp_path), "dead")
        assert manifest["run_id"] == "deadbeef0001"

    def test_list_runs_newest_first_and_surfaces_damage(self, tmp_path):
        self.make_run(tmp_path, "older0000001")
        newer = self.make_run(tmp_path, "newer0000001")
        # Force deterministic ordering regardless of wall-clock ties.
        manifest = json.load(open(newer.manifest_path))
        manifest["started_at"] += 1000
        json.dump(manifest, open(newer.manifest_path, "w"))
        broken = tmp_path / "broken000001"
        broken.mkdir()
        (broken / "manifest.json").write_text("{not json")
        listed = list_runs(str(tmp_path))
        assert [m["run_id"] for m in listed[:2]] == ["newer0000001", "older0000001"]
        damaged = [m for m in listed if m["run_id"] == "broken000001"]
        assert damaged and damaged[0]["status"] == "unreadable"

    def test_list_runs_missing_dir(self, tmp_path):
        assert list_runs(str(tmp_path / "nope")) == []


class TestRunsCli:
    def test_experiment_writes_ledger(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))
        runs_dir = str(tmp_path / "ledger")
        assert main(["--runs-dir", runs_dir, "experiment", "table1",
                     "--profile", "test"]) == 0
        runs = os.listdir(runs_dir)
        assert len(runs) == 1
        manifest = json.load(open(os.path.join(runs_dir, runs[0], "manifest.json")))
        assert manifest["kind"] == "experiment"
        assert manifest["status"] == "ok"
        assert manifest["exit_code"] == 0
        assert manifest["config"]["profile"] == "test"
        assert "run ledger:" in capsys.readouterr().err
        # The parent's events landed in the run directory.
        assert os.path.exists(os.path.join(runs_dir, runs[0], "events.jsonl"))

    def test_no_ledger_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))
        runs_dir = str(tmp_path / "ledger")
        assert main(["--runs-dir", runs_dir, "--no-ledger", "experiment",
                     "table1", "--profile", "test"]) == 0
        assert not os.path.exists(runs_dir)

    def test_runs_list_and_show(self, tmp_path, capsys):
        runs_dir = str(tmp_path / "ledger")
        ledger = RunLedger.create(runs_dir, kind="experiment", argv=["x"])
        ledger.finalize(None, exit_code=0, status="ok")
        assert main(["--runs-dir", runs_dir, "runs", "list"]) == 0
        out = capsys.readouterr().out
        assert ledger.run_id in out
        assert "experiment" in out
        assert main(["--runs-dir", runs_dir, "runs", "show", ledger.run_id[:6]]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == ledger.run_id

    def test_runs_show_unknown_id(self, tmp_path, capsys):
        assert main(["--runs-dir", str(tmp_path), "runs", "show", "nope"]) == 2
        assert "no run matching" in capsys.readouterr().err

    def test_runs_show_requires_id(self, tmp_path, capsys):
        assert main(["--runs-dir", str(tmp_path), "runs", "list"]) == 0
        assert main(["--runs-dir", str(tmp_path), "runs", "show"]) == 2

    def test_sweep_manifest_records_run_id(self, tmp_path, monkeypatch):
        from repro.resilience import SweepManifest

        cache = str(tmp_path / "memo")
        monkeypatch.setenv("REPRO_CACHE_DIR", cache)
        runs_dir = str(tmp_path / "ledger")
        assert main(["--runs-dir", runs_dir, "experiment", "table1",
                     "--profile", "test"]) == 0
        run_id = os.listdir(runs_dir)[0]
        manifest = SweepManifest.load(cache, "test")
        assert manifest is not None
        assert run_id in manifest.run_ids
