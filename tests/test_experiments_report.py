"""Report rendering and summary statistics."""

import pytest

from repro.errors import ValidationError
from repro.experiments.report import (
    ExperimentReport,
    arithmetic_mean,
    geometric_mean,
    render_table,
)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "value"], [["a", 1.0], ["long-name", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-----" in lines[1]
        assert len(lines) == 4

    def test_float_formatting(self):
        text = render_table(["v"], [[1.23456]])
        assert "1.235" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValidationError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestMeans:
    def test_geometric(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_requires_positive(self):
        with pytest.raises(ValidationError):
            geometric_mean([1.0, 0.0])

    def test_geometric_empty(self):
        with pytest.raises(ValidationError):
            geometric_mean([])

    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 3.0]) == pytest.approx(2.0)

    def test_arithmetic_empty(self):
        with pytest.raises(ValidationError):
            arithmetic_mean([])


class TestReport:
    def test_to_text_includes_paper_reference(self):
        report = ExperimentReport(
            experiment="figX",
            title="demo",
            headers=["matrix", "value"],
            rows=[["m1", 1.5]],
            summary={"mean": 1.5},
            paper_reference={"mean": 1.4},
        )
        text = report.to_text()
        assert "figX" in text
        assert "(paper: 1.400)" in text
        assert "m1" in text

    def test_to_text_without_summary(self):
        report = ExperimentReport("figY", "demo", ["a"], [["x"]])
        assert "summary" not in report.to_text()
