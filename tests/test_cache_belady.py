"""Belady (OPT) simulator: optimality and next-use bookkeeping."""

import numpy as np
import pytest

from repro.cache import next_use_index, simulate
from repro.cache.config import CacheConfig
from repro.cache import compulsory_misses, simulate


def tiny_cache(ways=2, sets=1):
    return CacheConfig(capacity_bytes=ways * sets * 32, line_bytes=32, ways=ways)


class TestNextUse:
    def test_simple(self):
        trace = np.asarray([5, 7, 5, 5, 7])
        expected = np.asarray([2, 4, 3, 5, 5])
        assert np.array_equal(next_use_index(trace), expected)

    def test_no_repeats(self):
        trace = np.asarray([1, 2, 3])
        assert np.array_equal(next_use_index(trace), [3, 3, 3])

    def test_empty(self):
        assert next_use_index(np.asarray([], dtype=np.int64)).size == 0


class TestOptimality:
    def test_classic_belady_example(self):
        # Fully-associative, 2 ways (set 0 only: use even line IDs).
        # Trace: a b c a b; OPT evicts c's victim wisely.
        a, b, c = 0, 2, 4
        trace = np.asarray([a, b, c, a, b])
        opt = simulate(trace, tiny_cache(ways=2), policy="belady")
        lru = simulate(trace, tiny_cache(ways=2))
        # OPT with bypass: c has no future use, so it is inserted and
        # immediately evicted (bypass), leaving a and b resident — both
        # re-accesses hit: 3 misses.  LRU thrashes: 5 misses.
        assert opt.misses == 3
        assert opt.hits == 2
        assert lru.misses == 5

    def test_never_worse_than_lru(self):
        rng = np.random.default_rng(0)
        config = CacheConfig(capacity_bytes=1024, line_bytes=32, ways=4)
        for seed in range(5):
            trace = np.random.default_rng(seed).integers(0, 60, 3000)
            opt = simulate(trace, config, policy="belady")
            lru = simulate(trace, config)
            assert opt.misses <= lru.misses

    def test_at_least_compulsory(self):
        trace = np.random.default_rng(1).integers(0, 64, 2000)
        config = CacheConfig(capacity_bytes=512, line_bytes=32, ways=4)
        opt = simulate(trace, config, policy="belady")
        assert opt.misses >= compulsory_misses(trace)

    def test_infinite_cache_equals_compulsory(self):
        trace = np.random.default_rng(2).integers(0, 40, 1000)
        config = CacheConfig(capacity_bytes=64 * 1024, line_bytes=32, ways=2048)
        assert simulate(trace, config, policy="belady").misses == compulsory_misses(trace)

    def test_consistency(self):
        trace = np.random.default_rng(3).integers(0, 50, 2000)
        stats = simulate(trace, tiny_cache(ways=4), policy="belady")
        stats.check_consistency()

    def test_empty_trace(self):
        stats = simulate(np.asarray([], dtype=np.int64), tiny_cache(), policy="belady")
        assert stats.accesses == 0


class TestBypass:
    def test_streaming_line_bypassed(self):
        """A line with no future use must not displace reused lines."""
        a, b = 0, 2
        stream = [4, 6, 8, 10]  # single-use lines
        trace = np.asarray([a, b] + stream + [a, b])
        stats = simulate(trace, tiny_cache(ways=2), policy="belady")
        # a and b stay resident; every stream line misses once.
        assert stats.misses == 2 + len(stream)
        assert stats.hits == 2
