"""repro.resilience: retries, timeouts, integrity, checkpoint, faults.

The acceptance-level scenarios live here too:

* kill-resume equivalence — a sweep interrupted by an injected worker
  kill and resumed produces memo bytes identical to an uninterrupted
  run, re-executing only unfinished cells;
* corrupt-cache recovery — with a slice of memo files randomly
  truncated/bit-flipped, a sweep completes, quarantines exactly the
  damaged files, and matches a clean-cache run;
* worker-crash recovery — a worker killed mid-group under ``jobs=2``
  with retries yields byte-identical output to a clean sequential run.
"""

import json
import os
import random
import threading

import pytest

from repro.errors import (
    CacheIntegrityError,
    CellTimeoutError,
    ParallelExecutionError,
    SweepFailure,
    TransientError,
    ValidationError,
)
from repro.experiments import fig3
from repro.experiments.runner import ExperimentRunner
from repro.obs import FakeClock, Instrumentation, using
from repro.parallel import RunnerConfig, execute_cells, metrics_cell, plan_cells, run_cell
from repro.resilience import (
    CellFailure,
    Deadline,
    FailureReport,
    FaultInjector,
    FaultPlan,
    LegacyCacheEntry,
    RetryPolicy,
    SweepManifest,
    cell_deadline,
    check_deadline,
    current_deadline,
    fault_point,
    install_injector,
    is_transient,
    load_or_quarantine,
    load_verified,
    quarantine_path,
    reset_faults,
    scan_cache,
    unwrap_document,
    wrap_payload,
)
from repro.resilience.integrity import atomic_write_document, unique_tmp_path

EQUIVALENCE_DRIVERS = {"fig3": fig3.run}


@pytest.fixture(autouse=True)
def _clean_faults():
    reset_faults()
    yield
    reset_faults()


def memo_files(cache_dir):
    """{filename: bytes} of memo files, excluding manifest/quarantine."""
    out = {}
    for name in sorted(os.listdir(cache_dir)):
        path = os.path.join(cache_dir, name)
        if name == "sweep-manifest.json" or not os.path.isfile(path):
            continue
        with open(path, "rb") as handle:
            out[name] = handle.read()
    return out


def install_plan(document):
    """Install an in-process fault injector from a plan document."""
    install_injector(FaultInjector(FaultPlan.from_document(document)))


class TestRetryPolicy:
    def test_defaults_mean_no_retries(self):
        assert RetryPolicy().max_attempts == 1
        assert RetryPolicy.from_retries(2).max_attempts == 3

    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_seconds=1.0, backoff_factor=4.0,
            max_backoff_seconds=10.0,
        )
        assert [policy.delay(a) for a in (1, 2, 3, 4)] == [1.0, 4.0, 10.0, 10.0]

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy().delay(0)

    def test_transient_classification(self):
        assert is_transient(TransientError("x"))
        assert is_transient(CellTimeoutError("x"))
        assert is_transient(CacheIntegrityError("x"))
        assert not is_transient(ValidationError("x"))
        assert not is_transient(RuntimeError("x"))


class TestCellDeadline:
    def test_fast_block_unaffected(self):
        with cell_deadline(5.0, "cell"):
            total = sum(range(100))
        assert total == 4950

    def test_slow_block_times_out(self):
        import time

        with pytest.raises(CellTimeoutError, match="slow-cell"):
            with cell_deadline(0.05, "slow-cell"):
                time.sleep(5.0)

    def test_none_disables_enforcement(self):
        with cell_deadline(None, "cell"):
            pass

    def test_main_thread_is_preemptive(self):
        with cell_deadline(5.0, "cell") as deadline:
            assert deadline.preemptive
            assert current_deadline() is deadline
        assert current_deadline() is None


class TestWorkerThreadDeadline:
    """Regression: cell_deadline silently no-opped off the main thread.

    SIGALRM timers only work on the main thread; before the fix a
    worker-thread deadline installed nothing at all, so serve handler
    threads ran unbounded.  Now enforcement degrades to cooperative
    checks — and observably so, via ``resilience.deadline_degraded``.
    """

    def run_in_thread(self, fn):
        result = {}

        def target():
            try:
                result["value"] = fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                result["error"] = exc

        thread = threading.Thread(target=target)
        thread.start()
        thread.join(30.0)
        assert not thread.is_alive()
        if "error" in result:
            raise result["error"]
        return result["value"]

    def test_timeout_fires_inside_worker_thread(self):
        import time

        def body():
            with cell_deadline(0.05, "threaded-cell"):
                for _ in range(100):
                    time.sleep(0.01)
                    check_deadline()
            return "unreachable"

        with pytest.raises(CellTimeoutError, match="threaded-cell"):
            self.run_in_thread(body)

    def test_final_check_catches_unchecked_overrun(self):
        import time

        def body():
            # No cooperative checkpoints at all: the context manager's
            # exit check must still raise for the over-budget block.
            with cell_deadline(0.02, "unchecked-cell"):
                time.sleep(0.1)

        with pytest.raises(CellTimeoutError, match="unchecked-cell"):
            self.run_in_thread(body)

    def test_degraded_counter_ticks_off_main_thread_only(self):
        with using(Instrumentation(enabled=True)) as instr:
            with cell_deadline(5.0, "main-cell"):
                pass
            assert instr.counters.get("resilience.deadline_degraded") == 0

            def body():
                with cell_deadline(5.0, "thread-cell") as deadline:
                    assert not deadline.preemptive
                    assert current_deadline() is deadline
                assert current_deadline() is None

            self.run_in_thread(body)
            assert instr.counters.get("resilience.deadline_degraded") == 1

    def test_fast_threaded_block_unaffected(self):
        def body():
            with cell_deadline(5.0, "quick"):
                return sum(range(50))

        assert self.run_in_thread(body) == 1225

    def test_check_deadline_is_noop_without_deadline(self):
        check_deadline()  # must not raise

    def test_deadline_object_api(self):
        deadline = Deadline(30.0, "api")
        assert 0.0 < deadline.remaining() <= 30.0
        assert not deadline.expired()
        deadline.check()
        spent = Deadline(0.0, "spent")
        assert spent.expired()
        with pytest.raises(CellTimeoutError, match="spent"):
            spent.check()


class TestConcurrentWriters:
    """N threads writing one memo/store key never tear the entry."""

    def test_unique_tmp_paths_across_threads(self):
        paths = set()
        lock = threading.Lock()

        def worker():
            mine = [unique_tmp_path("/tmp/entry.json") for _ in range(200)]
            with lock:
                paths.update(mine)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert len(paths) == 8 * 200  # no collisions => no torn temp files

    def test_same_key_write_storm_never_torn(self, tmp_path):
        path = str(tmp_path / "cache" / "entry.json")
        payload = {"permutation": list(range(64)), "seconds": 0.25}
        document = wrap_payload(payload)
        start = threading.Barrier(12)
        errors = []

        def writer():
            start.wait(10.0)
            try:
                for _ in range(25):
                    atomic_write_document(path, document)
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not errors
        # The surviving entry verifies — never torn, never quarantined.
        with using(Instrumentation(enabled=True)) as instr:
            assert load_or_quarantine(
                path, cache_dir=str(tmp_path / "cache")
            ) == payload
            assert instr.counters.get("resilience.quarantined") == 0
        assert not os.path.exists(quarantine_path(str(tmp_path / "cache")))
        # No leaked temp files either.
        leftovers = [
            name
            for name in os.listdir(tmp_path / "cache")
            if name != "entry.json"
        ]
        assert leftovers == []

    def test_distinct_writers_last_wins_verified(self, tmp_path):
        # Distinct payloads racing one path: whichever wins, the entry
        # must verify as exactly one of them (atomic replace semantics).
        path = str(tmp_path / "entry.json")
        payloads = [{"writer": i} for i in range(6)]
        start = threading.Barrier(6)

        def writer(i):
            start.wait(10.0)
            atomic_write_document(path, wrap_payload(payloads[i]))

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert load_verified(path) in payloads


class TestIntegrityEnvelope:
    def test_wrap_verify_roundtrip(self):
        payload = {"a": 1, "b": [1, 2, 3]}
        assert unwrap_document(wrap_payload(payload)) == payload

    def test_checksum_mismatch_detected(self):
        document = wrap_payload({"a": 1})
        document["payload"]["a"] = 2
        with pytest.raises(CacheIntegrityError, match="checksum"):
            unwrap_document(document)

    def test_schema_version_mismatch_detected(self):
        document = wrap_payload({"a": 1})
        document["__repro_cache__"]["schema"] = 999
        with pytest.raises(CacheIntegrityError, match="schema"):
            unwrap_document(document)

    def test_legacy_entry_is_its_own_type(self):
        with pytest.raises(LegacyCacheEntry):
            unwrap_document({"a": 1})

    def test_load_verified_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "entry.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(wrap_payload({"x": 1.5}), handle)
        assert load_verified(path) == {"x": 1.5}

    def test_truncated_file_quarantined(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        path = str(cache / "entry.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(wrap_payload({"x": 1}))[:20])
        with using(Instrumentation(enabled=True)) as instr:
            assert load_or_quarantine(path, cache_dir=str(cache)) is None
        assert not os.path.exists(path)
        assert os.listdir(quarantine_path(str(cache))) == ["entry.json"]
        assert instr.counters.get("resilience.quarantined") == 1

    def test_quarantine_name_collisions_suffixed(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        for _ in range(2):
            path = str(cache / "entry.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("garbage")
            assert load_or_quarantine(path, cache_dir=str(cache)) is None
        assert sorted(os.listdir(quarantine_path(str(cache)))) == [
            "entry.json",
            "entry.json.1",
        ]

    def test_scan_cache_classifies(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        with open(cache / "good.json", "w", encoding="utf-8") as handle:
            json.dump(wrap_payload({"ok": True}), handle)
        with open(cache / "legacy.json", "w", encoding="utf-8") as handle:
            json.dump({"old": True}, handle)
        with open(cache / "bad.json", "w", encoding="utf-8") as handle:
            handle.write("{ nope")
        scan = scan_cache(str(cache))
        assert scan.ok == ["good.json"]
        assert scan.legacy == ["legacy.json"]
        assert [name for name, _ in scan.damaged] == ["bad.json"]
        assert not scan.healthy


class TestRunnerCacheRecovery:
    """A damaged memo never crashes the runner — quarantine + recompute."""

    def damage_one(self, cache_dir, prefix):
        names = [n for n in os.listdir(cache_dir) if n.startswith(prefix)]
        assert names, f"no {prefix} memo written"
        path = os.path.join(cache_dir, names[0])
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        return names[0]

    def test_truncated_run_entry_recomputed(self, tmp_path):
        cache = str(tmp_path / "cache")
        runner = ExperimentRunner(profile="test", cache_dir=cache)
        with using(Instrumentation(enabled=True, clock=FakeClock())):
            clean = runner.run("test-mesh", "degsort")
        damaged_name = self.damage_one(cache, "run-")

        fresh = ExperimentRunner(profile="test", cache_dir=cache)
        with using(Instrumentation(enabled=True, clock=FakeClock())) as instr:
            recomputed = fresh.run("test-mesh", "degsort")
        assert recomputed.to_json() == clean.to_json()
        assert instr.counters.get("resilience.quarantined") == 1
        assert instr.counters.get("memo.run.miss") == 1
        assert damaged_name in os.listdir(quarantine_path(cache))
        # The recomputed entry is valid again.
        assert load_verified(os.path.join(cache, damaged_name))

    def test_truncated_metrics_entry_recomputed(self, tmp_path):
        cache = str(tmp_path / "cache")
        runner = ExperimentRunner(profile="test", cache_dir=cache)
        clean = runner.matrix_metrics("test-mesh")
        self.damage_one(cache, "metrics-")
        fresh = ExperimentRunner(profile="test", cache_dir=cache)
        assert fresh.matrix_metrics("test-mesh").to_json() == clean.to_json()

    def test_truncated_reorder_time_remeasured(self, tmp_path):
        cache = str(tmp_path / "cache")
        runner = ExperimentRunner(profile="test", cache_dir=cache)
        runner.run("test-mesh", "degsort")
        self.damage_one(cache, "reorder-time-")
        fresh = ExperimentRunner(profile="test", cache_dir=cache)
        assert fresh.reorder_seconds("test-mesh", "degsort") >= 0.0

    def test_legacy_unversioned_entry_quarantined_once(self, tmp_path):
        """Pre-envelope cache entries are migrated by quarantine."""
        cache = str(tmp_path / "cache")
        runner = ExperimentRunner(profile="test", cache_dir=cache)
        clean = runner.matrix_metrics("test-mesh")
        path = runner.metrics_cache_path("test-mesh")
        # Rewrite as a legacy (raw payload, no envelope) entry.
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(clean.to_json(), handle)
        fresh = ExperimentRunner(profile="test", cache_dir=cache)
        assert fresh.matrix_metrics("test-mesh").to_json() == clean.to_json()
        assert os.path.basename(path) in os.listdir(quarantine_path(cache))
        # Second read: the rewritten entry verifies, nothing new quarantined.
        again = ExperimentRunner(profile="test", cache_dir=cache)
        with using(Instrumentation(enabled=True)) as instr:
            again.matrix_metrics("test-mesh")
        assert instr.counters.get("resilience.quarantined") == 0
        assert instr.counters.get("memo.metrics.hit") == 1


class TestSweepManifest:
    def test_roundtrip(self, tmp_path):
        cache = str(tmp_path / "cache")
        manifest = SweepManifest.for_sweep(cache, "test")
        manifest.mark_cells(["a", "b"])
        manifest.mark_driver("fig3")
        loaded = SweepManifest.load(cache, "test")
        assert loaded.completed_cells == {"a", "b"}
        assert loaded.completed_drivers == {"fig3"}

    def test_profile_mismatch_ignored(self, tmp_path):
        cache = str(tmp_path / "cache")
        SweepManifest.for_sweep(cache, "test").mark_cell("a")
        assert SweepManifest.load(cache, "bench") is None
        resumed = SweepManifest.for_sweep(cache, "bench", resume=True)
        assert resumed.completed_cells == set()

    def test_damaged_manifest_starts_fresh(self, tmp_path):
        cache = str(tmp_path / "cache")
        manifest = SweepManifest.for_sweep(cache, "test")
        manifest.mark_cell("a")
        with open(manifest.path, "w", encoding="utf-8") as handle:
            handle.write("{ damaged")
        resumed = SweepManifest.for_sweep(cache, "test", resume=True)
        assert resumed.completed_cells == set()
        assert os.path.isdir(quarantine_path(cache))

    def test_failures_persisted(self, tmp_path):
        cache = str(tmp_path / "cache")
        manifest = SweepManifest.for_sweep(cache, "test")
        report = FailureReport()
        report.add(CellFailure("m/t/k", "TransientError", "boom", 3, True))
        manifest.record_failures(report)
        loaded = SweepManifest.load(cache, "test")
        assert loaded.failures.labels() == ["m/t/k"]
        # Resuming clears prior failures so they retry.
        resumed = SweepManifest.for_sweep(cache, "test", resume=True)
        assert not resumed.failures


class TestFaultPlan:
    def test_parse_inline_and_file(self, tmp_path):
        document = {"faults": [{"site": "cell.execute", "action": "raise"}]}
        inline = FaultPlan.parse(json.dumps(document))
        assert inline.rules[0].site == "cell.execute"
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        from_file = FaultPlan.parse(str(path))
        assert from_file.rules[0].action == "raise"

    def test_malformed_plans_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan.parse("not json {{{")
        with pytest.raises(ValidationError):
            FaultPlan.from_document({"faults": [{"site": "x", "action": "explode"}]})
        with pytest.raises(ValidationError):
            FaultPlan.from_document({"faults": [{"site": "x", "action": "raise",
                                                 "exception": "nope"}]})
        with pytest.raises(ValidationError):
            FaultPlan.from_document(
                {"faults": [{"site": "x", "action": "raise", "bogus_key": 1}]}
            )

    def test_times_limits_firing(self):
        plan = FaultPlan.from_document(
            {"faults": [{"site": "s", "action": "raise", "times": 2}]}
        )
        injector = FaultInjector(plan)
        for _ in range(2):
            with pytest.raises(TransientError):
                injector.fire("s", label="cell")
        injector.fire("s", label="cell")  # budget exhausted: no fault

    def test_match_filters_by_label(self):
        plan = FaultPlan.from_document(
            {"faults": [{"site": "s", "action": "raise", "match": "soc-"}]}
        )
        injector = FaultInjector(plan)
        injector.fire("s", label="web-graph/rabbit")  # no match, no fault
        with pytest.raises(TransientError):
            injector.fire("s", label="soc-forum/rabbit")

    def test_state_dir_shares_budget_across_injectors(self, tmp_path):
        document = {
            "state_dir": str(tmp_path / "state"),
            "faults": [{"site": "s", "action": "raise", "times": 1}],
        }
        first = FaultInjector(FaultPlan.from_document(document))
        second = FaultInjector(FaultPlan.from_document(document))
        with pytest.raises(TransientError):
            first.fire("s", label="cell")
        second.fire("s", label="cell")  # the shared budget is spent

    def test_corrupt_action_truncates_file(self, tmp_path):
        victim = tmp_path / "memo.json"
        victim.write_text(json.dumps(wrap_payload({"x": 1})), encoding="utf-8")
        size = victim.stat().st_size
        install_plan({"faults": [{"site": "memo.write", "action": "corrupt"}]})
        fault_point("memo.write", path=str(victim))
        assert victim.stat().st_size == size // 2

    def test_env_plan_parsed_once_per_value(self, monkeypatch, tmp_path):
        from repro.resilience.faults import get_injector

        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert get_injector() is None
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN",
            json.dumps({"faults": [{"site": "s", "action": "delay", "seconds": 0}]}),
        )
        injector = get_injector()
        assert injector is not None
        assert get_injector() is injector


class TestExecutorRetries:
    """In-process (jobs=1) retry/timeout/keep-going semantics."""

    def run_cells(self, tmp_path, cells, **kwargs):
        config = RunnerConfig("test", str(tmp_path / "memo"))
        sleeps = []
        with using(Instrumentation(enabled=True)) as instr:
            stats = execute_cells(
                cells, config, jobs=1, sleep=sleeps.append, **kwargs
            )
        return stats, sleeps, instr

    def test_transient_fault_retried_to_success(self, tmp_path):
        install_plan(
            {"faults": [{"site": "cell.execute", "action": "raise",
                         "exception": "transient", "times": 2}]}
        )
        stats, sleeps, instr = self.run_cells(
            tmp_path,
            [metrics_cell("test-mesh")],
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.5),
        )
        assert stats.executed == 1
        assert stats.failed == 0
        assert sleeps == [0.5, 1.0]
        assert instr.counters.get("resilience.retries") == 2

    def test_retries_exhausted_raises_sweep_failure(self, tmp_path):
        install_plan(
            {"faults": [{"site": "cell.execute", "action": "raise",
                         "exception": "transient", "times": 99}]}
        )
        with pytest.raises(SweepFailure) as excinfo:
            self.run_cells(
                tmp_path,
                [metrics_cell("test-mesh")],
                retry=RetryPolicy(max_attempts=2),
            )
        report = excinfo.value.report
        assert report.labels() == ["metrics:test-mesh"]
        assert report.failures[0].attempts == 2
        assert report.failures[0].transient

    def test_validation_error_fails_fast_without_retry(self, tmp_path):
        install_plan(
            {"faults": [{"site": "cell.execute", "action": "raise",
                         "exception": "validation", "times": 99}]}
        )
        with pytest.raises(SweepFailure) as excinfo:
            self.run_cells(
                tmp_path,
                [metrics_cell("test-mesh")],
                retry=RetryPolicy(max_attempts=5),
            )
        failure = excinfo.value.report.failures[0]
        assert failure.attempts == 1  # deterministic: no retry burned
        assert not failure.transient

    def test_keep_going_records_and_continues(self, tmp_path):
        install_plan(
            {"faults": [{"site": "cell.execute", "action": "raise",
                         "exception": "validation", "match": "degsort",
                         "times": 99}]}
        )
        cells = [
            run_cell("test-mesh", "degsort"),
            run_cell("test-mesh", "original"),
            metrics_cell("test-mesh"),
        ]
        stats, _sleeps, instr = self.run_cells(tmp_path, cells, keep_going=True)
        assert stats.executed == 2
        assert stats.failed == 1
        assert stats.failures.labels() == ["test-mesh/degsort/spmv-csr/lru/none"]
        assert instr.counters.get("resilience.cells_failed") == 1
        assert "PARTIAL" in stats.failures.summary_text()

    def test_timeout_via_injected_delay_is_transient(self, tmp_path):
        install_plan(
            {"faults": [{"site": "cell.execute", "action": "delay",
                         "seconds": 5.0, "times": 1}]}
        )
        stats, _sleeps, instr = self.run_cells(
            tmp_path,
            [metrics_cell("test-mesh")],
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
            cell_timeout=0.1,
        )
        # First attempt times out (CellTimeoutError, transient), the
        # retry finds the delay budget spent and completes.
        assert stats.executed == 1
        assert instr.counters.get("resilience.retries") == 1

    def test_manifest_checkpoints_completed_cells(self, tmp_path):
        cache = str(tmp_path / "memo")
        manifest = SweepManifest.for_sweep(cache, "test")
        cells = [metrics_cell("test-mesh"), run_cell("test-mesh", "original")]
        execute_cells(cells, RunnerConfig("test", cache), jobs=1, manifest=manifest)
        loaded = SweepManifest.load(cache, "test")
        assert loaded.completed_cells == {c.label() for c in cells}

    def test_resume_skips_manifest_cells_without_stat(self, tmp_path):
        cache = str(tmp_path / "memo")
        cells = [metrics_cell("test-mesh")]
        manifest = SweepManifest.for_sweep(cache, "test")
        execute_cells(cells, RunnerConfig("test", cache), jobs=1, manifest=manifest)
        resumed = SweepManifest.for_sweep(cache, "test", resume=True)
        with using(Instrumentation(enabled=True)) as instr:
            stats = execute_cells(
                cells, RunnerConfig("test", cache), jobs=1, manifest=resumed
            )
        assert stats.skipped == 1
        assert stats.executed == 0
        assert instr.counters.get("resilience.cells_resumed") == 1


class TestKillResumeEquivalence:
    """Acceptance: interrupted + resumed == uninterrupted, byte for byte."""

    def test_kill_then_resume_matches_uninterrupted(self, tmp_path, monkeypatch):
        cells = plan_cells(EQUIVALENCE_DRIVERS, "test")
        interrupted = str(tmp_path / "interrupted")
        clean = str(tmp_path / "clean")

        # Phase 1: strict run with an injected hard failure partway
        # through (in-process kill degrades to TransientError; with no
        # retry budget that kills the sweep like a SIGKILL would).
        install_plan(
            {"faults": [{"site": "cell.execute", "action": "kill",
                         "match": "test-kmer", "times": 99}]}
        )
        manifest = SweepManifest.for_sweep(interrupted, "test")
        with pytest.raises(SweepFailure):
            execute_cells(
                cells,
                RunnerConfig("test", interrupted),
                jobs=1,
                worker_clock=FakeClock(),
                manifest=manifest,
            )
        done_before = set(SweepManifest.load(interrupted, "test").completed_cells)
        assert 0 < len(done_before) < len(cells)

        # Phase 2: faults cleared, resume. Only unfinished cells run.
        reset_faults()
        resumed = SweepManifest.for_sweep(interrupted, "test", resume=True)
        with using(Instrumentation(enabled=True)) as instr:
            stats = execute_cells(
                cells,
                RunnerConfig("test", interrupted),
                jobs=1,
                worker_clock=FakeClock(),
                manifest=resumed,
            )
        assert stats.skipped == len(done_before)
        assert stats.executed == len(cells) - len(done_before)
        assert instr.counters.get("resilience.cells_resumed") == len(done_before)

        # Uninterrupted reference run.
        execute_cells(
            cells, RunnerConfig("test", clean), jobs=1, worker_clock=FakeClock()
        )
        assert memo_files(interrupted) == memo_files(clean)


class TestCorruptCacheRecovery:
    """Acceptance: 10% of memo files damaged -> quarantine + identical results."""

    def test_sweep_completes_over_randomly_damaged_cache(self, tmp_path):
        cells = plan_cells(EQUIVALENCE_DRIVERS, "test")
        cache = str(tmp_path / "memo")
        config = RunnerConfig("test", cache)
        execute_cells(cells, config, jobs=1, worker_clock=FakeClock())
        clean_bytes = memo_files(cache)

        rng = random.Random(42)
        # Damage only files the fig3 replay actually reads (reorder-time
        # entries are bookkeeping the driver never touches).
        names = sorted(
            n for n in clean_bytes
            if n.startswith("run-") or n.startswith("metrics-")
        )
        damaged = rng.sample(names, max(2, len(names) // 10))
        for name in damaged:
            path = os.path.join(cache, name)
            if rng.random() < 0.5:
                with open(path, "r+b") as handle:
                    handle.truncate(os.path.getsize(path) // 2)
            else:
                data = bytearray(clean_bytes[name])
                data[len(data) // 2] ^= 0xFF
                with open(path, "wb") as handle:
                    handle.write(bytes(data))

        # The sweep must complete without raising: executor skips the
        # (existing) files, the driver replay quarantines + recomputes.
        with using(Instrumentation(enabled=True)) as instr:
            report = fig3.run(
                profile="test",
                runner=ExperimentRunner("test", cache_dir=cache),
            )
        assert instr.counters.get("resilience.quarantined") == len(damaged)
        quarantined = os.listdir(quarantine_path(cache))
        assert sorted(quarantined) == sorted(damaged)

        # Recompute wrote fresh valid entries; results match a clean run.
        with using(Instrumentation(enabled=True, clock=FakeClock())):
            reference = fig3.run(
                profile="test",
                runner=ExperimentRunner("test", cache_dir=str(tmp_path / "ref")),
            )
        assert report.rows == reference.rows
        assert report.summary == reference.summary


class TestWorkerCrashRecovery:
    """Acceptance: a worker killed mid-group under jobs=2 retries to a
    byte-identical memo vs a clean sequential run."""

    def test_killed_worker_retried_byte_identical(self, tmp_path, monkeypatch):
        cells = plan_cells(EQUIVALENCE_DRIVERS, "test")
        par_dir = str(tmp_path / "par")
        seq_dir = str(tmp_path / "seq")

        plan = {
            "state_dir": str(tmp_path / "fault-state"),
            "faults": [{"site": "cell.execute", "action": "kill", "times": 1}],
        }
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan), encoding="utf-8")
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(plan_path))

        with using(Instrumentation(enabled=True)) as instr:
            stats = execute_cells(
                cells,
                RunnerConfig("test", par_dir),
                jobs=2,
                worker_clock=FakeClock(),
                retry=RetryPolicy(max_attempts=3, backoff_seconds=0.0),
            )
        assert stats.failed == 0
        assert stats.retried >= 1
        assert instr.counters.get("resilience.retries") >= 1
        # The kill fired exactly once (cross-process state dir).
        assert os.listdir(plan["state_dir"]) == ["fault-0-0"]

        monkeypatch.delenv("REPRO_FAULT_PLAN")
        reset_faults()
        execute_cells(
            cells, RunnerConfig("test", seq_dir), jobs=1, worker_clock=FakeClock()
        )
        assert memo_files(par_dir) == memo_files(seq_dir)

    def test_strict_mode_still_raises_parallel_execution_error(self, tmp_path):
        bogus = metrics_cell("no-such-matrix")
        with pytest.raises(ParallelExecutionError, match="no-such-matrix"):
            execute_cells(
                [bogus], RunnerConfig("test", str(tmp_path / "memo")), jobs=2
            )


class TestRunAllResilience:
    def test_keep_going_records_driver_failure(self, tmp_path, monkeypatch):
        import repro.experiments.run_all as run_all_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))

        def exploding_driver(profile="test", runner=None):
            raise RuntimeError("driver blew up")

        monkeypatch.setattr(
            run_all_module,
            "DRIVERS",
            {"boom": exploding_driver, "fig3": fig3.run},
        )
        reports = run_all_module.run_all(profile="test", keep_going=True)
        assert [r.experiment for r in reports] == ["fig3"]
        manifest = SweepManifest.load(str(tmp_path / "memo"), "test")
        assert manifest.failures.labels() == ["driver:boom"]
        assert manifest.completed_drivers == {"fig3"}

    def test_strict_mode_propagates_driver_failure(self, tmp_path, monkeypatch):
        import repro.experiments.run_all as run_all_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))

        def exploding_driver(profile="test", runner=None):
            raise RuntimeError("driver blew up")

        monkeypatch.setattr(run_all_module, "DRIVERS", {"boom": exploding_driver})
        with pytest.raises(RuntimeError, match="driver blew up"):
            run_all_module.run_all(profile="test")
