"""ORIGINAL/RANDOM baselines and the technique interface contract."""

import numpy as np
import pytest

from repro.graphs.corpus import load_graph
from repro.reorder import (
    OriginalOrder,
    RandomOrder,
    available_techniques,
    make_technique,
    reorder_with_timing,
)
from repro.reorder.base import stable_order_to_permutation
from repro.sparse.permute import check_permutation


class TestOriginal:
    def test_identity(self, path_graph):
        perm = OriginalOrder().compute(path_graph)
        assert np.array_equal(perm, np.arange(8))


class TestRandom:
    def test_is_permutation(self, path_graph):
        check_permutation(RandomOrder(seed=3).compute(path_graph), 8)

    def test_seed_determinism(self, path_graph):
        a = RandomOrder(seed=5).compute(path_graph)
        b = RandomOrder(seed=5).compute(path_graph)
        assert np.array_equal(a, b)

    def test_seeds_differ(self, path_graph):
        a = RandomOrder(seed=1).compute(path_graph)
        b = RandomOrder(seed=2).compute(path_graph)
        assert not np.array_equal(a, b)


class TestRegistryContract:
    def test_every_technique_yields_valid_permutation(self):
        graph = load_graph("test-mesh")
        for name in available_techniques():
            perm = make_technique(name).compute(graph)
            check_permutation(perm, graph.n_nodes)

    def test_every_technique_handles_directed_input(self):
        graph = load_graph("test-rmat")
        for name in available_techniques():
            perm = make_technique(name).compute(graph)
            check_permutation(perm, graph.n_nodes)

    def test_unknown_name_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            make_technique("quantum-sort")

    def test_paper_techniques_registered(self):
        from repro.reorder import PAPER_TECHNIQUES

        for name in PAPER_TECHNIQUES:
            make_technique(name)

    def test_timing_wrapper(self, path_graph):
        timed = reorder_with_timing(OriginalOrder(), path_graph)
        assert timed.technique == "original"
        assert timed.seconds >= 0.0
        check_permutation(timed.permutation, 8)


class TestStableOrderHelper:
    def test_roundtrip(self):
        visit = np.asarray([2, 0, 3, 1])
        perm = stable_order_to_permutation(visit)
        # Node visited first gets ID 0.
        assert perm[2] == 0
        assert perm[0] == 1
        assert perm[3] == 2
        assert perm[1] == 3
