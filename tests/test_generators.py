"""Synthetic generator structure and determinism checks."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs.generators import (
    barabasi_albert,
    dcsbm,
    erdos_renyi,
    grid_2d,
    grid_3d,
    hierarchical_blocks,
    hub_overlay,
    kmer_chain,
    planted_partition,
    rmat,
    road_network,
    star_burst,
    watts_strogatz,
)
from repro.sparse.ops import is_symmetric


def assert_simple_symmetric(coo):
    """No self loops, no duplicate entries, structurally symmetric."""
    assert not np.any(coo.rows == coo.cols)
    keys = coo.rows * coo.n_cols + coo.cols
    assert np.unique(keys).size == keys.size
    assert is_symmetric(coo)


class TestErdosRenyi:
    def test_shape_and_density(self):
        coo = erdos_renyi(500, 8.0, seed=1)
        assert coo.shape == (500, 500)
        assert coo.nnz / 500 == pytest.approx(8.0, rel=0.05)
        assert_simple_symmetric(coo)

    def test_deterministic(self):
        assert erdos_renyi(200, 6.0, seed=7) == erdos_renyi(200, 6.0, seed=7)

    def test_different_seeds_differ(self):
        assert erdos_renyi(200, 6.0, seed=1) != erdos_renyi(200, 6.0, seed=2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            erdos_renyi(0, 8.0)


class TestWattsStrogatz:
    def test_zero_beta_is_ring(self):
        coo = watts_strogatz(50, 4, 0.0, seed=1)
        # Every node connects to its +-1 and +-2 ring neighbors.
        degrees = np.bincount(coo.rows, minlength=50)
        assert np.all(degrees == 4)
        assert_simple_symmetric(coo)

    def test_beta_validated(self):
        with pytest.raises(ValidationError):
            watts_strogatz(50, 4, 1.5)


class TestBarabasiAlbert:
    def test_density_and_symmetry(self):
        coo = barabasi_albert(1000, 4, seed=2)
        assert_simple_symmetric(coo)
        assert coo.nnz / 1000 == pytest.approx(8.0, rel=0.15)

    def test_has_skewed_degrees(self):
        coo = barabasi_albert(2000, 4, seed=3)
        degrees = np.bincount(coo.rows, minlength=2000)
        assert degrees.max() > 10 * np.median(degrees)

    def test_m_must_be_less_than_n(self):
        with pytest.raises(ValidationError):
            barabasi_albert(4, 4)


class TestRmat:
    def test_directed_no_loops(self):
        coo = rmat(8, 8, seed=4)
        assert coo.shape == (256, 256)
        assert not np.any(coo.rows == coo.cols)

    def test_undirected_option(self):
        assert is_symmetric(rmat(7, 8, seed=5, directed=False))

    def test_skew_increases_with_a(self):
        skewed = rmat(9, 8, a=0.7, b=0.1, c=0.1, seed=6)
        flat = rmat(9, 8, a=0.25, b=0.25, c=0.25, seed=6)
        deg_skewed = np.bincount(skewed.cols, minlength=512).max()
        deg_flat = np.bincount(flat.cols, minlength=512).max()
        assert deg_skewed > deg_flat

    def test_bad_probabilities(self):
        with pytest.raises(ValidationError):
            rmat(8, 8, a=0.6, b=0.3, c=0.3)


class TestDcsbm:
    def test_reaches_target_degree_despite_skew(self):
        coo = dcsbm(1024, 16, 12.0, mu=0.3, theta_exponent=1.0, seed=7)
        assert coo.nnz / 1024 == pytest.approx(12.0, rel=0.05)
        assert_simple_symmetric(coo)

    def test_mu_controls_mixing(self):
        blocks = np.arange(1024) % 16
        tight = dcsbm(1024, 16, 12.0, mu=0.05, seed=8)
        loose = dcsbm(1024, 16, 12.0, mu=0.6, seed=8)

        def cross_fraction(coo):
            cross = blocks[coo.rows] != blocks[coo.cols]
            return cross.mean()

        assert cross_fraction(tight) < 0.15
        assert cross_fraction(loose) > 0.4

    def test_theta_controls_skew(self):
        flat = dcsbm(1024, 8, 10.0, mu=0.2, theta_exponent=0.0, seed=9)
        skewed = dcsbm(1024, 8, 10.0, mu=0.2, theta_exponent=1.2, seed=9)
        deg = lambda coo: np.bincount(coo.rows, minlength=1024)
        assert deg(skewed).max() > 2 * deg(flat).max()

    def test_validation(self):
        with pytest.raises(ValidationError):
            dcsbm(10, 20, 4.0, mu=0.1)
        with pytest.raises(ValidationError):
            dcsbm(10, 2, 4.0, mu=1.5)
        with pytest.raises(ValidationError):
            dcsbm(10, 2, 4.0, mu=0.1, theta_exponent=-1)


class TestPlantedPartition:
    def test_uniform_degrees(self):
        coo = planted_partition(512, 16, 8.0, mu=0.1, seed=10)
        degrees = np.bincount(coo.rows, minlength=512)
        # No hubs: max degree within a few x of the mean.
        assert degrees.max() < 4 * degrees.mean()


class TestGrids:
    def test_grid2d_interior_degree(self):
        coo = grid_2d(5, 5)
        degrees = np.bincount(coo.rows, minlength=25)
        assert degrees[12] == 4  # center
        assert degrees[0] == 2  # corner
        assert_simple_symmetric(coo)

    def test_grid2d_periodic_uniform(self):
        coo = grid_2d(5, 5, periodic=True)
        degrees = np.bincount(coo.rows, minlength=25)
        assert np.all(degrees == 4)

    def test_grid3d_center_degree(self):
        coo = grid_3d(3, 3, 3)
        degrees = np.bincount(coo.rows, minlength=27)
        assert degrees[13] == 6  # center of the cube
        assert_simple_symmetric(coo)


class TestRoadNetwork:
    def test_degree_profile(self):
        coo = road_network(40, 40, seed=11)
        degrees = np.bincount(coo.rows, minlength=1600)
        assert degrees.mean() < 5  # road-like sparsity
        assert_simple_symmetric(coo)

    def test_no_drop_no_diag_equals_grid(self):
        assert road_network(10, 10, drop_prob=0.0, diag_prob=0.0, seed=1) == grid_2d(10, 10)


class TestKmerChain:
    def test_low_degree(self):
        coo = kmer_chain(1000, branch_prob=0.02, seed=12)
        assert coo.nnz / 1000 < 3.0
        assert_simple_symmetric(coo)

    def test_zero_branching_is_disjoint_paths(self):
        coo = kmer_chain(100, branch_prob=0.0, n_chains=4, seed=13)
        degrees = np.bincount(coo.rows, minlength=100)
        assert degrees.max() == 2


class TestHubOverlay:
    def test_hubs_gain_degree(self):
        base = erdos_renyi(500, 4.0, seed=14)
        overlaid = hub_overlay(base, n_hubs=5, hub_degree=100, seed=15)
        degrees = np.bincount(overlaid.rows, minlength=500)
        assert degrees[:5].min() > 50
        assert_simple_symmetric(overlaid)

    def test_too_many_hubs_rejected(self):
        with pytest.raises(ValidationError):
            hub_overlay(erdos_renyi(10, 2.0, seed=1), n_hubs=20, hub_degree=2)


class TestStarBurst:
    def test_giant_stars(self):
        coo = star_burst(1000, 4, leaf_links=1, seed=16)
        degrees = np.bincount(coo.rows, minlength=1000)
        # Hubs absorb nearly all connectivity.
        assert degrees[:4].sum() > 0.9 * (coo.nnz / 2)
        assert_simple_symmetric(coo)


class TestHierarchicalBlocks:
    def test_local_edges_dominate(self):
        coo = hierarchical_blocks(1024, 8, 3.0, seed=17)
        # Most edges stay within a 1/16th block.
        same_block = (coo.rows // 64) == (coo.cols // 64)
        assert same_block.mean() > 0.5
        assert_simple_symmetric(coo)

    def test_decay_validated(self):
        with pytest.raises(ValidationError):
            hierarchical_blocks(64, 3, 2.0, decay=0.0)
