"""Property-based tests: every technique emits valid permutations and
reordering never changes kernel semantics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.reorder.registry import available_techniques, make_technique
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.kernels import spmv_csr
from repro.sparse.permute import check_permutation, permute_symmetric
from repro.graphs.graph import Graph


@st.composite
def graphs(draw, max_n=16, max_edges=40):
    n = draw(st.integers(1, max_n))
    n_edges = draw(st.integers(0, max_edges))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, n_edges)
    v = rng.integers(0, n, n_edges)
    coo = COOMatrix(n, n, np.concatenate([u, v]), np.concatenate([v, u]))
    from repro.sparse.ops import drop_self_loops, merge_duplicates

    return Graph(coo_to_csr(merge_duplicates(drop_self_loops(coo))))


# The cheap techniques are exercised under hypothesis; the expensive
# ones (gorder, slashburn) have dedicated deterministic tests.
FAST_TECHNIQUES = [
    name
    for name in available_techniques()
    if name not in ("gorder", "slashburn")
]


class TestTechniqueContracts:
    @given(graphs(), st.sampled_from(FAST_TECHNIQUES))
    @settings(max_examples=80, deadline=None)
    def test_valid_permutation_on_arbitrary_graphs(self, graph, name):
        perm = make_technique(name).compute(graph)
        check_permutation(perm, graph.n_nodes)

    @given(graphs(), st.sampled_from(["rabbit", "rabbit++", "degsort", "dbg"]))
    @settings(max_examples=40, deadline=None)
    def test_reordering_preserves_spmv_result(self, graph, name):
        csr = graph.adjacency
        perm = make_technique(name).compute(graph)
        permuted = permute_symmetric(csr, perm)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(csr.n_cols)
        y = spmv_csr(csr, x)
        x_new = np.empty_like(x)
        x_new[perm] = x
        assert np.allclose(spmv_csr(permuted, x_new)[perm], y)

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_rabbitpp_segments_partition_nodes(self, graph):
        from repro.reorder.rabbitpp import RabbitPlusPlus

        technique = RabbitPlusPlus()
        technique.compute(graph)
        result = technique.last_result
        insular = result.insular
        hubs = result.hubs
        # The three segments must partition the node set.
        seg1 = insular
        seg2 = hubs & ~insular
        seg3 = ~hubs & ~insular
        total = seg1.astype(int) + seg2.astype(int) + seg3.astype(int)
        assert np.all(total == 1)
