"""Memmap CSR storage: save/load integrity, chunked builds, symmetrize."""

import json
import os

import numpy as np
import pytest

from repro.errors import CacheIntegrityError, FormatError
from repro.graphs.graph import Graph
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.memmap import (
    coo_chunks_from_csr,
    csr_from_coo_chunks,
    is_memmap_backed,
    load_csr_memmap,
    read_memmap_meta,
    save_csr_memmap,
    stream_row_blocks,
    symmetrize_to_memmap,
)


def random_coo(n, nnz, seed, duplicates=False):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    if duplicates:
        rows[: nnz // 4] = rows[nnz // 2: nnz // 2 + nnz // 4]
        cols[: nnz // 4] = cols[nnz // 2: nnz // 2 + nnz // 4]
    return COOMatrix(n, n, rows, cols, values=rng.normal(size=nnz))


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        matrix = coo_to_csr(random_coo(50, 400, seed=1))
        directory = str(tmp_path / "m")
        save_csr_memmap(matrix, directory, extra_meta={"origin": "test"})
        loaded = load_csr_memmap(directory, verify_arrays=True)
        assert is_memmap_backed(loaded)
        assert not is_memmap_backed(matrix)
        assert np.array_equal(loaded.row_offsets, matrix.row_offsets)
        assert np.array_equal(loaded.col_indices, matrix.col_indices)
        assert np.array_equal(loaded.values, matrix.values)
        assert read_memmap_meta(directory)["extra"] == {"origin": "test"}

    def test_empty_matrix(self, tmp_path):
        matrix = coo_to_csr(COOMatrix(4, 4, [], []))
        directory = str(tmp_path / "empty")
        save_csr_memmap(matrix, directory)
        loaded = load_csr_memmap(directory)
        assert loaded.nnz == 0
        assert np.array_equal(loaded.row_offsets, matrix.row_offsets)

    def test_truncated_array_detected(self, tmp_path):
        matrix = coo_to_csr(random_coo(20, 100, seed=2))
        directory = str(tmp_path / "m")
        save_csr_memmap(matrix, directory)
        path = os.path.join(directory, "col_indices.bin")
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 8)
        with pytest.raises(CacheIntegrityError, match="bytes"):
            load_csr_memmap(directory)

    def test_flipped_bit_detected_by_array_verify(self, tmp_path):
        matrix = coo_to_csr(random_coo(20, 100, seed=3))
        directory = str(tmp_path / "m")
        save_csr_memmap(matrix, directory)
        path = os.path.join(directory, "values.bin")
        with open(path, "r+b") as handle:
            handle.seek(16)
            byte = handle.read(1)
            handle.seek(16)
            handle.write(bytes([byte[0] ^ 0xFF]))
        # Routine load only checks lengths; the audit catches the flip.
        load_csr_memmap(directory)
        with pytest.raises(CacheIntegrityError, match="checksum"):
            load_csr_memmap(directory, verify_arrays=True)

    def test_damaged_meta_detected(self, tmp_path):
        matrix = coo_to_csr(random_coo(10, 30, seed=4))
        directory = str(tmp_path / "m")
        save_csr_memmap(matrix, directory)
        meta = os.path.join(directory, "meta.json")
        with open(meta) as handle:
            document = json.load(handle)
        document["payload"]["nnz"] = 999
        with open(meta, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(CacheIntegrityError):
            load_csr_memmap(directory)


class TestChunkedBuild:
    def chunk_stream(self, coo, chunk):
        def chunks():
            for start in range(0, coo.nnz, chunk):
                stop = min(start + chunk, coo.nnz)
                yield coo.rows[start:stop], coo.cols[start:stop], coo.values[start:stop]

        return chunks

    @pytest.mark.parametrize("chunk", [7, 64, 10_000])
    def test_matches_coo_to_csr(self, tmp_path, chunk):
        coo = random_coo(64, 700, seed=5, duplicates=True)
        reference = coo_to_csr(coo)
        built = csr_from_coo_chunks(
            self.chunk_stream(coo, chunk), 64, 64, str(tmp_path / f"c{chunk}")
        )
        assert is_memmap_backed(built)
        assert np.array_equal(built.row_offsets, reference.row_offsets)
        assert np.array_equal(built.col_indices, reference.col_indices)
        # Duplicate (row, col) values must keep stream order too.
        assert np.array_equal(built.values, reference.values)

    def test_empty_stream(self, tmp_path):
        built = csr_from_coo_chunks(lambda: iter(()), 5, 5, str(tmp_path / "e"))
        assert built.nnz == 0
        assert built.n_rows == 5

    def test_rejects_non_callable(self, tmp_path):
        with pytest.raises(FormatError, match="callable"):
            csr_from_coo_chunks(iter(()), 2, 2, str(tmp_path / "x"))

    def test_rejects_out_of_bounds_columns(self, tmp_path):
        def chunks():
            yield (
                np.asarray([0], dtype=np.int64),
                np.asarray([9], dtype=np.int64),
                np.asarray([1.0]),
            )

        with pytest.raises(FormatError, match="out of bounds"):
            csr_from_coo_chunks(lambda: chunks(), 3, 3, str(tmp_path / "x"))


class TestStreamRowBlocks:
    def test_covers_all_rows_within_budget(self):
        offsets = np.asarray([0, 3, 3, 10, 11, 30, 31], dtype=np.int64)
        blocks = list(stream_row_blocks(offsets, 6, max_entries=8))
        assert blocks[0][0] == 0
        assert blocks[-1][1] == 6
        for (_, hi), (lo, _) in zip(blocks, blocks[1:]):
            assert hi == lo
        for lo, hi in blocks:
            size = int(offsets[hi] - offsets[lo])
            assert size <= 8 or hi == lo + 1  # oversized single row

    def test_replayable_chunks_match_entries(self):
        coo = random_coo(30, 200, seed=6)
        matrix = coo_to_csr(coo)
        chunks = coo_chunks_from_csr(matrix)
        for _ in range(2):  # replay twice, like the builder does
            rows = np.concatenate([r for r, _, _ in chunks()])
            cols = np.concatenate([c for _, c, _ in chunks()])
            assert rows.size == matrix.nnz
            expected_rows = np.repeat(
                np.arange(matrix.n_rows), np.diff(matrix.row_offsets)
            )
            assert np.array_equal(rows, expected_rows)
            assert np.array_equal(cols, matrix.col_indices)


class TestSymmetrizeToMemmap:
    @pytest.mark.parametrize("seed", [7, 8])
    def test_matches_to_undirected(self, tmp_path, seed):
        rng = np.random.default_rng(seed)
        nnz = 600
        rows = rng.integers(0, 40, size=nnz)
        cols = rng.integers(0, 40, size=nnz)
        # Unit values + pre-deduped entries: the generator pipeline.
        keys = np.unique(rows * 40 + cols)
        coo = COOMatrix(40, 40, keys // 40, keys % 40)
        graph = Graph(coo_to_csr(coo), directed=True)
        reference = graph.to_undirected().adjacency
        built = symmetrize_to_memmap(graph.adjacency, str(tmp_path / f"s{seed}"))
        assert is_memmap_backed(built)
        assert np.array_equal(built.row_offsets, reference.row_offsets)
        assert np.array_equal(built.col_indices, reference.col_indices)
        assert np.array_equal(built.values, reference.values)

    def test_drops_self_loops(self, tmp_path):
        coo = COOMatrix(3, 3, [0, 1, 2], [0, 2, 2])
        built = symmetrize_to_memmap(coo_to_csr(coo), str(tmp_path / "loops"))
        assert built.nnz == 2  # only the {1, 2} edge survives, both ways
        assert np.array_equal(built.col_indices, [2, 1])

    def test_rejects_rectangular(self, tmp_path):
        matrix = coo_to_csr(COOMatrix(2, 3, [0], [2]))
        with pytest.raises(FormatError, match="square"):
            symmetrize_to_memmap(matrix, str(tmp_path / "rect"))

    def test_no_scratch_left_behind(self, tmp_path):
        coo = COOMatrix(5, 5, [0, 1], [1, 2])
        target = tmp_path / "clean"
        symmetrize_to_memmap(coo_to_csr(coo), str(target))
        leftovers = [p for p in tmp_path.iterdir() if p != target]
        assert leftovers == []
