"""BOBA-style parallel bucket placement."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs.generators.powerlaw import rmat
from repro.graphs.graph import Graph
from repro.reorder.base import check_permutation
from repro.reorder.boba import BobaOrder, _boba_fast, _boba_reference
from repro.reorder.registry import available_techniques, make_technique


def rmat_graph(scale=8, edge_factor=8, seed=3):
    return Graph.from_coo(rmat(scale, edge_factor, seed=seed), directed=True)


class TestBobaOrder:
    def test_registered(self):
        assert "boba" in available_techniques()
        assert isinstance(make_technique("boba"), BobaOrder)

    def test_valid_permutation(self, figure1_graph):
        perm = BobaOrder().compute(figure1_graph)
        check_permutation(perm, figure1_graph.n_nodes)

    def test_empty_graph(self):
        from repro.sparse.convert import coo_to_csr
        from repro.sparse.coo import COOMatrix

        graph = Graph(coo_to_csr(COOMatrix(0, 0, [], [])), directed=True)
        assert BobaOrder().compute(graph).size == 0

    def test_hubs_placed_first_by_bucket(self, star_graph):
        # Node 0 is the only hub; it must land at position 0.
        perm = BobaOrder().compute(star_graph)
        assert perm[0] == 0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValidationError):
            BobaOrder(n_shards=0)
        with pytest.raises(ValidationError):
            BobaOrder(jobs=0)

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_reference_equals_fast(self, seed):
        graph = rmat_graph(seed=seed)
        reference = _boba_reference(graph)
        fast = _boba_fast(graph, n_shards=1, jobs=1)
        assert np.array_equal(reference, fast)

    @pytest.mark.parametrize("n_shards", [2, 3, 7])
    def test_shard_count_never_changes_result(self, n_shards):
        graph = rmat_graph()
        baseline = _boba_fast(graph, n_shards=1, jobs=1)
        sharded = _boba_fast(graph, n_shards=n_shards, jobs=1)
        assert np.array_equal(baseline, sharded)

    def test_jobs_count_never_changes_result(self):
        graph = rmat_graph()
        serial = _boba_fast(graph, n_shards=4, jobs=1)
        pooled = _boba_fast(graph, n_shards=4, jobs=2)
        assert np.array_equal(serial, pooled)

    def test_impl_dispatch_reference(self, figure1_graph):
        technique = make_technique("boba", impl="reference")
        fast = make_technique("boba", impl="fast")
        assert np.array_equal(
            technique.compute(figure1_graph), fast.compute(figure1_graph)
        )

    def test_anchor_groups_nonhubs_with_their_hub(self):
        # 0 and 1 are hubs (high in-degree); 4..7 all point at hub 0
        # only, 8..11 at hub 1 only.  Each group must be contiguous and
        # ordered by its anchor's placement.
        from repro.sparse.convert import coo_to_csr
        from repro.sparse.coo import COOMatrix

        edges = []
        for leaf in range(4, 8):
            edges += [(leaf, 0), (2, leaf)]
        for leaf in range(8, 12):
            edges += [(leaf, 1), (3, leaf)]
        edges += [(2, 0), (3, 0), (2, 1)]  # make 0 the hottest hub
        rows = np.asarray([u for u, _ in edges])
        cols = np.asarray([v for _, v in edges])
        graph = Graph(coo_to_csr(COOMatrix(12, 12, rows, cols)), directed=True)
        perm = BobaOrder().compute(graph)
        pos = {node: int(perm[node]) for node in range(12)}
        group0 = sorted(pos[leaf] for leaf in range(4, 8))
        group1 = sorted(pos[leaf] for leaf in range(8, 12))
        assert group0 == list(range(group0[0], group0[0] + 4))
        assert group1 == list(range(group1[0], group1[0] + 4))
        assert pos[0] < pos[1]  # hub 0 is hotter
        assert group0[0] < group1[0]  # groups follow anchor order


class TestBobaMemmap:
    def test_streams_from_memmap_matrix(self, tmp_path):
        from repro.sparse.memmap import load_csr_memmap, save_csr_memmap

        graph = rmat_graph()
        save_csr_memmap(graph.adjacency, str(tmp_path / "adj"))
        memmap_graph = Graph(load_csr_memmap(str(tmp_path / "adj")), directed=True)
        assert np.array_equal(
            BobaOrder().compute(graph), BobaOrder().compute(memmap_graph)
        )
