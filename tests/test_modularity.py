"""Modularity definition tests, cross-checked against known values."""

import numpy as np
import pytest

from repro.community.assignment import CommunityAssignment
from repro.community.modularity import modularity, modularity_gain
from repro.errors import ShapeError


class TestKnownValues:
    def test_single_community_is_zero(self, two_triangles):
        q = modularity(two_triangles, CommunityAssignment(np.zeros(6, dtype=np.int64)))
        assert q == pytest.approx(0.0, abs=1e-12)

    def test_two_triangles_natural_split(self, two_triangles):
        # Classic value: 2 * (3/7 - (7/14)^2) = 0.357142...
        q = modularity(two_triangles, CommunityAssignment([0, 0, 0, 1, 1, 1]))
        assert q == pytest.approx(2 * (3 / 7 - 0.25), abs=1e-12)

    def test_singletons_are_negative(self, two_triangles):
        q = modularity(two_triangles, CommunityAssignment(np.arange(6)))
        assert q < 0

    def test_figure1_partition_is_strong(self, figure1_graph, figure1_assignment):
        q = modularity(figure1_graph, figure1_assignment)
        assert 0.4 < q < 0.7

    def test_bad_partition_scores_lower(self, figure1_graph, figure1_assignment):
        rng = np.random.default_rng(1)
        random_assignment = CommunityAssignment(rng.integers(0, 3, 9))
        assert modularity(figure1_graph, random_assignment) < modularity(
            figure1_graph, figure1_assignment
        )

    def test_bounded_above_by_one(self, path_graph):
        q = modularity(path_graph, CommunityAssignment([0, 0, 1, 1, 2, 2, 3, 3]))
        assert q <= 1.0


class TestValidation:
    def test_label_shape_checked(self, path_graph):
        from repro.community.modularity import modularity_csr

        with pytest.raises(ShapeError):
            modularity_csr(path_graph.adjacency, np.zeros(3, dtype=np.int64))


class TestGainFormula:
    def test_gain_matches_direct_difference(self, two_triangles):
        """ΔQ formula must equal Q(after) - Q(before) for an isolated
        node joining a community."""
        adjacency = two_triangles.to_undirected().adjacency
        from repro.community.modularity import modularity_csr

        # Node 2 isolated; join community {0, 1}.
        before = np.asarray([0, 0, 2, 1, 1, 1])
        after = np.asarray([0, 0, 0, 1, 1, 1])
        direct = modularity_csr(adjacency, after) - modularity_csr(adjacency, before)

        total_weight = float(adjacency.values.sum())
        # Weighted degrees (the symmetrized view carries weight 2 per entry).
        row_of_entry = np.repeat(
            np.arange(adjacency.n_rows), np.diff(adjacency.row_offsets)
        )
        degrees = np.zeros(adjacency.n_rows)
        np.add.at(degrees, row_of_entry, adjacency.values)
        in_row_2 = row_of_entry == 2
        to_community = np.isin(adjacency.col_indices, [0, 1]) & in_row_2
        weight_to = float(adjacency.values[to_community].sum())
        community_degree = degrees[0] + degrees[1]
        gain = modularity_gain(weight_to, degrees[2], community_degree, total_weight)
        assert gain == pytest.approx(direct, abs=1e-12)

    def test_gain_negative_for_unrelated_community(self, two_triangles):
        adjacency = two_triangles.to_undirected().adjacency
        degrees = adjacency.row_degrees().astype(float)
        total_weight = float(adjacency.values.sum())
        # Node 0 has no edges into {3, 4, 5}: pure penalty term.
        gain = modularity_gain(0.0, degrees[0], degrees[3] + degrees[4] + degrees[5], total_weight)
        assert gain < 0
