"""Degree-based techniques: DEGSORT, DBG, HUBSORT, HUBCLUSTER."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.reorder.degree import DBG, DegSort, HubCluster, HubSort, hub_mask
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix


def skewed_graph() -> Graph:
    """Node 0 has in-degree 5, node 1 has 3, others low (directed)."""
    edges = [
        (2, 0), (3, 0), (4, 0), (5, 0), (6, 0),
        (2, 1), (3, 1), (4, 1),
        (5, 6), (6, 7),
    ]
    rows = [u for u, _ in edges]
    cols = [v for _, v in edges]
    return Graph(coo_to_csr(COOMatrix(8, 8, rows, cols)), directed=True)


class TestDegSort:
    def test_descending_in_degree(self):
        graph = skewed_graph()
        perm = DegSort().compute(graph)
        in_degrees = graph.in_degrees()
        # New order: node IDs sorted by perm; degrees must be descending.
        by_new_id = np.argsort(perm)
        reordered_degrees = in_degrees[by_new_id]
        assert np.all(np.diff(reordered_degrees) <= 0)

    def test_ties_keep_original_order(self):
        graph = skewed_graph()
        perm = DegSort().compute(graph)
        # Nodes 2, 3, 4 all have in-degree 0 -> keep relative order.
        assert perm[2] < perm[3] < perm[4]


class TestDBG:
    def test_grouped_by_power_of_two_buckets(self):
        graph = skewed_graph()
        perm = DBG().compute(graph)
        in_degrees = graph.in_degrees()
        by_new_id = np.argsort(perm)
        buckets = np.where(
            in_degrees[by_new_id] > 0,
            np.floor(np.log2(np.maximum(in_degrees[by_new_id], 1))),
            0,
        )
        assert np.all(np.diff(buckets) <= 0)

    def test_relative_order_within_bucket(self):
        graph = skewed_graph()
        perm = DBG().compute(graph)
        # 0 (deg 5, bucket 2) first; 1 (deg 3, bucket 1) next;
        # 6 and 7 (deg 1, bucket 0) before... the zero-degree nodes share
        # bucket 0 with them, keeping original relative order.
        assert perm[0] == 0
        assert perm[1] == 1
        assert perm[6] < perm[7]

    def test_bucket_cap(self):
        graph = skewed_graph()
        perm = DBG(n_buckets=1).compute(graph)
        # One bucket: stable sort degenerates to the identity.
        assert np.array_equal(perm, np.arange(8))

    def test_negative_bucket_count_rejected(self):
        with pytest.raises(ValidationError):
            DBG(n_buckets=-1)


class TestHubMask:
    def test_above_average_definition(self):
        graph = skewed_graph()
        mask = hub_mask(graph)
        # 10 entries / 8 nodes = 1.25 average; hubs: in-degree > 1.25.
        assert mask[0] and mask[1]
        assert not mask[2] and not mask[7]


class TestHubSort:
    def test_hubs_first_sorted(self):
        graph = skewed_graph()
        perm = HubSort().compute(graph)
        assert perm[0] == 0  # degree 5
        assert perm[1] == 1  # degree 3
        # Non-hubs keep relative order after the hubs.
        non_hubs = [2, 3, 4, 5, 6, 7]
        positions = [perm[v] for v in non_hubs]
        assert positions == sorted(positions)


class TestHubCluster:
    def test_hubs_first_original_order(self):
        graph = skewed_graph()
        perm = HubCluster().compute(graph)
        assert perm[0] == 0 and perm[1] == 1

    def test_differs_from_hubsort_when_hub_order_reversed(self):
        # Build graph where hub 0 has smaller degree than hub 1.
        edges = [(2, 1), (3, 1), (4, 1), (5, 1), (2, 0), (3, 0), (4, 0)]
        graph = Graph(
            coo_to_csr(COOMatrix(6, 6, [u for u, _ in edges], [v for _, v in edges])),
            directed=True,
        )
        hubsort = HubSort().compute(graph)
        hubcluster = HubCluster().compute(graph)
        assert hubsort[1] == 0  # highest degree first
        assert hubcluster[0] == 0  # original order kept
