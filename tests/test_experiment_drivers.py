"""Integration tests: every paper-artifact driver on the test profile."""

import math

import pytest

from repro.errors import ExperimentError
from repro.experiments.run_all import DRIVERS, run_experiment
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    cache = tmp_path_factory.mktemp("driver-cache")
    return ExperimentRunner(profile="test", cache_dir=str(cache))


class TestDrivers:
    def test_table1(self, runner):
        report = run_experiment("table1", profile="test", runner=runner)
        assert len(report.rows) == 2  # A6000 + scaled platform
        assert report.summary["l2_scale_factor"] > 1

    def test_fig2(self, runner):
        report = run_experiment("fig2", profile="test", runner=runner)
        assert len(report.rows) == len(runner.matrices())
        # RANDOM must be the worst ordering on average.
        random_mean = report.summary["mean_traffic_random"]
        for key, value in report.summary.items():
            if key.startswith("mean_traffic_") and key != "mean_traffic_random":
                assert value <= random_mean + 1e-9
        # RABBIT near the front of the pack (paper Observation 4).
        assert report.summary["mean_traffic_rabbit"] <= report.summary[
            "mean_traffic_degsort"
        ]

    def test_fig3_sorted_by_insularity(self, runner):
        report = run_experiment("fig3", profile="test", runner=runner)
        insularities = [row[1] for row in report.rows]
        assert insularities == sorted(insularities)

    def test_fig4_fractions_in_range(self, runner):
        report = run_experiment("fig4", profile="test", runner=runner)
        for row in report.rows:
            assert 0.0 <= row[2] <= 1.0

    def test_correlations_negative_skew_relation(self, runner):
        report = run_experiment("sec5-correlations", profile="test", runner=runner)
        # Paper: skew and insularity are negatively correlated (-0.721).
        assert report.summary["pearson_insularity_skew"] < 0

    def test_table2_covers_design_space(self, runner):
        report = run_experiment("table2", profile="test", runner=runner)
        assert len(report.rows) == 6
        techniques = {row[2] for row in report.rows}
        assert "rabbit++" in techniques

    def test_fig6_insular_submatrix_near_ideal(self, runner):
        report = run_experiment("fig6", profile="test", runner=runner)
        assert report.summary["mean_insular_submatrix_traffic"] < 1.6

    def test_fig7_reductions(self, runner):
        report = run_experiment("fig7", profile="test", runner=runner)
        # RABBIT++ should not lose to RABBIT on average.
        assert report.summary["mean_traffic_reduction_all"] > 0.95

    def test_table3_random_wastes_most(self, runner):
        report = run_experiment("table3", profile="test", runner=runner)
        dead = report.summary
        assert dead["dead_fraction_random"] >= dead["dead_fraction_rabbit"]
        assert dead["dead_fraction_rabbit++"] <= dead["dead_fraction_rabbit"]

    def test_fig8_belady_never_worse(self, runner):
        report = run_experiment("fig8", profile="test", runner=runner)
        for row in report.rows:
            technique, lru, belady, gap = row
            assert belady <= lru + 1e-9
            assert gap >= 1.0

    def test_fig9_gorder_costs_most(self, runner):
        report = run_experiment("fig9", profile="test", runner=runner)
        # Wall-clock timings jitter on tiny inputs; assert the robust
        # shape on the largest sweep point only.
        n, nnz, gorder_sec, _, rabbit_sec, _, rabbitpp_sec, _ = report.rows[-1]
        assert gorder_sec > rabbit_sec
        assert gorder_sec > rabbitpp_sec

    def test_table4_rabbit_beats_random_everywhere(self, runner):
        report = run_experiment("table4", profile="test", runner=runner)
        by_kernel = {}
        for kernel, technique, all_mean, low, high in report.rows:
            by_kernel.setdefault(kernel, {})[technique] = all_mean
        for kernel, values in by_kernel.items():
            assert values["rabbit"] <= values["random"], kernel
            assert values["rabbit++"] <= values["random"], kernel

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99", profile="test")

    def test_all_reports_render(self, runner):
        for name in DRIVERS:
            report = run_experiment(name, profile="test", runner=runner)
            text = report.to_text()
            assert report.experiment in text
