"""Structural operations: transpose, dedup, symmetrize."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse.coo import COOMatrix
from repro.sparse.ops import (
    drop_self_loops,
    is_symmetric,
    merge_duplicates,
    symmetrize,
    transpose,
)


class TestTranspose:
    def test_transpose_dense(self, small_coo):
        assert np.array_equal(transpose(small_coo).to_dense(), small_coo.to_dense().T)

    def test_transpose_swaps_shape(self):
        coo = COOMatrix(2, 5, [0], [4])
        assert transpose(coo).shape == (5, 2)

    def test_double_transpose_identity(self, small_coo):
        assert transpose(transpose(small_coo)) == small_coo


class TestDropSelfLoops:
    def test_removes_diagonal(self, small_coo):
        cleaned = drop_self_loops(small_coo)
        assert cleaned.nnz == 4
        assert not np.any(cleaned.rows == cleaned.cols)

    def test_no_loops_is_noop(self):
        coo = COOMatrix(3, 3, [0, 1], [1, 2])
        assert drop_self_loops(coo) == coo


class TestMergeDuplicates:
    def test_sums_values(self):
        coo = COOMatrix(2, 2, [0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0])
        merged = merge_duplicates(coo)
        assert merged.nnz == 2
        assert merged.to_dense()[0, 1] == pytest.approx(3.0)

    def test_idempotent(self, small_coo):
        once = merge_duplicates(small_coo)
        assert merge_duplicates(once) == once

    def test_preserves_dense(self, small_coo):
        assert np.array_equal(
            merge_duplicates(small_coo).to_dense(), small_coo.to_dense()
        )

    def test_empty(self):
        coo = COOMatrix(2, 2, [], [])
        assert merge_duplicates(coo).nnz == 0


class TestSymmetrize:
    def test_result_is_symmetric(self, small_coo):
        sym = symmetrize(small_coo)
        assert is_symmetric(sym)
        dense = sym.to_dense()
        assert np.array_equal(dense, dense.T)

    def test_values_are_a_plus_at(self, small_coo):
        dense = small_coo.to_dense()
        assert np.array_equal(symmetrize(small_coo).to_dense(), dense + dense.T)

    def test_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            symmetrize(COOMatrix(2, 3, [0], [2]))


class TestIsSymmetric:
    def test_true_case(self):
        coo = COOMatrix(2, 2, [0, 1], [1, 0])
        assert is_symmetric(coo)

    def test_false_case(self):
        assert not is_symmetric(COOMatrix(2, 2, [0], [1]))

    def test_rectangular_is_never_symmetric(self):
        assert not is_symmetric(COOMatrix(2, 3, [0], [0]))

    def test_value_asymmetry_detected(self):
        coo = COOMatrix(2, 2, [0, 1], [1, 0], [1.0, 2.0])
        assert not is_symmetric(coo)
