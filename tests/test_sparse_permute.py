"""Symmetric permutation semantics and permutation validation."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.permute import (
    check_permutation,
    invert_permutation,
    permute_coo,
    permute_symmetric,
)


def square_csr():
    coo = COOMatrix(4, 4, [0, 0, 1, 2, 3], [1, 3, 2, 0, 3], [1.0, 2.0, 3.0, 4.0, 5.0])
    return coo_to_csr(coo)


class TestCheckPermutation:
    def test_valid(self):
        out = check_permutation(np.asarray([2, 0, 1]), 3)
        assert out.dtype == np.int64

    def test_wrong_length(self):
        with pytest.raises(ShapeError):
            check_permutation(np.asarray([0, 1]), 3)

    def test_repeated_entry(self):
        with pytest.raises(ValidationError):
            check_permutation(np.asarray([0, 0, 1]), 3)

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            check_permutation(np.asarray([0, 1, 3]), 3)

    def test_negative(self):
        with pytest.raises(ValidationError):
            check_permutation(np.asarray([0, -1, 1]), 3)

    def test_float_rejected(self):
        with pytest.raises(ValidationError):
            check_permutation(np.asarray([0.0, 1.0]), 2)

    def test_empty(self):
        assert check_permutation(np.asarray([], dtype=np.int64), 0).size == 0


class TestInvert:
    def test_inverse_composes_to_identity(self):
        perm = np.asarray([2, 0, 3, 1])
        inv = invert_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(4))
        assert np.array_equal(inv[perm], np.arange(4))


class TestPermuteSymmetric:
    def test_entry_relocation(self):
        csr = square_csr()
        perm = np.asarray([3, 2, 1, 0])  # reverse
        permuted = permute_symmetric(csr, perm)
        dense = csr.to_dense()
        expected = dense[::-1, ::-1]
        assert np.array_equal(permuted.to_dense(), expected)

    def test_identity_is_noop(self):
        csr = square_csr()
        assert permute_symmetric(csr, np.arange(4)) == csr.sort_rows()

    def test_preserves_nnz_and_values_multiset(self):
        csr = square_csr()
        permuted = permute_symmetric(csr, np.asarray([1, 3, 0, 2]))
        assert permuted.nnz == csr.nnz
        assert sorted(permuted.values) == sorted(csr.values)

    def test_degree_multiset_preserved(self):
        csr = square_csr()
        permuted = permute_symmetric(csr, np.asarray([1, 3, 0, 2]))
        assert sorted(permuted.row_degrees()) == sorted(csr.row_degrees())

    def test_rejects_rectangular(self):
        coo = COOMatrix(2, 3, [0], [2])
        with pytest.raises(ShapeError):
            permute_symmetric(coo_to_csr(coo), np.arange(2))

    def test_roundtrip_with_inverse(self):
        csr = square_csr()
        perm = np.asarray([2, 0, 3, 1])
        back = permute_symmetric(permute_symmetric(csr, perm), invert_permutation(perm))
        assert back == csr.sort_rows()


class TestPermuteCoo:
    def test_matches_csr_path(self):
        coo = COOMatrix(3, 3, [0, 1, 2], [1, 2, 0])
        perm = np.asarray([1, 2, 0])
        via_coo = coo_to_csr(permute_coo(coo, perm))
        via_csr = permute_symmetric(coo_to_csr(coo), perm)
        assert via_coo == via_csr
