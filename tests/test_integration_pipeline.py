"""Cross-layer integration tests: the full pipeline hangs together."""

import numpy as np
import pytest

from repro.api import evaluate_ordering
from repro.cache import compulsory_misses
from repro.experiments.runner import ExperimentRunner
from repro.gpu.specs import scaled_platform
from repro.graphs.corpus import load_graph
from repro.reorder.registry import make_technique
from repro.sparse.permute import permute_symmetric
from repro.trace.kernel_traces import spmv_csr_trace


@pytest.fixture
def runner(tmp_path):
    return ExperimentRunner(profile="test", cache_dir=str(tmp_path / "cache"))


class TestApiRunnerAgreement:
    def test_same_traffic_through_both_paths(self, runner):
        """The convenience API and the experiment runner must model the
        same bytes for the same (matrix, technique, platform)."""
        graph = load_graph("test-comm")
        technique = "rabbit"
        record = runner.run("test-comm", technique)
        perm = runner.permutation("test-comm", technique).permutation
        run = evaluate_ordering(graph, perm, platform=runner.platform)
        assert run.traffic_bytes == record.traffic_bytes
        assert run.normalized_runtime == pytest.approx(record.normalized_runtime)


class TestCompulsoryAccounting:
    def test_measured_vs_analytic_compulsory(self):
        """The distinct-lines compulsory measurement must agree with the
        Section IV-B analytic formula to within line-rounding (no empty
        rows in this matrix)."""
        graph = load_graph("test-comm")
        trace = spmv_csr_trace(graph.adjacency)
        measured = compulsory_misses(trace.lines) * trace.line_bytes
        analytic = trace.analytic_compulsory_bytes
        assert measured == pytest.approx(analytic, rel=0.1)

    def test_compulsory_invariant_under_reordering(self):
        """Reordering changes locality, never the compulsory traffic."""
        graph = load_graph("test-comm")
        base = compulsory_misses(spmv_csr_trace(graph.adjacency).lines)
        for name in ("random", "rabbit", "rabbit++"):
            perm = make_technique(name).compute(graph)
            permuted = permute_symmetric(graph.adjacency, perm)
            reordered = compulsory_misses(spmv_csr_trace(permuted).lines)
            # X-region lines can shift by +-1 line from index packing.
            assert abs(reordered - base) <= base * 0.01


class TestPaperShapeEndToEnd:
    """The paper's headline qualitative claims, asserted end-to-end on
    the test corpus with no caching layer in between."""

    def test_observation1_reordering_approaches_ideal(self):
        graph = load_graph("test-comm")
        platform = scaled_platform("test")
        perm = make_technique("rabbit++").compute(graph)
        run = evaluate_ordering(graph, perm, platform=platform)
        assert run.normalized_traffic < 1.35

    def test_observation3_original_can_be_misleading(self):
        """The same structure behaves differently under different
        publisher orders: scrambled ~ random, native ~ good."""
        platform = scaled_platform("test")
        scrambled = load_graph("test-comm")  # scrambled publisher order
        native = load_graph("test-kmer")  # native chain-major order
        random_s = evaluate_ordering(
            scrambled, make_technique("random").compute(scrambled), platform=platform
        )
        original_s = evaluate_ordering(scrambled, platform=platform)
        assert original_s.normalized_traffic > 0.85 * random_s.normalized_traffic
        original_n = evaluate_ordering(native, platform=platform)
        assert original_n.normalized_traffic < 1.5

    def test_observation4_rabbit_broadly_effective(self):
        platform = scaled_platform("test")
        for name in ("test-comm", "test-mesh", "test-kmer", "test-social"):
            graph = load_graph(name)
            rabbit = evaluate_ordering(
                graph, make_technique("rabbit").compute(graph), platform=platform
            )
            random_run = evaluate_ordering(
                graph, make_technique("random").compute(graph), platform=platform
            )
            assert rabbit.normalized_traffic <= random_run.normalized_traffic, name

    def test_rabbitpp_helps_on_skewed_low_insularity_input(self):
        graph = load_graph("test-social")
        platform = scaled_platform("test")
        rabbit = evaluate_ordering(
            graph, make_technique("rabbit").compute(graph), platform=platform
        )
        rabbitpp = evaluate_ordering(
            graph, make_technique("rabbit++").compute(graph), platform=platform
        )
        assert rabbitpp.normalized_traffic < rabbit.normalized_traffic

    def test_mawi_anomaly_high_insularity_poor_performance(self):
        """star-burst: insularity near 1 yet far from ideal (giant
        community) — the paper's Section V-B corner case."""
        from repro.community.rabbit import rabbit_communities
        from repro.metrics.insularity import insularity
        from repro.graphs.generators import star_burst
        from repro.graphs.graph import Graph
        from repro.sparse.convert import coo_to_csr

        graph = Graph(coo_to_csr(star_burst(2048, 4, leaf_links=1, seed=9)))
        detection = rabbit_communities(graph)
        assert insularity(graph, detection.assignment) > 0.95
        assert detection.assignment.sizes().max() > 0.25 * 2048
        platform = scaled_platform("test")
        run = evaluate_ordering(
            graph,
            make_technique("rabbit").compute(graph),
            platform=platform,
        )
        # Despite near-perfect insularity, performance stays well away
        # from ideal relative to what tight-community matrices achieve.
        assert run.normalized_runtime > 1.15
