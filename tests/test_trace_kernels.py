"""Kernel trace builders: structure, counts, and collapse semantics."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.coo import COOMatrix
from repro.trace.kernel_traces import (
    spmm_csr_trace,
    spmv_coo_trace,
    spmv_csr_trace,
)


def sample_csr():
    # 3x3: row0 {1}, row1 {0, 2}, row2 {}
    return coo_to_csr(COOMatrix(3, 3, [0, 1, 1], [1, 0, 2]))


class TestSpmvCsrTrace:
    def test_no_consecutive_duplicates(self):
        trace = spmv_csr_trace(sample_csr())
        assert not np.any(trace.lines[1:] == trace.lines[:-1])

    def test_regions_present(self):
        trace = spmv_csr_trace(sample_csr())
        names = [name for name, _, _ in trace.regions]
        assert names == ["row_offsets", "coords", "values", "x", "y"]

    def test_irregular_count(self):
        trace = spmv_csr_trace(sample_csr())
        assert trace.n_irregular == 3  # one gather per non-zero

    def test_analytic_compulsory_formula(self):
        """Matches Section IV-B: (2N + (N+1) + 2*NNZ) * 4 bytes."""
        trace = spmv_csr_trace(sample_csr())
        assert trace.analytic_compulsory_bytes == (2 * 3 + 4 + 2 * 3) * 4

    def test_x_lines_follow_column_indices(self):
        csr = sample_csr()
        trace = spmv_csr_trace(csr)
        x_region = [r for r in trace.regions if r[0] == "x"][0]
        x_lines = trace.lines[(trace.lines >= x_region[1]) & (trace.lines < x_region[2])]
        # All columns map into line 0 of x here (3 elements < 8 per line),
        # but consecutive duplicate collapse may merge them; at least one
        # gather must appear.
        assert x_lines.size >= 1

    def test_empty_matrix(self):
        csr = coo_to_csr(COOMatrix(2, 2, [], []))
        trace = spmv_csr_trace(csr)
        assert trace.n_accesses > 0  # row offsets and y still stream

    def test_interleaved_schedule_reorders_rows(self):
        csr = coo_to_csr(COOMatrix(64, 64, np.arange(64), (np.arange(64) + 1) % 64))
        sequential = spmv_csr_trace(csr, schedule="sequential")
        interleaved = spmv_csr_trace(csr, schedule="interleaved", n_partitions=4)
        assert not np.array_equal(sequential.lines, interleaved.lines)
        # Same access multiset on the x region regardless of schedule.
        assert sequential.n_irregular == interleaved.n_irregular

    def test_bad_schedule(self):
        with pytest.raises(ValidationError):
            spmv_csr_trace(sample_csr(), schedule="diagonal")

    def test_larger_line_size_shrinks_distinct_lines(self):
        from repro.cache import compulsory_misses

        csr = coo_to_csr(
            COOMatrix(64, 64, np.repeat(np.arange(64), 2), np.tile(np.arange(2), 64))
        )
        small = spmv_csr_trace(csr, line_bytes=32)
        large = spmv_csr_trace(csr, line_bytes=128)
        # The trace length is unchanged (regions alternate per access),
        # but larger lines cover the arrays with fewer distinct lines.
        assert compulsory_misses(large.lines) < compulsory_misses(small.lines)


class TestSpmvCooTrace:
    def test_counts(self):
        coo = csr_to_coo(sample_csr())
        trace = spmv_coo_trace(coo)
        assert trace.kernel == "spmv-coo"
        assert trace.n_irregular == coo.nnz
        names = [name for name, _, _ in trace.regions]
        assert names == ["rows", "cols", "values", "x", "y"]

    def test_analytic_compulsory(self):
        coo = csr_to_coo(sample_csr())
        trace = spmv_coo_trace(coo)
        assert trace.analytic_compulsory_bytes == (2 * 3 + 3 * 3) * 4

    def test_row_sorted_processing(self):
        # Even if the COO arrives shuffled, the trace walks row-major.
        coo = COOMatrix(4, 4, [3, 0, 2], [0, 1, 2])
        trace = spmv_coo_trace(coo)
        assert trace.n_accesses > 0

    def test_unsorted_entries_indexed_consistently(self):
        """Regression: all five regions must follow the same row-sorted
        walk.  The stream reads used to be indexed 0..nnz-1 while the
        x/y gathers followed argsort(rows), so a shuffled COO traced a
        walk no real kernel performs."""
        rng = np.random.default_rng(7)
        nnz = 40
        rows = rng.integers(0, 16, size=nnz)
        cols = rng.integers(0, 16, size=nnz)
        coo = COOMatrix(16, 16, rows, cols)
        # One element per line makes line IDs positional: region base
        # plus element index.
        trace = spmv_coo_trace(coo, element_bytes=4, line_bytes=4)
        # Consecutive accesses alternate regions, so nothing collapses.
        assert trace.n_accesses == 5 * nnz
        bases = {name: start for name, start, _ in trace.regions}
        order = np.argsort(rows, kind="stable")
        lines = trace.lines
        np.testing.assert_array_equal(lines[0::5] - bases["rows"], order)
        np.testing.assert_array_equal(lines[1::5] - bases["cols"], order)
        np.testing.assert_array_equal(lines[2::5] - bases["values"], order)
        np.testing.assert_array_equal(lines[3::5] - bases["x"], cols[order])
        np.testing.assert_array_equal(lines[4::5] - bases["y"], rows[order])

    def test_sorted_coo_trace_unchanged_by_fix(self):
        """For a row-sorted COO the walk order is the identity, so the
        trace equals the pre-fix streaming behaviour."""
        coo = csr_to_coo(sample_csr())
        assert (np.diff(coo.rows) >= 0).all()
        trace = spmv_coo_trace(coo, element_bytes=4, line_bytes=4)
        bases = {name: start for name, start, _ in trace.regions}
        np.testing.assert_array_equal(
            trace.lines[0::5] - bases["rows"], np.arange(coo.nnz)
        )


class TestSpmmCsrTrace:
    def test_k4_single_line_gather(self):
        trace = spmm_csr_trace(sample_csr(), k=4)
        assert trace.kernel == "spmm-csr-4"
        assert trace.n_irregular == 3  # span 1 per gather (16 B < 32 B)

    def test_k256_multi_line_gather(self):
        trace = spmm_csr_trace(sample_csr(), k=256)
        # 256 * 4 B = 1 KiB per gather = 32 lines of 32 B.
        assert trace.n_irregular == 3 * 32

    def test_analytic_compulsory(self):
        trace = spmm_csr_trace(sample_csr(), k=4)
        assert trace.analytic_compulsory_bytes == ((3 + 1) + 2 * 3 + 2 * 3 * 4) * 4

    def test_k_validated(self):
        with pytest.raises(ValidationError):
            spmm_csr_trace(sample_csr(), k=0)

    def test_trace_grows_with_k(self):
        small = spmm_csr_trace(sample_csr(), k=4)
        large = spmm_csr_trace(sample_csr(), k=256)
        assert large.n_accesses > small.n_accesses


class TestTraceVsSimulator:
    def test_streaming_regions_have_compulsory_misses_only(self):
        """With an infinite cache, misses equal distinct lines — and the
        streaming regions (coords/values) see exactly their size."""
        from repro.cache.config import CacheConfig
        from repro.cache import simulate

        rng = np.random.default_rng(5)
        coo = COOMatrix(128, 128, rng.integers(0, 128, 600), rng.integers(0, 128, 600))
        csr = coo_to_csr(coo)
        trace = spmv_csr_trace(csr)
        huge = CacheConfig(capacity_bytes=1 << 20, line_bytes=32, ways=1 << 15)
        stats = simulate(trace.lines, huge, regions=trace.regions)
        coords_region = [r for r in trace.regions if r[0] == "coords"][0]
        coords_lines = coords_region[2] - coords_region[1]
        # coords region: misses equal its line count (minus guard rounding).
        assert stats.region_misses["coords"] in (coords_lines, coords_lines - 1)
