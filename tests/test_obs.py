"""Observability layer: spans, counters, sinks, progress, global state."""

import io
import json
import threading

import pytest

from repro import obs
from repro.obs import (
    CounterRegistry,
    FakeClock,
    Instrumentation,
    JsonlSink,
    MemorySink,
    NullSink,
    ProgressReporter,
    configure,
    format_span_totals,
    get_obs,
    reset,
    using,
)


@pytest.fixture(autouse=True)
def _clean_global_obs():
    reset()
    yield
    reset()


class TestFakeClock:
    def test_tick_advances_per_read(self):
        clock = FakeClock(start=10.0, tick=0.5)
        assert clock.now() == 10.0
        assert clock.now() == 10.5

    def test_advance(self):
        clock = FakeClock()
        clock.advance(3.0)
        assert clock.now() == 3.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)


class TestSpans:
    def test_span_duration_from_injected_clock(self):
        instr = Instrumentation(clock=FakeClock(tick=1.0))
        with instr.span("work") as span:
            pass
        assert span.seconds == 1.0
        assert span.status == "ok"

    def test_nested_spans_build_paths(self):
        sink = MemorySink()
        instr = Instrumentation(sink=sink, clock=FakeClock(tick=1.0))
        with instr.span("outer"):
            with instr.span("inner") as inner:
                pass
        assert inner.path == "outer/inner"
        paths = [e["path"] for e in sink.by_kind("span")]
        assert paths == ["outer/inner", "outer"]  # children finish first

    def test_exception_recorded_and_stack_popped(self):
        sink = MemorySink()
        instr = Instrumentation(sink=sink, clock=FakeClock(tick=1.0))
        with pytest.raises(ValueError):
            with instr.span("broken") as span:
                raise ValueError("boom")
        assert span.status == "error"
        assert "ValueError" in span.error
        # The stack unwound: the next span is a root again.
        with instr.span("after") as after:
            pass
        assert after.path == "after"
        event = sink.by_kind("span")[0]
        assert event["status"] == "error"

    def test_span_totals_aggregate_by_name(self):
        instr = Instrumentation(clock=FakeClock(tick=2.0))
        for _ in range(3):
            with instr.span("stage"):
                pass
        totals = instr.span_totals()
        assert totals["stage"].calls == 3
        assert totals["stage"].seconds == 6.0

    def test_thread_local_stacks(self):
        instr = Instrumentation(clock=FakeClock(tick=0.0))
        paths = []

        def worker():
            with instr.span("worker") as span:
                paths.append(span.path)

        with instr.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker thread does not inherit the main thread's stack.
        assert paths == ["worker"]


class TestDisabledMode:
    def test_span_yields_none_and_emits_nothing(self):
        sink = MemorySink()
        instr = Instrumentation(sink=sink, enabled=False)
        with instr.span("quiet") as span:
            pass
        assert span is None
        assert sink.events == []
        assert instr.span_totals() == {}

    def test_counters_not_recorded(self):
        instr = Instrumentation(enabled=False)
        instr.counter("hits")
        instr.gauge("depth", 3)
        instr.add_counters({"a": 1})
        snapshot = instr.counters.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_flush_emits_nothing(self):
        sink = MemorySink()
        instr = Instrumentation(sink=sink, enabled=False)
        instr.flush()
        assert sink.events == []


class TestCounters:
    def test_add_and_snapshot(self):
        registry = CounterRegistry()
        registry.add("x")
        registry.add("x", 4)
        registry.add_many({"y": 2, "x": 1})
        registry.set_gauge("depth", 7)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"x": 6, "y": 2}
        assert snapshot["gauges"] == {"depth": 7}
        assert registry.get("x") == 6
        assert registry.gauge("depth") == 7

    def test_reset(self):
        registry = CounterRegistry()
        registry.add("x")
        registry.reset()
        assert registry.get("x") == 0

    def test_concurrent_adds(self):
        registry = CounterRegistry()

        def hammer():
            for _ in range(1000):
                registry.add("n")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.get("n") == 4000


class TestJsonlSink:
    def test_schema_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        instr = Instrumentation(
            sink=JsonlSink(path=str(path)),
            clock=FakeClock(tick=1.0),
            run_id="testrun",
            tags={"suite": "unit"},
        )
        with instr.span("stage", matrix="m1"):
            pass
        instr.counter("memo.run.hit", 2)
        instr.flush()
        instr.close()

        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(events) == 2
        span, counters = events
        assert span["kind"] == "span"
        assert span["name"] == "stage"
        assert span["path"] == "stage"
        assert span["seconds"] == 1.0
        assert span["status"] == "ok"
        assert span["run_id"] == "testrun"
        assert span["tags"] == {"suite": "unit", "matrix": "m1"}
        assert counters["kind"] == "counters"
        assert counters["counters"] == {"memo.run.hit": 2}

    def test_stream_mode_does_not_close_foreign_stream(self):
        stream = io.StringIO()
        sink = JsonlSink(stream=stream)
        sink.emit({"kind": "span"})
        sink.close()
        assert not stream.closed
        assert json.loads(stream.getvalue()) == {"kind": "span"}

    def test_requires_exactly_one_target(self):
        with pytest.raises(ValueError):
            JsonlSink()
        with pytest.raises(ValueError):
            JsonlSink(path="x", stream=io.StringIO())


class TestGlobalState:
    def test_default_is_disabled(self):
        assert get_obs().enabled is False

    def test_configure_and_reset(self):
        instr = configure(sink=MemorySink())
        assert get_obs() is instr
        reset()
        assert get_obs().enabled is False

    def test_using_restores_previous(self):
        scoped = Instrumentation(sink=MemorySink())
        before = get_obs()
        with using(scoped):
            assert get_obs() is scoped
        assert get_obs() is before

    def test_using_restores_on_exception(self):
        before = get_obs()
        with pytest.raises(RuntimeError):
            with using(Instrumentation()):
                raise RuntimeError
        assert get_obs() is before


class TestProgress:
    def test_non_tty_prints_one_line_per_update(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            3, label="sweep", stream=stream, clock=FakeClock(tick=1.0)
        )
        reporter.update("fig2")
        reporter.update("fig3")
        reporter.finish()
        lines = stream.getvalue().splitlines()
        assert lines[0] == "[1/3] sweep: fig2 (1.00s)"
        assert lines[1] == "[2/3] sweep: fig3 (1.00s)"

    def test_disabled_reporter_is_silent(self):
        stream = io.StringIO()
        reporter = ProgressReporter(3, stream=stream, enabled=False)
        reporter.update("fig2")
        reporter.finish()
        assert stream.getvalue() == ""


class TestFormatSpanTotals:
    def test_table_shape_and_shares(self):
        instr = Instrumentation(clock=FakeClock(tick=1.0))
        with instr.span("slow"):
            with instr.span("fast"):
                pass
        text = format_span_totals(instr.span_totals(), total_seconds=4.0)
        assert "stage" in text and "share" in text
        slow_line = next(l for l in text.splitlines() if l.startswith("slow"))
        assert "75.0%" in slow_line  # 3s of the 4s wall

    def test_empty(self):
        assert format_span_totals({}) == "(no spans recorded)"


class TestRssTracking:
    def test_peak_rss_kb_positive_on_posix(self):
        from repro.obs.rss import peak_rss_kb

        peak = peak_rss_kb()
        assert peak is not None and peak > 0

    def test_peak_rss_is_monotonic(self):
        from repro.obs.rss import peak_rss_kb

        first = peak_rss_kb()
        ballast = bytearray(8 << 20)  # noqa: F841 - grow the high-water mark
        assert peak_rss_kb() >= first

    def test_span_records_rss_gauges_when_enabled(self):
        instr = Instrumentation(track_rss=True)
        with instr.span("detect"):
            pass
        gauges = instr.counters.snapshot()["gauges"]
        assert gauges["rss.peak_kb.detect"] > 0
        assert gauges["rss.peak_kb"] >= gauges["rss.peak_kb.detect"]

    def test_rss_gauges_off_by_default(self):
        instr = Instrumentation()
        with instr.span("detect"):
            pass
        gauges = instr.counters.snapshot()["gauges"]
        assert not any(name.startswith("rss.") for name in gauges)

    def test_rss_gauges_merge_max_wins(self):
        registry = CounterRegistry()
        registry.set_gauge("rss.peak_kb", 100)
        registry.merge_gauges({"rss.peak_kb": 250})
        registry.merge_gauges({"rss.peak_kb": 50})
        assert registry.snapshot()["gauges"]["rss.peak_kb"] == 250
