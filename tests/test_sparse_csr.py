"""Unit tests for the CSR container."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sparse.csr import CSRMatrix


def sample_csr() -> CSRMatrix:
    # 3x4: row0 -> cols {1, 3}; row1 -> {}; row2 -> {0, 2, 3}
    return CSRMatrix(
        3, 4,
        row_offsets=[0, 2, 2, 5],
        col_indices=[1, 3, 0, 2, 3],
        values=[1.0, 2.0, 3.0, 4.0, 5.0],
    )


class TestConstruction:
    def test_basic_properties(self):
        csr = sample_csr()
        assert csr.shape == (3, 4)
        assert csr.nnz == 5
        assert not csr.is_square

    def test_default_values(self):
        csr = CSRMatrix(2, 2, [0, 1, 2], [0, 1])
        assert np.array_equal(csr.values, [1.0, 1.0])

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(FormatError):
            CSRMatrix(2, 2, [1, 1, 2], [0, 1])

    def test_offsets_must_end_at_nnz(self):
        with pytest.raises(FormatError):
            CSRMatrix(2, 2, [0, 1, 3], [0, 1])

    def test_offsets_must_be_monotone(self):
        with pytest.raises(FormatError):
            CSRMatrix(2, 2, [0, 2, 1], [0])

    def test_offsets_length(self):
        with pytest.raises(ShapeError):
            CSRMatrix(2, 2, [0, 2], [0, 1])

    def test_col_out_of_bounds(self):
        with pytest.raises(FormatError):
            CSRMatrix(2, 2, [0, 1, 2], [0, 2])

    def test_values_shape_mismatch(self):
        with pytest.raises(ShapeError):
            CSRMatrix(2, 2, [0, 1, 2], [0, 1], values=[1.0])

    def test_empty(self):
        csr = CSRMatrix(0, 0, [0], [])
        assert csr.nnz == 0


class TestAccessors:
    def test_row_degrees(self):
        assert np.array_equal(sample_csr().row_degrees(), [2, 0, 3])

    def test_col_degrees(self):
        assert np.array_equal(sample_csr().col_degrees(), [1, 1, 1, 2])

    def test_row_slice(self):
        csr = sample_csr()
        assert np.array_equal(csr.row_slice(0), [1, 3])
        assert csr.row_slice(1).size == 0
        assert np.array_equal(csr.row_slice(2), [0, 2, 3])

    def test_row_values(self):
        assert np.array_equal(sample_csr().row_values(2), [3.0, 4.0, 5.0])

    def test_row_slice_out_of_range(self):
        with pytest.raises(IndexError):
            sample_csr().row_slice(3)
        with pytest.raises(IndexError):
            sample_csr().row_values(-1)

    def test_to_dense(self):
        dense = sample_csr().to_dense()
        assert dense.shape == (3, 4)
        assert dense[0, 1] == 1.0
        assert dense[2, 3] == 5.0
        assert dense.sum() == pytest.approx(15.0)


class TestSorting:
    def test_has_sorted_rows_true(self):
        assert sample_csr().has_sorted_rows()

    def test_has_sorted_rows_false_and_sort(self):
        csr = CSRMatrix(1, 4, [0, 3], [3, 0, 2], [1.0, 2.0, 3.0])
        assert not csr.has_sorted_rows()
        sorted_csr = csr.sort_rows()
        assert sorted_csr.has_sorted_rows()
        assert np.array_equal(sorted_csr.col_indices, [0, 2, 3])
        assert np.array_equal(sorted_csr.values, [2.0, 3.0, 1.0])
        # Original untouched.
        assert np.array_equal(csr.col_indices, [3, 0, 2])

    def test_sort_preserves_dense(self):
        csr = CSRMatrix(2, 3, [0, 2, 3], [2, 0, 1], [1.0, 2.0, 3.0])
        assert np.array_equal(csr.sort_rows().to_dense(), csr.to_dense())


class TestEquality:
    def test_equality(self):
        assert sample_csr() == sample_csr()

    def test_inequality(self):
        other = sample_csr()
        other.values[0] = 42.0
        assert sample_csr() != other

    def test_copy_independent(self):
        csr = sample_csr()
        clone = csr.copy()
        clone.col_indices[0] = 0
        assert csr.col_indices[0] == 1

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(sample_csr())
