"""RCM and SlashBurn orderings."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs.corpus import load_graph
from repro.graphs.generators import grid_2d, star_burst
from repro.graphs.graph import Graph
from repro.metrics.locality import matrix_bandwidth
from repro.reorder.rcm import ReverseCuthillMcKee
from repro.reorder.slashburn import SlashBurn
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.permute import check_permutation, permute_symmetric

scipy_sparse = pytest.importorskip("scipy.sparse")
scipy_csgraph = pytest.importorskip("scipy.sparse.csgraph")


class TestRCM:
    def test_path_graph_bandwidth_one(self, path_graph):
        perm = ReverseCuthillMcKee().compute(path_graph)
        reordered = permute_symmetric(path_graph.adjacency, perm)
        assert matrix_bandwidth(reordered) == 1

    def test_reduces_bandwidth_of_scrambled_mesh(self):
        graph = load_graph("test-mesh")  # scrambled 24x24 grid
        perm = ReverseCuthillMcKee().compute(graph)
        before = matrix_bandwidth(graph.adjacency)
        after = matrix_bandwidth(permute_symmetric(graph.adjacency, perm))
        assert after < before / 2

    def test_comparable_to_scipy_rcm(self):
        graph = load_graph("test-mesh")
        ours = ReverseCuthillMcKee().compute(graph)
        our_bw = matrix_bandwidth(permute_symmetric(graph.adjacency, ours))

        adjacency = graph.adjacency
        scipy_matrix = scipy_sparse.csr_matrix(
            (
                np.ones(adjacency.nnz),
                adjacency.col_indices,
                adjacency.row_offsets,
            ),
            shape=adjacency.shape,
        )
        scipy_visit = scipy_csgraph.reverse_cuthill_mckee(scipy_matrix, symmetric_mode=True)
        scipy_perm = np.empty(graph.n_nodes, dtype=np.int64)
        scipy_perm[scipy_visit] = np.arange(graph.n_nodes)
        scipy_bw = matrix_bandwidth(permute_symmetric(graph.adjacency, scipy_perm))
        assert our_bw <= 1.5 * scipy_bw

    def test_disconnected_components_handled(self):
        coo = COOMatrix(6, 6, [0, 1, 3, 4], [1, 0, 4, 3])
        graph = Graph(coo_to_csr(coo))
        check_permutation(ReverseCuthillMcKee().compute(graph), 6)

    def test_empty_graph(self):
        graph = Graph(coo_to_csr(COOMatrix(0, 0, [], [])))
        assert ReverseCuthillMcKee().compute(graph).size == 0


class TestSlashBurn:
    def test_valid_permutation(self):
        graph = load_graph("test-social")
        check_permutation(SlashBurn().compute(graph), graph.n_nodes)

    def test_hubs_get_lowest_ids(self):
        coo = star_burst(200, 2, leaf_links=1, seed=1)
        graph = Graph(coo_to_csr(coo))
        perm = SlashBurn(k_fraction=0.01).compute(graph)
        degrees = graph.to_undirected().out_degrees()
        top_hub = int(np.argmax(degrees))
        assert perm[top_hub] < 2

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            SlashBurn(k_fraction=0.0)
        with pytest.raises(ValidationError):
            SlashBurn(k_fraction=1.5)
        with pytest.raises(ValidationError):
            SlashBurn(max_rounds=0)

    def test_mesh_graph_terminates(self):
        graph = Graph(coo_to_csr(grid_2d(12, 12)))
        check_permutation(SlashBurn().compute(graph), 144)

    def test_deterministic(self):
        graph = load_graph("test-social")
        assert np.array_equal(SlashBurn().compute(graph), SlashBurn().compute(graph))
