"""Property-based tests for community detection and metrics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.community.assignment import CommunityAssignment
from repro.community.modularity import modularity
from repro.community.rabbit import rabbit_communities
from repro.graphs.graph import Graph
from repro.metrics.insularity import insular_mask, insularity
from repro.metrics.skew import degree_skew
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.permute import check_permutation


@st.composite
def random_graphs(draw, max_n=24, max_edges=60):
    n = draw(st.integers(2, max_n))
    n_edges = draw(st.integers(0, max_edges))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, n_edges)
    v = rng.integers(0, n, n_edges)
    keep = u != v
    u, v = u[keep], v[keep]
    coo = COOMatrix(n, n, np.concatenate([u, v]), np.concatenate([v, u]))
    from repro.sparse.ops import merge_duplicates

    return Graph(coo_to_csr(merge_duplicates(coo)))


@st.composite
def assignments_for(draw, n):
    k = draw(st.integers(1, n))
    labels = draw(st.lists(st.integers(0, k - 1), min_size=n, max_size=n))
    return CommunityAssignment(labels)


class TestMetricBounds:
    @given(st.data(), random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_insularity_in_unit_interval(self, data, graph):
        assignment = data.draw(assignments_for(graph.n_nodes))
        assert 0.0 <= insularity(graph, assignment) <= 1.0

    @given(st.data(), random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_modularity_bounds(self, data, graph):
        assignment = data.draw(assignments_for(graph.n_nodes))
        q = modularity(graph, assignment)
        assert -1.0 <= q <= 1.0

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_single_community_extremes(self, graph):
        whole = CommunityAssignment(np.zeros(graph.n_nodes, dtype=np.int64))
        assert insularity(graph, whole) == 1.0
        assert insular_mask(graph, whole).all()
        assert abs(modularity(graph, whole)) < 1e-9

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_skew_in_unit_interval(self, graph):
        assert 0.0 <= degree_skew(graph) <= 1.0

    @given(st.data(), random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_insular_nodes_have_no_crossing_edges(self, data, graph):
        assignment = data.draw(assignments_for(graph.n_nodes))
        mask = insular_mask(graph, assignment)
        undirected = graph.to_undirected()
        labels = assignment.labels
        for node in np.flatnonzero(mask):
            neighbors = undirected.neighbors(int(node))
            assert np.all(labels[neighbors] == labels[node])


class TestRabbitProperties:
    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_ordering_is_valid_permutation(self, graph):
        result = rabbit_communities(graph)
        check_permutation(result.dendrogram.ordering(), graph.n_nodes)

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_merges_never_decrease_modularity_below_singletons(self, graph):
        """Rabbit only accepts positive-gain merges, so the final
        partition cannot be worse than all-singletons."""
        result = rabbit_communities(graph)
        singletons = CommunityAssignment(np.arange(graph.n_nodes))
        assert modularity(graph, result.assignment) >= modularity(
            graph, singletons
        ) - 1e-9

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_communities_contiguous_in_ordering(self, graph):
        result = rabbit_communities(graph)
        labels = result.assignment.labels
        order = result.dendrogram.dfs_leaf_order()
        changes = int(np.sum(labels[order][1:] != labels[order][:-1]))
        assert changes == result.assignment.n_communities - 1
