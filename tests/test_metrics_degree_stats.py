"""Degree-distribution statistics."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs.corpus import load_graph
from repro.metrics.degree_stats import (
    degree_statistics,
    gini_coefficient,
    powerlaw_alpha,
)


class TestGini:
    def test_all_equal_is_zero(self):
        assert gini_coefficient(np.asarray([5, 5, 5, 5])) == pytest.approx(0.0)

    def test_one_owner_approaches_one(self):
        values = np.zeros(100)
        values[0] = 1000
        assert gini_coefficient(values) > 0.95

    def test_known_value(self):
        # Two values {0, 1}: G = 0.5.
        assert gini_coefficient(np.asarray([0.0, 1.0])) == pytest.approx(0.5)

    def test_zero_total(self):
        assert gini_coefficient(np.zeros(4)) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            gini_coefficient(np.asarray([-1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            gini_coefficient(np.asarray([]))


class TestPowerlawAlpha:
    def test_recovers_planted_exponent(self):
        """Sampling from a discrete power law recovers alpha.

        The MLE's 0.5 continuity correction is accurate for
        ``x_min >= ~5`` (Clauset et al.), so the fit uses a raised
        cutoff.
        """
        rng = np.random.default_rng(0)
        alpha_true = 2.5
        u = rng.random(200_000)
        degrees = np.floor((1 - u) ** (-1 / (alpha_true - 1))).astype(np.int64)
        estimated = powerlaw_alpha(degrees, x_min=10)
        assert estimated == pytest.approx(alpha_true, rel=0.1)

    def test_all_at_x_min_gives_known_constant(self):
        # ln(1 / 0.5) = ln 2 per sample -> alpha = 1 + 1/ln 2.
        assert powerlaw_alpha(np.asarray([1, 1, 1])) == pytest.approx(
            1 + 1 / math.log(2)
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            powerlaw_alpha(np.asarray([1, 2]), x_min=0)
        with pytest.raises(ValidationError):
            powerlaw_alpha(np.asarray([1, 2]), x_min=10)


class TestDegreeStatistics:
    def test_scale_free_vs_mesh(self):
        scale_free = degree_statistics(load_graph("test-social"))
        mesh = degree_statistics(load_graph("test-mesh"))
        assert scale_free.gini > mesh.gini
        assert scale_free.max_degree > mesh.max_degree

    def test_fields_consistent(self):
        stats = degree_statistics(load_graph("test-mesh"))
        assert stats.min_degree <= stats.median_degree <= stats.p90_degree
        assert stats.p90_degree <= stats.max_degree
        assert stats.n_nodes == 576

    def test_empty_graph_rejected(self):
        from repro.graphs.graph import Graph
        from repro.sparse.convert import coo_to_csr
        from repro.sparse.coo import COOMatrix

        with pytest.raises(ValidationError):
            degree_statistics(Graph(coo_to_csr(COOMatrix(0, 0, [], []))))
