"""RABBIT++ and the Table II design space."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs.corpus import load_graph
from repro.metrics.insularity import insular_mask
from repro.reorder.rabbit import RabbitOrder
from repro.reorder.rabbitpp import HubPolicy, RabbitPlusPlus, table2_variants
from repro.sparse.permute import check_permutation


class TestConfiguration:
    def test_default_is_paper_rabbitpp(self):
        technique = RabbitPlusPlus()
        assert technique.name == "rabbit++"
        assert technique.group_insular
        assert technique.hub_policy is HubPolicy.GROUP
        assert technique.segment_policy == "insular-first"

    def test_names_cover_design_space(self):
        assert RabbitPlusPlus(group_insular=False, hub_policy=HubPolicy.SORT).name == "rabbit+hubsort"
        assert RabbitPlusPlus(group_insular=True, hub_policy=HubPolicy.NONE).name == "rabbit+insular"
        assert (
            RabbitPlusPlus(segment_policy="hubs-first").name == "rabbit++/hubs-first"
        )

    def test_bad_segment_policy(self):
        with pytest.raises(ValidationError):
            RabbitPlusPlus(segment_policy="middle-out")

    def test_bad_hub_policy(self):
        with pytest.raises(ValidationError):
            RabbitPlusPlus(hub_policy="sort")


class TestSegmentSemantics:
    def test_insular_nodes_first(self):
        graph = load_graph("test-social")
        technique = RabbitPlusPlus()
        perm = technique.compute(graph)
        insular = technique.last_result.insular
        n_insular = int(insular.sum())
        assert 0 < n_insular < graph.n_nodes
        # Every insular node must be ordered before every non-insular one.
        assert perm[insular].max() < perm[~insular].min()

    def test_hubs_follow_insular_segment(self):
        graph = load_graph("test-social")
        technique = RabbitPlusPlus()
        perm = technique.compute(graph)
        insular = technique.last_result.insular
        hubs = technique.last_result.hubs
        hub_section = hubs & ~insular
        rest = ~hubs & ~insular
        if hub_section.any() and rest.any():
            assert perm[hub_section].max() < perm[rest].min()

    def test_insular_only_variant_preserves_rabbit_relative_order(self):
        graph = load_graph("test-social")
        rabbit = RabbitOrder()
        rabbit_perm = rabbit.compute(graph)
        technique = RabbitPlusPlus(group_insular=True, hub_policy=HubPolicy.NONE)
        perm = technique.compute(graph)
        insular = technique.last_result.insular
        for segment in (np.flatnonzero(insular), np.flatnonzero(~insular)):
            # Within a segment, RABBIT's relative order must be intact.
            rabbit_ranks = rabbit_perm[segment]
            new_ranks = perm[segment]
            assert np.array_equal(np.argsort(rabbit_ranks), np.argsort(new_ranks))

    def test_hubsort_orders_hubs_by_degree(self):
        graph = load_graph("test-social")
        technique = RabbitPlusPlus(group_insular=False, hub_policy=HubPolicy.SORT)
        perm = technique.compute(graph)
        hubs = technique.last_result.hubs
        in_degrees = np.asarray(graph.in_degrees())
        hub_ids = np.flatnonzero(hubs)
        by_new_order = hub_ids[np.argsort(perm[hub_ids])]
        assert np.all(np.diff(in_degrees[by_new_order]) <= 0)

    def test_no_modifications_equals_rabbit(self):
        graph = load_graph("test-comm")
        plain = RabbitOrder().compute(graph)
        unmodified = RabbitPlusPlus(
            group_insular=False, hub_policy=HubPolicy.NONE
        ).compute(graph)
        assert np.array_equal(plain, unmodified)

    def test_insular_mask_consistent_with_metrics(self):
        graph = load_graph("test-comm")
        technique = RabbitPlusPlus()
        technique.compute(graph)
        expected = insular_mask(graph, technique.last_result.assignment)
        assert np.array_equal(technique.last_result.insular, expected)


class TestTable2Variants:
    def test_six_cells(self):
        variants = table2_variants()
        assert len(variants) == 6
        rows = {row for row, _, _ in variants}
        assert rows == {"RABBIT", "RABBIT+HUBSORT", "RABBIT+HUBGROUP"}

    def test_all_variants_produce_valid_permutations(self):
        graph = load_graph("test-social")
        for _, _, technique in table2_variants():
            check_permutation(technique.compute(graph), graph.n_nodes)
