"""Numerical correctness of the reference kernels (vs. dense and scipy)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.coo import COOMatrix
from repro.sparse.kernels import spmm_csr, spmv_coo, spmv_csr

scipy_sparse = pytest.importorskip("scipy.sparse")


def random_coo(n_rows, n_cols, nnz, seed=0):
    rng = np.random.default_rng(seed)
    return COOMatrix(
        n_rows,
        n_cols,
        rng.integers(0, n_rows, nnz),
        rng.integers(0, n_cols, nnz),
        rng.standard_normal(nnz),
    )


class TestSpmvCsr:
    def test_against_dense(self):
        coo = random_coo(6, 6, 14, seed=1)
        csr = coo_to_csr(coo)
        x = np.arange(6, dtype=np.float64)
        assert np.allclose(spmv_csr(csr, x), coo.to_dense() @ x)

    def test_against_scipy(self):
        coo = random_coo(40, 40, 200, seed=2)
        csr = coo_to_csr(coo)
        x = np.random.default_rng(3).standard_normal(40)
        reference = scipy_sparse.coo_matrix(
            (coo.values, (coo.rows, coo.cols)), shape=coo.shape
        ).tocsr() @ x
        assert np.allclose(spmv_csr(csr, x), reference)

    def test_rectangular(self):
        coo = random_coo(3, 7, 10, seed=4)
        x = np.ones(7)
        assert np.allclose(spmv_csr(coo_to_csr(coo), x), coo.to_dense() @ x)

    def test_empty_rows_give_zero(self):
        csr = coo_to_csr(COOMatrix(3, 3, [0], [0], [2.0]))
        y = spmv_csr(csr, np.ones(3))
        assert y[1] == 0.0 and y[2] == 0.0

    def test_shape_mismatch(self):
        csr = coo_to_csr(random_coo(3, 4, 5))
        with pytest.raises(ShapeError):
            spmv_csr(csr, np.ones(3))


class TestSpmvCoo:
    def test_matches_csr_kernel(self):
        coo = random_coo(10, 10, 30, seed=5)
        x = np.random.default_rng(6).standard_normal(10)
        assert np.allclose(spmv_coo(coo, x), spmv_csr(coo_to_csr(coo), x))

    def test_duplicates_accumulate(self):
        coo = COOMatrix(2, 2, [0, 0], [1, 1], [2.0, 3.0])
        assert np.allclose(spmv_coo(coo, np.asarray([0.0, 1.0])), [5.0, 0.0])

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            spmv_coo(random_coo(3, 4, 5), np.ones(5))


class TestSpmmCsr:
    def test_against_dense(self):
        coo = random_coo(5, 6, 12, seed=7)
        dense_b = np.random.default_rng(8).standard_normal((6, 3))
        out = spmm_csr(coo_to_csr(coo), dense_b)
        assert np.allclose(out, coo.to_dense() @ dense_b)

    def test_k_equals_one_matches_spmv(self):
        coo = random_coo(8, 8, 20, seed=9)
        csr = coo_to_csr(coo)
        x = np.random.default_rng(10).standard_normal(8)
        assert np.allclose(spmm_csr(csr, x[:, None])[:, 0], spmv_csr(csr, x))

    def test_shape_mismatch(self):
        csr = coo_to_csr(random_coo(3, 4, 5))
        with pytest.raises(ShapeError):
            spmm_csr(csr, np.ones((3, 2)))

    def test_one_dimensional_b_rejected(self):
        csr = coo_to_csr(random_coo(3, 4, 5))
        with pytest.raises(ShapeError):
            spmm_csr(csr, np.ones(4))


class TestPermutationInvariance:
    def test_spmv_commutes_with_symmetric_permutation(self):
        """SpMV on a permuted matrix equals permuted SpMV — the core
        correctness property of reordering as an optimization."""
        from repro.sparse.permute import permute_symmetric

        coo = random_coo(12, 12, 50, seed=11)
        csr = coo_to_csr(coo)
        rng = np.random.default_rng(12)
        perm = rng.permutation(12)
        x = rng.standard_normal(12)

        y = spmv_csr(csr, x)
        permuted = permute_symmetric(csr, perm)
        x_permuted = np.empty_like(x)
        x_permuted[perm] = x
        y_permuted = spmv_csr(permuted, x_permuted)
        assert np.allclose(y_permuted[perm], y)
