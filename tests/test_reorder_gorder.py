"""GOrder greedy window ordering."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs.corpus import load_graph
from repro.graphs.generators import planted_partition
from repro.graphs.graph import Graph
from repro.metrics.locality import average_neighbor_span
from repro.reorder.gorder import GOrder
from repro.sparse.convert import coo_to_csr
from repro.sparse.permute import check_permutation, permute_symmetric


class TestValidation:
    def test_window_positive(self):
        with pytest.raises(ValidationError):
            GOrder(window=0)

    def test_max_expand_positive_or_none(self):
        with pytest.raises(ValidationError):
            GOrder(max_expand=0)
        GOrder(max_expand=None)  # allowed


class TestBehaviour:
    def test_valid_permutation(self, two_triangles):
        check_permutation(GOrder().compute(two_triangles), 6)

    def test_starts_from_max_in_degree(self, star_graph):
        perm = GOrder().compute(star_graph)
        assert perm[0] == 0  # the hub has maximum in-degree

    def test_keeps_triangle_members_adjacent(self, two_triangles):
        perm = GOrder(window=3).compute(two_triangles)
        # Each triangle's new IDs must span at most 3 consecutive slots.
        for triangle in ([0, 1, 2], [3, 4, 5]):
            ids = sorted(perm[v] for v in triangle)
            assert ids[-1] - ids[0] <= 3

    def test_improves_locality_over_scrambled(self):
        graph = load_graph("test-comm")  # scrambled publisher order
        perm = GOrder().compute(graph)
        before = average_neighbor_span(graph.adjacency)
        after = average_neighbor_span(permute_symmetric(graph.adjacency, perm))
        assert after < before

    def test_deterministic(self, two_triangles):
        a = GOrder().compute(two_triangles)
        b = GOrder().compute(two_triangles)
        assert np.array_equal(a, b)

    def test_max_expand_changes_little_on_small_graphs(self):
        coo = planted_partition(128, 8, 6.0, mu=0.1, seed=1)
        graph = Graph(coo_to_csr(coo))
        capped = GOrder(max_expand=4).compute(graph)
        uncapped = GOrder(max_expand=None).compute(graph)
        span_capped = average_neighbor_span(permute_symmetric(graph.adjacency, capped))
        span_uncapped = average_neighbor_span(
            permute_symmetric(graph.adjacency, uncapped)
        )
        assert span_capped <= 2.0 * span_uncapped

    def test_empty_graph(self):
        from repro.sparse.coo import COOMatrix

        graph = Graph(coo_to_csr(COOMatrix(0, 0, [], [])))
        assert GOrder().compute(graph).size == 0

    def test_disconnected_nodes_all_placed(self):
        from repro.sparse.coo import COOMatrix

        graph = Graph(coo_to_csr(COOMatrix(5, 5, [0, 1], [1, 0])))
        check_permutation(GOrder().compute(graph), 5)
