"""Louvain reference detector tests."""

import numpy as np
import pytest

from repro.community.louvain import louvain
from repro.community.modularity import modularity
from repro.graphs.corpus import load_graph
from repro.graphs.generators import planted_partition
from repro.graphs.graph import Graph
from repro.sparse.convert import coo_to_csr


class TestClassicCases:
    def test_two_triangles_split(self, two_triangles):
        result = louvain(two_triangles)
        assert result.assignment.n_communities == 2
        labels = result.assignment.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert result.modularity == pytest.approx(2 * (3 / 7 - 0.25), abs=1e-9)

    def test_figure1_communities_recovered(self, figure1_graph, figure1_assignment):
        result = louvain(figure1_graph)
        assert result.assignment == figure1_assignment

    def test_modularity_trajectory_non_decreasing(self, figure1_graph):
        result = louvain(figure1_graph)
        trajectory = result.level_modularities
        assert all(b >= a - 1e-12 for a, b in zip(trajectory, trajectory[1:]))

    def test_planted_partition_recovery(self):
        coo = planted_partition(256, 8, 12.0, mu=0.05, seed=1)
        graph = Graph(coo_to_csr(coo))
        result = louvain(graph)
        # Ground truth: node i belongs to block i % 8.
        truth = np.arange(256) % 8
        # Count label purity: every detected community should be
        # dominated by one true block.
        labels = result.assignment.labels
        for community in range(result.assignment.n_communities):
            members = np.flatnonzero(labels == community)
            dominant = np.bincount(truth[members]).max()
            assert dominant / members.size > 0.9

    def test_reported_modularity_matches_assignment(self, two_triangles):
        result = louvain(two_triangles)
        assert result.modularity == pytest.approx(
            modularity(two_triangles, result.assignment)
        )


class TestEdgeCases:
    def test_empty_graph(self):
        from repro.sparse.coo import COOMatrix

        graph = Graph(coo_to_csr(COOMatrix(0, 0, [], [])))
        result = louvain(graph)
        assert result.assignment.n_nodes == 0

    def test_edgeless_graph(self):
        from repro.sparse.coo import COOMatrix

        graph = Graph(coo_to_csr(COOMatrix(4, 4, [], [])))
        result = louvain(graph)
        assert result.assignment.n_communities == 4  # all singletons

    def test_star_graph_single_community(self, star_graph):
        result = louvain(star_graph)
        # A star has no sub-structure: one community.
        assert result.assignment.n_communities == 1

    def test_deterministic(self):
        graph = load_graph("test-comm")
        a = louvain(graph)
        b = louvain(graph)
        assert a.assignment == b.assignment
