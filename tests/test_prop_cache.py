"""Property-based tests for the cache simulators (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache import next_use_index, simulate
from repro.cache.config import CacheConfig
from repro.cache import compulsory_misses, simulate

traces = st.lists(st.integers(0, 30), min_size=0, max_size=300).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)

configs = st.sampled_from(
    [
        CacheConfig(capacity_bytes=64, line_bytes=32, ways=1),
        CacheConfig(capacity_bytes=128, line_bytes=32, ways=2),
        CacheConfig(capacity_bytes=256, line_bytes=32, ways=4),
        CacheConfig(capacity_bytes=512, line_bytes=32, ways=4),
        CacheConfig(capacity_bytes=1024, line_bytes=32, ways=32),
    ]
)


class TestSimulatorInvariants:
    @given(traces, configs)
    @settings(max_examples=80, deadline=None)
    def test_lru_accounting(self, trace, config):
        stats = simulate(trace, config)
        stats.check_consistency()
        assert stats.misses >= compulsory_misses(trace)
        assert stats.dead_lines <= stats.misses

    @given(traces, configs)
    @settings(max_examples=80, deadline=None)
    def test_belady_accounting(self, trace, config):
        stats = simulate(trace, config, policy="belady")
        stats.check_consistency()
        assert stats.misses >= compulsory_misses(trace)

    @given(traces, configs)
    @settings(max_examples=80, deadline=None)
    def test_belady_never_worse_than_lru(self, trace, config):
        """The defining property of the optimal policy."""
        opt = simulate(trace, config, policy="belady")
        lru = simulate(trace, config)
        assert opt.misses <= lru.misses

    @given(traces)
    @settings(max_examples=80, deadline=None)
    def test_lru_capacity_monotonicity(self, trace):
        """Fully-associative LRU has the stack (inclusion) property:
        more capacity can never add misses."""
        small = simulate(trace, CacheConfig(capacity_bytes=128, line_bytes=32, ways=4))
        large = simulate(trace, CacheConfig(capacity_bytes=256, line_bytes=32, ways=8))
        assert large.misses <= small.misses

    @given(traces)
    @settings(max_examples=80, deadline=None)
    def test_next_use_is_future_position_of_same_line(self, trace):
        next_use = next_use_index(trace)
        n = trace.size
        for i in range(n):
            j = next_use[i]
            if j < n:
                assert j > i
                assert trace[j] == trace[i]
                # No intermediate occurrence of the same line.
                assert not np.any(trace[i + 1: j] == trace[i])
            else:
                assert not np.any(trace[i + 1:] == trace[i])

    @given(traces, configs)
    @settings(max_examples=60, deadline=None)
    def test_repeating_trace_second_pass_bounded(self, trace, config):
        """On a doubled trace, misses cannot exceed twice the single-pass
        misses (each pass is at worst the cold run)."""
        if trace.size == 0:
            return
        doubled = np.concatenate([trace, trace])
        once = simulate(trace, config)
        twice = simulate(doubled, config)
        assert twice.misses <= 2 * once.misses
