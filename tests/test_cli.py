"""CLI smoke tests (everything runs on the test profile)."""

import pytest

from repro.cli import main


class TestCli:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "repro" in capsys.readouterr().out

    def test_corpus_list(self, capsys):
        assert main(["corpus", "list", "--profile", "test"]) == 0
        out = capsys.readouterr().out
        assert "test-comm" in out
        assert "selected" in out

    def test_techniques(self, capsys):
        assert main(["techniques"]) == 0
        out = capsys.readouterr().out
        assert "rabbit++" in out
        assert "gorder" in out

    def test_metrics(self, capsys):
        assert main(["metrics", "test-mesh", "--profile", "test"]) == 0
        out = capsys.readouterr().out
        assert "insularity" in out
        assert "skew" in out

    def test_evaluate(self, capsys):
        assert main(
            ["evaluate", "test-mesh", "--technique", "rabbit", "--profile", "test"]
        ) == 0
        out = capsys.readouterr().out
        assert "normalized_traffic" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1", "--profile", "test"]) == 0
        assert "a6000" in capsys.readouterr().out

    def test_export(self, tmp_path, capsys):
        path = tmp_path / "out.mtx"
        assert main(["export", "test-mesh", str(path)]) == 0
        assert path.exists()
        header = path.read_text().splitlines()[0]
        assert header.startswith("%%MatrixMarket")

    def test_unknown_technique_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "test-mesh", "--technique", "bogus"])
