"""CLI smoke tests (everything runs on the test profile)."""

import json

import pytest

import repro
from repro.cli import main


class TestCli:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "repro" in capsys.readouterr().out

    def test_corpus_list(self, capsys):
        assert main(["corpus", "list", "--profile", "test"]) == 0
        out = capsys.readouterr().out
        assert "test-comm" in out
        assert "selected" in out

    def test_techniques(self, capsys):
        assert main(["techniques"]) == 0
        out = capsys.readouterr().out
        assert "rabbit++" in out
        assert "gorder" in out

    def test_metrics(self, capsys):
        assert main(["metrics", "test-mesh", "--profile", "test"]) == 0
        out = capsys.readouterr().out
        assert "insularity" in out
        assert "skew" in out

    def test_evaluate(self, capsys):
        assert main(
            ["evaluate", "test-mesh", "--technique", "rabbit", "--profile", "test"]
        ) == 0
        out = capsys.readouterr().out
        assert "normalized_traffic" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1", "--profile", "test"]) == 0
        assert "a6000" in capsys.readouterr().out

    def test_export(self, tmp_path, capsys):
        path = tmp_path / "out.mtx"
        assert main(["export", "test-mesh", str(path)]) == 0
        assert path.exists()
        header = path.read_text().splitlines()[0]
        assert header.startswith("%%MatrixMarket")

    def test_unknown_technique_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "test-mesh", "--technique", "bogus"])

    def test_version(self, capsys):
        assert main(["version"]) == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out


class TestObservabilityCli:
    def test_profile_prints_stage_breakdown(self, capsys):
        assert main(
            ["profile", "test-mesh", "--technique", "rabbit", "--profile", "test"]
        ) == 0
        out = capsys.readouterr().out
        assert "cache-sim" in out
        assert "reorder" in out
        assert "traffic breakdown" in out
        assert "normalized_traffic" in out

    def test_cache_stats(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))
        assert main(["evaluate", "test-mesh", "--technique", "rabbit",
                     "--profile", "test"]) == 0
        capsys.readouterr()
        assert main(["cache-stats"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path / "memo") in out
        assert "run" in out and "metrics" in out
        assert "total" in out

    def test_log_file_emits_valid_jsonl(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))
        log = tmp_path / "run.jsonl"
        assert main(
            ["--log-file", str(log), "--quiet",
             "experiment", "fig2", "--profile", "test"]
        ) == 0
        events = [json.loads(line) for line in log.read_text().splitlines()]
        assert events, "expected at least one event"
        kinds = {e["kind"] for e in events}
        assert kinds == {"span", "counters"}
        span_names = {e["name"] for e in events if e["kind"] == "span"}
        assert "experiment.fig2" in span_names
        assert "cache-sim" in span_names
        counters = [e for e in events if e["kind"] == "counters"][-1]
        assert counters["counters"].get("memo.run.miss", 0) >= 1

    def test_quiet_flag_accepted_without_observability(self, capsys):
        assert main(["--quiet", "techniques"]) == 0
        assert "rabbit++" in capsys.readouterr().out

    def test_profile_prints_histogram_percentiles(self, capsys):
        assert main(
            ["profile", "test-mesh", "--technique", "rabbit", "--profile", "test"]
        ) == 0
        out = capsys.readouterr().out
        assert "latency percentiles" in out
        # The percentile table carries the phase histograms, not just
        # span-total sums.
        header = [line for line in out.splitlines() if "p50" in line][0]
        assert "p90" in header and "p99" in header
        assert any(
            line.startswith("cache-sim") for line in out.splitlines()
        )

    def test_cache_stats_reports_empty_quarantine(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))
        assert main(["cache-stats"]) == 0
        assert "quarantine: empty" in capsys.readouterr().out

    def test_cache_stats_reports_quarantine_contents(
        self, tmp_path, capsys, monkeypatch
    ):
        memo = tmp_path / "memo"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(memo))
        assert main(["--quiet", "metrics", "test-mesh", "--profile", "test"]) == 0
        # Damage a memo file, then let doctor quarantine it.
        victim = next(f for f in memo.iterdir() if f.name.startswith("metrics-"))
        victim.write_text("{corrupt")
        assert main(["doctor", "--quarantine"]) == 1
        capsys.readouterr()
        assert main(["cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "quarantine: 1 file(s)" in out
        assert "bytes" in out
        assert "newest:" in out and victim.name.split(".json")[0] in out

    def test_span_events_carry_v2_schema_fields(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))
        log = tmp_path / "run.jsonl"
        assert main(
            ["--log-file", str(log), "--quiet", "--no-ledger",
             "metrics", "test-mesh", "--profile", "test"]
        ) == 0
        spans = [
            json.loads(line)
            for line in log.read_text().splitlines()
            if json.loads(line)["kind"] == "span"
        ]
        assert spans
        for event in spans:
            assert event["v"] == 2
            assert len(event["span_id"]) == 16
            assert "parent_id" in event
            assert event["pid"] > 0 and event["tid"] > 0
        # Nested spans reference their parent's id.
        by_id = {e["span_id"]: e for e in spans}
        children = [e for e in spans if e["parent_id"] is not None]
        assert children
        assert all(e["parent_id"] in by_id for e in children)


class TestParallelCli:
    def test_experiment_jobs_flag_precomputes_then_replays(
        self, tmp_path, capsys, monkeypatch
    ):
        """--jobs 2 must produce the normal report, with every cell
        precomputed into the shared memo by the worker pool."""
        memo = tmp_path / "memo"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(memo))
        assert main(
            ["--quiet", "experiment", "fig3", "--profile", "test", "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        run_files = [f for f in memo.iterdir() if f.name.startswith("run-")]
        assert len(run_files) == 6  # one rabbit spmv-csr cell per test matrix

    def test_experiment_jobs_default_is_sequential(self, tmp_path, monkeypatch):
        import repro.parallel.executor as executor

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))

        def forbidden(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("--jobs 1 must not spawn a pool")

        monkeypatch.setattr(executor, "ProcessPoolExecutor", forbidden)
        assert main(["--quiet", "experiment", "fig4", "--profile", "test"]) == 0

    def test_run_all_parser_wired(self, capsys):
        with pytest.raises(SystemExit):
            main(["run-all", "--help"])
        out = capsys.readouterr().out
        assert "--jobs" in out


class TestDoctorCli:
    def write_cache(self, memo, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(memo))
        assert main(["--quiet", "metrics", "test-mesh", "--profile", "test"]) == 0

    def test_clean_cache_exits_zero(self, tmp_path, capsys, monkeypatch):
        self.write_cache(tmp_path / "memo", monkeypatch)
        capsys.readouterr()
        assert main(["doctor"]) == 0
        assert "cache integrity: OK" in capsys.readouterr().out

    def test_corrupt_cache_exits_nonzero_naming_file(
        self, tmp_path, capsys, monkeypatch
    ):
        memo = tmp_path / "memo"
        self.write_cache(memo, monkeypatch)
        victim = next(f for f in memo.iterdir() if f.name.startswith("metrics-"))
        victim.write_text("{ truncated", encoding="utf-8")
        capsys.readouterr()
        assert main(["doctor"]) == 1
        captured = capsys.readouterr()
        assert f"DAMAGED {victim.name}" in captured.out
        assert "damaged" in captured.err

    def test_quarantine_flag_moves_damaged_files(
        self, tmp_path, capsys, monkeypatch
    ):
        memo = tmp_path / "memo"
        self.write_cache(memo, monkeypatch)
        victim = next(f for f in memo.iterdir() if f.name.startswith("metrics-"))
        victim.write_text("{ truncated", encoding="utf-8")
        assert main(["doctor", "--quarantine"]) == 1
        assert not victim.exists()
        assert (memo / "quarantine" / victim.name).exists()
        # The cache is healthy again once the damage is quarantined.
        capsys.readouterr()
        assert main(["doctor"]) == 0

    def test_explicit_cache_dir_flag(self, tmp_path, capsys):
        assert main(["doctor", "--cache-dir", str(tmp_path / "nowhere")]) == 0
        assert "(missing)" in capsys.readouterr().out

    def test_store_scan_and_quarantine(self, tmp_path, capsys):
        from repro.serve.store import PermutationStore, perm_key

        store_dir = str(tmp_path / "serve-store")
        store = PermutationStore(store_dir)
        store.put("perm", perm_key("d0", "rcm", "auto"), {"permutation": [0]})
        victim = store.put("perm", perm_key("d1", "rcm", "auto"), {"permutation": [1]})
        assert main(["doctor", "--store", "--cache-dir", store_dir]) == 0
        assert "store integrity: OK" in capsys.readouterr().out

        with open(victim, "r+b") as handle:
            handle.truncate(8)
        assert main(["doctor", "--store", "--cache-dir", store_dir]) == 1
        captured = capsys.readouterr()
        assert "DAMAGED perm/" in captured.out
        assert "damaged" in captured.err

        assert main(
            ["doctor", "--store", "--quarantine", "--cache-dir", store_dir]
        ) == 1
        assert "quarantined 1 entries" in capsys.readouterr().out
        capsys.readouterr()
        assert main(["doctor", "--store", "--cache-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "store integrity: OK" in out
        assert "QUARANTINED" in out


class TestServeCli:
    def test_serve_overload_flags_parsed(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        out = capsys.readouterr().out
        for flag in (
            "--max-inflight", "--max-queue", "--queue-timeout",
            "--drain-timeout", "--breaker-min-failures", "--breaker-recovery",
        ):
            assert flag in out
        with pytest.raises(SystemExit):
            main(["serve-bench", "--help"])
        out = capsys.readouterr().out
        for flag in ("--overload", "--offered-factor", "--min-goodput"):
            assert flag in out

    def test_overload_bench_rejects_external_url(self, capsys):
        # Overload mode spawns its own calibrated servers; pointing it
        # at an external endpoint would shed against unknown capacity.
        assert main(
            ["serve-bench", "--overload", "--url", "http://localhost:1"]
        ) == 2
        assert "--overload" in capsys.readouterr().err


class TestResilienceCli:
    def test_sweep_flags_parsed(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "--help"])
        out = capsys.readouterr().out
        for flag in ("--retries", "--cell-timeout", "--keep-going", "--resume"):
            assert flag in out

    def test_experiment_with_resilience_flags(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))
        assert main(
            [
                "--quiet", "experiment", "fig3", "--profile", "test",
                "--jobs", "2", "--retries", "2", "--keep-going",
            ]
        ) == 0
        assert "fig3" in capsys.readouterr().out
        manifest = tmp_path / "memo" / "sweep-manifest.json"
        assert manifest.exists()

    def test_resume_reuses_manifest(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))
        assert main(
            ["--quiet", "experiment", "fig3", "--profile", "test", "--jobs", "2"]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "--quiet", "experiment", "fig3", "--profile", "test",
                "--jobs", "2", "--resume",
            ]
        ) == 0
        assert "fig3" in capsys.readouterr().out


class TestScaleBenchCli:
    def test_bench_reorder_scale_mode(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out_path = tmp_path / "BENCH_reorder.json"
        assert main(
            [
                "bench-reorder",
                "--scale", "9",
                "--edge-factor", "8",
                "--shards", "2",
                "--jobs", "1",
                "--json", str(out_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "scale workload: 2^9 = 512 nodes" in out
        assert "sharded detection" in out
        assert "peak RSS (KB):" in out
        payload = json.loads(out_path.read_text())
        assert payload["mode"] == "scale"
        assert payload["workload"]["memmap"] is True
        assert payload["detection"]["sharded"]["labels_sha256"]
        names = [row["name"] for row in payload["techniques"]]
        assert names == ["rabbit", "boba", "dbg"]
        assert all(row["permutation_sha256"] for row in payload["techniques"])
        assert payload["rss_peak_kb"]["overall"] > 0

    def test_scale_mode_no_memmap_stays_in_ram(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out_path = tmp_path / "bench.json"
        assert main(
            [
                "bench-reorder",
                "--scale", "8",
                "--edge-factor", "8",
                "--no-memmap",
                "--json", str(out_path),
            ]
        ) == 0
        payload = json.loads(out_path.read_text())
        assert payload["workload"]["memmap"] is False
        assert not (tmp_path / "cache" / "matrices").exists()
