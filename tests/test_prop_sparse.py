"""Property-based tests for the sparse substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.coo import COOMatrix
from repro.sparse.kernels import spmv_coo, spmv_csr
from repro.sparse.ops import (
    drop_self_loops,
    is_symmetric,
    merge_duplicates,
    symmetrize,
    transpose,
)
from repro.sparse.permute import invert_permutation, permute_symmetric


@st.composite
def coo_matrices(draw, max_n=12, max_nnz=40, square=True):
    n_rows = draw(st.integers(1, max_n))
    n_cols = n_rows if square else draw(st.integers(1, max_n))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz)
    )
    values = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return COOMatrix(n_rows, n_cols, rows, cols, values)


@st.composite
def permutations(draw, n):
    seed = draw(st.integers(0, 2**32 - 1))
    return np.random.default_rng(seed).permutation(n)


class TestConversionProperties:
    @given(coo_matrices(square=False))
    @settings(max_examples=60, deadline=None)
    def test_coo_csr_preserves_dense(self, coo):
        assert np.allclose(coo_to_csr(coo).to_dense(), coo.to_dense())

    @given(coo_matrices(square=False))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_equality(self, coo):
        assert csr_to_coo(coo_to_csr(coo)) == coo


class TestOpsProperties:
    @given(coo_matrices())
    @settings(max_examples=60, deadline=None)
    def test_symmetrize_is_symmetric(self, coo):
        assert is_symmetric(symmetrize(coo))

    @given(coo_matrices())
    @settings(max_examples=60, deadline=None)
    def test_symmetrize_idempotent_structure(self, coo):
        once = symmetrize(coo)
        twice = symmetrize(once)
        # A + A^T applied twice doubles values but keeps the pattern.
        assert once.nnz == twice.nnz
        assert np.allclose(twice.to_dense(), 2 * once.to_dense())

    @given(coo_matrices(square=False))
    @settings(max_examples=60, deadline=None)
    def test_merge_duplicates_preserves_sum(self, coo):
        assert merge_duplicates(coo).values.sum() == np.float64(
            coo.values.sum()
        ).item() or np.isclose(merge_duplicates(coo).values.sum(), coo.values.sum())

    @given(coo_matrices())
    @settings(max_examples=60, deadline=None)
    def test_drop_self_loops_leaves_off_diagonal(self, coo):
        cleaned = drop_self_loops(coo)
        off_diagonal = coo.rows != coo.cols
        assert cleaned.nnz == int(off_diagonal.sum())

    @given(coo_matrices(square=False))
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, coo):
        assert transpose(transpose(coo)) == coo


class TestPermutationProperties:
    @given(st.data(), coo_matrices())
    @settings(max_examples=60, deadline=None)
    def test_permute_preserves_spectrum_of_dense(self, data, coo):
        """Symmetric permutation is a similarity transform: the dense
        matrices must be equal up to simultaneous row/col reordering."""
        csr = coo_to_csr(coo)
        perm = data.draw(permutations(coo.n_rows))
        permuted = permute_symmetric(csr, perm)
        dense = csr.to_dense()
        expected = np.empty_like(dense)
        expected[np.ix_(perm, perm)] = dense
        assert np.allclose(permuted.to_dense(), expected)

    @given(st.data(), coo_matrices())
    @settings(max_examples=60, deadline=None)
    def test_permute_then_inverse_is_identity(self, data, coo):
        csr = coo_to_csr(coo)
        perm = data.draw(permutations(coo.n_rows))
        back = permute_symmetric(permute_symmetric(csr, perm), invert_permutation(perm))
        assert back == csr.sort_rows()

    @given(st.data(), coo_matrices())
    @settings(max_examples=40, deadline=None)
    def test_spmv_equivariance(self, data, coo):
        csr = coo_to_csr(coo)
        perm = data.draw(permutations(coo.n_rows))
        rng = np.random.default_rng(0)
        x = rng.standard_normal(coo.n_cols)
        y = spmv_csr(csr, x)
        x_new = np.empty_like(x)
        x_new[perm] = x
        y_new = spmv_csr(permute_symmetric(csr, perm), x_new)
        assert np.allclose(y_new[perm], y)


class TestKernelAgreement:
    @given(coo_matrices(square=False))
    @settings(max_examples=60, deadline=None)
    def test_coo_and_csr_spmv_agree(self, coo):
        x = np.arange(coo.n_cols, dtype=np.float64)
        assert np.allclose(spmv_coo(coo, x), spmv_csr(coo_to_csr(coo), x))
