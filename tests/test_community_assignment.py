"""CommunityAssignment container tests."""

import numpy as np
import pytest

from repro.community.assignment import CommunityAssignment
from repro.errors import ShapeError, ValidationError


class TestConstruction:
    def test_basic(self):
        a = CommunityAssignment([0, 1, 1, 0])
        assert a.n_nodes == 4
        assert a.n_communities == 2

    def test_negative_label_rejected(self):
        with pytest.raises(ValidationError):
            CommunityAssignment([0, -1])

    def test_float_rejected(self):
        with pytest.raises(ValidationError):
            CommunityAssignment([0.0, 1.0])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ShapeError):
            CommunityAssignment([[0, 1]])

    def test_empty(self):
        a = CommunityAssignment(np.empty(0, dtype=np.int64))
        assert a.n_nodes == 0
        assert a.n_communities == 0


class TestCompact:
    def test_first_appearance_order(self):
        a = CommunityAssignment([7, 3, 7, 5])
        assert np.array_equal(a.compact().labels, [0, 1, 0, 2])

    def test_already_compact_unchanged(self):
        a = CommunityAssignment([0, 1, 2, 1])
        assert np.array_equal(a.compact().labels, a.labels)

    def test_compact_idempotent(self):
        a = CommunityAssignment([9, 2, 9, 4]).compact()
        assert np.array_equal(a.compact().labels, a.labels)


class TestStats:
    def test_sizes(self):
        a = CommunityAssignment([5, 5, 9, 5])
        assert np.array_equal(a.sizes(), [3, 1])

    def test_average_and_largest(self):
        a = CommunityAssignment([0, 0, 1, 1, 1, 2])
        assert a.average_size() == pytest.approx(2.0)
        assert a.largest_size() == 3

    def test_members(self):
        a = CommunityAssignment([1, 0, 1])
        members = a.members()
        assert np.array_equal(members[0], [0, 2])
        assert np.array_equal(members[1], [1])

    def test_members_cover_all_nodes(self):
        rng = np.random.default_rng(0)
        a = CommunityAssignment(rng.integers(0, 5, 40))
        members = a.members()
        all_nodes = np.sort(np.concatenate(list(members.values())))
        assert np.array_equal(all_nodes, np.arange(40))


class TestEquality:
    def test_label_renaming_invariant(self):
        assert CommunityAssignment([0, 0, 1]) == CommunityAssignment([4, 4, 2])

    def test_partition_difference_detected(self):
        assert CommunityAssignment([0, 0, 1]) != CommunityAssignment([0, 1, 1])

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(CommunityAssignment([0]))
