"""Insularity and insular-node metrics (paper Section V-A)."""

import numpy as np
import pytest

from repro.community.assignment import CommunityAssignment
from repro.errors import ShapeError
from repro.metrics.insularity import (
    insular_mask,
    insular_node_fraction,
    insularity,
)


class TestInsularity:
    def test_figure1_value(self, figure1_graph, figure1_assignment):
        """The paper's worked example: insularity = 20/24 ≈ 0.83."""
        value = insularity(figure1_graph, figure1_assignment)
        assert value == pytest.approx(20 / 24)

    def test_single_community_is_one(self, two_triangles):
        assignment = CommunityAssignment(np.zeros(6, dtype=np.int64))
        assert insularity(two_triangles, assignment) == pytest.approx(1.0)

    def test_singletons_are_zero(self, two_triangles):
        assignment = CommunityAssignment(np.arange(6))
        assert insularity(two_triangles, assignment) == pytest.approx(0.0)

    def test_range_bounds(self, figure1_graph):
        rng = np.random.default_rng(0)
        for _ in range(5):
            assignment = CommunityAssignment(rng.integers(0, 4, 9))
            value = insularity(figure1_graph, assignment)
            assert 0.0 <= value <= 1.0

    def test_empty_graph_is_one(self):
        from repro.graphs.graph import Graph
        from repro.sparse.convert import coo_to_csr
        from repro.sparse.coo import COOMatrix

        graph = Graph(coo_to_csr(COOMatrix(3, 3, [], [])))
        assert insularity(graph, CommunityAssignment([0, 1, 2])) == 1.0

    def test_label_shape_validated(self, two_triangles):
        with pytest.raises(ShapeError):
            insularity(two_triangles, CommunityAssignment([0, 1]))


class TestInsularMask:
    def test_figure1_insular_nodes(self, figure1_graph, figure1_assignment):
        mask = insular_mask(figure1_graph, figure1_assignment)
        # Boundary nodes 3, 4, 6, 7 have inter-community edges.
        expected = np.asarray(
            [True, True, True, False, False, True, False, False, True]
        )
        assert np.array_equal(mask, expected)

    def test_fraction_matches_mask(self, figure1_graph, figure1_assignment):
        mask = insular_mask(figure1_graph, figure1_assignment)
        assert insular_node_fraction(
            figure1_graph, figure1_assignment
        ) == pytest.approx(mask.mean())

    def test_single_community_all_insular(self, two_triangles):
        assignment = CommunityAssignment(np.zeros(6, dtype=np.int64))
        assert insular_mask(two_triangles, assignment).all()

    def test_isolated_node_is_insular(self):
        from repro.graphs.graph import Graph
        from repro.sparse.convert import coo_to_csr
        from repro.sparse.coo import COOMatrix

        graph = Graph(coo_to_csr(COOMatrix(3, 3, [0, 1], [1, 0])))
        mask = insular_mask(graph, CommunityAssignment([0, 1, 2]))
        assert mask[2]  # no edges at all -> trivially insular
        assert not mask[0] and not mask[1]
