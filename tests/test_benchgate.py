"""Perf-regression gate: payload comparison logic and the CLI gate.

The load-bearing acceptance test is
``test_cli_gate_fails_on_perturbed_baseline``: it locks in that
``repro bench --check`` exits nonzero when a speedup drops beyond
tolerance, which is what CI relies on.
"""

import json
import os

import pytest

from repro.cli import main
from repro.obs.benchgate import (
    DEFAULT_TOLERANCE,
    check_files,
    compare_payloads,
    format_gate_report,
)


def payload(speedups, match=True, match_key="stats_match"):
    return {"speedups": dict(speedups), match_key: match, "results": []}


class TestComparePayloads:
    def test_identical_passes(self):
        result = compare_payloads("sim", payload({"lru": 8.0}), payload({"lru": 8.0}))
        assert result.passed
        assert [d.regressed for d in result.deltas] == [False]

    def test_within_tolerance_passes(self):
        base, fresh = payload({"lru": 10.0}), payload({"lru": 6.5})
        assert compare_payloads("sim", base, fresh, tolerance=0.4).passed

    def test_beyond_tolerance_fails(self):
        base, fresh = payload({"lru": 10.0}), payload({"lru": 5.9})
        result = compare_payloads("sim", base, fresh, tolerance=0.4)
        assert not result.passed
        delta = result.deltas[0]
        assert delta.regressed
        assert "fell" in delta.note

    def test_improvement_never_fails(self):
        result = compare_payloads("sim", payload({"lru": 2.0}), payload({"lru": 9.0}))
        assert result.passed
        assert "improved" in result.deltas[0].note

    def test_missing_metric_is_a_regression(self):
        result = compare_payloads(
            "reorder", payload({"rabbit": 3.0, "rcm": 2.0}), payload({"rcm": 2.0})
        )
        assert not result.passed
        missing = [d for d in result.deltas if d.name == "rabbit"]
        assert missing[0].regressed
        assert missing[0].fresh is None

    def test_new_metric_is_informational(self):
        result = compare_payloads("sim", payload({"lru": 2.0}),
                                  payload({"lru": 2.0, "belady": 4.0}))
        assert result.passed
        new = [d for d in result.deltas if d.name == "belady"][0]
        assert not new.regressed and new.baseline is None

    def test_false_correctness_flag_fails_regardless_of_speedups(self):
        for key in ("stats_match", "results_match"):
            fresh = payload({"lru": 99.0}, match=False, match_key=key)
            result = compare_payloads("sim", payload({"lru": 1.0}), fresh)
            assert not result.passed
            assert any(key in e for e in result.errors)

    def test_baseline_without_speedups_errors(self):
        result = compare_payloads("sim", {"results": []}, payload({"lru": 1.0}))
        assert not result.passed


class TestCheckFiles:
    def write(self, path, doc):
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        return path

    def test_missing_baseline_is_always_an_error(self, tmp_path):
        fresh = self.write(str(tmp_path / "fresh.json"), payload({"lru": 1.0}))
        results, skipped = check_files([("sim", str(tmp_path / "nope.json"), fresh)])
        assert not results[0].passed
        assert "baseline" in results[0].errors[0]
        assert skipped == []

    def test_missing_fresh_skips_unless_strict(self, tmp_path):
        base = self.write(str(tmp_path / "base.json"), payload({"lru": 1.0}))
        missing = str(tmp_path / "fresh.json")
        results, skipped = check_files([("sim", base, missing)], strict=False)
        assert results == [] and len(skipped) == 1
        results, skipped = check_files([("sim", base, missing)], strict=True)
        assert skipped == [] and not results[0].passed

    def test_unreadable_fresh_treated_as_missing(self, tmp_path):
        base = self.write(str(tmp_path / "base.json"), payload({"lru": 1.0}))
        bad = str(tmp_path / "fresh.json")
        with open(bad, "w") as handle:
            handle.write("{truncated")
        results, skipped = check_files([("sim", base, bad)], strict=True)
        assert not results[0].passed

    def test_report_formatting(self, tmp_path):
        base = self.write(str(tmp_path / "base.json"), payload({"lru": 10.0}))
        fresh = self.write(str(tmp_path / "fresh.json"), payload({"lru": 1.0}))
        results, skipped = check_files([("sim", base, fresh)])
        text = format_gate_report(results, skipped)
        assert "[FAIL] sim" in text
        assert "REGRESSED" in text


class TestBenchCli:
    def seed(self, tmp_path, sim=None, reorder=None):
        baselines = tmp_path / "baselines"
        baselines.mkdir(exist_ok=True)
        if sim is not None:
            json.dump(sim, open(baselines / "BENCH_sim.json", "w"))
        if reorder is not None:
            json.dump(reorder, open(baselines / "BENCH_reorder.json", "w"))
        return str(baselines)

    def args(self, tmp_path, baselines, *extra):
        return [
            "bench", "--check",
            "--sim", str(tmp_path / "BENCH_sim.json"),
            "--reorder", str(tmp_path / "BENCH_reorder.json"),
            "--baseline-dir", baselines,
            *extra,
        ]

    def test_cli_gate_passes_on_matching_payloads(self, tmp_path, capsys):
        sim = payload({"lru": 8.0})
        reorder = payload({"rabbit": 2.0}, match_key="results_match")
        baselines = self.seed(tmp_path, sim=sim, reorder=reorder)
        json.dump(sim, open(tmp_path / "BENCH_sim.json", "w"))
        json.dump(reorder, open(tmp_path / "BENCH_reorder.json", "w"))
        assert main(self.args(tmp_path, baselines, "--strict")) == 0
        assert "bench gate: PASS" in capsys.readouterr().out

    def test_cli_gate_fails_on_perturbed_baseline(self, tmp_path, capsys):
        """Acceptance: a speedup drop beyond tolerance exits nonzero."""
        sim = payload({"lru": 8.0})
        reorder = payload({"rabbit": 2.0}, match_key="results_match")
        baselines = self.seed(tmp_path, sim=sim, reorder=reorder)
        perturbed = payload({"lru": 8.0 * (1 - DEFAULT_TOLERANCE) * 0.9})
        json.dump(perturbed, open(tmp_path / "BENCH_sim.json", "w"))
        json.dump(reorder, open(tmp_path / "BENCH_reorder.json", "w"))
        code = main(self.args(tmp_path, baselines, "--strict"))
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "bench gate: FAIL" in captured.err

    def test_cli_tolerance_flag(self, tmp_path):
        sim = payload({"lru": 10.0})
        reorder = payload({"rabbit": 2.0}, match_key="results_match")
        baselines = self.seed(tmp_path, sim=sim, reorder=reorder)
        json.dump(payload({"lru": 7.0}), open(tmp_path / "BENCH_sim.json", "w"))
        json.dump(reorder, open(tmp_path / "BENCH_reorder.json", "w"))
        assert main(self.args(tmp_path, baselines, "--tolerance", "0.5")) == 0
        assert main(self.args(tmp_path, baselines, "--tolerance", "0.1")) == 1

    def test_cli_missing_fresh_skips_without_strict_fails_with(self, tmp_path):
        baselines = self.seed(
            tmp_path,
            sim=payload({"lru": 8.0}),
            reorder=payload({"rabbit": 2.0}, match_key="results_match"),
        )
        assert main(self.args(tmp_path, baselines)) == 0
        assert main(self.args(tmp_path, baselines, "--strict")) == 1

    def test_cli_update_seeds_baselines(self, tmp_path, capsys):
        baselines = str(tmp_path / "baselines")
        sim = payload({"lru": 8.0})
        json.dump(sim, open(tmp_path / "BENCH_sim.json", "w"))
        code = main([
            "bench", "--update",
            "--sim", str(tmp_path / "BENCH_sim.json"),
            "--reorder", str(tmp_path / "BENCH_reorder.json"),
            "--baseline-dir", baselines,
        ])
        assert code == 0
        assert json.load(open(os.path.join(baselines, "BENCH_sim.json"))) == sim
        assert "BASELINE" in capsys.readouterr().out

    def test_cli_bench_without_action_errors(self, tmp_path, capsys):
        assert main(["bench", "--baseline-dir", str(tmp_path)]) == 2
        assert "needs --check or --update" in capsys.readouterr().err

    def test_cli_writes_bench_check_manifest(self, tmp_path, monkeypatch, capsys):
        runs_dir = str(tmp_path / "ledger")
        monkeypatch.setenv("REPRO_RUNS_DIR", runs_dir)
        sim = payload({"lru": 8.0})
        reorder = payload({"rabbit": 2.0}, match_key="results_match")
        baselines = self.seed(tmp_path, sim=sim, reorder=reorder)
        json.dump(sim, open(tmp_path / "BENCH_sim.json", "w"))
        json.dump(reorder, open(tmp_path / "BENCH_reorder.json", "w"))
        assert main(self.args(tmp_path, baselines)) == 0
        run_id = os.listdir(runs_dir)[0]
        manifest = json.load(
            open(os.path.join(runs_dir, run_id, "manifest.json"))
        )
        assert manifest["kind"] == "bench-check"
        assert manifest["bench"]["tolerance"] == pytest.approx(DEFAULT_TOLERANCE)
        assert [r["label"] for r in manifest["bench"]["results"]] == [
            "bench-sim", "bench-reorder",
        ]
        assert all(r["passed"] for r in manifest["bench"]["results"])


def test_committed_baselines_are_wellformed():
    """The baselines in the repo must parse and carry speedups, so the
    CI gate always has something real to compare against."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for name in ("BENCH_sim.json", "BENCH_reorder.json"):
        path = os.path.join(repo_root, "benchmarks", "baselines", name)
        assert os.path.exists(path), f"missing committed baseline {name}"
        doc = json.load(open(path))
        assert doc["speedups"], name
        assert all(v > 0 for v in doc["speedups"].values())
