"""Matrix Market reader/writer."""

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.graphs.io import read_matrix_market, write_matrix_market
from repro.sparse.coo import COOMatrix


GENERAL = """%%MatrixMarket matrix coordinate real general
% a comment
3 3 3
1 2 1.5
2 3 -2.0
3 1 0.25
"""

SYMMETRIC = """%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 1.0
3 3 4.0
"""

PATTERN = """%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 1
"""


class TestRead:
    def test_general(self):
        coo = read_matrix_market(io.StringIO(GENERAL))
        assert coo.shape == (3, 3)
        assert coo.nnz == 3
        assert coo.to_dense()[0, 1] == pytest.approx(1.5)
        assert coo.to_dense()[1, 2] == pytest.approx(-2.0)

    def test_symmetric_expansion(self):
        coo = read_matrix_market(io.StringIO(SYMMETRIC))
        dense = coo.to_dense()
        assert dense[1, 0] == 1.0 and dense[0, 1] == 1.0
        assert dense[2, 2] == 4.0  # diagonal not duplicated
        assert coo.nnz == 3

    def test_pattern_values_are_one(self):
        coo = read_matrix_market(io.StringIO(PATTERN))
        assert np.array_equal(coo.values, [1.0, 1.0])

    def test_bad_header(self):
        with pytest.raises(FormatError):
            read_matrix_market(io.StringIO("nope\n1 1 0\n"))

    def test_unsupported_format(self):
        with pytest.raises(FormatError):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
            )

    def test_unsupported_field(self):
        with pytest.raises(FormatError):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")
            )

    def test_truncated_file(self):
        with pytest.raises(FormatError):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n")
            )

    def test_missing_size_line(self):
        with pytest.raises(FormatError):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix coordinate real general\n")
            )


class TestRoundTrip:
    def test_write_read_stream(self, small_coo):
        buffer = io.StringIO()
        write_matrix_market(small_coo, buffer, comment="round trip")
        buffer.seek(0)
        assert read_matrix_market(buffer) == small_coo

    def test_write_read_file(self, tmp_path, small_coo):
        path = tmp_path / "matrix.mtx"
        write_matrix_market(small_coo, str(path))
        assert read_matrix_market(str(path)) == small_coo

    def test_corpus_entry_roundtrip(self, tmp_path):
        from repro.graphs.corpus import load_matrix

        matrix = load_matrix("test-mesh")
        path = tmp_path / "mesh.mtx"
        write_matrix_market(matrix, str(path))
        assert read_matrix_market(str(path)) == matrix


class TestErrorLocations:
    """Parse errors name the source path and 1-based line number."""

    def test_bad_entry_names_file_and_line(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment\n"
            "2 2 2\n"
            "1 1 3.5\n"
            "2 oops 1.0\n"
        )
        with pytest.raises(FormatError, match=rf"{path}:5: "):
            read_matrix_market(str(path))

    def test_non_numeric_value_names_line(self, tmp_path):
        path = tmp_path / "bad-value.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "1 1 1\n"
            "1 1 zero\n"
        )
        with pytest.raises(FormatError, match=rf"{path}:3: non-numeric value"):
            read_matrix_market(str(path))

    def test_bad_size_line_names_line(self, tmp_path):
        path = tmp_path / "bad-size.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment line\n"
            "two by two\n"
        )
        with pytest.raises(FormatError, match=rf"{path}:3: "):
            read_matrix_market(str(path))

    def test_truncated_file_names_last_line(self, tmp_path):
        path = tmp_path / "short.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "3 3 3\n"
            "1 1 1.0\n"
        )
        with pytest.raises(FormatError, match=rf"{path}:3: file ended after 1 of 3"):
            read_matrix_market(str(path))

    def test_stream_errors_use_stream_marker(self):
        bad = io.StringIO("%%MatrixMarket matrix coordinate real general\n1 1\n")
        with pytest.raises(FormatError, match=r"<stream>:2: "):
            read_matrix_market(bad)

    def test_bad_header_is_line_one(self):
        with pytest.raises(FormatError, match=r"<stream>:1: not a Matrix Market"):
            read_matrix_market(io.StringIO("garbage\n"))
