"""Matrix Market reader/writer."""

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.graphs.io import (
    _Fallback,
    _parse_bulk,
    _read_stream,
    read_matrix_market,
    write_matrix_market,
)


GENERAL = """%%MatrixMarket matrix coordinate real general
% a comment
3 3 3
1 2 1.5
2 3 -2.0
3 1 0.25
"""

SYMMETRIC = """%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 1.0
3 3 4.0
"""

PATTERN = """%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 1
"""


class TestRead:
    def test_general(self):
        coo = read_matrix_market(io.StringIO(GENERAL))
        assert coo.shape == (3, 3)
        assert coo.nnz == 3
        assert coo.to_dense()[0, 1] == pytest.approx(1.5)
        assert coo.to_dense()[1, 2] == pytest.approx(-2.0)

    def test_symmetric_expansion(self):
        coo = read_matrix_market(io.StringIO(SYMMETRIC))
        dense = coo.to_dense()
        assert dense[1, 0] == 1.0 and dense[0, 1] == 1.0
        assert dense[2, 2] == 4.0  # diagonal not duplicated
        assert coo.nnz == 3

    def test_pattern_values_are_one(self):
        coo = read_matrix_market(io.StringIO(PATTERN))
        assert np.array_equal(coo.values, [1.0, 1.0])

    def test_bad_header(self):
        with pytest.raises(FormatError):
            read_matrix_market(io.StringIO("nope\n1 1 0\n"))

    def test_unsupported_format(self):
        with pytest.raises(FormatError):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
            )

    def test_unsupported_field(self):
        with pytest.raises(FormatError):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")
            )

    def test_truncated_file(self):
        with pytest.raises(FormatError):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n")
            )

    def test_missing_size_line(self):
        with pytest.raises(FormatError):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix coordinate real general\n")
            )


class TestRoundTrip:
    def test_write_read_stream(self, small_coo):
        buffer = io.StringIO()
        write_matrix_market(small_coo, buffer, comment="round trip")
        buffer.seek(0)
        assert read_matrix_market(buffer) == small_coo

    def test_write_read_file(self, tmp_path, small_coo):
        path = tmp_path / "matrix.mtx"
        write_matrix_market(small_coo, str(path))
        assert read_matrix_market(str(path)) == small_coo

    def test_corpus_entry_roundtrip(self, tmp_path):
        from repro.graphs.corpus import load_matrix

        matrix = load_matrix("test-mesh")
        path = tmp_path / "mesh.mtx"
        write_matrix_market(matrix, str(path))
        assert read_matrix_market(str(path)) == matrix


def _texts_equal(text: str) -> bool:
    """Bulk and reference parses agree entry-for-entry (or both fail)."""
    try:
        ref = _read_stream(io.StringIO(text), "X")
    except FormatError:
        ref = None
    try:
        fast = read_matrix_market(io.StringIO(text))
    except FormatError:
        fast = None
    if ref is None or fast is None:
        return (ref is None) == (fast is None)
    return (
        ref.shape == fast.shape
        and np.array_equal(ref.rows, fast.rows)
        and np.array_equal(ref.cols, fast.cols)
        and np.array_equal(ref.values, fast.values, equal_nan=True)
    )


class TestBulkParserDifferential:
    """The bulk tokenizer path matches the line-by-line reference."""

    @pytest.mark.parametrize("field", ["real", "integer", "pattern"])
    @pytest.mark.parametrize("symmetry", ["general", "symmetric"])
    def test_field_symmetry_grid(self, field, symmetry):
        rng = np.random.default_rng(hash((field, symmetry)) % 2**32)
        n = 24
        lines = [f"%%MatrixMarket matrix coordinate {field} {symmetry}"]
        entries = []
        for _ in range(60):
            r = int(rng.integers(1, n + 1))
            c = int(rng.integers(1, r + 1)) if symmetry == "symmetric" else int(
                rng.integers(1, n + 1)
            )
            if field == "pattern":
                entries.append(f"{r} {c}")
            elif field == "integer":
                entries.append(f"{r} {c} {int(rng.integers(-9, 9))}")
            else:
                entries.append(f"{r} {c} {rng.standard_normal():.17g}")
        lines.append(f"{n} {n} {len(entries)}")
        lines.extend(entries)
        assert _texts_equal("\n".join(lines) + "\n")

    def test_symmetric_mirrors_interleaved(self):
        # Reference appends each mirror immediately after its entry —
        # the bulk expansion must preserve that exact COO order.
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "2 1 1.5\n"
            "2 2 4.0\n"
            "3 1 -2.5\n"
        )
        coo = read_matrix_market(io.StringIO(text))
        assert coo.rows.tolist() == [1, 0, 1, 2, 0]
        assert coo.cols.tolist() == [0, 1, 1, 0, 2]
        assert coo.values.tolist() == [1.5, 1.5, 4.0, -2.5, -2.5]

    @pytest.mark.parametrize(
        "text",
        [
            # Interleaved comments/blank lines among entries.
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n% c\n1 1 1.0\n\n2 2 2.0\n",
            # Extra tokens per entry (tolerated by the reference).
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0 extra\n",
            # Ragged entry (reference raises line 4).
            "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2 9\n1\n",
            # Python-only integer spellings.
            "%%MatrixMarket matrix coordinate real general\n12 12 1\n1_0 1 1.0\n",
            # Trailing junk after the declared entries is ignored.
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 9.0\n",
            # CRLF endings and tab separators.
            "%%MatrixMarket matrix coordinate real general\r\n2 2 1\r\n1 1 1.0\r\n",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\t1\t1.0\n",
            # Zero-entry matrix.
            "%%MatrixMarket matrix coordinate real general\n4 5 0\n",
            # Exponent/float spellings in integer coordinate columns.
            "%%MatrixMarket matrix coordinate real general\n1200 1200 1\n1e3 1 1.0\n",
            "%%MatrixMarket matrix coordinate real general\n12 12 1\n2.0 1 1.0\n",
            # Mid-line '%' and '#' are data, not comments.
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3.0%x\n",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3.0#x 4\n",
        ],
    )
    def test_oddball_inputs_match_reference(self, text):
        assert _texts_equal(text)

    def test_ragged_lines_fall_back(self):
        # Divisible token count but misaligned columns: the bulk path
        # must not silently parse this; the reference rejects line 4.
        text = (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "9 9 2\n"
            "1 2 3\n"
            "4\n"
        )
        with pytest.raises(_Fallback):
            _parse_bulk(text)
        with pytest.raises(FormatError, match=r":4: "):
            read_matrix_market(io.StringIO(text))

    def test_bulk_path_taken_for_clean_file(self):
        coo = _parse_bulk(GENERAL)
        assert coo.nnz == 3


class TestErrorLocations:
    """Parse errors name the source path and 1-based line number."""

    def test_bad_entry_names_file_and_line(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment\n"
            "2 2 2\n"
            "1 1 3.5\n"
            "2 oops 1.0\n"
        )
        with pytest.raises(FormatError, match=rf"{path}:5: "):
            read_matrix_market(str(path))

    def test_non_numeric_value_names_line(self, tmp_path):
        path = tmp_path / "bad-value.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "1 1 1\n"
            "1 1 zero\n"
        )
        with pytest.raises(FormatError, match=rf"{path}:3: non-numeric value"):
            read_matrix_market(str(path))

    def test_bad_size_line_names_line(self, tmp_path):
        path = tmp_path / "bad-size.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment line\n"
            "two by two\n"
        )
        with pytest.raises(FormatError, match=rf"{path}:3: "):
            read_matrix_market(str(path))

    def test_truncated_file_names_last_line(self, tmp_path):
        path = tmp_path / "short.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "3 3 3\n"
            "1 1 1.0\n"
        )
        with pytest.raises(FormatError, match=rf"{path}:3: file ended after 1 of 3"):
            read_matrix_market(str(path))

    def test_stream_errors_use_stream_marker(self):
        bad = io.StringIO("%%MatrixMarket matrix coordinate real general\n1 1\n")
        with pytest.raises(FormatError, match=r"<stream>:2: "):
            read_matrix_market(bad)

    def test_bad_header_is_line_one(self):
        with pytest.raises(FormatError, match=r"<stream>:1: not a Matrix Market"):
            read_matrix_market(io.StringIO("garbage\n"))


class TestChunkedReader:
    """iter_matrix_market_chunks / mtx_to_memmap_csr vs the line reader."""

    def write_random_mtx(self, path, n, nnz, seed, symmetry="general"):
        rng = np.random.default_rng(seed)
        if symmetry == "symmetric":
            rows = rng.integers(1, n + 1, size=nnz)
            cols = rng.integers(1, n + 1, size=nnz)
            rows, cols = np.maximum(rows, cols), np.minimum(rows, cols)
        else:
            rows = rng.integers(1, n + 1, size=nnz)
            cols = rng.integers(1, n + 1, size=nnz)
        values = rng.normal(size=nnz)
        with open(path, "w") as handle:
            handle.write(f"%%MatrixMarket matrix coordinate real {symmetry}\n")
            handle.write("% generated for the chunked-reader tests\n")
            handle.write(f"{n} {n} {nnz}\n")
            for r, c, v in zip(rows, cols, values):
                handle.write(f"{r} {c} {float(v)!r}\n")

    @pytest.mark.parametrize("symmetry", ["general", "symmetric"])
    @pytest.mark.parametrize("chunk_entries", [3, 16, 10_000])
    def test_chunks_concatenate_to_reference(self, tmp_path, symmetry, chunk_entries):
        from repro.graphs.io import iter_matrix_market_chunks

        path = tmp_path / "m.mtx"
        self.write_random_mtx(str(path), 12, 40, seed=9, symmetry=symmetry)
        reference = read_matrix_market(str(path))
        rows, cols, values = [], [], []
        for r, c, v in iter_matrix_market_chunks(str(path), chunk_entries=chunk_entries):
            rows.append(r)
            cols.append(c)
            values.append(v)
        rows = np.concatenate(rows)
        cols = np.concatenate(cols)
        values = np.concatenate(values)
        order = np.lexsort((cols, rows))
        ref_order = np.lexsort((reference.cols, reference.rows))
        assert np.array_equal(rows[order], reference.rows[ref_order])
        assert np.array_equal(cols[order], reference.cols[ref_order])
        assert np.array_equal(values[order], reference.values[ref_order])

    def test_header_scan(self, tmp_path):
        from repro.graphs.io import scan_matrix_market_header

        path = tmp_path / "m.mtx"
        self.write_random_mtx(str(path), 7, 11, seed=1)
        header = scan_matrix_market_header(str(path))
        assert (header.n_rows, header.n_cols, header.n_entries) == (7, 7, 11)
        assert header.field == "real"
        assert header.symmetry == "general"

    @pytest.mark.parametrize("chunk_entries", [2, 5, 10_000])
    def test_mtx_to_memmap_matches_read_matrix_market(self, tmp_path, chunk_entries):
        from repro.graphs.io import mtx_to_memmap_csr
        from repro.sparse.convert import coo_to_csr
        from repro.sparse.memmap import is_memmap_backed

        path = tmp_path / "m.mtx"
        self.write_random_mtx(str(path), 10, 30, seed=2, symmetry="symmetric")
        reference = coo_to_csr(read_matrix_market(str(path)))
        built = mtx_to_memmap_csr(
            str(path), str(tmp_path / "csr"), chunk_entries=chunk_entries
        )
        assert is_memmap_backed(built)
        assert np.array_equal(built.row_offsets, reference.row_offsets)
        assert np.array_equal(built.col_indices, reference.col_indices)
        assert np.array_equal(built.values, reference.values)


class TestChunkedErrorParity:
    """The chunked reader reports byte-identical errors to the line reader.

    The regression that matters: a corrupt entry mid-file must name the
    exact path:lineno even when it sits in the middle of a later chunk
    of a multi-chunk read.
    """

    def drain(self, path, chunk_entries):
        from repro.graphs.io import iter_matrix_market_chunks

        for _ in iter_matrix_market_chunks(path, chunk_entries=chunk_entries):
            pass

    def both_errors(self, path, chunk_entries):
        with pytest.raises(FormatError) as line_err:
            read_matrix_market(path)
        with pytest.raises(FormatError) as chunk_err:
            self.drain(path, chunk_entries)
        return str(line_err.value), str(chunk_err.value)

    def test_corrupt_entry_mid_file_names_exact_line(self, tmp_path):
        path = tmp_path / "corrupt.mtx"
        lines = [
            "%%MatrixMarket matrix coordinate real general",
            "% padding comment",
            "40 40 40",
        ]
        entries = [f"{i + 1} {i + 1} 1.0" for i in range(40)]
        entries[23] = "24 oops 1.0"  # physical line 27, inside chunk 3 of 8
        path.write_text("\n".join(lines + entries) + "\n")
        line_msg, chunk_msg = self.both_errors(str(path), chunk_entries=5)
        assert line_msg == chunk_msg
        assert f"{path}:27: " in chunk_msg

    def test_truncation_count_matches_including_mirrors(self, tmp_path):
        path = tmp_path / "short.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "9 9 40\n"
            + "".join(f"{i + 2} {i + 1} 1.0\n" for i in range(8))
        )
        line_msg, chunk_msg = self.both_errors(str(path), chunk_entries=3)
        assert line_msg == chunk_msg
        assert "file ended after 16 of 40" in chunk_msg  # mirrors counted

    def test_malformed_entry_outranks_truncation(self, tmp_path):
        path = tmp_path / "both.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "5 5 9\n"
            "1 1 1.0\n"
            "2 nope 1.0\n"
        )
        line_msg, chunk_msg = self.both_errors(str(path), chunk_entries=4)
        assert line_msg == chunk_msg
        assert f"{path}:4: " in chunk_msg

    def test_out_of_bounds_entry_names_its_line(self, tmp_path):
        path = tmp_path / "oob.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "3 3 3\n"
            "1 1 1.0\n"
            "2 2 1.0\n"
            "9 1 1.0\n"
        )
        # The line reader defers bounds checks to the COOMatrix
        # constructor (no location); the chunked reader has to check
        # per chunk anyway, so it does better and names the line.
        line_msg, chunk_msg = self.both_errors(str(path), chunk_entries=2)
        assert "out of bounds" in line_msg
        assert f"{path}:5: " in chunk_msg
        assert "out of bounds" in chunk_msg

    def test_preamble_errors_identical(self, tmp_path):
        path = tmp_path / "preamble.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real diagonal\n1 1 1\n")
        line_msg, chunk_msg = self.both_errors(str(path), chunk_entries=4)
        assert line_msg == chunk_msg
