"""ExperimentRunner: pipeline, memoization, and record integrity."""

import json
import os

import pytest

from repro.errors import ValidationError
from repro.experiments.runner import (
    DEFAULT_CACHE_DIR,
    ExperimentRunner,
    MatrixMetrics,
    RunRecord,
    resolve_cache_dir,
)
from repro.obs import Instrumentation, using


@pytest.fixture
def runner(tmp_path):
    return ExperimentRunner(profile="test", cache_dir=str(tmp_path / "cache"))


class TestRun:
    def test_record_fields(self, runner):
        record = runner.run("test-mesh", "rabbit")
        assert record.matrix == "test-mesh"
        assert record.technique == "rabbit"
        assert record.normalized_traffic >= 1.0
        assert record.normalized_runtime >= record.normalized_traffic - 1e-9
        assert 0.0 <= record.hit_rate <= 1.0
        assert 0.0 <= record.dead_line_fraction <= 1.0

    def test_disk_cache_roundtrip(self, runner, tmp_path):
        first = runner.run("test-mesh", "random")
        fresh = ExperimentRunner(profile="test", cache_dir=runner.cache_dir)
        second = fresh.run("test-mesh", "random")
        assert first.to_json() == second.to_json()
        assert len(os.listdir(runner.cache_dir)) > 0

    def test_cache_disabled(self, tmp_path):
        runner = ExperimentRunner(
            profile="test", cache_dir=str(tmp_path / "nocache"), use_cache=False
        )
        runner.run("test-mesh", "original")
        assert not os.path.exists(str(tmp_path / "nocache"))

    def test_unknown_kernel_rejected(self, runner):
        with pytest.raises(ValidationError):
            runner.run("test-mesh", "rabbit", kernel="spgemm")

    def test_unknown_mask_rejected(self, runner):
        with pytest.raises(ValidationError):
            runner.run("test-mesh", "rabbit", mask="hubs")

    def test_rabbit_beats_random_on_community_matrix(self, runner):
        random_run = runner.run("test-comm", "random")
        rabbit_run = runner.run("test-comm", "rabbit")
        assert rabbit_run.normalized_traffic < random_run.normalized_traffic

    def test_insular_mask_run_close_to_compulsory(self, runner):
        record = runner.run("test-comm", "rabbit+insular", mask="insular")
        assert record.normalized_traffic < 1.6

    def test_permutation_memoized_in_process(self, runner):
        a = runner.permutation("test-mesh", "rabbit")
        b = runner.permutation("test-mesh", "rabbit")
        assert a is b

    def test_spmm_platform_scaling(self, runner):
        plain = runner._platform_for_kernel("spmv-csr")
        scaled = runner._platform_for_kernel("spmm-csr-256")
        assert scaled.l2_capacity_bytes == plain.l2_capacity_bytes * 16


class TestMetrics:
    def test_metrics_fields(self, runner):
        metrics = runner.matrix_metrics("test-comm")
        assert metrics.n_nodes == 512
        assert 0.0 <= metrics.insularity <= 1.0
        assert 0.0 <= metrics.insular_node_fraction <= 1.0
        assert 0.0 <= metrics.skew <= 1.0
        assert metrics.n_communities >= 1

    def test_metrics_cached_on_disk(self, runner):
        runner.matrix_metrics("test-comm")
        fresh = ExperimentRunner(profile="test", cache_dir=runner.cache_dir)
        metrics = fresh.matrix_metrics("test-comm")
        assert metrics.matrix == "test-comm"

    def test_community_matrix_has_high_insularity(self, runner):
        comm = runner.matrix_metrics("test-comm")
        social = runner.matrix_metrics("test-social")
        assert comm.insularity > social.insularity

    def test_reorder_seconds_persisted(self, runner):
        runner.run("test-mesh", "rabbit")
        seconds = runner.reorder_seconds("test-mesh", "rabbit")
        assert seconds >= 0.0


class TestDetectionMemo:
    def test_detection_runs_once_per_matrix(self, runner, monkeypatch):
        """Regression: every masked (kernel, policy) cell used to rerun
        RABBIT detection — the most expensive pipeline stage.  The
        'original' technique computes no detection of its own, so every
        call observed here comes from metrics or the insular mask."""
        from repro.reorder.rabbit import RabbitOrder

        calls = []
        original_detect = RabbitOrder.detect

        def counting_detect(self, graph, *args, **kwargs):
            calls.append(1)
            return original_detect(self, graph, *args, **kwargs)

        monkeypatch.setattr(RabbitOrder, "detect", counting_detect)
        runner.matrix_metrics("test-comm")
        runner.run("test-comm", "original", mask="insular")
        runner.run("test-comm", "original", kernel="spmv-coo", mask="insular")
        runner.run("test-comm", "original", policy="belady", mask="insular")
        assert len(calls) == 1

    def test_detection_object_memoized(self, runner):
        assert runner.detection("test-mesh") is runner.detection("test-mesh")


class TestCacheDir:
    def test_env_var_redirects_cache(self, tmp_path, monkeypatch):
        target = tmp_path / "redirected"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
        runner = ExperimentRunner(profile="test")
        assert runner.cache_dir == str(target)
        runner.run("test-mesh", "original")
        assert os.path.isdir(str(target))

    def test_explicit_cache_dir_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        explicit = str(tmp_path / "explicit")
        assert ExperimentRunner(profile="test", cache_dir=explicit).cache_dir == explicit

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache_dir() == os.path.join(os.getcwd(), DEFAULT_CACHE_DIR)

    def test_empty_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert resolve_cache_dir() == os.path.join(os.getcwd(), DEFAULT_CACHE_DIR)

    def test_default_follows_chdir(self, tmp_path, monkeypatch):
        """Regression: the default used to be frozen to the cwd at
        import time, so a later chdir silently wrote the memo into the
        old directory."""
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        first = tmp_path / "first"
        second = tmp_path / "second"
        first.mkdir()
        second.mkdir()
        monkeypatch.chdir(first)
        assert resolve_cache_dir() == str(first / DEFAULT_CACHE_DIR)
        monkeypatch.chdir(second)
        assert resolve_cache_dir() == str(second / DEFAULT_CACHE_DIR)


class TestWriteJson:
    def test_failed_write_leaves_no_temp_file(self, runner):
        os.makedirs(runner.cache_dir, exist_ok=True)
        path = os.path.join(runner.cache_dir, "broken.json")
        with pytest.raises(TypeError):
            runner._write_json(path, {"bad": object()})
        assert os.listdir(runner.cache_dir) == []

    def test_successful_write_leaves_only_target(self, runner):
        path = os.path.join(runner.cache_dir, "ok.json")
        runner._write_json(path, {"fine": 1})
        assert os.listdir(runner.cache_dir) == ["ok.json"]


class TestMemoCounters:
    def test_cold_then_warm_hit_miss_counters(self, runner):
        cold = Instrumentation(enabled=True)
        with using(cold):
            runner.run("test-mesh", "rabbit")
        assert cold.counters.get("memo.run.miss") == 1
        assert cold.counters.get("memo.run.hit") == 0

        warm = Instrumentation(enabled=True)
        fresh = ExperimentRunner(profile="test", cache_dir=runner.cache_dir)
        with using(warm):
            fresh.run("test-mesh", "rabbit")
        assert warm.counters.get("memo.run.hit") == 1
        assert warm.counters.get("memo.run.miss") == 0

    def test_metrics_memo_counters(self, runner):
        instr = Instrumentation(enabled=True)
        with using(instr):
            runner.matrix_metrics("test-mesh")
            runner.matrix_metrics("test-mesh")
        assert instr.counters.get("memo.metrics.miss") == 1
        assert instr.counters.get("memo.metrics.hit") == 1

    def test_stage_spans_recorded(self, runner):
        instr = Instrumentation(enabled=True)
        with using(instr):
            runner.run("test-mesh", "degsort")
        totals = instr.span_totals()
        for stage in ("load", "reorder", "permute", "trace", "cache-sim", "perf-model"):
            assert totals[stage].calls >= 1, stage
            assert totals[stage].seconds >= 0.0


class TestSerialization:
    def test_run_record_json_roundtrip(self, runner):
        record = runner.run("test-mesh", "dbg")
        payload = json.loads(json.dumps(record.to_json()))
        assert RunRecord.from_json(payload) == record

    def test_matrix_metrics_json_roundtrip(self, runner):
        metrics = runner.matrix_metrics("test-mesh")
        payload = json.loads(json.dumps(metrics.to_json()))
        assert MatrixMetrics.from_json(payload) == metrics


class TestTolerantCacheReads:
    """A truncated or invalid memo file must never crash the runner."""

    def test_truncated_cache_entry_quarantined_and_recomputed(self, runner):
        metrics = runner.matrix_metrics("test-mesh")
        path = runner.metrics_cache_path("test-mesh")
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        fresh = ExperimentRunner(profile="test", cache_dir=runner.cache_dir)
        assert fresh.matrix_metrics("test-mesh") == metrics
        quarantine = os.path.join(runner.cache_dir, "quarantine")
        assert os.path.basename(path) in os.listdir(quarantine)

    def test_invalid_json_cache_entry_recomputed(self, runner):
        record = runner.run("test-mesh", "original")
        names = [n for n in os.listdir(runner.cache_dir) if n.startswith("run-")]
        with open(os.path.join(runner.cache_dir, names[0]), "w") as handle:
            handle.write("{ not json")
        fresh = ExperimentRunner(profile="test", cache_dir=runner.cache_dir)
        redone = fresh.run("test-mesh", "original")
        assert redone.normalized_traffic == record.normalized_traffic
