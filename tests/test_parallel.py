"""repro.parallel: planning, pool execution, and sequential equivalence.

The core invariant: precomputing cells with ``jobs=N`` must leave the
on-disk memo byte-identical to the sequential path, so the drivers
replaying the sweep produce the same ``RunRecord``s either way.  Both
sides run under a zero-tick :class:`FakeClock` so the one
nondeterministic field (``reorder_seconds``) memoizes identically.
"""

import os

import pytest

from repro.errors import ParallelExecutionError, ValidationError
from repro.experiments import fig3, fig6
from repro.experiments.run_all import DRIVERS
from repro.experiments.runner import ExperimentRunner
from repro.obs import FakeClock, Instrumentation, using
from repro.parallel import (
    RunnerConfig,
    dedupe_cells,
    driver_plan,
    execute_cells,
    metrics_cell,
    plan_cells,
    run_cell,
)

#: Drivers used for the (relatively) expensive equivalence tests; kept
#: small so the suite stays fast — fig3 covers metrics + run cells.
EQUIVALENCE_DRIVERS = {"fig3": fig3.run}


def read_cache(cache_dir):
    """{filename: bytes} of every memo file in the directory."""
    return {
        name: open(os.path.join(cache_dir, name), "rb").read()
        for name in sorted(os.listdir(cache_dir))
    }


class TestCells:
    def test_dedupe_keeps_first_seen_order(self):
        a = run_cell("m1", "rabbit")
        b = metrics_cell("m1")
        assert dedupe_cells([a, b, a, b, a]) == [a, b]

    def test_cells_hash_and_pickle(self):
        import pickle

        cell = run_cell("m", "rabbit", kernel="spmv-coo", policy="belady")
        assert pickle.loads(pickle.dumps(cell)) == cell
        assert len({cell, run_cell("m", "rabbit", kernel="spmv-coo", policy="belady")}) == 1

    def test_labels(self):
        assert metrics_cell("m").label() == "metrics:m"
        assert run_cell("m", "t").label() == "m/t/spmv-csr/lru/none"


class TestPlanner:
    def test_every_paper_driver_is_planned_or_exempt(self):
        # table1 (static specs) and fig9 (generated-size sweep) plan
        # zero cells; every other paper driver must contribute.
        empty_ok = {"table1", "fig9"}
        for name, driver in DRIVERS.items():
            cells = driver_plan(driver, "test")
            if name in empty_ok:
                assert cells == []
            else:
                assert cells, f"driver {name} planned no cells"

    def test_plan_cells_deduplicates_across_drivers(self):
        cells = plan_cells(DRIVERS, "test")
        assert len(cells) == len(set(cells))
        # fig3, fig7, table2 all want (matrix, rabbit, spmv-csr, lru):
        # it must appear exactly once.
        rabbit_cells = [
            c for c in cells
            if c.kind == "run" and c.technique == "rabbit"
            and c.kernel == "spmv-csr" and c.policy == "lru" and c.mask == "none"
        ]
        matrices = [c.matrix for c in rabbit_cells]
        assert len(matrices) == len(set(matrices))

    def test_plan_matches_actual_requests(self, tmp_path):
        """The plan hook must cover exactly what run() requests."""

        requested = []

        class RecordingRunner(ExperimentRunner):
            def run(self, matrix, technique, kernel="spmv-csr", policy="lru",
                    mask="none"):
                requested.append(run_cell(matrix, technique, kernel, policy, mask))
                return super().run(matrix, technique, kernel=kernel,
                                   policy=policy, mask=mask)

            def matrix_metrics(self, matrix):
                requested.append(metrics_cell(matrix))
                return super().matrix_metrics(matrix)

        runner = RecordingRunner(profile="test", cache_dir=str(tmp_path / "memo"))
        fig6.run(profile="test", runner=runner)
        assert set(driver_plan(fig6.run, "test")) == set(requested)


class TestExecutor:
    def test_rejects_zero_jobs(self, tmp_path):
        with pytest.raises(ValidationError):
            execute_cells([], RunnerConfig("test", str(tmp_path)), jobs=0)

    def test_jobs1_never_builds_a_pool(self, tmp_path, monkeypatch):
        import repro.parallel.executor as executor

        def forbidden(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("jobs=1 must not spawn a process pool")

        monkeypatch.setattr(executor, "ProcessPoolExecutor", forbidden)
        stats = execute_cells(
            [metrics_cell("test-mesh")],
            RunnerConfig("test", str(tmp_path / "memo")),
            jobs=1,
        )
        assert stats.executed == 1

    def test_use_cache_false_skips_precompute(self, tmp_path):
        stats = execute_cells(
            [metrics_cell("test-mesh")],
            RunnerConfig("test", str(tmp_path / "memo"), use_cache=False),
            jobs=2,
        )
        assert stats.executed == 0
        assert not os.path.exists(str(tmp_path / "memo"))

    def test_already_memoized_cells_are_skipped(self, tmp_path):
        config = RunnerConfig("test", str(tmp_path / "memo"))
        cells = [metrics_cell("test-mesh"), run_cell("test-mesh", "original")]
        first = execute_cells(cells, config, jobs=1)
        assert (first.executed, first.skipped) == (2, 0)
        second = execute_cells(cells, config, jobs=1)
        assert (second.executed, second.skipped) == (0, 2)

    def test_worker_crash_fails_loudly(self, tmp_path):
        bogus = metrics_cell("no-such-matrix")
        with pytest.raises(ParallelExecutionError, match="no-such-matrix"):
            execute_cells(
                [bogus], RunnerConfig("test", str(tmp_path / "memo")), jobs=2
            )

    def test_cells_sharing_permutation_group_into_one_task(self):
        from repro.parallel.executor import _group_cells

        cells = [
            run_cell("m1", "rabbit"),
            run_cell("m1", "rabbit", policy="belady"),
            run_cell("m1", "degsort"),
            metrics_cell("m1"),
            run_cell("m2", "rabbit"),
        ]
        groups = _group_cells(cells)
        assert [len(g) for g in groups] == [2, 1, 1, 1]
        assert groups[0] == (cells[0], cells[1])

    def test_grouping_reorders_once_per_matrix_technique(self, tmp_path):
        """Two cells sharing (matrix, technique) land in one worker, so
        the expensive permutation computes exactly once — same as the
        sequential path."""
        cells = [
            run_cell("test-mesh", "degsort"),
            run_cell("test-mesh", "degsort", policy="belady"),
        ]
        instr = Instrumentation(enabled=True)
        with using(instr):
            stats = execute_cells(
                cells, RunnerConfig("test", str(tmp_path / "memo")), jobs=2
            )
        assert stats.executed == 2
        assert instr.span_totals()["reorder"].calls == 1

    def test_counters_and_spans_merge_into_parent(self, tmp_path):
        cells = [
            run_cell("test-mesh", "original"),
            run_cell("test-mesh", "degsort"),
            metrics_cell("test-mesh"),
        ]
        instr = Instrumentation(enabled=True)
        with using(instr):
            stats = execute_cells(
                cells, RunnerConfig("test", str(tmp_path / "memo")), jobs=2
            )
        assert stats.executed == 3
        assert instr.counters.get("memo.run.miss") == 2
        assert instr.counters.get("memo.metrics.miss") == 1
        assert instr.counters.get("parallel.cells.executed") == 3
        totals = instr.span_totals()
        for stage in ("load", "reorder", "trace", "cache-sim", "detect"):
            assert totals[stage].calls >= 1, stage


class TestParallelEquivalence:
    def test_parallel_memo_byte_identical_to_sequential(self, tmp_path):
        """jobs=2 and jobs=1 must write byte-identical memo files."""
        cells = plan_cells(EQUIVALENCE_DRIVERS, "test")
        seq_dir = str(tmp_path / "seq")
        par_dir = str(tmp_path / "par")
        execute_cells(
            cells, RunnerConfig("test", seq_dir), jobs=1, worker_clock=FakeClock()
        )
        execute_cells(
            cells, RunnerConfig("test", par_dir), jobs=2, worker_clock=FakeClock()
        )
        seq_files = read_cache(seq_dir)
        par_files = read_cache(par_dir)
        assert seq_files.keys() == par_files.keys()
        assert seq_files == par_files

    def test_drivers_replay_parallel_memo_as_hits(self, tmp_path):
        """After precompute, a driver run is pure memo hits and the
        records match a from-scratch sequential driver run."""
        cells = plan_cells(EQUIVALENCE_DRIVERS, "test")
        par_dir = str(tmp_path / "par")
        execute_cells(
            cells, RunnerConfig("test", par_dir), jobs=2, worker_clock=FakeClock()
        )
        replay = Instrumentation(enabled=True)
        with using(replay):
            par_report = fig3.run(
                profile="test", runner=ExperimentRunner("test", cache_dir=par_dir)
            )
        assert replay.counters.get("memo.run.miss") == 0
        assert replay.counters.get("memo.run.hit") > 0

        seq_dir = str(tmp_path / "seq")
        with using(Instrumentation(enabled=True, clock=FakeClock())):
            seq_report = fig3.run(
                profile="test", runner=ExperimentRunner("test", cache_dir=seq_dir)
            )
        assert par_report.rows == seq_report.rows
        assert par_report.summary == seq_report.summary


class TestRunAllJobs:
    def test_run_all_jobs_argument_precomputes(self, tmp_path, monkeypatch):
        """run_all(jobs=2) wires through to the parallel precompute."""
        import repro.experiments.run_all as run_all_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))
        seen = {}

        def fake_precompute(drivers, runner, jobs, **kwargs):
            seen["drivers"] = set(drivers)
            seen["jobs"] = jobs
            seen["cache_dir"] = runner.cache_dir

        monkeypatch.setattr(run_all_module, "precompute", fake_precompute)
        monkeypatch.setattr(
            run_all_module, "DRIVERS", {"fig3": fig3.run}
        )
        reports = run_all_module.run_all(profile="test", jobs=2)
        assert seen == {
            "drivers": {"fig3"},
            "jobs": 2,
            "cache_dir": str(tmp_path / "memo"),
        }
        assert [r.experiment for r in reports] == ["fig3"]

    def test_run_all_jobs1_skips_precompute(self, tmp_path, monkeypatch):
        import repro.experiments.run_all as run_all_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))

        def forbidden(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("jobs=1 must not touch repro.parallel")

        monkeypatch.setattr(run_all_module, "precompute", forbidden)
        monkeypatch.setattr(run_all_module, "DRIVERS", {"fig3": fig3.run})
        reports = run_all_module.run_all(profile="test", jobs=1)
        assert [r.experiment for r in reports] == ["fig3"]
