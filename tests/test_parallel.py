"""repro.parallel: planning, pool execution, and sequential equivalence.

The core invariant: precomputing cells with ``jobs=N`` must leave the
on-disk memo byte-identical to the sequential path, so the drivers
replaying the sweep produce the same ``RunRecord``s either way.  Both
sides run under a zero-tick :class:`FakeClock` so the one
nondeterministic field (``reorder_seconds``) memoizes identically.
"""

import os

import pytest

from repro.errors import ParallelExecutionError, ValidationError
from repro.experiments import fig3, fig6
from repro.experiments.run_all import DRIVERS
from repro.experiments.runner import ExperimentRunner
from repro.obs import FakeClock, Instrumentation, using
from repro.parallel import (
    RunnerConfig,
    dedupe_cells,
    driver_plan,
    execute_cells,
    metrics_cell,
    plan_cells,
    run_cell,
)

#: Drivers used for the (relatively) expensive equivalence tests; kept
#: small so the suite stays fast — fig3 covers metrics + run cells.
EQUIVALENCE_DRIVERS = {"fig3": fig3.run}


def read_cache(cache_dir):
    """{filename: bytes} of every memo file in the directory."""
    return {
        name: open(os.path.join(cache_dir, name), "rb").read()
        for name in sorted(os.listdir(cache_dir))
    }


class TestCells:
    def test_dedupe_keeps_first_seen_order(self):
        a = run_cell("m1", "rabbit")
        b = metrics_cell("m1")
        assert dedupe_cells([a, b, a, b, a]) == [a, b]

    def test_cells_hash_and_pickle(self):
        import pickle

        cell = run_cell("m", "rabbit", kernel="spmv-coo", policy="belady")
        assert pickle.loads(pickle.dumps(cell)) == cell
        assert len({cell, run_cell("m", "rabbit", kernel="spmv-coo", policy="belady")}) == 1

    def test_labels(self):
        assert metrics_cell("m").label() == "metrics:m"
        assert run_cell("m", "t").label() == "m/t/spmv-csr/lru/none"


class TestPlanner:
    def test_every_paper_driver_is_planned_or_exempt(self):
        # table1 (static specs) and fig9 (generated-size sweep) plan
        # zero cells; every other paper driver must contribute.
        empty_ok = {"table1", "fig9"}
        for name, driver in DRIVERS.items():
            cells = driver_plan(driver, "test")
            if name in empty_ok:
                assert cells == []
            else:
                assert cells, f"driver {name} planned no cells"

    def test_plan_cells_deduplicates_across_drivers(self):
        cells = plan_cells(DRIVERS, "test")
        assert len(cells) == len(set(cells))
        # fig3, fig7, table2 all want (matrix, rabbit, spmv-csr, lru):
        # it must appear exactly once.
        rabbit_cells = [
            c for c in cells
            if c.kind == "run" and c.technique == "rabbit"
            and c.kernel == "spmv-csr" and c.policy == "lru" and c.mask == "none"
        ]
        matrices = [c.matrix for c in rabbit_cells]
        assert len(matrices) == len(set(matrices))

    def test_plan_matches_actual_requests(self, tmp_path):
        """The plan hook must cover exactly what run() requests."""

        requested = []

        class RecordingRunner(ExperimentRunner):
            def run(self, matrix, technique, kernel="spmv-csr", policy="lru",
                    mask="none"):
                requested.append(run_cell(matrix, technique, kernel, policy, mask))
                return super().run(matrix, technique, kernel=kernel,
                                   policy=policy, mask=mask)

            def matrix_metrics(self, matrix):
                requested.append(metrics_cell(matrix))
                return super().matrix_metrics(matrix)

        runner = RecordingRunner(profile="test", cache_dir=str(tmp_path / "memo"))
        fig6.run(profile="test", runner=runner)
        assert set(driver_plan(fig6.run, "test")) == set(requested)


class TestExecutor:
    def test_rejects_zero_jobs(self, tmp_path):
        with pytest.raises(ValidationError):
            execute_cells([], RunnerConfig("test", str(tmp_path)), jobs=0)

    def test_jobs1_never_builds_a_pool(self, tmp_path, monkeypatch):
        import repro.parallel.executor as executor

        def forbidden(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("jobs=1 must not spawn a process pool")

        monkeypatch.setattr(executor, "ProcessPoolExecutor", forbidden)
        stats = execute_cells(
            [metrics_cell("test-mesh")],
            RunnerConfig("test", str(tmp_path / "memo")),
            jobs=1,
        )
        assert stats.executed == 1

    def test_use_cache_false_skips_precompute(self, tmp_path):
        stats = execute_cells(
            [metrics_cell("test-mesh")],
            RunnerConfig("test", str(tmp_path / "memo"), use_cache=False),
            jobs=2,
        )
        assert stats.executed == 0
        assert not os.path.exists(str(tmp_path / "memo"))

    def test_already_memoized_cells_are_skipped(self, tmp_path):
        config = RunnerConfig("test", str(tmp_path / "memo"))
        cells = [metrics_cell("test-mesh"), run_cell("test-mesh", "original")]
        first = execute_cells(cells, config, jobs=1)
        assert (first.executed, first.skipped) == (2, 0)
        second = execute_cells(cells, config, jobs=1)
        assert (second.executed, second.skipped) == (0, 2)

    def test_worker_crash_fails_loudly(self, tmp_path):
        bogus = metrics_cell("no-such-matrix")
        with pytest.raises(ParallelExecutionError, match="no-such-matrix"):
            execute_cells(
                [bogus], RunnerConfig("test", str(tmp_path / "memo")), jobs=2
            )

    def test_cells_sharing_permutation_group_into_one_task(self):
        from repro.parallel.executor import _group_cells

        cells = [
            run_cell("m1", "rabbit"),
            run_cell("m1", "rabbit", policy="belady"),
            run_cell("m1", "degsort"),
            metrics_cell("m1"),
            run_cell("m2", "rabbit"),
        ]
        groups = _group_cells(cells)
        assert [len(g) for g in groups] == [2, 1, 1, 1]
        assert groups[0] == (cells[0], cells[1])

    def test_grouping_reorders_once_per_matrix_technique(self, tmp_path):
        """Two cells sharing (matrix, technique) land in one worker, so
        the expensive permutation computes exactly once — same as the
        sequential path."""
        cells = [
            run_cell("test-mesh", "degsort"),
            run_cell("test-mesh", "degsort", policy="belady"),
        ]
        instr = Instrumentation(enabled=True)
        with using(instr):
            stats = execute_cells(
                cells, RunnerConfig("test", str(tmp_path / "memo")), jobs=2
            )
        assert stats.executed == 2
        assert instr.span_totals()["reorder"].calls == 1

    def test_counters_and_spans_merge_into_parent(self, tmp_path):
        cells = [
            run_cell("test-mesh", "original"),
            run_cell("test-mesh", "degsort"),
            metrics_cell("test-mesh"),
        ]
        instr = Instrumentation(enabled=True)
        with using(instr):
            stats = execute_cells(
                cells, RunnerConfig("test", str(tmp_path / "memo")), jobs=2
            )
        assert stats.executed == 3
        assert instr.counters.get("memo.run.miss") == 2
        assert instr.counters.get("memo.metrics.miss") == 1
        assert instr.counters.get("parallel.cells.executed") == 3
        totals = instr.span_totals()
        for stage in ("load", "reorder", "trace", "cache-sim", "detect"):
            assert totals[stage].calls >= 1, stage


class TestParallelEquivalence:
    def test_parallel_memo_byte_identical_to_sequential(self, tmp_path):
        """jobs=2 and jobs=1 must write byte-identical memo files."""
        cells = plan_cells(EQUIVALENCE_DRIVERS, "test")
        seq_dir = str(tmp_path / "seq")
        par_dir = str(tmp_path / "par")
        execute_cells(
            cells, RunnerConfig("test", seq_dir), jobs=1, worker_clock=FakeClock()
        )
        execute_cells(
            cells, RunnerConfig("test", par_dir), jobs=2, worker_clock=FakeClock()
        )
        seq_files = read_cache(seq_dir)
        par_files = read_cache(par_dir)
        assert seq_files.keys() == par_files.keys()
        assert seq_files == par_files

    def test_drivers_replay_parallel_memo_as_hits(self, tmp_path):
        """After precompute, a driver run is pure memo hits and the
        records match a from-scratch sequential driver run."""
        cells = plan_cells(EQUIVALENCE_DRIVERS, "test")
        par_dir = str(tmp_path / "par")
        execute_cells(
            cells, RunnerConfig("test", par_dir), jobs=2, worker_clock=FakeClock()
        )
        replay = Instrumentation(enabled=True)
        with using(replay):
            par_report = fig3.run(
                profile="test", runner=ExperimentRunner("test", cache_dir=par_dir)
            )
        assert replay.counters.get("memo.run.miss") == 0
        assert replay.counters.get("memo.run.hit") > 0

        seq_dir = str(tmp_path / "seq")
        with using(Instrumentation(enabled=True, clock=FakeClock())):
            seq_report = fig3.run(
                profile="test", runner=ExperimentRunner("test", cache_dir=seq_dir)
            )
        assert par_report.rows == seq_report.rows
        assert par_report.summary == seq_report.summary


class TestRunAllJobs:
    def test_run_all_jobs_argument_precomputes(self, tmp_path, monkeypatch):
        """run_all(jobs=2) wires through to the parallel precompute."""
        import repro.experiments.run_all as run_all_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))
        seen = {}

        def fake_precompute(drivers, runner, jobs, **kwargs):
            seen["drivers"] = set(drivers)
            seen["jobs"] = jobs
            seen["cache_dir"] = runner.cache_dir

        monkeypatch.setattr(run_all_module, "precompute", fake_precompute)
        monkeypatch.setattr(
            run_all_module, "DRIVERS", {"fig3": fig3.run}
        )
        reports = run_all_module.run_all(profile="test", jobs=2)
        assert seen == {
            "drivers": {"fig3"},
            "jobs": 2,
            "cache_dir": str(tmp_path / "memo"),
        }
        assert [r.experiment for r in reports] == ["fig3"]

    def test_run_all_jobs1_skips_precompute(self, tmp_path, monkeypatch):
        import repro.experiments.run_all as run_all_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))

        def forbidden(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("jobs=1 must not touch repro.parallel")

        monkeypatch.setattr(run_all_module, "precompute", forbidden)
        monkeypatch.setattr(run_all_module, "DRIVERS", {"fig3": fig3.run})
        reports = run_all_module.run_all(profile="test", jobs=1)
        assert [r.experiment for r in reports] == ["fig3"]


class TestParallelTelemetry:
    """Worker telemetry folds into the parent deterministically."""

    #: Group-disjoint cells (one technique per matrix): jobs=1 and the
    #: pool execute the exact same span sequence per cell, because no
    #: graph load or permutation is shared across groups either way.
    DISJOINT_CELLS = [
        ("test-mesh", "degsort"),
        ("test-comm", "original"),
    ]

    def run_cells(self, cache_dir, jobs):
        cells = [run_cell(m, t) for m, t in self.DISJOINT_CELLS]
        instr = Instrumentation(enabled=True)
        with using(instr):
            stats = execute_cells(
                cells,
                RunnerConfig("test", cache_dir),
                jobs=jobs,
                worker_clock=FakeClock(tick=1.0),
            )
        assert stats.executed == len(cells)
        return instr

    def test_merged_histograms_equal_single_process_run(self, tmp_path):
        """Acceptance: bucket-exact histogram merge across workers.

        Under a deterministic tick clock every span's duration is a
        pure function of the work inside it, so the histograms the
        parent assembles from two workers must equal the ones a single
        process builds from the same cells — bucket arrays included.
        """
        seq = self.run_cells(str(tmp_path / "seq"), jobs=1)
        par = self.run_cells(str(tmp_path / "par"), jobs=2)
        seq_hists = {n: h.to_json() for n, h in seq.counters.histograms().items()}
        par_hists = {n: h.to_json() for n, h in par.counters.histograms().items()}
        assert seq_hists.keys() == par_hists.keys()
        for name in seq_hists:
            assert seq_hists[name] == par_hists[name], name
        assert seq_hists["cell"]["count"] == len(self.DISJOINT_CELLS)
        assert seq_hists["cell.attempts"]["count"] == len(self.DISJOINT_CELLS)

    def test_gauge_merge_is_deterministic_max_wins(self, tmp_path):
        """jobs=2 gauge folding must not depend on completion order."""
        cells = [
            run_cell("test-mesh", "degsort"),
            run_cell("test-mesh", "degsort", policy="belady"),
            run_cell("test-comm", "original"),
        ]
        values = []
        for attempt in range(2):
            instr = Instrumentation(enabled=True)
            with using(instr):
                execute_cells(
                    cells,
                    RunnerConfig("test", str(tmp_path / f"memo{attempt}")),
                    jobs=2,
                    worker_clock=FakeClock(),
                )
            values.append(instr.counters.gauge("parallel.group_cells"))
        # Groups have sizes 2 and 1; max-wins merge always reports 2,
        # whichever worker's snapshot lands last.
        assert values == [2.0, 2.0]

    def test_worker_snapshot_merge_matches_registry_merge(self, tmp_path):
        """The parent-side fold is CounterRegistry merge semantics."""
        instr = Instrumentation(enabled=True)
        instr.merge_counter_snapshot(
            {
                "counters": {"x": 2},
                "gauges": {"g": 5.0},
                "histograms": {"h": {"count": 1, "sum": 1.0, "min": 1.0,
                                     "max": 1.0, "zero": 0, "buckets": {"0": 1}}},
            }
        )
        instr.merge_counter_snapshot(
            {"counters": {"x": 3}, "gauges": {"g": 4.0}, "histograms": {}}
        )
        assert instr.counters.get("x") == 5
        assert instr.counters.gauge("g") == 5.0
        assert instr.counters.histogram("h").count == 1


class TestTraceStitching:
    def test_jobs2_experiment_yields_one_stitched_trace(
        self, tmp_path, monkeypatch, capsys
    ):
        """Acceptance: `repro experiment fig2 --jobs 2` produces a
        single logical trace — worker cell spans parent under the
        parent experiment span — and the Chrome export validates."""
        import json as _json

        from repro.cli import main
        from repro.obs.tracefile import build_span_tree, read_events

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))
        runs_dir = str(tmp_path / "ledger")
        assert main([
            "--quiet", "--runs-dir", runs_dir,
            "experiment", "fig2", "--profile", "test", "--jobs", "2",
        ]) == 0
        run_id = os.listdir(runs_dir)[0]
        run_dir = os.path.join(runs_dir, run_id)
        # The parent wrote events.jsonl; each pool worker wrote its own
        # events-w<pid>.jsonl into the same run directory.
        event_files = sorted(
            name for name in os.listdir(run_dir) if name.endswith(".jsonl")
        )
        assert "events.jsonl" in event_files
        worker_files = [n for n in event_files if n.startswith("events-w")]
        assert worker_files, "no worker event files were written"

        result = read_events(run_dir)
        assert result.total_bad_lines == 0
        spans = result.spans()
        assert all(e.get("run_id") == run_id for e in spans)
        roots, orphans = build_span_tree(spans)
        assert orphans == 0
        assert [r.name for r in roots] == ["experiment"]
        experiment = roots[0]
        cell_children = [c for c in experiment.children if c.name == "cell"]
        assert cell_children, "worker cell spans did not stitch under experiment"
        worker_pids = {c.pid for c in cell_children}
        assert experiment.pid not in worker_pids
        # Every cell span descends a full pipeline (load/reorder/...).
        assert all(c.children for c in cell_children)

        # And the CLI renders + exports it.
        chrome_path = str(tmp_path / "chrome.json")
        capsys.readouterr()
        assert main([
            "--runs-dir", runs_dir, "trace", run_id, "--chrome", chrome_path
        ]) == 0
        out = capsys.readouterr().out
        assert "experiment" in out and "cell" in out
        doc = _json.load(open(chrome_path))
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(spans)
        assert all(
            set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
            for e in complete
        )
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
