"""Sharded community detection: merge semantics and invariances."""

import numpy as np
import pytest

from repro.community.modularity import modularity
from repro.community.rabbit import rabbit_communities
from repro.community.sharded import (
    ShardedRabbitResult,
    shard_bounds,
    sharded_rabbit_communities,
)
from repro.errors import ValidationError
from repro.graphs.generators.powerlaw import rmat
from repro.graphs.graph import Graph
from repro.reorder.base import check_permutation
from repro.reorder.rabbit import RabbitShardedOrder


def rmat_graph(scale=9, edge_factor=8, seed=11):
    return Graph.from_coo(rmat(scale, edge_factor, seed=seed), directed=True)


class TestShardBounds:
    def test_partitions_the_range(self):
        bounds = shard_bounds(10, 3)
        assert bounds == ((0, 4), (4, 7), (7, 10))
        assert bounds[0][0] == 0 and bounds[-1][1] == 10

    def test_clamps_to_node_count(self):
        assert shard_bounds(2, 8) == ((0, 1), (1, 2))

    def test_single_shard(self):
        assert shard_bounds(5, 1) == ((0, 5),)

    def test_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            shard_bounds(5, 0)


class TestShardedDetection:
    def test_single_shard_matches_plain_rabbit(self, figure1_graph):
        plain = rabbit_communities(figure1_graph)
        sharded = sharded_rabbit_communities(figure1_graph, n_shards=1)
        assert isinstance(sharded, ShardedRabbitResult)
        assert np.array_equal(sharded.assignment.labels, plain.assignment.labels)
        assert np.array_equal(
            sharded.dendrogram.ordering(), plain.dendrogram.ordering()
        )

    @pytest.mark.parametrize("n_shards", [2, 3, 7])
    def test_deterministic_across_repeats(self, n_shards):
        graph = rmat_graph()
        first = sharded_rabbit_communities(graph, n_shards=n_shards)
        second = sharded_rabbit_communities(graph, n_shards=n_shards)
        assert np.array_equal(first.assignment.labels, second.assignment.labels)
        assert np.array_equal(
            first.dendrogram.ordering(), second.dendrogram.ordering()
        )

    def test_jobs_count_invariant(self):
        graph = rmat_graph()
        serial = sharded_rabbit_communities(graph, n_shards=4, jobs=1)
        pooled = sharded_rabbit_communities(graph, n_shards=4, jobs=2)
        assert np.array_equal(serial.assignment.labels, pooled.assignment.labels)
        assert np.array_equal(
            serial.dendrogram.ordering(), pooled.dendrogram.ordering()
        )
        assert serial.n_merges == pooled.n_merges

    def test_ordering_is_a_valid_visit_order(self):
        graph = rmat_graph()
        result = sharded_rabbit_communities(graph, n_shards=4)
        ordering = result.dendrogram.ordering()
        assert sorted(ordering.tolist()) == list(range(graph.n_nodes))

    def test_labels_are_compact(self):
        result = sharded_rabbit_communities(rmat_graph(), n_shards=3)
        labels = result.assignment.labels
        assert labels.min() == 0
        assert set(np.unique(labels)) == set(range(int(labels.max()) + 1))

    def test_modularity_close_to_single_shard(self):
        graph = rmat_graph(scale=10)
        single = rabbit_communities(graph)
        sharded = sharded_rabbit_communities(graph, n_shards=4)
        q_single = modularity(graph, single.assignment)
        q_sharded = modularity(graph, sharded.assignment)
        # The merge loses some quality (boundary edges are only seen by
        # the coarse pass) but must stay in the same regime.
        assert q_sharded > 0
        assert q_sharded >= q_single - 0.1

    def test_records_shard_metadata(self):
        graph = rmat_graph()
        result = sharded_rabbit_communities(graph, n_shards=3)
        assert result.n_shards == 3
        assert len(result.bounds) == 3
        assert result.n_local_communities > 0

    def test_rejects_bad_arguments(self, figure1_graph):
        with pytest.raises(ValidationError):
            sharded_rabbit_communities(figure1_graph, n_shards=0)
        with pytest.raises(ValidationError):
            sharded_rabbit_communities(figure1_graph, n_shards=2, jobs=0)


class TestRabbitShardedOrder:
    def test_registry_builds_it(self):
        from repro.reorder.registry import make_technique

        technique = make_technique("rabbit-sharded")
        assert isinstance(technique, RabbitShardedOrder)

    def test_produces_valid_permutation(self):
        graph = rmat_graph()
        perm = RabbitShardedOrder(n_shards=3).compute(graph)
        check_permutation(perm, graph.n_nodes)

    def test_single_shard_equals_rabbit_order(self, figure1_graph):
        from repro.reorder.rabbit import RabbitOrder

        sharded = RabbitShardedOrder(n_shards=1).compute(figure1_graph)
        plain = RabbitOrder().compute(figure1_graph)
        assert np.array_equal(sharded, plain)

    def test_jobs_invariant_permutation(self):
        graph = rmat_graph(scale=8)
        serial = RabbitShardedOrder(n_shards=4, jobs=1).compute(graph)
        pooled = RabbitShardedOrder(n_shards=4, jobs=2).compute(graph)
        assert np.array_equal(serial, pooled)
