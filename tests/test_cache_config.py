"""Cache geometry validation."""

import pytest

from repro.cache.config import CacheConfig
from repro.errors import ValidationError


class TestGeometry:
    def test_derived_quantities(self):
        config = CacheConfig(capacity_bytes=32 * 1024, line_bytes=32, ways=16)
        assert config.n_lines == 1024
        assert config.n_sets == 64
        assert config.set_mask == 63

    def test_direct_mapped(self):
        config = CacheConfig(capacity_bytes=1024, line_bytes=32, ways=1)
        assert config.n_sets == 32

    def test_fully_associative(self):
        config = CacheConfig(capacity_bytes=1024, line_bytes=32, ways=32)
        assert config.n_sets == 1
        assert config.set_mask == 0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValidationError):
            CacheConfig(capacity_bytes=0)
        with pytest.raises(ValidationError):
            CacheConfig(capacity_bytes=1024, line_bytes=-32)
        with pytest.raises(ValidationError):
            CacheConfig(capacity_bytes=1024, ways=0)

    def test_line_power_of_two(self):
        with pytest.raises(ValidationError):
            CacheConfig(capacity_bytes=960, line_bytes=30, ways=1)

    def test_capacity_divisibility(self):
        with pytest.raises(ValidationError):
            CacheConfig(capacity_bytes=1000, line_bytes=32, ways=1)

    def test_ways_divisibility(self):
        with pytest.raises(ValidationError):
            CacheConfig(capacity_bytes=1024, line_bytes=32, ways=7)

    def test_non_power_of_two_sets_allowed(self):
        """Real GPU L2s have non-power-of-two set counts (the A6000's
        6 MB / 32 B / 16-way geometry yields 12288 sets); the config
        accepts them and simulators index sets by modulo."""
        config = CacheConfig(capacity_bytes=96 * 32, line_bytes=32, ways=16)
        assert config.n_sets == 6
        assert not config.has_power_of_two_sets

    def test_a6000_geometry_is_valid(self):
        from repro.gpu.specs import A6000

        config = A6000.cache_config()
        assert config.n_sets == 12288
