"""BFS/DFS traversal orders and recursive bisection."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs.corpus import load_graph
from repro.metrics.locality import average_neighbor_span
from repro.reorder.bisection import RecursiveBisection
from repro.reorder.traversal import BFSOrder, DFSOrder
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.permute import check_permutation, permute_symmetric
from repro.graphs.graph import Graph


class TestBFSOrder:
    def test_valid_permutation(self):
        graph = load_graph("test-mesh")
        check_permutation(BFSOrder().compute(graph), graph.n_nodes)

    def test_path_graph_becomes_sequential(self, path_graph):
        perm = BFSOrder().compute(path_graph)
        # On a path, BFS from an endpoint yields the natural order.
        assert np.array_equal(perm, np.arange(8)) or np.array_equal(
            perm, np.arange(8)[::-1]
        )

    def test_improves_scrambled_mesh(self):
        graph = load_graph("test-mesh")
        perm = BFSOrder().compute(graph)
        before = average_neighbor_span(graph.adjacency)
        after = average_neighbor_span(permute_symmetric(graph.adjacency, perm))
        assert after < before / 2

    def test_disconnected_components(self):
        coo = COOMatrix(6, 6, [0, 1, 3, 4], [1, 0, 4, 3])
        graph = Graph(coo_to_csr(coo))
        check_permutation(BFSOrder().compute(graph), 6)


class TestDFSOrder:
    def test_valid_permutation(self):
        graph = load_graph("test-kmer")
        check_permutation(DFSOrder().compute(graph), graph.n_nodes)

    def test_chains_become_contiguous(self):
        graph = load_graph("test-kmer")  # chain-structured
        perm = DFSOrder().compute(graph)
        reordered = permute_symmetric(graph.adjacency, perm)
        assert average_neighbor_span(reordered) < 20

    def test_differs_from_bfs_on_trees(self):
        # Star with subdivided arms: BFS goes level by level,
        # DFS arm by arm.
        edges = [(0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (5, 6)]
        coo = COOMatrix(
            7, 7,
            [u for u, _ in edges] + [v for _, v in edges],
            [v for _, v in edges] + [u for u, _ in edges],
        )
        graph = Graph(coo_to_csr(coo))
        assert not np.array_equal(BFSOrder().compute(graph), DFSOrder().compute(graph))


class TestRecursiveBisection:
    def test_valid_permutation(self):
        graph = load_graph("test-comm")
        check_permutation(RecursiveBisection().compute(graph), graph.n_nodes)

    def test_leaf_size_validated(self):
        with pytest.raises(ValidationError):
            RecursiveBisection(leaf_size=0)

    def test_improves_scrambled_community_matrix(self):
        graph = load_graph("test-comm")
        perm = RecursiveBisection(leaf_size=32).compute(graph)
        before = average_neighbor_span(graph.adjacency)
        after = average_neighbor_span(permute_symmetric(graph.adjacency, perm))
        assert after < before

    def test_small_block_is_identity_like(self):
        graph = load_graph("test-kmer")
        perm = RecursiveBisection(leaf_size=10_000).compute(graph)
        assert np.array_equal(perm, np.arange(graph.n_nodes))

    def test_registered(self):
        from repro.reorder.registry import make_technique

        for name in ("bfs", "dfs", "bisection"):
            technique = make_technique(name)
            assert technique.name == name
