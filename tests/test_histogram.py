"""Log-bucketed histograms: bucketing, percentiles, exact merging."""

import json
import random

import pytest

from repro.obs.histogram import (
    GROWTH,
    Histogram,
    bucket_index,
    bucket_upper_bound,
    format_histograms,
)


class TestBucketIndex:
    def test_bucket_covers_half_open_interval(self):
        # Bucket i covers (g**(i-1), g**i]: the upper bound maps to its
        # own bucket, a nudge above it maps to the next.
        for i in (-8, -1, 0, 1, 5, 40):
            bound = bucket_upper_bound(i)
            assert bucket_index(bound) == i
            assert bucket_index(bound * 1.0001) == i + 1

    def test_pure_function_of_value(self):
        # Same value -> same bucket, no per-instance state involved.
        values = [10 ** random.Random(7).uniform(-7, 3) for _ in range(200)]
        assert [bucket_index(v) for v in values] == [bucket_index(v) for v in values]

    def test_relative_resolution_bound(self):
        # Bucket width is one GROWTH factor: reported upper bound is at
        # most ~19% above the true value.
        for v in (1e-6, 3.7e-4, 0.5, 12.0, 999.0):
            upper = bucket_upper_bound(bucket_index(v))
            assert v <= upper <= v * GROWTH * 1.0001


class TestHistogram:
    def test_count_sum_min_max(self):
        hist = Histogram()
        for v in (0.5, 2.0, 0.25):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == pytest.approx(2.75)
        assert hist.min == 0.25
        assert hist.max == 2.0
        assert hist.mean() == pytest.approx(2.75 / 3)

    def test_zero_and_negative_go_to_zero_bucket(self):
        hist = Histogram()
        hist.observe(0.0)
        hist.observe(-1.0)
        hist.observe(1.0)
        assert hist.count == 3
        assert hist.zero_count == 2
        assert sum(hist.buckets.values()) == 1

    def test_single_sample_percentiles_are_exact(self):
        hist = Histogram()
        hist.observe(0.0123)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert hist.percentile(q) == pytest.approx(0.0123)

    def test_percentile_clamped_to_observed_range(self):
        hist = Histogram()
        for v in (1.0, 2.0, 3.0, 100.0):
            hist.observe(v)
        assert hist.percentile(1.0) == 100.0
        assert hist.percentile(0.0) >= 1.0
        # p50 lands in a real bucket, within resolution of the rank-2
        # sample.
        assert 1.0 <= hist.percentile(0.5) <= 2.0 * GROWTH

    def test_percentile_nearest_rank_ordering(self):
        hist = Histogram()
        for v in [0.001] * 90 + [1.0] * 10:
            hist.observe(v)
        assert hist.percentile(0.5) <= 0.001 * GROWTH
        assert hist.percentile(0.99) >= 1.0 / GROWTH

    def test_percentile_of_all_zero_samples(self):
        hist = Histogram()
        hist.observe(0.0)
        hist.observe(0.0)
        assert hist.percentile(0.5) == 0.0
        assert hist.percentile(0.99) == 0.0

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(0.5)

    def test_percentile_or_guards_empty(self):
        empty = Histogram()
        assert empty.percentile_or(0.5) is None
        assert empty.percentile_or(0.99, default=0.0) == 0.0
        hist = Histogram()
        hist.observe(0.25)
        assert hist.percentile_or(0.5) == hist.percentile(0.5)

    def test_empty_summary_reports_nulls_not_crash(self):
        summary = Histogram().summary()
        assert summary == {
            "count": 0, "sum": 0.0, "min": None, "max": None,
            "p50": None, "p90": None, "p99": None,
        }

    def test_out_of_range_q_raises(self):
        hist = Histogram()
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        with pytest.raises(ValueError):
            hist.percentile(-0.1)


class TestMerge:
    def test_merge_equals_single_histogram(self):
        """The exactness invariant: merged shards == one histogram."""
        rng = random.Random(42)
        values = [10 ** rng.uniform(-6, 2) for _ in range(500)] + [0.0] * 7
        whole = Histogram()
        for v in values:
            whole.observe(v)
        shards = [Histogram() for _ in range(4)]
        for i, v in enumerate(values):
            shards[i % 4].observe(v)
        merged = Histogram()
        for shard in shards:
            merged.merge(shard)
        assert merged.buckets == whole.buckets
        assert merged.count == whole.count
        assert merged.zero_count == whole.zero_count
        assert merged.total == pytest.approx(whole.total)
        assert merged.min == whole.min
        assert merged.max == whole.max
        for q in (0.5, 0.9, 0.99):
            assert merged.percentile(q) == whole.percentile(q)

    def test_merge_order_independent(self):
        a, b, c = Histogram(), Histogram(), Histogram()
        for hist, values in ((a, [0.1, 5.0]), (b, [0.2]), (c, [0.0, 9.0])):
            for v in values:
                hist.observe(v)
        forward = Histogram()
        for h in (a, b, c):
            forward.merge(h)
        backward = Histogram()
        for h in (c, b, a):
            backward.merge(h)
        fj, bj = forward.to_json(), backward.to_json()
        # Bucket counts are integers: exactly order-independent.  The
        # float sum is only order-independent up to addition rounding.
        assert fj.pop("sum") == pytest.approx(bj.pop("sum"))
        assert fj == bj

    def test_merge_empty_is_identity(self):
        hist = Histogram()
        hist.observe(1.0)
        before = hist.to_json()
        hist.merge(Histogram())
        assert hist.to_json() == before


class TestSerialization:
    def test_json_round_trip(self):
        hist = Histogram()
        for v in (0.0, 1e-5, 0.3, 7.0):
            hist.observe(v)
        payload = json.loads(json.dumps(hist.to_json()))
        restored = Histogram.from_json(payload)
        assert restored.to_json() == hist.to_json()
        assert restored.percentile(0.9) == hist.percentile(0.9)

    def test_empty_round_trip(self):
        restored = Histogram.from_json(json.loads(json.dumps(Histogram().to_json())))
        assert restored.count == 0
        assert restored.min is None

    def test_summary_shape(self):
        hist = Histogram()
        hist.observe(2.0)
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["p50"] == pytest.approx(2.0)
        empty = Histogram().summary()
        assert empty == {
            "count": 0, "sum": 0.0, "min": None, "max": None,
            "p50": None, "p90": None, "p99": None,
        }


class TestFormatting:
    def test_table_sorted_by_total_and_skips_empty(self):
        hists = {"slow": Histogram(), "fast": Histogram(), "never": Histogram()}
        for _ in range(3):
            hists["slow"].observe(2.0)
        hists["fast"].observe(0.001)
        text = format_histograms(hists)
        lines = text.splitlines()
        assert "p50" in lines[0] and "p99" in lines[0]
        body = [line for line in lines[2:]]
        assert body[0].startswith("slow")
        assert body[1].startswith("fast")
        assert not any(line.startswith("never") for line in body)

    def test_empty_mapping(self):
        assert "no histograms" in format_histograms({})
