"""Platform specs, roofline, run-time model and amortization."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gpu.amortization import amortization_iterations
from repro.gpu.perf import ideal_time_seconds, model_run
from repro.gpu.roofline import (
    arithmetic_intensity_spmv,
    is_memory_bound,
    machine_balance,
)
from repro.gpu.specs import A6000, SCALED_A6000, scaled_platform
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.trace.kernel_traces import spmv_csr_trace


class TestSpecs:
    def test_a6000_matches_table1(self):
        assert A6000.l2_capacity_bytes == 6 * 1024 * 1024
        assert A6000.peak_bandwidth_gbs == 768.0
        assert A6000.achievable_bandwidth_gbs == 672.0  # BabelStream
        assert A6000.peak_compute_tflops == 38.7
        assert A6000.dram_capacity_bytes == 48 * 1024**3

    def test_cache_config_derivation(self):
        config = SCALED_A6000.cache_config()
        assert config.capacity_bytes == SCALED_A6000.l2_capacity_bytes
        assert config.line_bytes == 32

    def test_profile_lookup(self):
        assert scaled_platform("full").l2_capacity_bytes == 32 * 1024
        assert scaled_platform("bench").l2_capacity_bytes == 8 * 1024
        with pytest.raises(ValidationError):
            scaled_platform("imaginary")

    def test_invalid_spec_rejected(self):
        import dataclasses

        with pytest.raises(ValidationError):
            dataclasses.replace(A6000, achievable_bandwidth_gbs=800.0)
        with pytest.raises(ValidationError):
            dataclasses.replace(A6000, irregular_efficiency=0.0)


class TestRoofline:
    def test_spmv_intensity_bounded_by_quarter(self):
        """Paper: SpMV's upper bound on arithmetic intensity is 0.25."""
        assert arithmetic_intensity_spmv(1000, 10**9) < 0.25
        assert arithmetic_intensity_spmv(1000, 10**9) == pytest.approx(0.25, rel=1e-3)

    def test_a6000_machine_balance_is_about_50(self):
        """Paper: the A6000 needs intensity >= ~50 to be compute-bound."""
        assert machine_balance(A6000) == pytest.approx(50.4, rel=0.01)

    def test_spmv_always_memory_bound_on_a6000(self):
        assert is_memory_bound(1_500_000, 50_000_000, A6000)

    def test_empty_matrix(self):
        assert arithmetic_intensity_spmv(0, 0) == 0.0


class TestRunModel:
    def make_run(self):
        rng = np.random.default_rng(0)
        coo = COOMatrix(512, 512, rng.integers(0, 512, 4096), rng.integers(0, 512, 4096))
        trace = spmv_csr_trace(coo_to_csr(coo))
        return model_run(trace, scaled_platform("test"))

    def test_normalized_traffic_at_least_one(self):
        run = self.make_run()
        assert run.normalized_traffic >= 1.0

    def test_runtime_at_least_traffic(self):
        """Charging irregular misses at lower efficiency can only slow
        the run relative to the pure-traffic ratio."""
        run = self.make_run()
        assert run.normalized_runtime >= run.normalized_traffic - 1e-9

    def test_byte_accounting(self):
        run = self.make_run()
        assert run.irregular_miss_bytes + run.streamed_miss_bytes == run.traffic_bytes

    def test_ideal_time_formula(self):
        run = self.make_run()
        platform = scaled_platform("test")
        assert run.ideal_seconds == pytest.approx(
            ideal_time_seconds(run.compulsory_bytes, platform)
        )

    def test_line_size_mismatch_rejected(self):
        import dataclasses

        rng = np.random.default_rng(1)
        coo = COOMatrix(64, 64, rng.integers(0, 64, 256), rng.integers(0, 64, 256))
        trace = spmv_csr_trace(coo_to_csr(coo), line_bytes=128)
        with pytest.raises(ValidationError):
            model_run(trace, scaled_platform("test"))

    def test_bad_policy_rejected(self):
        rng = np.random.default_rng(2)
        coo = COOMatrix(64, 64, rng.integers(0, 64, 128), rng.integers(0, 64, 128))
        trace = spmv_csr_trace(coo_to_csr(coo))
        with pytest.raises(ValidationError):
            model_run(trace, scaled_platform("test"), policy="fifo")

    def test_belady_never_slower(self):
        rng = np.random.default_rng(3)
        coo = COOMatrix(512, 512, rng.integers(0, 512, 4096), rng.integers(0, 512, 4096))
        trace = spmv_csr_trace(coo_to_csr(coo))
        platform = scaled_platform("test")
        lru = model_run(trace, platform, policy="lru")
        opt = model_run(trace, platform, policy="belady")
        assert opt.normalized_traffic <= lru.normalized_traffic + 1e-12


class TestAmortization:
    def test_basic(self):
        assert amortization_iterations(10.0, 2.0, 1.0) == pytest.approx(10.0)

    def test_no_improvement_is_infinite(self):
        assert math.isinf(amortization_iterations(10.0, 1.0, 1.0))
        assert math.isinf(amortization_iterations(10.0, 1.0, 2.0))

    def test_negative_cost_rejected(self):
        with pytest.raises(ValidationError):
            amortization_iterations(-1.0, 2.0, 1.0)
