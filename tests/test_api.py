"""High-level convenience API."""

import numpy as np
import pytest

from repro import (
    evaluate_ordering,
    load_graph,
    make_technique,
    recommend,
    reorder_and_evaluate,
    reorder_matrix,
)
from repro.gpu.specs import scaled_platform


class TestReorderMatrix:
    def test_accepts_graph_and_name(self):
        graph = load_graph("test-comm")
        reordered = reorder_matrix(graph, "rabbit")
        assert reordered.shape == graph.adjacency.shape
        assert reordered.nnz == graph.adjacency.nnz

    def test_accepts_csr_and_instance(self):
        graph = load_graph("test-mesh")
        reordered = reorder_matrix(graph.adjacency, make_technique("rcm"))
        assert reordered.nnz == graph.adjacency.nnz


class TestEvaluateOrdering:
    def test_unpermuted_evaluation(self):
        graph = load_graph("test-comm")
        run = evaluate_ordering(graph, platform=scaled_platform("test"))
        assert run.normalized_traffic >= 1.0

    def test_rabbit_improves_over_random(self):
        graph = load_graph("test-comm")
        platform = scaled_platform("test")
        random_perm = make_technique("random").compute(graph)
        rabbit_perm = make_technique("rabbit").compute(graph)
        random_run = evaluate_ordering(graph, random_perm, platform=platform)
        rabbit_run = evaluate_ordering(graph, rabbit_perm, platform=platform)
        assert rabbit_run.normalized_traffic < random_run.normalized_traffic

    def test_kernel_selection(self):
        graph = load_graph("test-mesh")
        platform = scaled_platform("test")
        for kernel in ("spmv-csr", "spmv-coo", "spmm-csr-4"):
            run = evaluate_ordering(graph, kernel=kernel, platform=platform)
            assert run.kernel == kernel

    def test_unknown_kernel(self):
        graph = load_graph("test-mesh")
        with pytest.raises(ValueError):
            evaluate_ordering(graph, kernel="fft")

    def test_belady_policy(self):
        graph = load_graph("test-mesh")
        platform = scaled_platform("test")
        lru = evaluate_ordering(graph, platform=platform, policy="lru")
        opt = evaluate_ordering(graph, platform=platform, policy="belady")
        assert opt.stats.misses <= lru.stats.misses

    def test_accepts_technique_name_for_permutation(self):
        graph = load_graph("test-comm")
        platform = scaled_platform("test")
        perm = make_technique("rcm").compute(graph)
        by_perm = evaluate_ordering(graph, perm, platform=platform)
        by_name = evaluate_ordering(graph, "rcm", platform=platform)
        by_instance = evaluate_ordering(
            graph, make_technique("rcm"), platform=platform
        )
        assert by_name.traffic_bytes == by_perm.traffic_bytes
        assert by_instance.traffic_bytes == by_perm.traffic_bytes


class TestReorderAndEvaluate:
    def test_full_round_trip(self):
        graph = load_graph("test-comm")
        result = reorder_and_evaluate(
            graph, "rabbit", platform=scaled_platform("test")
        )
        assert result.technique == "rabbit"
        assert sorted(result.permutation) == list(range(graph.n_nodes))
        assert result.matrix.nnz == graph.adjacency.nnz
        assert result.reorder_seconds > 0
        assert result.baseline is not None
        assert result.speedup == pytest.approx(
            result.baseline.modeled_seconds / result.model.modeled_seconds
        )
        assert result.break_even_iterations is not None

    def test_without_baseline(self):
        graph = load_graph("test-mesh")
        result = reorder_and_evaluate(
            graph,
            "degsort",
            platform=scaled_platform("test"),
            compare_baseline=False,
        )
        assert result.baseline is None
        assert result.speedup is None
        assert result.break_even_iterations is None


class TestRecommend:
    def test_predictor_backed_recommendation(self):
        graph = load_graph("test-comm")
        rec = recommend(graph, kernel="spmv-csr", profile="test", iterations=100)
        assert rec.iterations == 100
        assert rec.baseline_seconds > 0
        assert rec.candidates
        for row in rec.candidates:
            assert row["total_seconds"] == pytest.approx(
                row["reorder_seconds"] + 100 * row["modeled_seconds"]
            )
        if not rec.reorder_worth_it:
            assert rec.chosen == "original"


class TestPublicNamespace:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__
