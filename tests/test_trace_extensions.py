"""Traces for the extension kernels: CSC scatter and tiled SpMV."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache import compulsory_misses, simulate
from repro.errors import ValidationError
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import coo_to_csc
from repro.sparse.kernels import spmv_csr, spmv_csr_tiled
from repro.trace.kernel_traces import spmv_csc_trace, spmv_csr_trace
from repro.trace.tiled import spmv_csr_tiled_trace


def random_coo(n, nnz, seed=0):
    rng = np.random.default_rng(seed)
    return COOMatrix(n, n, rng.integers(0, n, nnz), rng.integers(0, n, nnz))


class TestCscTrace:
    def test_irregular_region_is_y(self):
        csc = coo_to_csc(random_coo(64, 256, seed=1))
        trace = spmv_csc_trace(csc)
        assert trace.irregular_regions == ("y",)
        assert trace.kernel == "spmv-csc"

    def test_rejects_csr(self):
        csr = coo_to_csr(random_coo(16, 32, seed=2))
        with pytest.raises(ValidationError):
            spmv_csc_trace(csr)

    def test_no_consecutive_duplicates(self):
        csc = coo_to_csc(random_coo(64, 256, seed=3))
        trace = spmv_csc_trace(csc)
        assert not np.any(trace.lines[1:] == trace.lines[:-1])

    def test_x_streams_in_csc(self):
        """In scatter-style SpMV, the x region sees only compulsory
        misses even with a tiny cache (it is read column-major)."""
        csc = coo_to_csc(random_coo(256, 1024, seed=4))
        trace = spmv_csc_trace(csc)
        config = CacheConfig(capacity_bytes=1024, line_bytes=32, ways=4)
        stats = simulate(trace.lines, config, regions=trace.regions)
        x_region = [r for r in trace.regions if r[0] == "x"][0]
        x_lines = x_region[2] - x_region[1]
        # Near-compulsory: each x line spans 8 columns and can very
        # occasionally be evicted between two of them under the tiny
        # cache, so allow a small overshoot above the line count.
        assert stats.region_misses["x"] <= 1.2 * x_lines


class TestTiledKernel:
    def test_matches_untiled(self):
        coo = random_coo(50, 300, seed=5)
        csr = coo_to_csr(coo)
        x = np.random.default_rng(6).standard_normal(50)
        base = spmv_csr(csr, x)
        for n_tiles in (1, 3, 7, 50):
            assert np.allclose(spmv_csr_tiled(csr, x, n_tiles), base)

    def test_bad_tile_count(self):
        csr = coo_to_csr(random_coo(8, 16, seed=7))
        with pytest.raises(ValueError):
            spmv_csr_tiled(csr, np.ones(8), 0)


class TestTiledTrace:
    def test_compulsory_grows_with_tiles(self):
        """Tiled storage replicates the row offsets per tile."""
        csr = coo_to_csr(random_coo(128, 512, seed=8))
        few = spmv_csr_tiled_trace(csr, 2)
        many = spmv_csr_tiled_trace(csr, 16)
        assert compulsory_misses(many.lines) > compulsory_misses(few.lines)

    def test_x_misses_bounded_by_tiling(self):
        """With per-tile column ranges, a cache that holds one tile's
        slice of x sees near-compulsory x misses even on a random
        matrix — the whole point of tiling."""
        csr = coo_to_csr(random_coo(1024, 8192, seed=9))
        config = CacheConfig(capacity_bytes=2048, line_bytes=32, ways=8)
        untiled = spmv_csr_trace(csr)
        tiled = spmv_csr_tiled_trace(csr, 16)  # tile x-slice = 256 B
        untiled_stats = simulate(untiled.lines, config, regions=untiled.regions)
        tiled_stats = simulate(tiled.lines, config, regions=tiled.regions)
        assert tiled_stats.region_misses["x"] < 0.5 * untiled_stats.region_misses["x"]

    def test_one_tile_close_to_plain_trace(self):
        csr = coo_to_csr(random_coo(64, 256, seed=10))
        plain = spmv_csr_trace(csr)
        tiled = spmv_csr_tiled_trace(csr, 1)
        # Same irregular count; compulsory within one extra ro region.
        assert tiled.n_irregular == plain.n_irregular

    def test_bad_tile_count(self):
        csr = coo_to_csr(random_coo(8, 16, seed=11))
        with pytest.raises(ValidationError):
            spmv_csr_tiled_trace(csr, 0)

    def test_empty_matrix(self):
        csr = coo_to_csr(COOMatrix(4, 4, [], []))
        trace = spmv_csr_tiled_trace(csr, 4)
        assert trace.n_accesses == 0
