"""Skew, community statistics, correlation and locality estimators."""

import numpy as np
import pytest

from repro.community.assignment import CommunityAssignment
from repro.errors import ShapeError, ValidationError
from repro.graphs.graph import Graph
from repro.metrics.community_stats import community_size_stats
from repro.metrics.correlation import pearson
from repro.metrics.locality import (
    average_neighbor_span,
    hub_cache_footprint_bytes,
    matrix_bandwidth,
    matrix_profile,
    working_set_lines,
)
from repro.metrics.skew import degree_skew
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix


class TestSkew:
    def test_star_graph_is_maximally_skewed(self, star_graph):
        # Top 10% of 8 nodes = 1 node = the hub, owning all entries... the
        # hub holds half the undirected entries (7 of 14).
        assert degree_skew(star_graph) == pytest.approx(0.5)

    def test_regular_graph_skew_matches_uniform_share(self, path_graph):
        value = degree_skew(path_graph)
        assert value == pytest.approx(2 / 14, abs=0.05)

    def test_fraction_validated(self, star_graph):
        with pytest.raises(ValidationError):
            degree_skew(star_graph, top_fraction=0.0)
        with pytest.raises(ValidationError):
            degree_skew(star_graph, top_fraction=1.5)

    def test_empty_graph(self):
        graph = Graph(coo_to_csr(COOMatrix(4, 4, [], [])))
        assert degree_skew(graph) == 0.0


class TestCommunityStats:
    def test_basic(self):
        stats = community_size_stats(CommunityAssignment([0, 0, 0, 1, 1, 2]))
        assert stats.n_communities == 3
        assert stats.average_size == pytest.approx(2.0)
        assert stats.largest_size == 3
        assert stats.normalized_average_size == pytest.approx(2 / 6)
        assert stats.largest_fraction == pytest.approx(0.5)

    def test_empty(self):
        stats = community_size_stats(CommunityAssignment(np.empty(0, dtype=np.int64)))
        assert stats.n_communities == 0
        assert stats.largest_fraction == 0.0

    def test_giant_community_detector(self):
        labels = np.zeros(100, dtype=np.int64)
        labels[:2] = 1
        stats = community_size_stats(CommunityAssignment(labels))
        assert stats.largest_fraction > 0.9


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_scipy_agreement(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(4)
        x = rng.standard_normal(50)
        y = 0.5 * x + rng.standard_normal(50)
        assert pearson(x, y) == pytest.approx(scipy_stats.pearsonr(x, y)[0])

    def test_constant_input_rejected(self):
        with pytest.raises(ValidationError):
            pearson([1, 1, 1], [1, 2, 3])

    def test_too_few_points(self):
        with pytest.raises(ValidationError):
            pearson([1], [2])

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            pearson([1, 2], [1, 2, 3])


class TestLocalityEstimators:
    def test_hub_footprint_scattered_vs_grouped(self):
        # 8 hubs scattered every 64 elements: one 32 B line each.
        scattered = hub_cache_footprint_bytes(np.arange(8) * 64)
        grouped = hub_cache_footprint_bytes(np.arange(8))
        assert scattered == 8 * 32
        assert grouped == 32  # 8 * 4 B elements fit in one line

    def test_hub_footprint_validation(self):
        with pytest.raises(ValidationError):
            hub_cache_footprint_bytes(np.asarray([0]), element_bytes=0)

    def test_footprint_empty(self):
        assert hub_cache_footprint_bytes(np.asarray([], dtype=np.int64)) == 0

    def test_bandwidth_of_tridiagonal(self):
        coo = COOMatrix(4, 4, [0, 1, 1, 2, 2, 3], [1, 0, 2, 1, 3, 2])
        assert matrix_bandwidth(coo_to_csr(coo)) == 1

    def test_bandwidth_empty(self):
        assert matrix_bandwidth(coo_to_csr(COOMatrix(3, 3, [], []))) == 0

    def test_profile(self):
        # Row 2 reaches back to column 0: profile contribution 2.
        coo = COOMatrix(3, 3, [2], [0])
        assert matrix_profile(coo_to_csr(coo)) == 2

    def test_average_neighbor_span(self):
        coo = COOMatrix(2, 8, [0, 0, 1], [0, 7, 3])
        assert average_neighbor_span(coo_to_csr(coo)) == pytest.approx(3.5)

    def test_working_set_lines(self):
        assert working_set_lines(np.asarray([0, 1, 7])) == 1  # one 32 B line
        assert working_set_lines(np.asarray([0, 8])) == 2
