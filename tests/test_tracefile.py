"""Trace reading (tolerant of damage), span stitching, Chrome export,
and JsonlSink behavior under concurrent writers."""

import json
import os
import threading

from repro.obs import Instrumentation, FakeClock, JsonlSink, new_span_id
from repro.obs.tracefile import (
    build_span_tree,
    read_events,
    render_span_tree,
    to_chrome_trace,
)


def span_event(name, span_id, parent_id=None, ts=1.0, seconds=0.5, pid=100, **tags):
    return {
        "kind": "span",
        "v": 2,
        "run_id": "r1",
        "span_id": span_id,
        "parent_id": parent_id,
        "pid": pid,
        "tid": pid,
        "ts": ts,
        "name": name,
        "path": name,
        "seconds": seconds,
        "status": "ok",
        "error": None,
        "tags": tags,
    }


def write_jsonl(path, lines):
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")


class TestTolerantReader:
    def test_reads_all_event_files_in_run_dir(self, tmp_path):
        a = span_event("root", "aaaa")
        b = span_event("child", "bbbb", parent_id="aaaa", pid=200)
        write_jsonl(tmp_path / "events.jsonl", [json.dumps(a)])
        write_jsonl(tmp_path / "events-w200.jsonl", [json.dumps(b)])
        result = read_events(str(tmp_path))
        assert len(result.files) == 2
        assert len(result.spans()) == 2
        assert result.total_bad_lines == 0

    def test_skips_and_counts_damaged_lines(self, tmp_path):
        good = json.dumps(span_event("ok", "cccc"))
        truncated = good[: len(good) // 2]  # crashed writer mid-line
        write_jsonl(
            tmp_path / "events.jsonl",
            [
                good,
                truncated,
                "{not json at all",
                '"a bare string, not an event"',
                '{"no_kind_key": 1}',
                "",  # blank lines are not damage
                good,
            ],
        )
        result = read_events(str(tmp_path))
        assert len(result.events) == 2
        assert result.total_bad_lines == 4

    def test_missing_dir_yields_empty_result(self, tmp_path):
        result = read_events(str(tmp_path / "nope"))
        assert result.events == []
        assert result.total_bad_lines == 0

    def test_trace_cli_reports_damage_without_crashing(self, tmp_path, capsys):
        from repro.cli import main

        run_dir = tmp_path / "runs" / "damaged00run"
        os.makedirs(run_dir)
        good = json.dumps(span_event("work", "dddd"))
        write_jsonl(run_dir / "events.jsonl", [good, good[:20], "garbage"])
        code = main(["--runs-dir", str(tmp_path / "runs"), "trace", "damaged00run"])
        captured = capsys.readouterr()
        assert code == 0
        assert "work" in captured.out
        assert "skipped 2 malformed line(s)" in captured.err


class TestSpanTree:
    def test_stitches_children_under_parents_across_pids(self):
        root = span_event("experiment", "r" * 4, ts=10.0, seconds=9.0, pid=1)
        cell_a = span_event(
            "cell", "a" * 4, parent_id="r" * 4, ts=3.0, seconds=2.0, pid=2
        )
        cell_b = span_event(
            "cell", "b" * 4, parent_id="r" * 4, ts=6.0, seconds=2.0, pid=3
        )
        inner = span_event(
            "load", "c" * 4, parent_id="a" * 4, ts=2.0, seconds=0.5, pid=2
        )
        roots, orphans = build_span_tree([inner, cell_b, root, cell_a])
        assert orphans == 0
        assert len(roots) == 1
        assert roots[0].name == "experiment"
        # Children sorted by start time: cell_a (start 1.0) before
        # cell_b (start 4.0).
        assert [c.name for c in roots[0].children] == ["cell", "cell"]
        assert roots[0].children[0].event["span_id"] == "a" * 4
        assert [g.name for g in roots[0].children[0].children] == ["load"]

    def test_orphaned_spans_promoted_to_roots_and_counted(self):
        orphan = span_event("cell", "oooo", parent_id="never-flushed")
        roots, orphans = build_span_tree([orphan])
        assert orphans == 1
        assert [r.name for r in roots] == ["cell"]

    def test_pre_v2_events_without_span_id_become_roots(self):
        legacy = {"kind": "span", "name": "old", "ts": 1.0, "seconds": 0.1}
        roots, orphans = build_span_tree([legacy])
        assert orphans == 0
        assert [r.name for r in roots] == ["old"]

    def test_render_includes_tags_status_and_pid(self):
        ok = span_event("fine", "f" * 4, matrix="m1")
        bad = dict(span_event("broken", "g" * 4), status="error")
        text = render_span_tree(build_span_tree([ok, bad])[0])
        assert "fine [matrix=m1]" in text
        assert "ERROR" in text
        assert "pid=100" in text

    def test_render_empty(self):
        assert render_span_tree([]) == "(no spans)"


class TestChromeExport:
    def test_complete_events_with_rebased_microseconds(self):
        spans = [
            span_event("experiment", "aaaa", ts=10.0, seconds=9.0, pid=1),
            span_event("cell", "bbbb", parent_id="aaaa", ts=3.0, seconds=2.0, pid=2),
        ]
        doc = to_chrome_trace(spans)
        assert doc["displayTimeUnit"] == "ms"
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(x_events) == 2
        # Earliest start (t=1.0s) rebases to ts=0; experiment starts at
        # t=1.0 -> 0us, cell at t=1.0 -> 0us too.  Durations in us.
        by_name = {e["name"]: e for e in x_events}
        assert by_name["experiment"]["dur"] == 9.0 * 1e6
        assert by_name["cell"]["ts"] == 0.0
        assert min(e["ts"] for e in x_events) == 0.0
        assert {e["pid"] for e in meta} == {1, 2}

    def test_round_trips_through_json(self):
        spans = [span_event("s", "hhhh", error=None)]
        doc = json.loads(json.dumps(to_chrome_trace(spans)))
        assert doc["traceEvents"][0]["args"]["status"] == "ok"

    def test_empty_span_list(self):
        assert to_chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}


class TestJsonlSinkConcurrency:
    def test_concurrent_writers_produce_only_whole_lines(self, tmp_path):
        """N threads hammering one sink must never interleave lines."""
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path=str(path))
        n_threads, per_thread = 8, 200

        def hammer(worker):
            for i in range(per_thread):
                sink.emit(
                    {"kind": "span", "worker": worker, "i": i, "pad": "x" * 64}
                )

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == n_threads * per_thread
        seen = set()
        for line in lines:
            event = json.loads(line)  # raises if any line was torn
            assert event["kind"] == "span"
            seen.add((event["worker"], event["i"]))
        assert len(seen) == n_threads * per_thread

    def test_concurrent_spans_through_instrumentation(self, tmp_path):
        """Span exits on many threads all land as parseable events."""
        path = tmp_path / "events.jsonl"
        instr = Instrumentation(
            sink=JsonlSink(path=str(path)), clock=FakeClock(tick=0.0)
        )

        def work():
            for _ in range(50):
                with instr.span("stage"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        instr.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(events) == 200
        assert {e["name"] for e in events} == {"stage"}
        # Every event has a unique span id even under contention.
        assert len({e["span_id"] for e in events}) == 200


def test_new_span_id_shape_and_uniqueness():
    ids = {new_span_id() for _ in range(100)}
    assert len(ids) == 100
    assert all(len(i) == 16 for i in ids)
