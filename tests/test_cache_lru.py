"""LRU simulator: hand-checked traces and accounting identities."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache import classify_misses, compulsory_misses, simulate


def tiny_cache(ways=2, sets=2):
    return CacheConfig(capacity_bytes=ways * sets * 32, line_bytes=32, ways=ways)


class TestHandTraces:
    def test_all_hits_after_first(self):
        stats = simulate(np.asarray([0, 0, 0, 0]), tiny_cache())
        assert stats.misses == 1
        assert stats.hits == 3

    def test_distinct_lines_all_miss(self):
        # 4 distinct lines in a 2-way, 2-set cache: exactly fills it.
        stats = simulate(np.asarray([0, 1, 2, 3]), tiny_cache())
        assert stats.misses == 4
        assert stats.evictions == 0

    def test_lru_eviction_order(self):
        # Set 0 (even lines), 2 ways: access 0, 2, 4 evicts 0.
        trace = np.asarray([0, 2, 4, 0])
        stats = simulate(trace, tiny_cache())
        assert stats.misses == 4  # the re-access of 0 misses again

    def test_mru_protects_recent(self):
        # 0, 2, 0, 4 -> evicts 2 (LRU), so 0 still hits afterwards.
        trace = np.asarray([0, 2, 0, 4, 0])
        stats = simulate(trace, tiny_cache())
        assert stats.misses == 3
        assert stats.hits == 2

    def test_sets_are_independent(self):
        # Lines 0, 2, 4 map to set 0; line 1 maps to set 1.
        trace = np.asarray([0, 2, 4, 1, 0])
        stats = simulate(trace, tiny_cache())
        assert stats.misses == 5  # line 0 was evicted from set 0

    def test_empty_trace(self):
        stats = simulate(np.asarray([], dtype=np.int64), tiny_cache())
        assert stats.accesses == 0
        assert stats.misses == 0
        assert stats.hit_rate == 0.0


class TestDeadLines:
    def test_never_reused_lines_are_dead(self):
        # Stream of distinct lines: every evicted line is dead, and the
        # resident leftovers are dead too.
        trace = np.arange(0, 64, 2)  # 32 lines through set 0 and 1? even lines -> set 0
        stats = simulate(trace, tiny_cache())
        assert stats.dead_lines == stats.misses

    def test_reused_lines_not_dead(self):
        trace = np.asarray([0, 0, 1, 1])
        stats = simulate(trace, tiny_cache())
        assert stats.dead_lines == 0

    def test_dead_fraction(self):
        trace = np.asarray([0, 0, 2])  # 0 reused, 2 dead at end
        stats = simulate(trace, tiny_cache())
        assert stats.dead_line_fraction == pytest.approx(0.5)


class TestAccounting:
    def test_consistency_identities(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 50, 2000)
        stats = simulate(trace, tiny_cache())
        stats.check_consistency()  # raises on violation
        assert stats.hits + stats.misses == stats.accesses
        assert stats.traffic_bytes == stats.misses * 32

    def test_misses_at_least_compulsory(self):
        rng = np.random.default_rng(1)
        trace = rng.integers(0, 100, 3000)
        stats = simulate(trace, tiny_cache())
        assert stats.misses >= compulsory_misses(trace)

    def test_larger_cache_never_more_misses(self):
        """LRU inclusion property at fixed associativity layout."""
        rng = np.random.default_rng(2)
        trace = rng.integers(0, 64, 4000)
        small = simulate(trace, CacheConfig(capacity_bytes=512, line_bytes=32, ways=16))
        large = simulate(trace, CacheConfig(capacity_bytes=1024, line_bytes=32, ways=32))
        assert large.misses <= small.misses

    def test_infinite_cache_only_compulsory(self):
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 40, 1000)
        huge = simulate(
            trace, CacheConfig(capacity_bytes=64 * 1024, line_bytes=32, ways=2048)
        )
        assert huge.misses == compulsory_misses(trace)


class TestRegionClassification:
    def test_split_sums_to_misses(self):
        trace = np.asarray([0, 10, 20, 0, 10, 20])
        regions = [("a", 0, 5), ("b", 5, 15)]
        stats = simulate(trace, tiny_cache(), regions=regions)
        assert sum(stats.region_misses.values()) == stats.misses
        assert "other" in stats.region_misses  # line 20 unclaimed

    def test_classify_empty_regions(self):
        assert classify_misses(np.asarray([1, 2]), [0, 1], None) == {}

    def test_classify_counts(self):
        trace = np.asarray([0, 6, 12])
        result = classify_misses(trace, [0, 1, 2], [("lo", 0, 8), ("hi", 8, 16)])
        assert result == {"lo": 2, "hi": 1}
