"""Merge-forest (dendrogram) tests."""

import numpy as np
import pytest

from repro.community.dendrogram import Dendrogram
from repro.errors import ValidationError


class TestAbsorb:
    def test_roots_shrink(self):
        d = Dendrogram(4)
        assert np.array_equal(d.roots(), [0, 1, 2, 3])
        d.absorb(0, 1)
        assert np.array_equal(d.roots(), [0, 2, 3])

    def test_self_absorb_rejected(self):
        with pytest.raises(ValidationError):
            Dendrogram(3).absorb(1, 1)

    def test_double_absorb_rejected(self):
        d = Dendrogram(3)
        d.absorb(0, 1)
        with pytest.raises(ValidationError):
            d.absorb(2, 1)

    def test_absorbed_cannot_win(self):
        d = Dendrogram(3)
        d.absorb(0, 1)
        with pytest.raises(ValidationError):
            d.absorb(1, 2)

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            Dendrogram(3).absorb(0, 3)


class TestTraversal:
    def build_sample(self):
        # 0 <- {1, 2}; 2 was itself absorbed after absorbing 3... build:
        # absorb(2,3): 2 -> [3]; absorb(0,1); absorb(0,2): 0 -> [1, 2]
        d = Dendrogram(5)
        d.absorb(2, 3)
        d.absorb(0, 1)
        d.absorb(0, 2)
        return d

    def test_dfs_parent_before_children(self):
        d = self.build_sample()
        order = d.dfs_leaf_order().tolist()
        assert order.index(0) < order.index(1)
        assert order.index(0) < order.index(2)
        assert order.index(2) < order.index(3)

    def test_dfs_children_in_absorption_order(self):
        d = self.build_sample()
        order = d.dfs_leaf_order().tolist()
        assert order == [0, 1, 2, 3, 4]

    def test_subtree_stays_contiguous(self):
        d = self.build_sample()
        order = d.dfs_leaf_order().tolist()
        # Subtree of 2 is {2, 3}: must occupy consecutive positions.
        positions = sorted(order.index(v) for v in (2, 3))
        assert positions[1] - positions[0] == 1

    def test_ordering_is_a_permutation(self):
        d = self.build_sample()
        from repro.sparse.permute import check_permutation

        check_permutation(d.ordering(), 5)

    def test_custom_root_order(self):
        d = self.build_sample()
        order = d.dfs_leaf_order(root_order=[4, 0]).tolist()
        assert order == [4, 0, 1, 2, 3]

    def test_root_order_must_match_roots(self):
        d = self.build_sample()
        with pytest.raises(ValidationError):
            d.dfs_leaf_order(root_order=[0])
        with pytest.raises(ValidationError):
            d.dfs_leaf_order(root_order=[0, 1])


class TestSizes:
    def test_subtree_sizes(self):
        d = Dendrogram(5)
        d.absorb(2, 3)
        d.absorb(0, 1)
        d.absorb(0, 2)
        sizes = d.subtree_sizes()
        assert sizes[0] == 4
        assert sizes[2] == 2
        assert sizes[4] == 1

    def test_empty_forest(self):
        d = Dendrogram(0)
        assert d.dfs_leaf_order().size == 0
        assert d.roots().size == 0
