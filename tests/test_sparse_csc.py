"""CSC format, conversions, and the scatter-style SpMV kernel."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix, coo_to_csc, csc_to_coo, spmv_csc
from repro.sparse.convert import coo_to_csr
from repro.sparse.kernels import spmv_csr


def sample_coo():
    return COOMatrix(3, 4, [0, 2, 1, 0], [1, 1, 3, 0], [1.0, 2.0, 3.0, 4.0])


class TestConstruction:
    def test_roundtrip_dense(self):
        coo = sample_coo()
        assert np.array_equal(coo_to_csc(coo).to_dense(), coo.to_dense())

    def test_coo_roundtrip(self):
        coo = sample_coo()
        assert csc_to_coo(coo_to_csc(coo)) == coo

    def test_col_slices(self):
        csc = coo_to_csc(sample_coo())
        assert np.array_equal(csc.col_slice(1), [0, 2])
        assert np.array_equal(csc.col_values(1), [1.0, 2.0])
        assert csc.col_slice(2).size == 0

    def test_col_degrees(self):
        csc = coo_to_csc(sample_coo())
        assert np.array_equal(csc.col_degrees(), [1, 2, 0, 1])

    def test_offsets_validated(self):
        with pytest.raises(FormatError):
            CSCMatrix(2, 2, [1, 1, 2], [0, 1])  # must start at 0
        with pytest.raises(FormatError):
            CSCMatrix(2, 2, [0, 2, 1], [0])  # non-monotone / wrong end
        with pytest.raises(FormatError):
            CSCMatrix(2, 2, [0, 1, 2], [0, 2])  # row index out of bounds

    def test_shape_validated(self):
        with pytest.raises(ShapeError):
            CSCMatrix(2, 2, [0, 2], [0, 1])

    def test_col_slice_bounds(self):
        csc = coo_to_csc(sample_coo())
        with pytest.raises(IndexError):
            csc.col_slice(4)


class TestKernel:
    def test_matches_csr_kernel(self):
        rng = np.random.default_rng(0)
        coo = COOMatrix(20, 20, rng.integers(0, 20, 80), rng.integers(0, 20, 80),
                        rng.standard_normal(80))
        x = rng.standard_normal(20)
        assert np.allclose(
            spmv_csc(coo_to_csc(coo), x), spmv_csr(coo_to_csr(coo), x)
        )

    def test_shape_mismatch(self):
        csc = coo_to_csc(sample_coo())
        with pytest.raises(ShapeError):
            spmv_csc(csc, np.ones(3))

    def test_empty_matrix(self):
        csc = coo_to_csc(COOMatrix(3, 3, [], []))
        assert np.array_equal(spmv_csc(csc, np.ones(3)), np.zeros(3))
