"""Unit tests for the COO container."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sparse.coo import COOMatrix


class TestConstruction:
    def test_basic_properties(self, small_coo):
        assert small_coo.shape == (4, 4)
        assert small_coo.nnz == 6
        assert small_coo.is_square

    def test_default_values_are_ones(self):
        coo = COOMatrix(3, 3, [0, 1], [1, 2])
        assert np.array_equal(coo.values, [1.0, 1.0])

    def test_rectangular(self):
        coo = COOMatrix(2, 5, [0, 1], [4, 0])
        assert coo.shape == (2, 5)
        assert not coo.is_square

    def test_empty_matrix(self):
        coo = COOMatrix(0, 0, [], [])
        assert coo.nnz == 0
        assert coo.shape == (0, 0)

    def test_indices_cast_to_int64(self):
        coo = COOMatrix(3, 3, np.asarray([0], dtype=np.int32), np.asarray([1], dtype=np.int16))
        assert coo.rows.dtype == np.int64
        assert coo.cols.dtype == np.int64

    def test_negative_dimension_rejected(self):
        with pytest.raises(ShapeError):
            COOMatrix(-1, 3, [], [])

    def test_row_out_of_bounds_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix(2, 2, [2], [0])

    def test_negative_col_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix(2, 2, [0], [-1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            COOMatrix(2, 2, [0, 1], [0])

    def test_values_length_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            COOMatrix(2, 2, [0], [0], values=[1.0, 2.0])

    def test_float_indices_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix(2, 2, [0.5], [0])

    def test_two_dimensional_rows_rejected(self):
        with pytest.raises(ShapeError):
            COOMatrix(2, 2, [[0]], [[0]])


class TestBehaviour:
    def test_to_dense_sums_duplicates(self, small_coo):
        dense = small_coo.to_dense()
        assert dense[3, 3] == pytest.approx(11.0)  # 5 + 6
        assert dense[0, 1] == pytest.approx(1.0)

    def test_triples_roundtrip(self, small_coo):
        triples = list(small_coo.triples())
        assert len(triples) == small_coo.nnz
        assert triples[0] == (0, 1, 1.0)

    def test_copy_is_independent(self, small_coo):
        clone = small_coo.copy()
        clone.values[0] = 99.0
        assert small_coo.values[0] == pytest.approx(1.0)

    def test_equality_is_order_insensitive(self):
        a = COOMatrix(3, 3, [0, 1], [1, 2], [1.0, 2.0])
        b = COOMatrix(3, 3, [1, 0], [2, 1], [2.0, 1.0])
        assert a == b

    def test_inequality_on_values(self):
        a = COOMatrix(3, 3, [0], [1], [1.0])
        b = COOMatrix(3, 3, [0], [1], [2.0])
        assert a != b

    def test_inequality_on_shape(self):
        a = COOMatrix(3, 3, [0], [1])
        b = COOMatrix(4, 4, [0], [1])
        assert a != b

    def test_not_hashable(self, small_coo):
        with pytest.raises(TypeError):
            hash(small_coo)

    def test_repr_mentions_shape_and_nnz(self, small_coo):
        assert "shape=(4, 4)" in repr(small_coo)
        assert "nnz=6" in repr(small_coo)
