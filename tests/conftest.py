"""Shared fixtures.

``figure1_graph`` reconstructs the worked example of the paper's
Figure 1: 9 nodes in three communities (sizes 4, 3 and 2), each fully
connected internally, plus two inter-community edges — 24 directed
adjacency entries of which 20 are intra-community, giving the
insularity value 20/24 ≈ 0.83 quoted in Section V-A.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.community.assignment import CommunityAssignment
from repro.graphs.graph import Graph
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix


@pytest.fixture(autouse=True)
def _isolate_run_ledger(tmp_path, monkeypatch):
    """Keep every test's run ledger out of the repo working tree.

    CLI commands write ``runs/<run_id>/`` relative to the cwd by
    default; tests run from the repo root, so without this they would
    litter ``./runs``.
    """
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))


def undirected_graph(n: int, edges) -> Graph:
    """Build an undirected Graph from a list of (u, v) pairs."""
    u = np.asarray([a for a, _ in edges], dtype=np.int64)
    v = np.asarray([b for _, b in edges], dtype=np.int64)
    coo = COOMatrix(
        n, n, np.concatenate([u, v]), np.concatenate([v, u])
    )
    return Graph(coo_to_csr(coo), directed=False)


FIGURE1_COMMUNITIES = [0, 0, 0, 0, 1, 1, 1, 2, 2]

FIGURE1_EDGES = [
    # Community 0: clique over {0, 1, 2, 3} (6 edges).
    (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
    # Community 1: clique over {4, 5, 6} (3 edges).
    (4, 5), (4, 6), (5, 6),
    # Community 2: single edge {7, 8}.
    (7, 8),
    # Two inter-community edges.
    (3, 4), (6, 7),
]


@pytest.fixture
def figure1_graph() -> Graph:
    return undirected_graph(9, FIGURE1_EDGES)


@pytest.fixture
def figure1_assignment() -> CommunityAssignment:
    return CommunityAssignment(np.asarray(FIGURE1_COMMUNITIES, dtype=np.int64))


@pytest.fixture
def two_triangles() -> Graph:
    """Two triangles joined by one edge — the canonical Louvain example."""
    return undirected_graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])


@pytest.fixture
def path_graph() -> Graph:
    return undirected_graph(8, [(i, i + 1) for i in range(7)])


@pytest.fixture
def star_graph() -> Graph:
    """Hub node 0 connected to 7 leaves."""
    return undirected_graph(8, [(0, i) for i in range(1, 8)])


@pytest.fixture
def small_coo() -> COOMatrix:
    """A 4x4 asymmetric matrix with a duplicate coordinate."""
    return COOMatrix(
        4,
        4,
        rows=[0, 0, 1, 2, 3, 3],
        cols=[1, 3, 2, 0, 3, 3],
        values=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
    )
