"""Property-based tests for the solvers layer."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs.graph import Graph
from repro.solvers import conjugate_gradient, graph_laplacian, pagerank
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.kernels import spmv_csr


@st.composite
def small_graphs(draw, max_n=20, max_edges=50):
    n = draw(st.integers(2, max_n))
    n_edges = draw(st.integers(1, max_edges))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, n_edges)
    v = rng.integers(0, n, n_edges)
    keep = u != v
    u, v = u[keep], v[keep]
    coo = COOMatrix(n, n, np.concatenate([u, v]), np.concatenate([v, u]))
    from repro.sparse.ops import merge_duplicates

    return Graph(coo_to_csr(merge_duplicates(coo)))


class TestCgProperties:
    @given(small_graphs(), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_cg_solves_shifted_laplacian(self, graph, rhs_seed):
        matrix = graph_laplacian(graph, shift=1.0)
        rng = np.random.default_rng(rhs_seed)
        b = rng.standard_normal(matrix.n_rows)
        result = conjugate_gradient(matrix, b, tolerance=1e-10, max_iterations=500)
        assert result.converged
        assert np.allclose(spmv_csr(matrix, result.x), b, atol=1e-5)

    @given(small_graphs())
    @settings(max_examples=30, deadline=None)
    def test_laplacian_row_sums(self, graph):
        laplacian = graph_laplacian(graph, shift=0.0)
        ones = np.ones(laplacian.n_rows)
        assert np.allclose(spmv_csr(laplacian, ones), 0.0, atol=1e-9)


class TestPageRankProperties:
    @given(small_graphs(), st.floats(0.5, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_scores_are_a_distribution(self, graph, damping):
        result = pagerank(graph, damping=damping, max_iterations=500)
        assert result.scores.sum() == np.float64(1.0) or np.isclose(
            result.scores.sum(), 1.0
        )
        assert np.all(result.scores >= 0)

    @given(small_graphs())
    @settings(max_examples=20, deadline=None)
    def test_teleport_lower_bound(self, graph):
        """Every node receives at least the teleport mass (1-d)/n."""
        damping = 0.85
        result = pagerank(graph, damping=damping, max_iterations=500)
        floor = (1.0 - damping) / graph.n_nodes
        assert np.all(result.scores >= floor - 1e-12)
