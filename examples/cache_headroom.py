"""Scenario: how much locality is left on the table after reordering?

The paper's Figure 8 methodology: simulate the L2 under the realistic
LRU policy and under Belady's oracle, per ordering.  A small LRU-to-
Belady gap means the ordering has extracted almost all the locality the
cache could ever exploit — further reordering gains are bounded by that
gap.  This example also reports dead-line fractions (Table III),
showing *why* better orderings do better: less wasted cache capacity.
"""

from repro import load_graph, make_technique, model_run, scaled_platform
from repro.sparse import permute_symmetric

TECHNIQUES = ("random", "original", "dbg", "rabbit", "rabbit++")


def main() -> None:
    graph = load_graph("bench-web")
    platform = scaled_platform("bench")
    print(f"matrix: bench-web ({graph.n_nodes} nodes, {graph.n_edges} entries)")
    print(f"L2: {platform.l2_capacity_bytes // 1024} KiB, "
          f"{platform.ways}-way, {platform.line_bytes} B lines")
    print()
    print(f"{'ordering':10s} {'LRU':>8s} {'Belady':>8s} {'gap':>7s} {'dead lines':>11s}")

    for name in TECHNIQUES:
        permutation = make_technique(name).compute(graph)
        csr = permute_symmetric(graph.adjacency, permutation)
        lru = model_run(csr, platform, policy="lru", kernel="spmv-csr")
        opt = model_run(csr, platform, policy="belady", kernel="spmv-csr")
        gap = lru.normalized_traffic / opt.normalized_traffic
        print(
            f"{name:10s} {lru.normalized_traffic:8.3f} "
            f"{opt.normalized_traffic:8.3f} {gap:7.3f} "
            f"{lru.stats.dead_line_fraction:11.1%}"
        )

    print()
    print("The gap narrows as the ordering improves: a well-ordered matrix")
    print("leaves even an oracle replacement policy little to exploit —")
    print("the paper's evidence that RABBIT++ is close to the achievable")
    print("locality limit for SpMV on this platform.")


if __name__ == "__main__":
    main()
