"""Scenario: should I tile my SpMV, or reorder my matrix?

The paper's related-work section positions reordering against
tiling/blocking: tiling bounds the irregular access range but requires
application changes and re-streams partial results; reordering is pure
pre-processing.  It leaves "RABBIT++ can potentially improve tiling"
to future work — this example runs that exploration on the scaled
platform: a tile-count sweep for a RANDOM-ordered and a
RABBIT++-ordered matrix, plus the combination.
"""

from repro import load_graph, make_technique, model_run, scaled_platform
from repro.sparse import permute_symmetric
from repro.trace import spmv_csr_tiled_trace

TILES = (1, 2, 4, 8, 16, 32)


def main() -> None:
    graph = load_graph("bench-web")
    platform = scaled_platform("bench")
    print(f"matrix: bench-web ({graph.n_nodes} nodes, {graph.n_edges} entries)")
    print(f"platform: {platform.name}, L2 = {platform.l2_capacity_bytes // 1024} KiB")
    print()

    orderings = {}
    for name in ("random", "rabbit++"):
        perm = make_technique(name).compute(graph)
        orderings[name] = permute_symmetric(graph.adjacency, perm)

    print(f"{'tiles':>6s} {'random (KiB)':>14s} {'rabbit++ (KiB)':>15s}")
    best = {name: float("inf") for name in orderings}
    for n_tiles in TILES:
        row = [f"{n_tiles:6d}"]
        for name, csr in orderings.items():
            trace = spmv_csr_tiled_trace(csr, n_tiles, line_bytes=platform.line_bytes)
            traffic = model_run(trace, platform).traffic_bytes / 1024
            best[name] = min(best[name], traffic)
            row.append(f"{traffic:14.1f}")
        print(" ".join(row))

    print()
    print(f"best tiled RANDOM    : {best['random']:8.1f} KiB")
    print(f"best tiled RABBIT++  : {best['rabbit++']:8.1f} KiB")
    print()
    print("Tiling recovers much of RANDOM's lost locality, but at every")
    print("tile count the reordered matrix moves fewer bytes — the two")
    print("optimizations compose, and reordering achieves its share without")
    print("any application changes (the paper's versatility argument,")
    print("Section VII).  The combination — RABBIT++ plus a modest tile")
    print("count — is the configuration the paper leaves to future work.")


if __name__ == "__main__":
    main()
