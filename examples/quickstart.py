"""Quickstart: reorder a matrix and measure how close SpMV gets to ideal.

Run with::

    python examples/quickstart.py

This walks the library's core loop in ~30 lines: load a corpus matrix,
compute a RABBIT++ ordering, and model the SpMV kernel's DRAM traffic
and run time on the scaled A6000 platform.
"""

from repro import evaluate_ordering, load_graph, make_technique, scaled_platform


def main() -> None:
    # A social-network-like matrix with communities and hub nodes,
    # delivered in a scrambled "publisher" order.
    graph = load_graph("bench-social")
    platform = scaled_platform("bench")
    print(f"matrix: {graph.n_nodes} nodes, {graph.n_edges} stored entries")
    print(f"platform: {platform.name}, L2 = {platform.l2_capacity_bytes // 1024} KiB")
    print()

    print(f"{'ordering':12s} {'traffic/compulsory':>20s} {'runtime/ideal':>15s}")
    for name in ("original", "random", "rabbit", "rabbit++"):
        technique = make_technique(name)
        permutation = technique.compute(graph)
        run = evaluate_ordering(graph, permutation, platform=platform)
        print(
            f"{name:12s} {run.normalized_traffic:20.3f} {run.normalized_runtime:15.3f}"
        )

    print()
    print("Lower is better; 1.0 means the kernel only moves compulsory")
    print("traffic — the hardware limit the paper measures against.")


if __name__ == "__main__":
    main()
