"""Scenario: does reordering pay off for an iterative solve?

The paper's answer to "reordering costs time" is amortization across
kernel iterations (Section VI-C).  This example makes that concrete
with a real consumer: conjugate gradient on a shifted graph Laplacian.
The solver's iteration count is fixed by the numerics; the modeled
per-iteration time depends on the matrix ordering — so the end-to-end
comparison is

    total(ordering) = reorder_time + iterations * time_per_spmv(ordering)

with times from the scaled platform model (reordering time measured in
Python here, so the break-even point is pessimistic by the Python/C++
constant; the paper's Figure 9 makes the same caveat in reverse).
"""

import time

import numpy as np

from repro import evaluate_ordering, load_graph, make_technique, scaled_platform
from repro.solvers import conjugate_gradient, graph_laplacian
from repro.sparse import permute_symmetric


def main() -> None:
    graph = load_graph("bench-mesh")  # scrambled CFD mesh
    platform = scaled_platform("bench")
    laplacian = graph_laplacian(graph, shift=0.05)
    rng = np.random.default_rng(1)
    b = rng.standard_normal(laplacian.n_rows)

    result = conjugate_gradient(laplacian, b, tolerance=1e-8)
    print(f"system: shifted Laplacian of bench-mesh ({laplacian.n_rows} unknowns)")
    print(f"CG converged in {result.iterations} iterations "
          f"(residual {result.residual_norm:.2e})")
    print()

    print(f"{'ordering':10s} {'reorder(s)':>11s} {'us/SpMV':>9s} "
          f"{'solve(ms)':>10s} {'break-even iters':>17s}")
    baseline_spmv = None
    for name in ("original", "rabbit", "rabbit++"):
        technique = make_technique(name)
        start = time.perf_counter()
        perm = technique.compute(graph)
        reorder_seconds = time.perf_counter() - start
        reordered = permute_symmetric(laplacian, perm)
        run = evaluate_ordering(reordered, platform=platform)
        per_spmv = run.modeled_seconds
        if baseline_spmv is None:
            baseline_spmv = per_spmv
            break_even = "-"
        else:
            saving = baseline_spmv - per_spmv
            break_even = f"{reorder_seconds / saving:,.0f}" if saving > 0 else "never"
        solve_ms = result.iterations * per_spmv * 1e3
        print(
            f"{name:10s} {reorder_seconds:11.3f} {per_spmv * 1e6:9.2f} "
            f"{solve_ms:10.3f} {break_even:>17s}"
        )

    print()
    print("Per-iteration kernel time drops with ordering quality; a solver")
    print("that runs thousands of SpMV iterations (or many solves on the")
    print("same reordered matrix) recoups the one-time reordering cost —")
    print("the amortization argument of paper Section VI-C.")


if __name__ == "__main__":
    main()
