"""Figure 5 walkthrough: the two RABBIT++ modifications on a toy graph.

Reconstructs the paper's worked example flow on the 9-node,
3-community graph of Figure 1: detect communities, identify insular
and hub nodes, apply the modifications, and print the adjacency
matrices so the structural effect is visible in ASCII.
"""

import numpy as np

from repro.community.rabbit import rabbit_communities
from repro.graphs.graph import Graph
from repro.metrics.insularity import insular_mask, insularity
from repro.reorder.rabbitpp import HubPolicy, RabbitPlusPlus
from repro.reorder.rabbit import RabbitOrder
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.permute import permute_symmetric

EDGES = [
    (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),   # community A (clique of 4)
    (4, 5), (4, 6), (5, 6),                            # community B (triangle)
    (7, 8),                                            # community C (pair)
    (3, 4), (6, 7),                                    # inter-community edges
]


def build_graph() -> Graph:
    u = np.asarray([a for a, _ in EDGES])
    v = np.asarray([b for _, b in EDGES])
    coo = COOMatrix(9, 9, np.concatenate([u, v]), np.concatenate([v, u]))
    # Scramble the IDs so the reordering has something to undo.
    rng = np.random.default_rng(7)
    perm = rng.permutation(9)
    from repro.sparse.permute import permute_coo

    return Graph(coo_to_csr(permute_coo(coo, perm)))


def ascii_matrix(csr) -> str:
    dense = csr.to_dense() != 0
    lines = []
    for row in dense:
        lines.append(" ".join("#" if cell else "." for cell in row))
    return "\n".join(lines)


def main() -> None:
    graph = build_graph()
    print("scrambled adjacency (the 'published' matrix):")
    print(ascii_matrix(graph.adjacency))
    print()

    detection = rabbit_communities(graph)
    print(f"RABBIT detects {detection.assignment.n_communities} communities; "
          f"insularity = {insularity(graph, detection.assignment):.3f}")
    insular = insular_mask(graph, detection.assignment)
    degrees = np.asarray(graph.in_degrees())
    hubs = degrees > graph.average_degree()
    print(f"insular nodes: {np.flatnonzero(insular).tolist()}")
    print(f"hub nodes (degree > {graph.average_degree():.2f}): "
          f"{np.flatnonzero(hubs).tolist()}")
    print()

    steps = [
        ("RABBIT (dendrogram DFS)", RabbitOrder()),
        ("+ insular grouping", RabbitPlusPlus(hub_policy=HubPolicy.NONE)),
        ("+ hub grouping  (= RABBIT++)", RabbitPlusPlus()),
    ]
    for label, technique in steps:
        permutation = technique.compute(graph)
        reordered = permute_symmetric(graph.adjacency, permutation)
        print(f"--- {label} ---")
        print(ascii_matrix(reordered))
        print()

    print("Each step concentrates the non-zeros toward the diagonal:")
    print("communities become contiguous blocks, the insular block gets")
    print("perfect locality, and the few boundary/hub rows are packed")
    print("together instead of scattered.")


if __name__ == "__main__":
    main()
