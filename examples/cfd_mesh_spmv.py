"""Scenario: recovering a lost mesh ordering for CFD SpMV.

Mesh matrices from CFD solvers have near-perfect locality in their
natural (spatial) order, but public datasets often ship them scrambled
(the paper's Observation 3: ORIGINAL order is an arbitrary publisher
choice).  This example shows that on a scrambled 2-D stencil both the
bandwidth-minimizing classic (RCM) and community ordering (RABBIT)
recover locality, and compares them against the true spatial order.
"""

from repro import Graph, evaluate_ordering, load_graph, make_technique, scaled_platform
from repro.graphs.generators import grid_2d
from repro.metrics.locality import average_neighbor_span, matrix_bandwidth
from repro.sparse import coo_to_csr, permute_symmetric


def main() -> None:
    platform = scaled_platform("bench")
    scrambled = load_graph("bench-mesh")  # 64x64 grid, scrambled publisher order
    pristine = Graph(coo_to_csr(grid_2d(64, 64)))

    print("matrix: 64x64 five-point stencil (4096 unknowns)")
    print()
    print(f"{'ordering':12s} {'bandwidth':>10s} {'avg span':>10s} "
          f"{'traffic':>9s} {'runtime':>9s}")

    def report(label, graph, permutation=None):
        csr = graph.adjacency
        if permutation is not None:
            csr = permute_symmetric(csr, permutation)
        run = evaluate_ordering(csr, platform=platform)
        print(
            f"{label:12s} {matrix_bandwidth(csr):10d} "
            f"{average_neighbor_span(csr):10.1f} "
            f"{run.normalized_traffic:9.3f} {run.normalized_runtime:9.3f}"
        )

    report("spatial", pristine)
    report("scrambled", scrambled)
    for name in ("rcm", "rabbit", "rabbit++", "gorder"):
        report(name, scrambled, make_technique(name).compute(scrambled))

    print()
    print("RCM minimizes bandwidth (its objective); community ordering gets")
    print("traffic just as close to compulsory because what matters for the")
    print("cache is the size of the active neighborhood, not the bandwidth")
    print("itself — the paper's argument for community-based reordering as")
    print("the universal default.")


if __name__ == "__main__":
    main()
