"""Scenario: diagnosing why reordering struggles on a social network.

Social graphs combine community structure with heavy degree skew — the
regime where the paper shows plain community ordering (RABBIT) falls
short and RABBIT++'s insular/hub grouping recovers performance
(Sections V and VI).  This example reproduces that diagnosis end to
end on a synthetic social matrix:

1. measure structure: insularity, skew, insular-node fraction;
2. sweep the reordering design space;
3. show where the RABBIT++ gains come from (hub footprint).
"""

import numpy as np

from repro import evaluate_ordering, load_graph, make_technique, scaled_platform
from repro.metrics.insularity import insular_mask, insular_node_fraction, insularity
from repro.metrics.locality import hub_cache_footprint_bytes
from repro.metrics.skew import degree_skew
from repro.reorder.rabbit import RabbitOrder


def main() -> None:
    graph = load_graph("bench-social")
    platform = scaled_platform("bench")

    # --- 1. structure diagnosis -------------------------------------
    detection = RabbitOrder().detect(graph)
    assignment = detection.assignment
    print("structure diagnosis")
    print(f"  nodes / entries          {graph.n_nodes} / {graph.n_edges}")
    print(f"  communities detected     {assignment.n_communities}")
    print(f"  insularity               {insularity(graph, assignment):.3f}")
    print(f"  insular-node fraction    {insular_node_fraction(graph, assignment):.3f}")
    print(f"  degree skew (top 10%)    {degree_skew(graph):.3f}")
    print()

    # --- 2. design-space sweep ---------------------------------------
    print("design-space sweep (SpMV, normalized to ideal)")
    techniques = (
        "random",
        "original",
        "degsort",
        "dbg",
        "rabbit",
        "rabbit+insular",
        "rabbit+hubsort",
        "rabbit+hubgroup",
        "rabbit++",
    )
    for name in techniques:
        permutation = make_technique(name).compute(graph)
        run = evaluate_ordering(graph, permutation, platform=platform)
        print(
            f"  {name:16s} traffic={run.normalized_traffic:6.3f}  "
            f"runtime={run.normalized_runtime:6.3f}  "
            f"dead-lines={run.stats.dead_line_fraction:5.1%}"
        )
    print()

    # --- 3. where do the gains come from? ----------------------------
    in_degrees = np.asarray(graph.in_degrees())
    hubs = in_degrees > graph.average_degree()
    insular = insular_mask(graph, assignment)

    rabbit_perm = make_technique("rabbit").compute(graph)
    rabbitpp_perm = make_technique("rabbit++").compute(graph)
    hub_ids_rabbit = rabbit_perm[hubs & ~insular]
    hub_ids_rabbitpp = rabbitpp_perm[hubs & ~insular]
    print("hub working-set footprint in the input vector")
    print(
        f"  under RABBIT    {hub_cache_footprint_bytes(hub_ids_rabbit) / 1024:.1f} KiB"
    )
    print(
        f"  under RABBIT++  {hub_cache_footprint_bytes(hub_ids_rabbitpp) / 1024:.1f} KiB"
    )
    print()
    print("Grouping the non-insular hubs packs the most-reused input-vector")
    print("entries into the fewest cache lines — the same mechanism the paper")
    print("reports for sx-stackoverflow (5.5 MB -> 1.7 MB).")


if __name__ == "__main__":
    main()
