"""Reading stitched JSONL event files and rendering span trees.

A run's events live under ``runs/<run_id>/`` as one or more JSONL
files: ``events.jsonl`` written by the parent process and
``events-w<pid>.jsonl`` written by each pool worker (see
:mod:`repro.parallel.executor`).  All files share one ``run_id`` and a
single span-id space, so the union of their span events is one logical
trace; :func:`build_span_tree` reassembles it and ``repro trace``
renders it.

The reader is deliberately tolerant: a crashed worker leaves a
truncated final line, a concurrent writer may interleave garbage, and
old files may predate the v2 schema.  :func:`read_events` never raises
on malformed input — it skips bad lines and *counts* them, so the CLI
can report ``skipped N malformed line(s)`` instead of crashing
(and instead of silently pretending the trace is complete).

:func:`to_chrome_trace` exports the span set as Chrome trace-event
JSON (``{"traceEvents": [...]}``, ``ph: "X"`` complete events with
microsecond timestamps) loadable in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class EventReadResult:
    """Every parseable event plus the damage tally per source file."""

    events: List[Dict[str, object]] = field(default_factory=list)
    files: List[str] = field(default_factory=list)
    bad_lines: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bad_lines(self) -> int:
        return sum(self.bad_lines.values())

    def spans(self) -> List[Dict[str, object]]:
        return [e for e in self.events if e.get("kind") == "span"]


def read_event_file(path: str, result: EventReadResult) -> None:
    """Append one file's parseable events to ``result``, counting damage."""
    result.files.append(path)
    result.bad_lines.setdefault(path, 0)
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    result.bad_lines[path] += 1
                    continue
                if not isinstance(event, dict) or "kind" not in event:
                    result.bad_lines[path] += 1
                    continue
                result.events.append(event)
    except OSError:
        # A file that vanished mid-scan counts as one bad line so the
        # report still says something was lost.
        result.bad_lines[path] += 1


def read_events(run_dir: str) -> EventReadResult:
    """Parse every ``events*.jsonl`` under ``run_dir``, tolerant of damage."""
    result = EventReadResult()
    for path in sorted(glob.glob(os.path.join(run_dir, "events*.jsonl"))):
        read_event_file(path, result)
    return result


# -- span tree ----------------------------------------------------------


@dataclass
class SpanNode:
    """One span event plus its stitched children."""

    event: Dict[str, object]
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return str(self.event.get("name", "?"))

    @property
    def seconds(self) -> float:
        return float(self.event.get("seconds", 0.0))  # type: ignore[arg-type]

    @property
    def start(self) -> float:
        return float(self.event.get("ts", 0.0)) - self.seconds  # type: ignore[arg-type]

    @property
    def pid(self) -> Optional[int]:
        pid = self.event.get("pid")
        return int(pid) if pid is not None else None  # type: ignore[arg-type]


def build_span_tree(
    spans: List[Dict[str, object]],
) -> Tuple[List[SpanNode], int]:
    """Stitch span events into a forest via ``span_id``/``parent_id``.

    Returns ``(roots, orphans)`` where *orphans* counts spans whose
    ``parent_id`` names a span that never made it into the event files
    (e.g. a parent that was still open when a worker was killed); such
    spans are promoted to roots rather than dropped.  Pre-v2 events
    without a ``span_id`` also become roots.
    """
    nodes: Dict[str, SpanNode] = {}
    anonymous: List[SpanNode] = []
    for event in spans:
        node = SpanNode(event)
        span_id = event.get("span_id")
        if isinstance(span_id, str) and span_id:
            nodes[span_id] = node
        else:
            anonymous.append(node)
    roots: List[SpanNode] = list(anonymous)
    orphans = 0
    for node in nodes.values():
        parent_id = node.event.get("parent_id")
        if isinstance(parent_id, str) and parent_id in nodes:
            nodes[parent_id].children.append(node)
        else:
            if isinstance(parent_id, str) and parent_id:
                orphans += 1
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.start)
    roots.sort(key=lambda n: n.start)
    return roots, orphans


def render_span_tree(roots: List[SpanNode], max_depth: int = 32) -> str:
    """Indented ASCII tree: name [tags] — seconds, status, pid."""
    lines: List[str] = []

    def describe(node: SpanNode) -> str:
        tags = node.event.get("tags") or {}
        tag_text = ""
        if isinstance(tags, dict) and tags:
            inner = ", ".join(f"{k}={tags[k]}" for k in sorted(tags))
            tag_text = f" [{inner}]"
        status = str(node.event.get("status", "?"))
        suffix = "" if status == "ok" else f" {status.upper()}"
        pid = node.pid
        pid_text = f" pid={pid}" if pid is not None else ""
        return f"{node.name}{tag_text}  {node.seconds:.4f}s{suffix}{pid_text}"

    def walk(node: SpanNode, depth: int) -> None:
        if depth > max_depth:
            return
        lines.append("  " * depth + describe(node))
        for child in node.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines) if lines else "(no spans)"


# -- Chrome trace-event export ------------------------------------------


def to_chrome_trace(spans: List[Dict[str, object]]) -> Dict[str, object]:
    """Chrome trace-event JSON from span events (Perfetto-loadable).

    Emits one ``ph: "X"`` (complete) event per span with microsecond
    ``ts``/``dur`` rebased to the earliest span start, plus a
    ``process_name`` metadata event per pid.  ``ts`` values from
    different processes share an epoch because the span clock is
    ``time.perf_counter`` (``CLOCK_MONOTONIC`` on Linux, one epoch per
    boot), which is what makes cross-process lanes line up.
    """
    events: List[Dict[str, object]] = []
    if spans:
        t0 = min(
            float(e.get("ts", 0.0)) - float(e.get("seconds", 0.0))  # type: ignore[arg-type]
            for e in spans
        )
    else:
        t0 = 0.0
    pids = set()
    for event in spans:
        seconds = float(event.get("seconds", 0.0))  # type: ignore[arg-type]
        start = float(event.get("ts", 0.0)) - seconds  # type: ignore[arg-type]
        pid = int(event.get("pid", 0))  # type: ignore[arg-type]
        tid = int(event.get("tid", pid))  # type: ignore[arg-type]
        pids.add(pid)
        tags = event.get("tags") or {}
        args: Dict[str, object] = dict(tags) if isinstance(tags, dict) else {}
        args["path"] = event.get("path")
        args["status"] = event.get("status")
        if event.get("error"):
            args["error"] = event.get("error")
        events.append(
            {
                "name": str(event.get("name", "?")),
                "cat": "span",
                "ph": "X",
                "ts": (start - t0) * 1e6,
                "dur": seconds * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    run_id = str(spans[0].get("run_id", "")) if spans else ""
    for pid in sorted(pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro {run_id} pid {pid}"},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
