"""Log-bucketed latency histograms with exact cross-process merging.

A :class:`Histogram` buckets positive values into geometrically-spaced
bins (:data:`GROWTH` per bin, four bins per octave, ~19% relative
resolution) and tracks exact ``count``/``sum``/``min``/``max``.  The
bucket index of a value is a pure function of the value, so two
histograms built in different processes from the same observations have
*identical* bucket arrays, and :meth:`merge` (plain per-bucket count
addition) is exact — merged worker histograms equal the histogram a
single process would have built from the same samples.

Percentiles (:meth:`percentile`) use the nearest-rank rule over the
bucket counts and report the upper bound of the bucket holding that
rank, clamped to the observed ``[min, max]`` — so a histogram with one
sample reports that sample for every percentile.

The instrumentation layer records every finished span's duration into
the histogram named after the span (``reorder``, ``trace``,
``cache-sim``, ``memo-load``, ``memo-store``, per-cell ``cell``, …),
which is what ``repro profile`` and the run-ledger summaries report
p50/p90/p99 from.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

#: Geometric bucket growth factor: 2**(1/4), four buckets per octave.
GROWTH = 2.0 ** 0.25
_LOG_GROWTH = math.log(GROWTH)


def bucket_index(value: float) -> int:
    """Bucket of a positive value: bucket ``i`` covers ``(g**(i-1), g**i]``.

    Pure function of the value (no per-instance state), which is what
    makes merges across processes exact.
    """
    index = math.ceil(math.log(value) / _LOG_GROWTH)
    # Float error can land an exact boundary one bucket high; nudge back.
    if GROWTH ** (index - 1) >= value:
        index -= 1
    return index


def bucket_upper_bound(index: int) -> float:
    return GROWTH ** index


class Histogram:
    """Mergeable log-bucketed histogram of non-negative samples.

    Values ``<= 0`` (FakeClock zero-tick durations, counts of zero) go
    to a dedicated zero bucket rather than being dropped, so ``count``
    always equals the number of :meth:`observe` calls.
    """

    __slots__ = ("count", "total", "min", "max", "zero_count", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.zero_count = 0
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        if v <= 0.0:
            self.zero_count += 1
        else:
            index = bucket_index(v)
            self.buckets[index] = self.buckets.get(index, 0) + 1

    # -- queries --------------------------------------------------------

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; ``q`` in ``[0, 1]``.

        Returns the upper bound of the bucket containing the rank,
        clamped to the exact observed ``[min, max]``.  Raises
        :class:`ValueError` on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile q must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("percentile of an empty histogram")
        rank = max(1, math.ceil(q * self.count))
        cumulative = self.zero_count
        if cumulative >= rank:
            return max(0.0, self.min if self.min is not None else 0.0)
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                value = bucket_upper_bound(index)
                return min(max(value, self.min), self.max)  # type: ignore[arg-type]
        # Unreachable if counts are consistent, but never crash a report.
        return self.max if self.max is not None else 0.0  # pragma: no cover

    def percentile_or(
        self, q: float, default: Optional[float] = None
    ) -> Optional[float]:
        """:meth:`percentile`, but ``default`` on an empty histogram.

        The guard every *reporting* path must use: a ledger manifest or
        ``repro profile`` table for a run whose spans never fired (an
        idle serve session, a fully-cached sweep) has to report
        zeros/``null``, not crash with the :class:`ValueError` that
        :meth:`percentile` raises on an empty histogram.
        """
        if self.count == 0:
            return default
        return self.percentile(q)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # -- merging --------------------------------------------------------

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (exact: bucket addition)."""
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        self.zero_count += other.zero_count
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n

    def copy(self) -> "Histogram":
        clone = Histogram()
        clone.merge(self)
        return clone

    # -- serialization --------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """Wire format shipped from worker processes and sunk in flushes."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "zero": self.zero_count,
            # JSON object keys must be strings; sorted for determinism.
            "buckets": {str(i): self.buckets[i] for i in sorted(self.buckets)},
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "Histogram":
        hist = cls()
        hist.count = int(payload.get("count", 0))  # type: ignore[arg-type]
        hist.total = float(payload.get("sum", 0.0))  # type: ignore[arg-type]
        raw_min = payload.get("min")
        raw_max = payload.get("max")
        hist.min = None if raw_min is None else float(raw_min)  # type: ignore[arg-type]
        hist.max = None if raw_max is None else float(raw_max)  # type: ignore[arg-type]
        hist.zero_count = int(payload.get("zero", 0))  # type: ignore[arg-type]
        buckets = payload.get("buckets", {})
        if isinstance(buckets, dict):
            hist.buckets = {int(k): int(v) for k, v in buckets.items()}
        return hist

    def summary(self) -> Dict[str, object]:
        """Compact p50/p90/p99 digest for manifests and reports.

        Empty histograms summarize to zero counts and ``null``
        percentiles (via :meth:`percentile_or`) so a run whose spans
        never fired still produces a valid manifest.
        """
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile_or(0.50),
            "p90": self.percentile_or(0.90),
            "p99": self.percentile_or(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(count={self.count}, sum={self.total:.6f}, "
            f"buckets={len(self.buckets)})"
        )


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    if value > 0.0:
        return f"{value * 1e6:.1f}us"
    return "0"


def format_histograms(
    histograms: Dict[str, Histogram], title: str = "phase"
) -> str:
    """Monospace ``phase | count | p50 | p90 | p99 | max`` table.

    Rows are sorted by total accumulated time, largest first, matching
    the span-totals table so the two reports line up.
    """
    if not histograms:
        return "(no histograms recorded)"
    rows: List[Tuple[str, Histogram]] = sorted(
        histograms.items(), key=lambda kv: kv[1].total, reverse=True
    )
    name_width = max(len(title), max(len(name) for name, _ in rows))
    header = (
        f"{title.ljust(name_width)}  {'count':>6}  {'p50':>9}  "
        f"{'p90':>9}  {'p99':>9}  {'max':>9}"
    )
    lines = [header, f"{'-' * name_width}  {'-' * 6}  " + "  ".join(["-" * 9] * 4)]
    for name, hist in rows:
        if hist.count == 0:
            continue
        lines.append(
            f"{name.ljust(name_width)}  {hist.count:>6d}  "
            f"{_fmt_seconds(hist.percentile(0.50)):>9}  "
            f"{_fmt_seconds(hist.percentile(0.90)):>9}  "
            f"{_fmt_seconds(hist.percentile(0.99)):>9}  "
            f"{_fmt_seconds(hist.max):>9}"
        )
    return "\n".join(lines)
