"""The Instrumentation hub: spans, counters, and event emission.

One :class:`Instrumentation` instance ties together a clock, a sink,
and a counter registry.  Pipeline code grabs the process-wide instance
via :func:`repro.obs.get_obs` and opens spans around its stages::

    obs = get_obs()
    with obs.span("trace", matrix="soc-forum", kernel="spmv-csr"):
        trace = build_trace(...)

When observability is disabled (the default) ``span`` yields ``None``
without reading the clock, touching the stack, or emitting — the hot
path costs one attribute check.

Event schema (one JSON object per line in a :class:`JsonlSink`):

* span end:  ``{"kind": "span", "run_id": ..., "ts": <clock seconds>,
  "name": "trace", "path": "experiment.fig2/runner.run/trace",
  "seconds": 0.012, "status": "ok"|"error", "error": null|"...",
  "tags": {"matrix": ..., ...}}``
* counter flush: ``{"kind": "counters", "run_id": ..., "ts": ...,
  "counters": {...}, "gauges": {...}}``
"""

from __future__ import annotations

import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

from repro.obs.clock import Clock, MonotonicClock
from repro.obs.counters import CounterRegistry
from repro.obs.sink import EventSink, NullSink


@dataclass
class Span:
    """A finished (or in-flight) timed region.

    Yielded by :meth:`Instrumentation.span`; ``seconds`` and ``status``
    are filled in when the ``with`` block exits, so the object can be
    inspected after the block.
    """

    name: str
    path: str
    tags: Dict[str, object] = field(default_factory=dict)
    seconds: float = 0.0
    status: str = "running"
    error: Optional[str] = None


@dataclass
class SpanTotal:
    """Aggregate over every finished span sharing one name."""

    calls: int = 0
    seconds: float = 0.0


class Instrumentation:
    """Clock + sink + counters + a thread-local span stack."""

    def __init__(
        self,
        sink: Optional[EventSink] = None,
        clock: Optional[Clock] = None,
        enabled: bool = True,
        run_id: Optional[str] = None,
        tags: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.clock = clock if clock is not None else MonotonicClock()
        self.enabled = bool(enabled)
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex[:12]
        self.tags = dict(tags or {})
        self.counters = CounterRegistry()
        self._local = threading.local()
        self._agg_lock = threading.Lock()
        self._agg: Dict[str, SpanTotal] = {}

    # -- spans ----------------------------------------------------------

    def _stack(self) -> "list[str]":
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **tags: object) -> Iterator[Optional[Span]]:
        """Time a region; nested calls build a ``/``-joined path.

        Exceptions propagate but are recorded (``status="error"`` plus
        the exception repr) and the stack is popped either way.
        """
        if not self.enabled:
            yield None
            return
        stack = self._stack()
        path = "/".join(stack + [name])
        record = Span(name=name, path=path, tags=dict(tags))
        stack.append(name)
        start = self.clock.now()
        try:
            yield record
            record.status = "ok"
        except BaseException as exc:
            record.status = "error"
            record.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            end = self.clock.now()
            stack.pop()
            record.seconds = end - start
            with self._agg_lock:
                total = self._agg.setdefault(name, SpanTotal())
                total.calls += 1
                total.seconds += record.seconds
            self.sink.emit(
                {
                    "kind": "span",
                    "run_id": self.run_id,
                    "ts": end,
                    "name": record.name,
                    "path": record.path,
                    "seconds": record.seconds,
                    "status": record.status,
                    "error": record.error,
                    "tags": {**self.tags, **record.tags},
                }
            )

    def span_totals(self) -> Dict[str, SpanTotal]:
        """Per-name aggregates of every span finished so far."""
        with self._agg_lock:
            return {
                name: SpanTotal(total.calls, total.seconds)
                for name, total in self._agg.items()
            }

    def merge_span_totals(
        self, totals: Mapping[str, "SpanTotal | tuple"]
    ) -> None:
        """Fold another instrumentation's span aggregates into this one.

        Accepts :class:`SpanTotal` values or plain ``(calls, seconds)``
        tuples — the wire format worker processes ship back to the
        parent (see :mod:`repro.parallel`).  No-op when disabled, like
        every other recording method.
        """
        if not self.enabled:
            return
        with self._agg_lock:
            for name, value in totals.items():
                calls, seconds = (
                    (value.calls, value.seconds)
                    if isinstance(value, SpanTotal)
                    else value
                )
                total = self._agg.setdefault(name, SpanTotal())
                total.calls += int(calls)
                total.seconds += float(seconds)

    # -- counters -------------------------------------------------------

    def counter(self, name: str, value: float = 1) -> None:
        if self.enabled:
            self.counters.add(name, value)

    def add_counters(self, values: Mapping[str, float]) -> None:
        if self.enabled:
            self.counters.add_many(values)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.counters.set_gauge(name, value)

    def flush(self) -> None:
        """Emit one ``counters`` event with the current snapshot."""
        if not self.enabled:
            return
        snapshot = self.counters.snapshot()
        self.sink.emit(
            {
                "kind": "counters",
                "run_id": self.run_id,
                "ts": self.clock.now(),
                "counters": snapshot["counters"],
                "gauges": snapshot["gauges"],
            }
        )

    def close(self) -> None:
        self.sink.close()
