"""The Instrumentation hub: spans, counters, histograms, event emission.

One :class:`Instrumentation` instance ties together a clock, a sink,
and a counter registry.  Pipeline code grabs the process-wide instance
via :func:`repro.obs.get_obs` and opens spans around its stages::

    obs = get_obs()
    with obs.span("trace", matrix="soc-forum", kernel="spmv-csr"):
        trace = build_trace(...)

When observability is disabled (the default) ``span`` yields ``None``
without reading the clock, touching the stack, or emitting — the hot
path costs one attribute check.

Event schema v2 (one JSON object per line in a :class:`JsonlSink`):

* span end:  ``{"kind": "span", "v": 2, "run_id": ...,
  "span_id": "9f2c...", "parent_id": "41aa..."|null, "pid": 1234,
  "tid": 5678, "ts": <clock seconds at span end>, "name": "trace",
  "path": "experiment.fig2/runner.run/trace", "seconds": 0.012,
  "status": "ok"|"error", "error": null|"...", "tags": {...}}``
* counter flush: ``{"kind": "counters", "v": 2, "run_id": ...,
  "ts": ..., "pid": ..., "counters": {...}, "gauges": {...},
  "histograms": {name: {count, sum, min, max, zero, buckets}}}``

``span_id``/``parent_id`` stitch spans into one logical trace across
process boundaries: worker processes inherit the parent's ``run_id``
and root their spans under the parent's current span id (see
:mod:`repro.parallel.executor` and ``repro trace``).  Every finished
span's duration is also recorded into the histogram named after the
span, so latency percentiles come for free at every span site.
"""

from __future__ import annotations

import os
import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.obs.clock import Clock, MonotonicClock
from repro.obs.counters import CounterRegistry
from repro.obs.sink import EventSink, NullSink

#: Event schema version stamped on every emitted event.
EVENT_SCHEMA_VERSION = 2


def new_span_id() -> str:
    """Globally-unique span id (16 hex chars)."""
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """A finished (or in-flight) timed region.

    Yielded by :meth:`Instrumentation.span`; ``seconds`` and ``status``
    are filled in when the ``with`` block exits, so the object can be
    inspected after the block.
    """

    name: str
    path: str
    tags: Dict[str, object] = field(default_factory=dict)
    seconds: float = 0.0
    status: str = "running"
    error: Optional[str] = None
    span_id: str = ""
    parent_id: Optional[str] = None


@dataclass
class SpanTotal:
    """Aggregate over every finished span sharing one name."""

    calls: int = 0
    seconds: float = 0.0


class Instrumentation:
    """Clock + sink + counters + a thread-local span stack."""

    def __init__(
        self,
        sink: Optional[EventSink] = None,
        clock: Optional[Clock] = None,
        enabled: bool = True,
        run_id: Optional[str] = None,
        tags: Optional[Mapping[str, object]] = None,
        parent_span_id: Optional[str] = None,
        trace_dir: Optional[str] = None,
        track_rss: bool = False,
    ) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.clock = clock if clock is not None else MonotonicClock()
        self.enabled = bool(enabled)
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex[:12]
        self.tags = dict(tags or {})
        #: Root spans of this instrumentation parent under this id —
        #: the cross-process stitching hook (a worker sets it to the
        #: parent process's current span id).
        self.parent_span_id = parent_span_id
        #: Directory worker processes should write their event files
        #: into (``events-w<pid>.jsonl``); ``None`` disables worker
        #: event capture.  Set by the CLI when a run ledger is active.
        self.trace_dir = trace_dir
        #: When set, every finished span also records the process peak
        #: RSS as a ``rss.peak_kb.<span name>`` gauge (plus the overall
        #: ``rss.peak_kb``).  Opt-in: gauges land in run-ledger
        #: manifests, and consumers that assert exact gauge sets should
        #: not see RSS rows appear unbidden.
        self.track_rss = bool(track_rss)
        self.counters = CounterRegistry()
        self._local = threading.local()
        self._agg_lock = threading.Lock()
        self._agg: Dict[str, SpanTotal] = {}

    # -- spans ----------------------------------------------------------

    def _stack(self) -> "List[Tuple[str, str]]":
        """Thread-local stack of (span name, span id) frames."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open span on this thread (for stitching).

        Falls back to :attr:`parent_span_id` so a worker that asks
        before opening any span still roots correctly.
        """
        if not self.enabled:
            return None
        stack = self._stack()
        return stack[-1][1] if stack else self.parent_span_id

    @contextmanager
    def span(self, name: str, **tags: object) -> Iterator[Optional[Span]]:
        """Time a region; nested calls build a ``/``-joined path.

        Exceptions propagate but are recorded (``status="error"`` plus
        the exception repr) and the stack is popped either way.
        """
        if not self.enabled:
            yield None
            return
        stack = self._stack()
        path = "/".join([frame[0] for frame in stack] + [name])
        span_id = new_span_id()
        parent_id = stack[-1][1] if stack else self.parent_span_id
        record = Span(
            name=name, path=path, tags=dict(tags),
            span_id=span_id, parent_id=parent_id,
        )
        stack.append((name, span_id))
        start = self.clock.now()
        try:
            yield record
            record.status = "ok"
        except BaseException as exc:
            record.status = "error"
            record.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            end = self.clock.now()
            stack.pop()
            record.seconds = end - start
            with self._agg_lock:
                total = self._agg.setdefault(name, SpanTotal())
                total.calls += 1
                total.seconds += record.seconds
            self.counters.observe(name, record.seconds)
            if self.track_rss:
                from repro.obs.rss import RSS_GAUGE_PREFIX, peak_rss_kb

                peak = peak_rss_kb()
                if peak is not None:
                    # ru_maxrss is monotonic, so last-write-wins per
                    # gauge equals the max over this span name's runs.
                    self.counters.set_gauge(f"{RSS_GAUGE_PREFIX}.{name}", peak)
                    self.counters.set_gauge(RSS_GAUGE_PREFIX, peak)
            self.sink.emit(
                {
                    "kind": "span",
                    "v": EVENT_SCHEMA_VERSION,
                    "run_id": self.run_id,
                    "span_id": record.span_id,
                    "parent_id": record.parent_id,
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                    "ts": end,
                    "name": record.name,
                    "path": record.path,
                    "seconds": record.seconds,
                    "status": record.status,
                    "error": record.error,
                    "tags": {**self.tags, **record.tags},
                }
            )

    def span_totals(self) -> Dict[str, SpanTotal]:
        """Per-name aggregates of every span finished so far."""
        with self._agg_lock:
            return {
                name: SpanTotal(total.calls, total.seconds)
                for name, total in self._agg.items()
            }

    def merge_span_totals(
        self, totals: Mapping[str, "SpanTotal | tuple"]
    ) -> None:
        """Fold another instrumentation's span aggregates into this one.

        Accepts :class:`SpanTotal` values or plain ``(calls, seconds)``
        tuples — the wire format worker processes ship back to the
        parent (see :mod:`repro.parallel`).  No-op when disabled, like
        every other recording method.
        """
        if not self.enabled:
            return
        with self._agg_lock:
            for name, value in totals.items():
                calls, seconds = (
                    (value.calls, value.seconds)
                    if isinstance(value, SpanTotal)
                    else value
                )
                total = self._agg.setdefault(name, SpanTotal())
                total.calls += int(calls)
                total.seconds += float(seconds)

    # -- counters -------------------------------------------------------

    def counter(self, name: str, value: float = 1) -> None:
        if self.enabled:
            self.counters.add(name, value)

    def add_counters(self, values: Mapping[str, float]) -> None:
        if self.enabled:
            self.counters.add_many(values)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.counters.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram sample (retry counts, latencies, …)."""
        if self.enabled:
            self.counters.observe(name, value)

    def merge_counter_snapshot(self, snapshot: Mapping[str, object]) -> None:
        """Fold one worker's counter snapshot into this registry.

        ``snapshot`` is :meth:`CounterRegistry.snapshot` output shipped
        across the process boundary.  Counters add, gauges merge
        max-wins (deterministic regardless of worker completion order),
        histograms merge exactly by bucket addition.
        """
        if not self.enabled:
            return
        self.counters.add_many(snapshot.get("counters", {}))  # type: ignore[arg-type]
        self.counters.merge_gauges(snapshot.get("gauges", {}))  # type: ignore[arg-type]
        self.counters.merge_histograms(snapshot.get("histograms", {}))  # type: ignore[arg-type]

    def flush(self) -> None:
        """Emit one ``counters`` event with the current snapshot."""
        if not self.enabled:
            return
        snapshot = self.counters.snapshot()
        self.sink.emit(
            {
                "kind": "counters",
                "v": EVENT_SCHEMA_VERSION,
                "run_id": self.run_id,
                "ts": self.clock.now(),
                "pid": os.getpid(),
                "counters": snapshot["counters"],
                "gauges": snapshot["gauges"],
                "histograms": snapshot["histograms"],
            }
        )

    def close(self) -> None:
        self.sink.close()
