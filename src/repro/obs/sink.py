"""Event sinks: where finished spans and counter flushes go.

Every event is a flat JSON-serializable dict with at least ``kind``,
``ts`` and ``run_id`` keys (see :mod:`repro.obs.core` for the schema).
Sinks must be thread-safe; span exits may happen on worker threads.
"""

from __future__ import annotations

import io
import json
import threading
from typing import Dict, List, Optional


class EventSink:
    """Receives structured events; base class doubles as the interface."""

    def emit(self, event: Dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (file handles); idempotent."""


class NullSink(EventSink):
    """Discards everything — the default when observability is off."""

    def emit(self, event: Dict[str, object]) -> None:
        pass


class MemorySink(EventSink):
    """Keeps events in a list; for tests and the ``profile`` command."""

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []
        self._lock = threading.Lock()

    def emit(self, event: Dict[str, object]) -> None:
        with self._lock:
            self.events.append(event)

    def by_kind(self, kind: str) -> List[Dict[str, object]]:
        with self._lock:
            return [e for e in self.events if e.get("kind") == kind]


class TeeSink(EventSink):
    """Fans every event out to several sinks (ledger + ``--log-file``)."""

    def __init__(self, sinks: List[EventSink]) -> None:
        self.sinks = list(sinks)

    def emit(self, event: Dict[str, object]) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class JsonlSink(EventSink):
    """Appends one JSON object per line to a file (or a given stream)."""

    def __init__(
        self, path: Optional[str] = None, stream: Optional[io.TextIOBase] = None
    ) -> None:
        if (path is None) == (stream is None):
            raise ValueError("JsonlSink needs exactly one of path or stream")
        self._owns_stream = stream is None
        self._stream = stream if stream is not None else open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def emit(self, event: Dict[str, object]) -> None:
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self._owns_stream and not self._stream.closed:
                self._stream.close()
