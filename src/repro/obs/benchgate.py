"""Perf-regression gate over the BENCH payloads (``repro bench --check``).

The two microbenchmarks (``repro bench-sim`` / ``repro bench-reorder``)
emit JSON payloads whose ``speedups`` map records how much faster the
vectorized engine is than the reference engine on a pinned workload
(e.g. ``{"lru": 12.4, "rabbit": 8.1}``).  Those *ratios* are the gated
metric: unlike absolute seconds they are largely machine-portable, so a
baseline committed from one machine still catches a real algorithmic
regression (a fast path silently falling back to reference drops the
ratio to ~1x) on another.

:func:`compare_payloads` flags a metric when::

    fresh < baseline * (1 - tolerance)

with a generous default tolerance (ratios still jitter with load).  A
metric present in the baseline but missing fresh is a regression (a
renamed or dropped workload must be re-baselined explicitly via
``repro bench --check --update``).  A correctness flag
(``stats_match``/``results_match``) that is ``false`` fails the gate
outright regardless of tolerance.  Improvements are reported but never
fail.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Fresh speedup may drop to (1 - tolerance) x baseline before failing.
DEFAULT_TOLERANCE = 0.4

#: Correctness flags found in BENCH payloads (either name, per payload).
_MATCH_KEYS = ("stats_match", "results_match")


@dataclass
class MetricDelta:
    """One gated metric: baseline vs fresh speedup ratio."""

    name: str
    baseline: Optional[float]
    fresh: Optional[float]
    regressed: bool
    note: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "baseline": self.baseline,
            "fresh": self.fresh,
            "regressed": self.regressed,
            "note": self.note,
        }


@dataclass
class GateResult:
    """Outcome of gating one BENCH payload against its baseline."""

    label: str
    deltas: List[MetricDelta] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.errors and not any(d.regressed for d in self.deltas)

    def to_json(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "passed": self.passed,
            "errors": list(self.errors),
            "deltas": [d.to_json() for d in self.deltas],
        }


def load_payload(path: str) -> Optional[Dict[str, object]]:
    """A BENCH JSON payload, or ``None`` if unreadable/malformed."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _speedups(payload: Dict[str, object]) -> Dict[str, float]:
    raw = payload.get("speedups", {})
    if not isinstance(raw, dict):
        return {}
    out: Dict[str, float] = {}
    for name, value in raw.items():
        try:
            out[str(name)] = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            continue
    return out


def compare_payloads(
    label: str,
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> GateResult:
    """Gate ``fresh`` against ``baseline``; see module docstring."""
    result = GateResult(label=label)
    for key in _MATCH_KEYS:
        if fresh.get(key) is False:
            result.errors.append(
                f"{label}: correctness flag {key} is false — fast and "
                "reference engines diverged"
            )
    base_speedups = _speedups(baseline)
    fresh_speedups = _speedups(fresh)
    if not base_speedups:
        result.errors.append(f"{label}: baseline has no speedups map")
    floor = 1.0 - tolerance
    for name in sorted(base_speedups):
        base = base_speedups[name]
        if name not in fresh_speedups:
            result.deltas.append(
                MetricDelta(
                    name=name, baseline=base, fresh=None, regressed=True,
                    note="metric missing from fresh run",
                )
            )
            continue
        new = fresh_speedups[name]
        regressed = new < base * floor
        if regressed:
            note = (
                f"speedup fell {base:.2f}x -> {new:.2f}x "
                f"(floor {base * floor:.2f}x at tolerance {tolerance:.0%})"
            )
        elif new > base:
            note = f"improved {base:.2f}x -> {new:.2f}x"
        else:
            note = "within tolerance"
        result.deltas.append(
            MetricDelta(
                name=name, baseline=base, fresh=new,
                regressed=regressed, note=note,
            )
        )
    for name in sorted(set(fresh_speedups) - set(base_speedups)):
        result.deltas.append(
            MetricDelta(
                name=name, baseline=None, fresh=fresh_speedups[name],
                regressed=False, note="new metric (not in baseline)",
            )
        )
    return result


def check_files(
    pairs: List[Tuple[str, str, str]],
    tolerance: float = DEFAULT_TOLERANCE,
    strict: bool = False,
) -> Tuple[List[GateResult], List[str]]:
    """Gate several ``(label, baseline_path, fresh_path)`` file pairs.

    Returns ``(results, skipped)``.  A missing/unreadable *fresh* file
    is a skip-with-warning unless ``strict`` (CI passes ``--strict`` so
    a benchmark that silently failed to produce output cannot pass the
    gate); a missing *baseline* is always an error — the gate exists to
    compare against one.
    """
    results: List[GateResult] = []
    skipped: List[str] = []
    for label, baseline_path, fresh_path in pairs:
        baseline = load_payload(baseline_path) if os.path.exists(baseline_path) else None
        fresh = load_payload(fresh_path) if os.path.exists(fresh_path) else None
        if baseline is None:
            result = GateResult(label=label)
            result.errors.append(
                f"{label}: baseline {baseline_path} missing or unreadable "
                "(seed it with: repro bench --check --update)"
            )
            results.append(result)
            continue
        if fresh is None:
            message = f"{label}: fresh payload {fresh_path} missing or unreadable"
            if strict:
                result = GateResult(label=label)
                result.errors.append(message + " (--strict)")
                results.append(result)
            else:
                skipped.append(message)
            continue
        results.append(compare_payloads(label, baseline, fresh, tolerance=tolerance))
    return results, skipped


def format_gate_report(
    results: List[GateResult], skipped: List[str]
) -> str:
    """Human-readable gate report (one line per metric)."""
    lines: List[str] = []
    for result in results:
        verdict = "PASS" if result.passed else "FAIL"
        lines.append(f"[{verdict}] {result.label}")
        for error in result.errors:
            lines.append(f"  ERROR {error}")
        for delta in result.deltas:
            base = "-" if delta.baseline is None else f"{delta.baseline:.2f}x"
            new = "-" if delta.fresh is None else f"{delta.fresh:.2f}x"
            flag = "REGRESSED" if delta.regressed else "ok"
            lines.append(
                f"  {delta.name:16s} baseline {base:>8}  fresh {new:>8}  "
                f"{flag}  {delta.note}"
            )
    for message in skipped:
        lines.append(f"[SKIP] {message}")
    if not results and not skipped:
        lines.append("(nothing to check)")
    return "\n".join(lines)
