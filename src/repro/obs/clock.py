"""Injectable time sources for the instrumentation layer.

Spans and events read time through a :class:`Clock` so tests can swap
in a :class:`FakeClock` and assert exact durations instead of sleeping.
"""

from __future__ import annotations

import time


class Clock:
    """Monotonic time source; ``now()`` returns seconds as a float."""

    def now(self) -> float:
        raise NotImplementedError


class MonotonicClock(Clock):
    """Wall-clock via :func:`time.perf_counter` (the default)."""

    def now(self) -> float:
        return time.perf_counter()


class FakeClock(Clock):
    """Deterministic clock for tests.

    ``tick`` (default 0) is added after every ``now()`` read, so two
    consecutive reads differ by exactly ``tick``; ``advance`` moves the
    clock explicitly.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self._now = float(start)
        self.tick = float(tick)

    def now(self) -> float:
        value = self._now
        self._now += self.tick
        return value

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self._now += float(seconds)
