"""Per-run provenance ledger: ``runs/<run_id>/manifest.json``.

Every ``repro experiment`` / ``repro run-all`` invocation (and every
``repro bench --check``) gets a directory under the runs root::

    runs/
      3f9a2c41be07/
        manifest.json        <- provenance + telemetry summary
        events.jsonl         <- parent-process span/counter events
        events-w4231.jsonl   <- one file per pool worker (jobs > 1)

The manifest is written twice: a minimal ``status: "running"`` stub at
launch (so a crashed run is visible as incomplete in ``repro runs
list``) and the full document at exit — CLI argv, config, corpus
profile, span totals, histogram p50/p90/p99 summaries, counters and
gauges, the failure report, and any emitted BENCH deltas.  It is plain
JSON (no integrity envelope) so external tooling can read it directly.

The runs root resolves like the memo cache: explicit argument, else
``$REPRO_RUNS_DIR``, else ``./runs``.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from typing import Dict, List, Optional

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1

MANIFEST_NAME = "manifest.json"
RUNS_DIR_ENV = "REPRO_RUNS_DIR"
DEFAULT_RUNS_DIR = "runs"

#: A ``running`` stub older than this (and whose liveness cannot be
#: probed, e.g. written on another host) is rendered as ``stale``.
STALE_AFTER_SECONDS = 6 * 3600.0


def resolve_runs_dir(runs_dir: Optional[str] = None) -> str:
    """Explicit argument, else ``$REPRO_RUNS_DIR``, else ``./runs``."""
    if runs_dir is not None:
        return runs_dir
    env = os.environ.get(RUNS_DIR_ENV)
    if env:
        return env
    return os.path.join(os.getcwd(), DEFAULT_RUNS_DIR)


def _atomic_write_json(path: str, document: Dict[str, object]) -> None:
    # Unique temp names (pid + tid + sequence) keep concurrent writers
    # of one manifest from tearing each other's temp file — see
    # repro.resilience.integrity.unique_tmp_path.
    from repro.resilience.integrity import unique_tmp_path

    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = unique_tmp_path(path)
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True, default=str)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class RunLedger:
    """One run's directory, manifest, and event-file locations."""

    def __init__(self, runs_dir: str, run_id: str) -> None:
        self.runs_dir = runs_dir
        self.run_id = run_id
        self.dir = os.path.join(runs_dir, run_id)
        self._extra: Dict[str, object] = {}
        self._base: Dict[str, object] = {}
        self._started = time.time()

    # -- paths ----------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.dir, MANIFEST_NAME)

    @property
    def events_path(self) -> str:
        """The parent process's event file (workers get their own)."""
        return os.path.join(self.dir, "events.jsonl")

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def create(
        cls,
        runs_dir: str,
        kind: str,
        argv: List[str],
        config: Optional[Dict[str, object]] = None,
        run_id: Optional[str] = None,
    ) -> "RunLedger":
        """Allocate the run directory and write the ``running`` stub."""
        ledger = cls(runs_dir, run_id if run_id else uuid.uuid4().hex[:12])
        os.makedirs(ledger.dir, exist_ok=True)
        ledger._base = {
            "schema": MANIFEST_SCHEMA,
            "run_id": ledger.run_id,
            "kind": kind,
            "argv": list(argv),
            "config": dict(config or {}),
            "started_at": ledger._started,
            "started_at_iso": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime(ledger._started)
            ),
            # Liveness identity for the `running` stub: lets `repro
            # runs list` tell a live run from one that crashed before
            # finalize (dead pid -> rendered as `stale`).
            "pid": os.getpid(),
            "host": socket.gethostname(),
        }
        _atomic_write_json(
            ledger.manifest_path, {**ledger._base, "status": "running"}
        )
        return ledger

    def record(self, key: str, value: object) -> None:
        """Attach an extra manifest section (failures, bench deltas, …)."""
        self._extra[key] = value

    def finalize(
        self,
        instr=None,
        exit_code: Optional[int] = None,
        status: str = "ok",
    ) -> Dict[str, object]:
        """Write the full manifest; returns the written document.

        ``instr`` (an :class:`~repro.obs.Instrumentation`) contributes
        span totals, histogram summaries, counters and gauges; pass
        ``None`` for runs with no instrumentation.
        """
        finished = time.time()
        document: Dict[str, object] = {
            **self._base,
            "status": status,
            "exit_code": exit_code,
            "finished_at": finished,
            "duration_seconds": finished - self._started,
        }
        if instr is not None:
            snapshot = instr.counters.snapshot()
            document["span_totals"] = {
                name: {"calls": total.calls, "seconds": total.seconds}
                for name, total in sorted(instr.span_totals().items())
            }
            document["histograms"] = {
                name: hist.summary()
                for name, hist in sorted(instr.counters.histograms().items())
            }
            document["counters"] = snapshot["counters"]
            document["gauges"] = snapshot["gauges"]
        document.setdefault("failures", None)
        document.setdefault("bench", None)
        document.update(self._extra)
        _atomic_write_json(self.manifest_path, document)
        return document


# -- querying -----------------------------------------------------------


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a pid on this host."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # can't tell; err on the side of "alive"
    return True


def effective_status(
    manifest: Dict[str, object], now: Optional[float] = None
) -> str:
    """The manifest's status with crashed ``running`` stubs downgraded.

    The stub written at launch says ``running``; a run that crashed (or
    was SIGKILLed) never rewrites it, so without this check ``repro
    runs list`` shows the run as running forever.  A ``running``
    manifest is downgraded to ``stale`` when its recorded pid is dead
    on this host, or — for stubs written elsewhere or predating the
    pid field — when it is older than :data:`STALE_AFTER_SECONDS`.
    """
    status = str(manifest.get("status", "?"))
    if status != "running":
        return status
    pid = manifest.get("pid")
    host = manifest.get("host")
    if isinstance(pid, int) and (host is None or host == socket.gethostname()):
        return "running" if _pid_alive(pid) else "stale"
    started = manifest.get("started_at")
    try:
        age = (now if now is not None else time.time()) - float(started)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "stale"  # a running stub with no start time is damage
    return "stale" if age > STALE_AFTER_SECONDS else "running"


def load_manifest(runs_dir: str, run_id: str) -> Optional[Dict[str, object]]:
    """Manifest of ``run_id`` (unique-prefix match), or ``None``."""
    run_dir = find_run_dir(runs_dir, run_id)
    if run_dir is None:
        return None
    path = os.path.join(run_dir, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def find_run_dir(runs_dir: str, run_id: str) -> Optional[str]:
    """Resolve a run id (or unique prefix) to its directory."""
    exact = os.path.join(runs_dir, run_id)
    if os.path.isdir(exact):
        return exact
    if not os.path.isdir(runs_dir):
        return None
    matches = [
        name
        for name in sorted(os.listdir(runs_dir))
        if name.startswith(run_id)
        and os.path.isdir(os.path.join(runs_dir, name))
    ]
    if len(matches) == 1:
        return os.path.join(runs_dir, matches[0])
    return None


def list_runs(runs_dir: str) -> List[Dict[str, object]]:
    """Every run's manifest, newest first (by start time).

    Runs whose manifest is unreadable still appear (as
    ``status: "unreadable"``) so damage is visible, not hidden.
    """
    if not os.path.isdir(runs_dir):
        return []
    manifests: List[Dict[str, object]] = []
    for name in os.listdir(runs_dir):
        run_dir = os.path.join(runs_dir, name)
        if not os.path.isdir(run_dir):
            continue
        manifest = load_manifest(runs_dir, name)
        if manifest is None:
            manifest = {"run_id": name, "status": "unreadable"}
        manifests.append(manifest)
    manifests.sort(
        key=lambda m: float(m.get("started_at", 0.0) or 0.0), reverse=True  # type: ignore[arg-type]
    )
    return manifests
