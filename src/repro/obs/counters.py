"""Named counters and gauges with thread-safe aggregation."""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional


class CounterRegistry:
    """Monotonic counters plus last-write-wins gauges.

    Counters accumulate (``memo.run.hit``, ``cache.lru.misses``);
    gauges record a point-in-time value (``corpus.size``).  All methods
    are safe to call from multiple threads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}

    def add(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def add_many(self, values: Mapping[str, float]) -> None:
        with self._lock:
            for name, value in values.items():
                self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def get(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def gauge(self, name: str, default: Optional[float] = None) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name, default)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Copy of all counters and gauges, for flushing to a sink."""
        with self._lock:
            return {"counters": dict(self._counters), "gauges": dict(self._gauges)}

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
