"""Named counters, gauges and histograms with thread-safe aggregation."""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional

from repro.obs.histogram import Histogram


class CounterRegistry:
    """Monotonic counters, gauges, and log-bucketed histograms.

    Counters accumulate (``memo.run.hit``, ``cache.lru.misses``);
    gauges record a point-in-time value (``corpus.size``); histograms
    record latency distributions (span durations, per-cell wall time).
    All methods are safe to call from multiple threads.

    Cross-process merge semantics (worker snapshots folded into the
    parent; see :mod:`repro.parallel`):

    * counters **add** — total work is the sum of worker work;
    * gauges merge **max-wins** (:meth:`merge_gauges`) — a deterministic,
      order-independent fold, unlike last-write-wins which would depend
      on pool completion order;
    * histograms merge by **bucket addition** (:meth:`merge_histograms`)
      — exact, because bucket boundaries are a pure function of the
      value (see :mod:`repro.obs.histogram`).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    def add(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def add_many(self, values: Mapping[str, float]) -> None:
        with self._lock:
            for name, value in values.items():
                self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def merge_gauges(self, gauges: Mapping[str, float]) -> None:
        """Fold another process's gauges in, max-wins per name.

        ``max`` is commutative and associative, so the merged value is
        independent of worker completion order — merging snapshots in
        any order yields the same gauges (last-write-wins would not).
        """
        with self._lock:
            for name, value in gauges.items():
                value = float(value)
                current = self._gauges.get(name)
                self._gauges[name] = value if current is None else max(current, value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the named histogram."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def merge_histograms(self, histograms: Mapping[str, object]) -> None:
        """Fold serialized (or live) histograms in by bucket addition."""
        with self._lock:
            for name, value in histograms.items():
                incoming = (
                    value
                    if isinstance(value, Histogram)
                    else Histogram.from_json(value)  # type: ignore[arg-type]
                )
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram()
                hist.merge(incoming)

    def get(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def gauge(self, name: str, default: Optional[float] = None) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name, default)

    def histogram(self, name: str) -> Optional[Histogram]:
        """Copy of the named histogram (safe to read without the lock)."""
        with self._lock:
            hist = self._histograms.get(name)
            return hist.copy() if hist is not None else None

    def histograms(self) -> Dict[str, Histogram]:
        """Copies of every histogram, keyed by name."""
        with self._lock:
            return {name: hist.copy() for name, hist in self._histograms.items()}

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Copy of all counters, gauges and histograms (wire format).

        Histograms are serialized (:meth:`Histogram.to_json`) so the
        snapshot pickles/JSON-encodes across process boundaries.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.to_json() for name, hist in self._histograms.items()
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
