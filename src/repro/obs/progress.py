"""Terminal progress reporting and stage-time tables.

Deliberately free of imports from the rest of ``repro`` (everything
else imports ``repro.obs``, so this module must stay a leaf).
"""

from __future__ import annotations

import sys
from typing import Dict, Optional, TextIO

from repro.obs.clock import Clock, MonotonicClock
from repro.obs.core import SpanTotal


class ProgressReporter:
    """``[3/12] fig2 (1.24s)`` lines for long sweeps.

    Writes to ``stream`` (default stderr, so tables on stdout stay
    machine-readable).  On a TTY the line is redrawn in place with a
    carriage return; otherwise one line per update is printed, which is
    what CI logs want.  ``enabled=False`` makes every method a no-op.
    """

    def __init__(
        self,
        total: int,
        label: str = "",
        stream: Optional[TextIO] = None,
        enabled: bool = True,
        clock: Optional[Clock] = None,
    ) -> None:
        self.total = int(total)
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = bool(enabled)
        self.clock = clock if clock is not None else MonotonicClock()
        self.done = 0
        self._last = self.clock.now()
        self._interactive = bool(getattr(self.stream, "isatty", lambda: False)())

    def update(self, item: str) -> None:
        """Record one finished item and render the progress line."""
        self.done += 1
        if not self.enabled:
            return
        now = self.clock.now()
        elapsed = now - self._last
        self._last = now
        prefix = f"{self.label}: " if self.label else ""
        line = f"[{self.done}/{self.total}] {prefix}{item} ({elapsed:.2f}s)"
        if self._interactive:
            self.stream.write("\r" + line.ljust(79))
            self.stream.flush()
        else:
            print(line, file=self.stream)

    def finish(self) -> None:
        if self.enabled and self._interactive:
            self.stream.write("\n")
            self.stream.flush()


def format_span_totals(
    totals: Dict[str, SpanTotal],
    total_seconds: Optional[float] = None,
) -> str:
    """Monospace ``stage | calls | seconds | share`` table.

    ``total_seconds`` sets the denominator for the share column
    (typically the wall time of the enclosing span); nested spans
    overlap their children, so shares are per-row, not additive.
    """
    if not totals:
        return "(no spans recorded)"
    rows = sorted(totals.items(), key=lambda kv: kv[1].seconds, reverse=True)
    denominator = total_seconds if total_seconds else max(
        t.seconds for _, t in rows
    ) or 1.0
    name_width = max(len("stage"), max(len(name) for name, _ in rows))
    lines = [f"{'stage'.ljust(name_width)}  {'calls':>6}  {'seconds':>10}  {'share':>6}"]
    lines.append(f"{'-' * name_width}  {'-' * 6}  {'-' * 10}  {'-' * 6}")
    for name, total in rows:
        share = total.seconds / denominator if denominator else 0.0
        lines.append(
            f"{name.ljust(name_width)}  {total.calls:>6d}  "
            f"{total.seconds:>10.4f}  {share:>5.1%}"
        )
    return "\n".join(lines)
