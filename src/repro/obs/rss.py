"""Peak resident-set-size sampling for out-of-core visibility.

The point of the memmap pipeline is that a scale-20 matrix flows
through detection and ordering without its nnz-sized arrays being
resident; ``ru_maxrss`` is the ground truth that it actually happened.
:func:`peak_rss_kb` reads the process high-water mark via
``resource.getrusage`` — monotonic over the process lifetime, so
recording it *at span end* and merging gauges max-wins across
processes (the existing :meth:`CounterRegistry.merge_gauges` rule)
yields the true fleet-wide peak.

``resource`` is POSIX-only; on platforms without it every probe
returns ``None`` and RSS tracking degrades to a silent no-op.
"""

from __future__ import annotations

import sys
from typing import Optional

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

#: Gauge-name prefix for per-span peaks: ``rss.peak_kb.<span name>``.
RSS_GAUGE_PREFIX = "rss.peak_kb"


def peak_rss_kb() -> Optional[int]:
    """Process peak RSS in kilobytes, or ``None`` if unavailable.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS; normalized
    here so gauges are comparable across platforms.
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)
