"""repro.obs — zero-dependency observability for the experiment pipeline.

The subsystem provides four pieces, all stdlib-only:

* hierarchical **spans** (:meth:`Instrumentation.span`) — nested
  wall-time timers with a thread-local context stack;
* named **counters/gauges** (:meth:`Instrumentation.counter`,
  :class:`CounterRegistry`) — memo hits/misses, cache-simulator totals;
* structured **event sinks** (:class:`JsonlSink` and friends) — one
  JSON object per span end / counter flush, tagged with the run id;
* a terminal **progress reporter** (:class:`ProgressReporter`) for
  corpus sweeps.

A process-wide instance is reachable via :func:`get_obs`.  By default
it is *disabled*: spans yield ``None`` without reading the clock and
counters return immediately, so instrumented code pays one attribute
check when observability is off.  Enable it with :func:`configure`
(the CLI does this for ``--log-level``/``--log-file``) or install a
scoped instance with :func:`using`::

    instr = Instrumentation(sink=MemorySink(), clock=FakeClock(tick=1.0))
    with using(instr):
        run_pipeline()
    print(format_span_totals(instr.span_totals()))
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from typing import Iterator, Mapping, Optional

from repro.obs.clock import Clock, FakeClock, MonotonicClock
from repro.obs.core import (
    EVENT_SCHEMA_VERSION,
    Instrumentation,
    Span,
    SpanTotal,
    new_span_id,
)
from repro.obs.counters import CounterRegistry
from repro.obs.histogram import Histogram, format_histograms
from repro.obs.progress import ProgressReporter, format_span_totals
from repro.obs.sink import EventSink, JsonlSink, MemorySink, NullSink, TeeSink

#: Package-wide logger honoring the CLI's ``--log-level``.
logger = logging.getLogger("repro")

_DISABLED = Instrumentation(sink=NullSink(), enabled=False, run_id="disabled")
_current: Instrumentation = _DISABLED


def get_obs() -> Instrumentation:
    """The process-wide instrumentation (a disabled no-op by default)."""
    return _current


def configure(
    sink: Optional[EventSink] = None,
    clock: Optional[Clock] = None,
    run_id: Optional[str] = None,
    tags: Optional[Mapping[str, object]] = None,
    enabled: bool = True,
) -> Instrumentation:
    """Install (and return) a new process-wide instrumentation."""
    global _current
    _current = Instrumentation(
        sink=sink, clock=clock, enabled=enabled, run_id=run_id, tags=tags
    )
    return _current


def reset() -> None:
    """Back to the disabled default (used by tests and CLI teardown)."""
    global _current
    _current = _DISABLED


@contextmanager
def using(instr: Instrumentation) -> Iterator[Instrumentation]:
    """Temporarily install ``instr`` as the process-wide instance."""
    global _current
    previous = _current
    _current = instr
    try:
        yield instr
    finally:
        _current = previous


__all__ = [
    "Clock",
    "CounterRegistry",
    "EVENT_SCHEMA_VERSION",
    "EventSink",
    "FakeClock",
    "Histogram",
    "Instrumentation",
    "JsonlSink",
    "MemorySink",
    "MonotonicClock",
    "NullSink",
    "ProgressReporter",
    "Span",
    "SpanTotal",
    "TeeSink",
    "configure",
    "format_histograms",
    "format_span_totals",
    "get_obs",
    "logger",
    "new_span_id",
    "reset",
    "using",
]
