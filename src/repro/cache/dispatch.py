"""Single public entry point for cache simulation.

:func:`simulate` dispatches one trace replay to either the reference
per-access simulators (:mod:`repro.cache.lru`,
:mod:`repro.cache.belady`) or the vectorized engines
(:mod:`repro.cache.fast`), which produce bit-identical
:class:`~repro.cache.stats.CacheStats`.

Implementation selection (``impl`` argument):

* ``"fast"`` / ``"reference"`` — force one engine.
* ``"auto"`` (default) — pick the fast engine when the geometry is
  wide enough for round-parallel replay to win (the reference loop is
  faster on tiny caches where a few sets serialize the rounds).
* ``None`` — read ``$REPRO_SIM_IMPL`` (same three values), falling
  back to ``"auto"``; this is how an entire experiment run is steered
  without code changes.

Every call emits one ``cache-sim`` observability span tagged with the
policy and the resolved implementation, plus ``cache.<policy>.*``
counters — the same names the reference wrappers have always used, so
profiles stay comparable across implementations.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from repro.cache.belady import _simulate_belady
from repro.cache.config import CacheConfig
from repro.cache.fast import simulate_belady_fast, simulate_lru_fast
from repro.cache.lru import RegionBounds, _simulate_lru
from repro.cache.stats import CacheStats
from repro.errors import ValidationError
from repro.obs import get_obs
from repro.trace.kernel_traces import KernelTrace

#: Environment variable overriding the default implementation choice.
IMPL_ENV_VAR = "REPRO_SIM_IMPL"

IMPLS = ("auto", "fast", "reference")
POLICIES = ("lru", "belady")

#: Below either bound the reference loop beats the vectorized engine:
#: few sets means long sequential per-set chains, and tiny traces are
#: dominated by the bucketing overhead.
_FAST_MIN_SETS = {"lru": 32, "belady": 16}
_FAST_MIN_ACCESSES = 8192


def resolve_impl(impl: Optional[str] = None) -> str:
    """Validate ``impl``, consulting ``$REPRO_SIM_IMPL`` when ``None``."""
    if impl is None:
        impl = os.environ.get(IMPL_ENV_VAR, "").strip().lower() or "auto"
    if impl not in IMPLS:
        raise ValidationError(f"impl must be one of {IMPLS}, got {impl!r}")
    return impl


def _choose_impl(n_accesses: int, config: CacheConfig, policy: str) -> str:
    if n_accesses < _FAST_MIN_ACCESSES:
        return "reference"
    if config.n_sets < _FAST_MIN_SETS[policy]:
        return "reference"
    return "fast"


def simulate(
    trace: Union[np.ndarray, KernelTrace],
    config: CacheConfig,
    *,
    policy: str = "lru",
    regions: Optional[RegionBounds] = None,
    impl: Optional[str] = None,
) -> CacheStats:
    """Simulate ``trace`` (line IDs or a :class:`KernelTrace`) on ``config``.

    When ``trace`` is a :class:`KernelTrace` its region bounds are used
    for the per-region miss split unless ``regions`` is given
    explicitly (pass ``regions=()`` to suppress the split).  ``policy``
    selects LRU or Belady replacement and ``impl`` the engine, as
    documented in the module docstring.
    """
    if isinstance(trace, KernelTrace):
        if regions is None:
            regions = trace.regions
        lines = trace.lines
    else:
        lines = trace
    if policy not in POLICIES:
        raise ValidationError(f"policy must be one of {POLICIES}, got {policy!r}")
    impl = resolve_impl(impl)
    n = int(np.size(lines))
    if impl == "auto":
        impl = _choose_impl(n, config, policy)

    obs = get_obs()
    with obs.span("cache-sim", policy=policy, impl=impl, accesses=n):
        if policy == "lru":
            engine = simulate_lru_fast if impl == "fast" else _simulate_lru
        else:
            engine = simulate_belady_fast if impl == "fast" else _simulate_belady
        stats = engine(lines, config, regions)
    if obs.enabled:
        obs.add_counters(stats.as_counters(prefix=f"cache.{policy}"))
    return stats
