"""Set-associative LRU cache simulation.

Models the A6000 L2 ("an L2 cache with LRU replacement policy (which
closely models A6000's L2 cache)", paper Section VI-B).  The simulator
consumes a line-granular trace (array of line IDs) and returns
:class:`~repro.cache.stats.CacheStats` including dead-line counters.

Implementation notes: each cache set is an ``OrderedDict`` used as an
LRU list (``move_to_end`` on hit, ``popitem(last=False)`` to evict),
whose values record whether the resident line was ever re-referenced —
the dead-line predicate of paper Table III.  The trace is walked in
chunks converted via ``tolist`` so the hot loop handles native ints.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.stats import CacheStats

#: (region name, first line id, one-past-last line id)
RegionBounds = Sequence[Tuple[str, int, int]]

_CHUNK = 1 << 20


def simulate_lru(
    trace: np.ndarray,
    config: CacheConfig,
    regions: Optional[RegionBounds] = None,
) -> CacheStats:
    """Simulate an LRU cache over ``trace`` (array of line IDs).

    .. deprecated::
        Call :func:`repro.cache.simulate` with ``policy="lru"``
        instead; it adds engine dispatch and the observability span.
    """
    warnings.warn(
        "simulate_lru is deprecated; use "
        "repro.cache.simulate(trace, config, policy='lru') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.cache.dispatch import simulate

    return simulate(trace, config, policy="lru", regions=regions, impl="reference")


def _simulate_lru(
    trace: np.ndarray,
    config: CacheConfig,
    regions: Optional[RegionBounds] = None,
) -> CacheStats:
    trace = np.ascontiguousarray(np.asarray(trace, dtype=np.int64))
    n_sets = config.n_sets
    ways = config.ways
    sets: List[OrderedDict] = [OrderedDict() for _ in range(config.n_sets)]

    hits = 0
    evictions = 0
    dead_evictions = 0
    miss_positions: List[int] = []
    miss_append = miss_positions.append

    base = 0
    for start in range(0, trace.size, _CHUNK):
        chunk = trace[start: start + _CHUNK].tolist()
        for offset, line in enumerate(chunk):
            cache_set = sets[line % n_sets]
            if line in cache_set:
                cache_set[line] = True
                cache_set.move_to_end(line)
                hits += 1
            else:
                miss_append(base + offset)
                cache_set[line] = False
                if len(cache_set) > ways:
                    _, reused = cache_set.popitem(last=False)
                    evictions += 1
                    if not reused:
                        dead_evictions += 1
        base += len(chunk)

    dead_at_end = sum(
        1 for cache_set in sets for reused in cache_set.values() if not reused
    )
    stats = CacheStats(
        accesses=int(trace.size),
        hits=hits,
        misses=len(miss_positions),
        evictions=evictions,
        dead_evictions=dead_evictions,
        dead_at_end=dead_at_end,
        line_bytes=config.line_bytes,
        region_misses=classify_misses(trace, miss_positions, regions),
    )
    stats.check_consistency()
    return stats


def classify_misses(
    trace: np.ndarray,
    miss_positions: Sequence[int],
    regions: Optional[RegionBounds],
) -> Dict[str, int]:
    """Split miss counts by address region.

    Regions are half-open line-ID ranges; lines outside every region
    are reported under ``"other"``.
    """
    if not regions:
        return {}
    positions = np.asarray(miss_positions, dtype=np.int64)
    miss_lines = trace[positions] if positions.size else np.empty(0, dtype=np.int64)
    result: Dict[str, int] = {}
    claimed = np.zeros(miss_lines.size, dtype=bool)
    for name, lo, hi in regions:
        inside = (miss_lines >= lo) & (miss_lines < hi)
        result[name] = int(inside.sum())
        claimed |= inside
    unclaimed = int((~claimed).sum())
    if unclaimed:
        result["other"] = unclaimed
    return result


def compulsory_misses(trace: np.ndarray) -> int:
    """Distinct lines in the trace — the compulsory-miss floor."""
    if len(trace) == 0:
        return 0
    return int(np.unique(np.asarray(trace, dtype=np.int64)).size)
