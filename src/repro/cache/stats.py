"""Simulation result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CacheStats:
    """Counters produced by one cache simulation.

    ``region_misses`` maps a region name (e.g. ``"x"``, ``"coords"``)
    to its miss count when the trace carried region boundaries; the
    performance model charges irregular-region misses at reduced DRAM
    efficiency.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Insertions later evicted without a single re-reference.
    dead_evictions: int = 0
    #: Lines still resident at the end that were never re-referenced.
    dead_at_end: int = 0
    line_bytes: int = 32
    region_misses: Dict[str, int] = field(default_factory=dict)

    def as_counters(self, prefix: str = "cache") -> Dict[str, int]:
        """Flat counter dict for the observability layer (repro.obs)."""
        return {
            f"{prefix}.accesses": self.accesses,
            f"{prefix}.hits": self.hits,
            f"{prefix}.misses": self.misses,
            f"{prefix}.evictions": self.evictions,
            f"{prefix}.dead_evictions": self.dead_evictions,
            f"{prefix}.dead_at_end": self.dead_at_end,
            f"{prefix}.traffic_bytes": self.traffic_bytes,
        }

    @property
    def insertions(self) -> int:
        """Every miss inserts a line."""
        return self.misses

    @property
    def dead_lines(self) -> int:
        return self.dead_evictions + self.dead_at_end

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def dead_line_fraction(self) -> float:
        """Fraction of inserted lines never reused (paper Table III)."""
        if self.insertions == 0:
            return 0.0
        return self.dead_lines / self.insertions

    @property
    def traffic_bytes(self) -> int:
        """DRAM read traffic: one line fetch per miss."""
        return self.misses * self.line_bytes

    def check_consistency(self) -> None:
        """Raise if the counters violate basic accounting identities."""
        if self.hits + self.misses != self.accesses:
            raise AssertionError(
                f"hits ({self.hits}) + misses ({self.misses}) != accesses ({self.accesses})"
            )
        if self.evictions > self.misses:
            raise AssertionError(
                f"evictions ({self.evictions}) exceed insertions ({self.misses})"
            )
        if self.dead_evictions > self.evictions:
            raise AssertionError(
                f"dead evictions ({self.dead_evictions}) exceed evictions ({self.evictions})"
            )
        if self.region_misses and sum(self.region_misses.values()) != self.misses:
            raise AssertionError(
                f"region miss split {self.region_misses} does not sum to misses ({self.misses})"
            )
