"""Belady (OPT) replacement simulation (paper Figure 8).

Belady's policy evicts the resident line whose next use lies farthest
in the future — an oracular upper bound on replacement quality.  The
paper uses it to quantify the remaining locality headroom after
reordering: the LRU-vs-Belady traffic gap is smallest (7.6%) for
RABBIT++ ordered matrices.

The offline next-use index is computed vectorially (lexsort by line
then position); the simulation keeps, per set, a dict of resident
lines with their next-use time plus a lazy max-heap for eviction.
"""

from __future__ import annotations

import heapq
import warnings
from typing import List, Optional

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.lru import RegionBounds, classify_misses
from repro.cache.stats import CacheStats


def next_use_index(trace: np.ndarray) -> np.ndarray:
    """For every access, the position of the next access to its line.

    Positions with no future access get ``trace.size`` (an "infinite"
    sentinel larger than any valid position).
    """
    trace = np.asarray(trace, dtype=np.int64)
    n = trace.size
    next_use = np.full(n, n, dtype=np.int64)
    if n == 0:
        return next_use
    order = np.lexsort((np.arange(n), trace))
    same_line = trace[order][1:] == trace[order][:-1]
    next_use[order[:-1][same_line]] = order[1:][same_line]
    return next_use


def simulate_belady(
    trace: np.ndarray,
    config: CacheConfig,
    regions: Optional[RegionBounds] = None,
) -> CacheStats:
    """Simulate a cache with Belady's optimal replacement.

    .. deprecated::
        Call :func:`repro.cache.simulate` with ``policy="belady"``
        instead; it adds engine dispatch and the observability span.
    """
    warnings.warn(
        "simulate_belady is deprecated; use "
        "repro.cache.simulate(trace, config, policy='belady') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.cache.dispatch import simulate

    return simulate(trace, config, policy="belady", regions=regions, impl="reference")


def _simulate_belady(
    trace: np.ndarray,
    config: CacheConfig,
    regions: Optional[RegionBounds] = None,
) -> CacheStats:
    trace = np.ascontiguousarray(np.asarray(trace, dtype=np.int64))
    next_use = next_use_index(trace)
    n_sets = config.n_sets
    ways = config.ways
    resident: List[dict] = [dict() for _ in range(n_sets)]  # line -> (next_use, reused)
    heaps: List[list] = [[] for _ in range(n_sets)]

    hits = 0
    evictions = 0
    dead_evictions = 0
    miss_positions: List[int] = []
    miss_append = miss_positions.append

    trace_list = trace.tolist()
    next_list = next_use.tolist()
    for position, line in enumerate(trace_list):
        set_id = line % n_sets
        lines = resident[set_id]
        future = next_list[position]
        entry = lines.get(line)
        if entry is not None:
            hits += 1
            lines[line] = (future, True)
            heapq.heappush(heaps[set_id], (-future, line))
        else:
            miss_append(position)
            lines[line] = (future, False)
            heapq.heappush(heaps[set_id], (-future, line))
            if len(lines) > ways:
                # The new line is itself a candidate: evicting it
                # immediately models Belady's bypass decision.
                evictions += 1
                if _evict_farthest(lines, heaps[set_id]):
                    dead_evictions += 1

    dead_at_end = sum(
        1 for lines in resident for _, reused in lines.values() if not reused
    )
    stats = CacheStats(
        accesses=int(trace.size),
        hits=hits,
        misses=len(miss_positions),
        evictions=evictions,
        dead_evictions=dead_evictions,
        dead_at_end=dead_at_end,
        line_bytes=config.line_bytes,
        region_misses=classify_misses(trace, miss_positions, regions),
    )
    stats.check_consistency()
    return stats


def _evict_farthest(lines: dict, heap: list) -> bool:
    """Evict the farthest-next-use resident line; True if it was dead.

    Heap entries are lazy: a popped entry is valid only when the line
    is still resident with the same next-use stamp.
    """
    while heap:
        neg_future, line = heapq.heappop(heap)
        entry = lines.get(line)
        if entry is None or entry[0] != -neg_future:
            continue  # stale: line evicted earlier or re-accessed since
        del lines[line]
        return not entry[1]
    raise AssertionError("eviction requested from an empty candidate heap")
