"""Trace-driven cache simulator (paper Section VI-B).

The paper validates its analysis with a simulator of the A6000's L2
("within 4% of the real-GPU numbers"); this package is that simulator.
It consumes line-granular access traces (see :mod:`repro.trace`),
models a set-associative cache with LRU or Belady (optimal)
replacement, and reports hits/misses, DRAM traffic, per-region miss
splits, and dead-line statistics (Table III).
"""

from repro.cache.config import CacheConfig
from repro.cache.lru import simulate_lru
from repro.cache.belady import simulate_belady
from repro.cache.hierarchy import HierarchyStats, simulate_hierarchy
from repro.cache.stats import CacheStats

__all__ = [
    "CacheConfig",
    "CacheStats",
    "HierarchyStats",
    "simulate_belady",
    "simulate_hierarchy",
    "simulate_lru",
]
