"""Trace-driven cache simulator (paper Section VI-B).

The paper validates its analysis with a simulator of the A6000's L2
("within 4% of the real-GPU numbers"); this package is that simulator.
It consumes line-granular access traces (see :mod:`repro.trace`),
models a set-associative cache with LRU or Belady (optimal)
replacement, and reports hits/misses, DRAM traffic, per-region miss
splits, and dead-line statistics (Table III).

This module is the public simulator surface:

* :func:`simulate` — the single entry point; dispatches between the
  reference per-access implementations and the numpy-vectorized
  engines in :mod:`repro.cache.fast` (``impl="fast"|"reference"|
  "auto"``, env override ``REPRO_SIM_IMPL``).
* :class:`CacheConfig` / :class:`CacheStats` — geometry in, counters
  out.

``simulate_lru`` / ``simulate_belady`` remain importable as deprecated
aliases for the reference implementations; new code should call
``simulate(trace, config, policy=...)`` instead.
"""

from repro.cache.config import CacheConfig
from repro.cache.dispatch import IMPLS, POLICIES, resolve_impl, simulate
from repro.cache.lru import classify_misses, compulsory_misses, simulate_lru
from repro.cache.belady import next_use_index, simulate_belady
from repro.cache.hierarchy import HierarchyStats, simulate_hierarchy
from repro.cache.stats import CacheStats

__all__ = [
    "CacheConfig",
    "CacheStats",
    "HierarchyStats",
    "IMPLS",
    "POLICIES",
    "classify_misses",
    "compulsory_misses",
    "next_use_index",
    "resolve_impl",
    "simulate",
    "simulate_belady",
    "simulate_hierarchy",
    "simulate_lru",
]
