"""Vectorized cache simulators (numpy, no per-access Python loop).

Drop-in fast paths for the reference simulators in
:mod:`repro.cache.lru` and :mod:`repro.cache.belady`: identical
``CacheStats`` (bit-for-bit, including dead-line and per-region miss
counters), ~5x+ faster on realistic traces.  The reference
implementations stay in-tree as the oracle; the randomized
differential suite (``tests/test_cache_fast_differential.py``) pins
the equivalence.

Callers should not import this package directly — go through
:func:`repro.cache.simulate`, which dispatches between the fast and
reference engines (``impl="fast"|"reference"|"auto"``, env override
``REPRO_SIM_IMPL``).
"""

from repro.cache.fast.belady import simulate_belady_fast
from repro.cache.fast.lru import simulate_lru_fast

__all__ = ["simulate_belady_fast", "simulate_lru_fast"]
