"""Trace bucketing for the vectorized simulators.

Set-associative replacement is sequential *within* a set but
independent *across* sets, so the trace is grouped by cache set and
replayed in rounds: round ``r`` performs the ``r``-th access of every
set that still has one, each round a handful of numpy array
operations over the active sets.  Two observations make this fast:

* **Run collapse.**  Within one set's sub-trace, consecutive accesses
  to the same line are guaranteed hits under both LRU and Belady (no
  other access to the set intervenes, so the line cannot have been
  evicted).  Each run is replayed as a single access carrying its
  original first position (the only position that can miss) and a
  ``multi`` flag (the line was re-referenced, for dead-line
  accounting).  Real kernel traces collapse ~5-10x.

* **Active-prefix schedule.**  Sets are ranked by descending run
  count, so round ``r`` touches the contiguous prefix of sets whose
  count exceeds ``r`` — no masking, no compaction per round.

The group-by-set step is a stable counting sort implemented as one
``np.sort`` over packed ``(set_id << shift) | position`` keys, which
is considerably faster than ``np.argsort(..., kind="stable")``.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np


class BucketPlan(NamedTuple):
    """Per-run arrays (natural set order) plus the round schedule."""

    #: line id of each collapsed run
    lines: np.ndarray
    #: original trace position of each run's first access
    pos_first: np.ndarray
    #: original trace position of each run's last access
    pos_last: np.ndarray
    #: run length > 1 (the inserted line was re-referenced in-run)
    multi: np.ndarray
    #: start offset of each set's runs within the bucketed arrays
    set_offsets: np.ndarray
    #: set ids ranked by descending run count (active-prefix order)
    set_rank: np.ndarray
    #: active[k] = number of sets with at least k runs
    active: np.ndarray
    #: number of rounds (max runs in any one set)
    rounds: int


def bucket_trace(trace: np.ndarray, n_sets: int) -> BucketPlan:
    """Group ``trace`` by cache set and collapse within-set runs."""
    n = trace.size
    shift = max(1, int(n - 1).bit_length())
    if (n_sets - 1).bit_length() + shift <= 62:
        # Stable counting sort via packed keys: the position in the low
        # bits makes equal-set keys compare by position, i.e. stable.
        key = trace % n_sets
        key <<= shift
        key += np.arange(n, dtype=np.int64)
        key.sort()
        order = key & ((1 << shift) - 1)
        key >>= shift
        bucketed_sets = key
    else:  # pragma: no cover - needs a trace too large to allocate here
        set_ids = trace % n_sets
        order = np.argsort(set_ids, kind="stable")
        bucketed_sets = set_ids[order]
    if -(2**31) <= int(trace.min()) and int(trace.max()) < 2**31:
        bucketed = trace.astype(np.int32)[order]
    else:
        bucketed = trace[order]

    # A run starts where either the line or the set changes.
    start = np.empty(n, dtype=bool)
    start[0] = True
    np.not_equal(bucketed[1:], bucketed[:-1], out=start[1:])
    start[1:] |= bucketed_sets[1:] != bucketed_sets[:-1]
    idx_start = np.nonzero(start)[0]
    n_runs = idx_start.size
    run_len = np.empty(n_runs, dtype=np.int64)
    run_len[:-1] = np.diff(idx_start)
    run_len[-1] = n - idx_start[-1]

    lines = bucketed[idx_start]
    pos_first = order[idx_start]
    pos_last = order[idx_start + run_len - 1]
    multi = run_len > 1

    counts = np.bincount(bucketed_sets[idx_start], minlength=n_sets)
    offsets = np.zeros(n_sets, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    set_rank = np.argsort(-counts, kind="stable")
    counts_ranked = counts[set_rank]
    rounds = int(counts_ranked[0]) if n_runs else 0
    hist = np.bincount(counts_ranked[counts_ranked > 0], minlength=rounds + 2)
    active = np.cumsum(hist[::-1])[::-1]
    return BucketPlan(
        lines, pos_first, pos_last, multi, offsets, set_rank, active, rounds
    )


def compact_line_ids(lines: np.ndarray) -> "tuple[np.ndarray, int]":
    """Map line ids to a dense non-negative range for table indexing.

    Returns ``(ids, table_size)``.  The cheap path subtracts the
    minimum; when the id range is much larger than the trace (sparse
    address spaces) the ids are densified with ``np.unique``, whose
    sorted output preserves the line-id order that Belady's tie-break
    compares.
    """
    lo = int(lines.min())
    span = int(lines.max()) - lo + 1
    if span <= max(1 << 20, 8 * lines.size):
        return lines - lo, span
    uniq, ids = np.unique(lines, return_inverse=True)
    return ids, int(uniq.size)
