"""Vectorized Belady (OPT) replacement simulation.

Replays the bucketed trace (see :mod:`repro.cache.fast.bucket`) with
per-way next-use stamps instead of ages: the victim in a full set is
the resident line with the farthest next use, ties broken toward the
smallest line id — exactly the order the reference lazy-heap pops
``(-next_use, line)`` tuples.  The incoming line itself competes for
eviction (Belady bypass): a single-access run is bypassed when its
next use is strictly farthest, or ties while its line id sorts first.
Runs of length > 1 are never bypassed — their in-run re-reference is
the nearest possible future in the set.

Produces counters bit-identical to
:func:`repro.cache.belady.simulate_belady`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.belady import next_use_index
from repro.cache.config import CacheConfig
from repro.cache.fast.bucket import bucket_trace, compact_line_ids
from repro.cache.lru import RegionBounds, classify_misses
from repro.cache.stats import CacheStats

_INT64_MAX = np.iinfo(np.int64).max


def simulate_belady_fast(
    trace: np.ndarray,
    config: CacheConfig,
    regions: Optional[RegionBounds] = None,
) -> CacheStats:
    """Vectorized equivalent of :func:`repro.cache.belady.simulate_belady`."""
    trace = np.ascontiguousarray(np.asarray(trace, dtype=np.int64))
    if trace.size == 0:
        miss_positions = np.empty(0, dtype=np.int64)
        hits = evictions = dead_evictions = dead_at_end = 0
    else:
        hits, evictions, dead_evictions, dead_at_end, miss_positions = _belady_core(
            trace, config.n_sets, config.ways
        )
    stats = CacheStats(
        accesses=int(trace.size),
        hits=hits,
        misses=int(miss_positions.size),
        evictions=evictions,
        dead_evictions=dead_evictions,
        dead_at_end=dead_at_end,
        line_bytes=config.line_bytes,
        region_misses=classify_misses(trace, miss_positions, regions),
    )
    stats.check_consistency()
    return stats


def _belady_core(trace: np.ndarray, n_sets: int, ways: int):
    plan = bucket_trace(trace, n_sets)
    ids, table_size = compact_line_ids(plan.lines)
    # Next use *after* a collapsed run is the next use of its last
    # access; the in-run accesses are guaranteed hits either way.
    next_use = next_use_index(trace)
    run_future = next_use[plan.pos_last]
    pos_first = plan.pos_first
    multi = plan.multi

    tags = np.full(n_sets * ways, -1, dtype=np.int64)
    way_future = np.full(n_sets * ways, -1, dtype=np.int64)
    reused = np.zeros(n_sets * ways, dtype=bool)
    occupancy = np.zeros(n_sets, dtype=np.int64)
    way_of_line = np.full(table_size, -1, dtype=np.int64)
    col_starts = plan.set_offsets[plan.set_rank]
    row_base = plan.set_rank * ways
    way_range = np.arange(ways)

    miss_positions = np.empty(ids.size, dtype=np.int64)
    n_miss = 0
    evictions = 0
    dead_evictions = 0
    for r in range(plan.rounds):
        n_active = int(plan.active[r + 1])
        idx = col_starts[:n_active] + r
        line = ids[idx]
        future = run_future[idx]
        way = way_of_line[line]
        hit = way >= 0
        base = row_base[:n_active]
        flat_hit = base[hit] + way[hit]
        way_future[flat_hit] = future[hit]
        reused[flat_hit] = True
        miss_row = np.nonzero(~hit)[0]
        if not miss_row.size:
            continue
        miss_idx = idx[miss_row]
        miss_positions[n_miss:n_miss + miss_row.size] = pos_first[miss_idx]
        n_miss += miss_row.size
        miss_base = base[miss_row]
        miss_sets = plan.set_rank[:n_active][miss_row]
        occupied = occupancy[miss_sets]
        filling = occupied < ways
        if filling.any():
            fill_row = np.nonzero(filling)[0]
            fill_way = occupied[fill_row]
            flat_fill = miss_base[fill_row] + fill_way
            fill_line = line[miss_row[fill_row]]
            tags[flat_fill] = fill_line
            way_future[flat_fill] = future[miss_row[fill_row]]
            reused[flat_fill] = multi[miss_idx[fill_row]]
            way_of_line[fill_line] = fill_way
            occupancy[miss_sets[fill_row]] += 1
        full_row = np.nonzero(~filling)[0]
        if not full_row.size:
            continue
        contender = miss_row[full_row]
        full_base = miss_base[full_row]
        block = full_base[:, None] + way_range
        futures = way_future[block]
        farthest = futures.max(axis=1)
        candidate_tags = np.where(
            futures == farthest[:, None], tags[block], _INT64_MAX
        )
        victim = candidate_tags.argmin(axis=1)
        flat_victim = full_base + victim
        future_in = future[contender]
        line_in = line[contender]
        tag_victim = tags[flat_victim]
        single = ~multi[idx[contender]]
        bypass = single & (
            (future_in > farthest)
            | ((future_in == farthest) & (line_in < tag_victim))
        )
        evictions += full_row.size
        # A bypassed insertion is evicted immediately, never reused.
        dead_evictions += int(np.count_nonzero(bypass))
        replace = np.nonzero(~bypass)[0]
        if replace.size:
            flat_replace = flat_victim[replace]
            dead_evictions += int(np.count_nonzero(~reused[flat_replace]))
            way_of_line[tags[flat_replace]] = -1
            tags[flat_replace] = line_in[replace]
            way_future[flat_replace] = future_in[replace]
            reused[flat_replace] = multi[idx[contender[replace]]]
            way_of_line[line_in[replace]] = victim[replace]
    dead_at_end = int(np.count_nonzero((tags >= 0) & ~reused))
    return (
        int(trace.size) - n_miss,
        evictions,
        dead_evictions,
        dead_at_end,
        miss_positions[:n_miss],
    )
