"""Vectorized set-associative LRU simulation.

State lives in flat ``(n_sets * ways)`` arrays: the resident line per
way (``tags``), its last-touch round (``age``, ``-1`` for empty ways,
which doubles as the fill-before-evict rule since ``argmin`` picks
empty ways first) and a re-reference bitmap (``reused``) backing the
dead-line counters of paper Table III.  Hits are detected through a
presence table mapping line id to its way — each line belongs to
exactly one set, so one gather replaces a ``ways``-wide tag compare.

Produces counters bit-identical to :func:`repro.cache.lru.simulate_lru`
(see ``tests/test_cache_fast_differential.py``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.fast.bucket import bucket_trace, compact_line_ids
from repro.cache.lru import RegionBounds, classify_misses
from repro.cache.stats import CacheStats


def simulate_lru_fast(
    trace: np.ndarray,
    config: CacheConfig,
    regions: Optional[RegionBounds] = None,
) -> CacheStats:
    """Vectorized equivalent of :func:`repro.cache.lru.simulate_lru`."""
    trace = np.ascontiguousarray(np.asarray(trace, dtype=np.int64))
    if trace.size == 0:
        miss_positions = np.empty(0, dtype=np.int64)
        hits = evictions = dead_evictions = dead_at_end = 0
    else:
        hits, evictions, dead_evictions, dead_at_end, miss_positions = _lru_core(
            trace, config.n_sets, config.ways
        )
    stats = CacheStats(
        accesses=int(trace.size),
        hits=hits,
        misses=int(miss_positions.size),
        evictions=evictions,
        dead_evictions=dead_evictions,
        dead_at_end=dead_at_end,
        line_bytes=config.line_bytes,
        region_misses=classify_misses(trace, miss_positions, regions),
    )
    stats.check_consistency()
    return stats


def _lru_core(trace: np.ndarray, n_sets: int, ways: int):
    plan = bucket_trace(trace, n_sets)
    ids, table_size = compact_line_ids(plan.lines)
    pos_first = plan.pos_first
    multi = plan.multi

    tags = np.full(n_sets * ways, -1, dtype=np.int64)
    age = np.full(n_sets * ways, -1, dtype=np.int64)
    reused = np.zeros(n_sets * ways, dtype=bool)
    way_of_line = np.full(table_size, -1, dtype=np.int64)
    col_starts = plan.set_offsets[plan.set_rank]
    row_base = plan.set_rank * ways
    way_range = np.arange(ways)

    miss_positions = np.empty(ids.size, dtype=np.int64)
    n_miss = 0
    evictions = 0
    dead_evictions = 0
    for r in range(plan.rounds):
        n_active = int(plan.active[r + 1])
        idx = col_starts[:n_active] + r
        line = ids[idx]
        way = way_of_line[line]
        hit = way >= 0
        base = row_base[:n_active]
        flat_hit = base[hit] + way[hit]
        age[flat_hit] = r
        reused[flat_hit] = True
        miss_row = np.nonzero(~hit)[0]
        if miss_row.size:
            miss_idx = idx[miss_row]
            miss_positions[n_miss:n_miss + miss_row.size] = pos_first[miss_idx]
            n_miss += miss_row.size
            miss_base = base[miss_row]
            victim = np.argmin(age[miss_base[:, None] + way_range], axis=1)
            flat_victim = miss_base + victim
            old_tag = tags[flat_victim]
            evicted = age[flat_victim] >= 0
            n_evicted = int(np.count_nonzero(evicted))
            if n_evicted:
                evictions += n_evicted
                dead_evictions += int(
                    np.count_nonzero(evicted & ~reused[flat_victim])
                )
                way_of_line[old_tag[evicted]] = -1
            miss_line = line[miss_row]
            tags[flat_victim] = miss_line
            age[flat_victim] = r
            reused[flat_victim] = multi[miss_idx]
            way_of_line[miss_line] = victim
    dead_at_end = int(np.count_nonzero((age >= 0) & ~reused))
    return (
        int(trace.size) - n_miss,
        evictions,
        dead_evictions,
        dead_at_end,
        miss_positions[:n_miss],
    )
