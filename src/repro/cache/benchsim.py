"""Reference-vs-fast simulator micro-benchmark (``repro bench-sim``).

Builds a fixed, seeded benchmark workload — an RMAT graph traced with
the SpMV-CSR kernel against the *unscaled* A6000 L2 geometry (6 MB,
12288 sets, the configuration the paper simulates) — and times each
replacement policy under both simulator implementations.  Every fast
run is also checked for ``CacheStats`` equality against its reference
run, so the benchmark doubles as an end-to-end differential test on a
realistic trace.

The ``smoke`` variant (CI) shrinks the graph and the cache so the
whole comparison completes in seconds.  Results serialize to the
``BENCH_sim.json`` schema emitted by the benchmark harness
(``benchmarks/test_bench_sim.py``) and the ``--json`` CLI flag.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cache.config import CacheConfig
from repro.cache.dispatch import POLICIES, simulate
from repro.errors import ValidationError
from repro.obs import get_obs
from repro.trace.kernel_traces import KernelTrace
from repro.trace.kernelspec import KernelSpec

#: RMAT parameters of the two benchmark workloads.
BENCH_GRAPH = {"scale": 16, "edge_factor": 16, "seed": 7}
SMOKE_GRAPH = {"scale": 12, "edge_factor": 8, "seed": 7}

#: SpGEMM workloads use smaller seeded graphs: the Gustavson trace
#: length scales with the multiply's flop count (~nnz x average
#: degree), so an SpMV-sized RMAT would produce a trace two orders of
#: magnitude longer than the SpMV bench instead of a comparable one.
SPGEMM_BENCH_GRAPH = {"scale": 11, "edge_factor": 8, "seed": 7}
SPGEMM_SMOKE_GRAPH = {"scale": 9, "edge_factor": 8, "seed": 7}

#: Smoke cache: 256 KiB / 32 B lines / 16 ways -> 512 sets.
SMOKE_CACHE = {"capacity_bytes": 256 * 1024, "line_bytes": 32, "ways": 16}


@dataclass(frozen=True)
class BenchResult:
    """One (policy, impl) timing."""

    policy: str
    impl: str
    seconds: float
    accesses_per_s: float

    def to_json(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "impl": self.impl,
            "seconds": self.seconds,
            "accesses_per_s": self.accesses_per_s,
        }


def build_bench_workload(
    smoke: bool = False, kernel: str = "spmv-csr"
) -> Tuple[KernelTrace, CacheConfig]:
    """The seeded benchmark trace and cache geometry for ``kernel``."""
    from repro.gpu.specs import A6000
    from repro.graphs.generators.powerlaw import rmat
    from repro.sparse.convert import coo_to_csr

    spec = KernelSpec.coerce(kernel)
    if spec.kind == "spgemm-csr":
        params = SPGEMM_SMOKE_GRAPH if smoke else SPGEMM_BENCH_GRAPH
    else:
        params = SMOKE_GRAPH if smoke else BENCH_GRAPH
    with get_obs().span("bench-sim-setup", kernel=spec.name, **params):
        coo = rmat(directed=False, **params)
        csr = coo_to_csr(coo)
        config = CacheConfig(**SMOKE_CACHE) if smoke else A6000.cache_config()
        trace = spec.build_trace(csr, line_bytes=config.line_bytes)
    return trace, config


def run_bench(
    trace: KernelTrace,
    config: CacheConfig,
    policies: Sequence[str] = POLICIES,
    repeats: int = 1,
    clock: Optional[Callable[[], float]] = None,
) -> Dict[str, object]:
    """Time reference vs fast on ``trace``; verify identical stats.

    Returns the ``BENCH_sim.json`` payload: per-(policy, impl) timings
    in accesses/sec, per-policy fast-over-reference speedups, and a
    ``stats_match`` flag (a mismatch raises instead — the benchmark
    must not report throughput for a wrong answer).
    """
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    clock = clock or time.perf_counter
    n = int(trace.lines.size)
    results: List[BenchResult] = []
    speedups: Dict[str, float] = {}
    for policy in policies:
        by_impl = {}
        for impl in ("reference", "fast"):
            best = None
            stats = None
            for _ in range(repeats):
                start = clock()
                stats = simulate(trace, config, policy=policy, impl=impl)
                elapsed = clock() - start
                best = elapsed if best is None else min(best, elapsed)
            by_impl[impl] = (best, stats)
            results.append(
                BenchResult(
                    policy=policy,
                    impl=impl,
                    seconds=best,
                    accesses_per_s=n / best if best > 0 else float("inf"),
                )
            )
        ref_seconds, ref_stats = by_impl["reference"]
        fast_seconds, fast_stats = by_impl["fast"]
        if ref_stats != fast_stats:
            raise AssertionError(
                f"fast {policy} stats diverge from reference on the bench "
                f"trace: {fast_stats!r} != {ref_stats!r}"
            )
        speedups[policy] = ref_seconds / fast_seconds if fast_seconds > 0 else float("inf")
    return {
        "workload": {
            "kernel": trace.kernel,
            "accesses": n,
            "n_rows": trace.n_rows,
            "nnz": trace.nnz,
            "capacity_bytes": config.capacity_bytes,
            "line_bytes": config.line_bytes,
            "ways": config.ways,
            "n_sets": config.n_sets,
        },
        "results": [result.to_json() for result in results],
        "speedups": speedups,
        "stats_match": True,
    }
