"""Cache geometry configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a set-associative cache.

    Attributes
    ----------
    capacity_bytes:
        Total data capacity.
    line_bytes:
        Line (sector) size.  The A6000's L2 transacts 32-byte sectors,
        which is the default used throughout the experiments.
    ways:
        Associativity.  ``capacity_bytes / (line_bytes * ways)`` must be
        a power-of-two set count.
    """

    capacity_bytes: int
    line_bytes: int = 32
    ways: int = 16

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ValidationError(
                f"cache geometry must be positive: {self.capacity_bytes}B, "
                f"{self.line_bytes}B lines, {self.ways} ways"
            )
        if not _is_power_of_two(self.line_bytes):
            raise ValidationError(f"line_bytes must be a power of two, got {self.line_bytes}")
        total_lines = self.capacity_bytes // self.line_bytes
        if total_lines * self.line_bytes != self.capacity_bytes:
            raise ValidationError(
                f"capacity ({self.capacity_bytes}) must be a multiple of line size ({self.line_bytes})"
            )
        if total_lines % self.ways != 0:
            raise ValidationError(
                f"capacity/line_bytes ({total_lines}) must be divisible by ways ({self.ways})"
            )

    @property
    def n_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.ways

    @property
    def set_mask(self) -> int:
        """Bit mask for set selection; only valid for power-of-two sets.

        Real GPU L2s (e.g. the A6000: 12288 sets) are not power-of-two;
        the simulators therefore index sets with ``line % n_sets``,
        which this property complements for the common power-of-two
        fast path in tests.
        """
        return self.n_sets - 1

    @property
    def has_power_of_two_sets(self) -> bool:
        return _is_power_of_two(self.n_sets)
