"""Two-level (L1 + L2) cache hierarchy simulation.

Rabbit Order's stated design goal is to map *hierarchical* communities
onto the multi-level cache hierarchy: innermost communities to the
small fast cache, outer communities to the larger one (paper Section
V-A).  The single-level simulator cannot observe that property; this
module simulates an inclusive two-level LRU hierarchy so the
hierarchy-mapping claim becomes measurable (see
``repro.experiments.hierarchy_ablation``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.stats import CacheStats
from repro.errors import ValidationError

_CHUNK = 1 << 20


@dataclass
class HierarchyStats:
    """Per-level statistics of a two-level simulation.

    ``l1`` counts every trace access; ``l2`` only sees L1 misses, so
    ``l2.accesses == l1.misses``.  DRAM traffic is ``l2.traffic_bytes``.
    """

    l1: CacheStats
    l2: CacheStats

    @property
    def l1_hit_rate(self) -> float:
        return self.l1.hit_rate

    @property
    def l2_hit_rate(self) -> float:
        return self.l2.hit_rate

    @property
    def dram_traffic_bytes(self) -> int:
        return self.l2.traffic_bytes

    def check_consistency(self) -> None:
        self.l1.check_consistency()
        self.l2.check_consistency()
        if self.l2.accesses != self.l1.misses:
            raise AssertionError(
                f"L2 accesses ({self.l2.accesses}) != L1 misses ({self.l1.misses})"
            )


def simulate_hierarchy(
    trace: np.ndarray,
    l1_config: CacheConfig,
    l2_config: CacheConfig,
) -> HierarchyStats:
    """Simulate an inclusive L1 -> L2 LRU hierarchy over ``trace``.

    Both levels must share a line size (refills are line-granular).
    Inclusive means every L1 insert also touches L2; L2 evictions do
    not back-invalidate L1 (the common GPU-L1/L2 arrangement, where L1
    is small enough that stale lines age out quickly).
    """
    if l1_config.line_bytes != l2_config.line_bytes:
        raise ValidationError(
            f"line sizes differ: L1 {l1_config.line_bytes} vs L2 {l2_config.line_bytes}"
        )
    if l1_config.capacity_bytes > l2_config.capacity_bytes:
        raise ValidationError(
            "L1 must not be larger than L2 "
            f"({l1_config.capacity_bytes} > {l2_config.capacity_bytes})"
        )
    trace = np.ascontiguousarray(np.asarray(trace, dtype=np.int64))

    l1_sets: List[OrderedDict] = [OrderedDict() for _ in range(l1_config.n_sets)]
    l2_sets: List[OrderedDict] = [OrderedDict() for _ in range(l2_config.n_sets)]
    l1_sets_count, l1_ways = l1_config.n_sets, l1_config.ways
    l2_sets_count, l2_ways = l2_config.n_sets, l2_config.ways

    l1_hits = l1_evict = l1_dead = 0
    l2_hits = l2_miss = l2_evict = l2_dead = 0
    l1_miss = 0

    for start in range(0, trace.size, _CHUNK):
        for line in trace[start: start + _CHUNK].tolist():
            l1_set = l1_sets[line % l1_sets_count]
            if line in l1_set:
                l1_set[line] = True
                l1_set.move_to_end(line)
                l1_hits += 1
                continue
            l1_miss += 1
            l1_set[line] = False
            if len(l1_set) > l1_ways:
                _, reused = l1_set.popitem(last=False)
                l1_evict += 1
                if not reused:
                    l1_dead += 1
            # L1 miss falls through to L2.
            l2_set = l2_sets[line % l2_sets_count]
            if line in l2_set:
                l2_set[line] = True
                l2_set.move_to_end(line)
                l2_hits += 1
            else:
                l2_miss += 1
                l2_set[line] = False
                if len(l2_set) > l2_ways:
                    _, reused = l2_set.popitem(last=False)
                    l2_evict += 1
                    if not reused:
                        l2_dead += 1

    l1_dead_end = sum(
        1 for s in l1_sets for reused in s.values() if not reused
    )
    l2_dead_end = sum(
        1 for s in l2_sets for reused in s.values() if not reused
    )
    stats = HierarchyStats(
        l1=CacheStats(
            accesses=int(trace.size),
            hits=l1_hits,
            misses=l1_miss,
            evictions=l1_evict,
            dead_evictions=l1_dead,
            dead_at_end=l1_dead_end,
            line_bytes=l1_config.line_bytes,
        ),
        l2=CacheStats(
            accesses=l1_miss,
            hits=l2_hits,
            misses=l2_miss,
            evictions=l2_evict,
            dead_evictions=l2_dead,
            dead_at_end=l2_dead_end,
            line_bytes=l2_config.line_bytes,
        ),
    )
    stats.check_consistency()
    return stats
