"""Cache-blocked (column-tiled) SpMV trace.

The paper's related-work section contrasts reordering with
tiling/blocking optimizations that "divide the matrix into smaller
sub-matrices so as to reduce the range of irregular accesses" and
notes that combining RABBIT++ with tiling is future work (Section
VII).  This module implements that experiment's substrate: a
column-tiled CSR execution model where

* the column range is split into ``n_tiles`` equal tiles;
* non-zeros are stored tile-major (coords/values stream once overall);
* each tile keeps its own row-offset array (the classic tiled-CSR
  storage overhead: ``n_tiles * (n_rows + 1)`` offsets);
* the input-vector gathers of a tile stay inside the tile's column
  range (bounded irregular working set);
* the output vector is re-walked once per tile that touches it (the
  partial-sum re-streaming cost of tiling).

Traffic therefore trades X-gather locality against Y/row-offset
re-streaming — precisely the trade reordering avoids by fixing
locality in place.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sparse.csr import CSRMatrix
from repro.trace.layout import AddressSpace
from repro.trace.kernel_traces import KernelTrace, _collapse


def spmv_csr_tiled_trace(
    matrix: CSRMatrix,
    n_tiles: int,
    element_bytes: int = 4,
    line_bytes: int = 32,
) -> KernelTrace:
    """Trace of column-tiled SpMV.  ``n_tiles = 1`` degenerates to the
    plain row-major walk (modulo the row-offset layout)."""
    if n_tiles < 1:
        raise ValidationError(f"n_tiles must be >= 1, got {n_tiles}")
    n = matrix.n_rows
    nnz = matrix.nnz
    space = AddressSpace(line_bytes)
    # Per-tile row offsets, laid out tile-major.
    ro = space.allocate("row_offsets", n_tiles * (n + 1), element_bytes)
    coords = space.allocate("coords", max(1, nnz), element_bytes)
    values = space.allocate("values", max(1, nnz), element_bytes)
    x = space.allocate("x", matrix.n_cols, element_bytes)
    y = space.allocate("y", n, element_bytes)

    if nnz == 0:
        return KernelTrace(
            kernel=f"spmv-csr-tiled-{n_tiles}",
            lines=np.empty(0, dtype=np.int64),
            regions=space.region_bounds(),
            n_rows=n,
            nnz=0,
            n_irregular=0,
            line_bytes=line_bytes,
            element_bytes=element_bytes,
            analytic_compulsory_bytes=0,
        )

    tile_width = -(-matrix.n_cols // n_tiles)
    row_of_entry = np.repeat(np.arange(n, dtype=np.int64), np.diff(matrix.row_offsets))
    tile_of_entry = matrix.col_indices // tile_width
    # Tile-major, then row-major, then original in-row order.
    order = np.lexsort((np.arange(nnz), row_of_entry, tile_of_entry))
    sorted_rows = row_of_entry[order]
    sorted_tiles = tile_of_entry[order]
    sorted_cols = matrix.col_indices[order]

    # Group starts: one row-offset access per (tile, row) group.
    is_group_start = np.empty(nnz, dtype=bool)
    is_group_start[0] = True
    is_group_start[1:] = (sorted_rows[1:] != sorted_rows[:-1]) | (
        sorted_tiles[1:] != sorted_tiles[:-1]
    )
    group_of_entry = np.cumsum(is_group_start) - 1
    n_groups = int(group_of_entry[-1]) + 1

    # Segment layout: [ro] + per entry [coords, values, x, y].
    entries_per_group = np.bincount(group_of_entry, minlength=n_groups)
    seg_lengths = 1 + 4 * entries_per_group
    seg_offsets = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(seg_lengths, out=seg_offsets[1:])
    out = np.empty(int(seg_offsets[-1]), dtype=np.int64)

    group_start_positions = seg_offsets[:-1]
    ro_elements = (
        sorted_tiles[is_group_start] * (n + 1) + sorted_rows[is_group_start]
    )
    out[group_start_positions] = ro.lines_of(ro_elements)

    local = np.arange(nnz, dtype=np.int64) - np.repeat(
        np.concatenate([[0], np.cumsum(entries_per_group)[:-1]]), entries_per_group
    )
    base = seg_offsets[group_of_entry] + 1 + 4 * local
    storage_index = np.arange(nnz, dtype=np.int64)  # tile-major storage
    out[base] = coords.lines_of(storage_index)
    out[base + 1] = values.lines_of(storage_index)
    out[base + 2] = x.lines_of(sorted_cols)
    out[base + 3] = y.lines_of(sorted_rows)

    analytic = (
        2 * n + n_tiles * (n + 1) + 2 * nnz
    ) * element_bytes
    return KernelTrace(
        kernel=f"spmv-csr-tiled-{n_tiles}",
        lines=_collapse(out),
        regions=space.region_bounds(),
        n_rows=n,
        nnz=nnz,
        n_irregular=nnz,
        line_bytes=line_bytes,
        element_bytes=element_bytes,
        analytic_compulsory_bytes=analytic,
    )
