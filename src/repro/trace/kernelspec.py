"""Typed kernel identity with parsing, validation and a builder registry.

Experiment drivers and the public API historically identified kernels
by raw strings (``"spmv-csr"``, ``"spmm-csr-4"``) parsed ad hoc at
every call site, which let malformed names like ``"spmm-csr-0"`` or
``"spmm-csr--4"`` travel deep into the trace layer before failing.
:class:`KernelSpec` makes the kernel identity a frozen value object:
``KernelSpec.parse`` is the one documented string front-end (strict —
canonical names only), ``KernelSpec.coerce`` accepts either a spec or
a string at API boundaries, and :meth:`KernelSpec.build_trace`
constructs the memory trace for a platform through the kind registry
below.

New kernel kinds register a builder with :func:`register_kernel`;
``parametric=True`` kinds take a trailing integer parameter
(``<kind>-<k>``, ``k >= 1``) like SpMM's dense-operand width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from repro.errors import ValidationError
from repro.sparse.coo import COOMatrix
from repro.sparse.convert import csr_to_coo
from repro.trace.kernel_traces import (
    KernelTrace,
    spgemm_csr_trace,
    spmm_csr_trace,
    spmv_coo_trace,
    spmv_csc_trace,
    spmv_csr_trace,
)

#: builder(matrix, k, line_bytes, element_bytes, schedule, n_partitions)
TraceBuilder = Callable[..., KernelTrace]


@dataclass(frozen=True)
class _KernelKind:
    builder: TraceBuilder
    parametric: bool


_REGISTRY: Dict[str, _KernelKind] = {}


def register_kernel(kind: str, builder: TraceBuilder, parametric: bool = False) -> None:
    """Register a trace builder for kernel kind ``kind``.

    ``parametric`` kinds are spelled ``<kind>-<k>`` with a positive
    integer ``k`` forwarded to the builder.
    """
    if not kind or kind in _REGISTRY:
        raise ValidationError(f"kernel kind {kind!r} is empty or already registered")
    _REGISTRY[kind] = _KernelKind(builder=builder, parametric=parametric)


def kernel_kinds() -> Tuple[str, ...]:
    """Registered kernel kinds, parametric ones spelled ``<kind>-<k>``."""
    return tuple(
        f"{kind}-<k>" if entry.parametric else kind
        for kind, entry in sorted(_REGISTRY.items())
    )


@dataclass(frozen=True)
class KernelSpec:
    """Identity of one sparse kernel variant.

    ``name`` is the canonical spelling (``"spmm-csr-4"``), ``kind`` the
    registry key (``"spmm-csr"``) and ``k`` the integer parameter of
    parametric kinds (``None`` otherwise).  Instances are produced by
    :meth:`parse` / :meth:`coerce`; constructing one directly skips
    validation.
    """

    name: str
    kind: str
    k: Optional[int] = None

    @classmethod
    def parse(cls, name: str) -> "KernelSpec":
        """Parse a canonical kernel name, rejecting malformed spellings."""
        if not isinstance(name, str):
            raise ValidationError(f"kernel name must be a string, got {type(name).__name__}")
        entry = _REGISTRY.get(name)
        if entry is not None and not entry.parametric:
            return cls(name=name, kind=name)
        for kind, entry in _REGISTRY.items():
            if entry.parametric and name.startswith(kind + "-"):
                suffix = name[len(kind) + 1:]
                if not suffix.isdigit() or str(int(suffix)) != suffix or int(suffix) < 1:
                    raise ValidationError(
                        f"malformed kernel {name!r}: {kind}-<k> needs a positive "
                        f"integer k in canonical form (got suffix {suffix!r})"
                    )
                return cls(name=name, kind=kind, k=int(suffix))
        raise ValidationError(
            f"unknown kernel {name!r}; expected one of {', '.join(kernel_kinds())}"
        )

    @classmethod
    def coerce(cls, kernel: Union["KernelSpec", str]) -> "KernelSpec":
        """Accept a spec or a kernel-name string (API boundary helper)."""
        if isinstance(kernel, cls):
            return kernel
        return cls.parse(kernel)

    def build_trace(
        self,
        matrix,
        platform=None,
        *,
        line_bytes: Optional[int] = None,
        element_bytes: int = 4,
        schedule: str = "sequential",
        n_partitions: int = 32,
    ) -> KernelTrace:
        """Build this kernel's memory trace for ``matrix``.

        ``matrix`` is a sparse matrix in the format the kernel expects
        (a ``Graph`` is unwrapped to its adjacency CSR); the line size
        comes from ``platform`` unless ``line_bytes`` overrides it.
        """
        entry = _REGISTRY.get(self.kind)
        if entry is None:
            raise ValidationError(f"kernel kind {self.kind!r} is not registered")
        if line_bytes is None:
            line_bytes = platform.line_bytes if platform is not None else 32
        matrix = getattr(matrix, "adjacency", matrix)
        return entry.builder(
            matrix,
            k=self.k,
            line_bytes=line_bytes,
            element_bytes=element_bytes,
            schedule=schedule,
            n_partitions=n_partitions,
        )


def _build_spmv_csr(matrix, k, line_bytes, element_bytes, schedule, n_partitions):
    return spmv_csr_trace(
        matrix,
        element_bytes=element_bytes,
        line_bytes=line_bytes,
        schedule=schedule,
        n_partitions=n_partitions,
    )


def _build_spmv_coo(matrix, k, line_bytes, element_bytes, schedule, n_partitions):
    coo = matrix if isinstance(matrix, COOMatrix) else csr_to_coo(matrix)
    return spmv_coo_trace(coo, element_bytes=element_bytes, line_bytes=line_bytes)


def _build_spmv_csc(matrix, k, line_bytes, element_bytes, schedule, n_partitions):
    return spmv_csc_trace(matrix, element_bytes=element_bytes, line_bytes=line_bytes)


def _build_spmm_csr(matrix, k, line_bytes, element_bytes, schedule, n_partitions):
    return spmm_csr_trace(matrix, k=k, element_bytes=element_bytes, line_bytes=line_bytes)


def _build_spgemm_csr(matrix, k, line_bytes, element_bytes, schedule, n_partitions):
    return spgemm_csr_trace(
        matrix,
        element_bytes=element_bytes,
        line_bytes=line_bytes,
        schedule=schedule,
        n_partitions=n_partitions,
    )


register_kernel("spmv-csr", _build_spmv_csr)
register_kernel("spmv-coo", _build_spmv_coo)
register_kernel("spmv-csc", _build_spmv_csc)
register_kernel("spmm-csr", _build_spmm_csr, parametric=True)
register_kernel("spgemm-csr", _build_spgemm_csr)
