"""Virtual address-space layout for kernel traces.

Each kernel array gets a :class:`Region` of line IDs that never
overlaps another region, so the simulator can attribute misses to
specific arrays (the performance model charges irregular-region misses
at reduced DRAM efficiency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class Region:
    """A contiguous array in the traced address space."""

    name: str
    base_line: int
    n_elements: int
    element_bytes: int
    line_bytes: int

    @property
    def n_lines(self) -> int:
        total_bytes = self.n_elements * self.element_bytes
        return max(1, -(-total_bytes // self.line_bytes))

    @property
    def end_line(self) -> int:
        """One past the last line ID of this region."""
        return self.base_line + self.n_lines

    def lines_of(self, indices: np.ndarray) -> np.ndarray:
        """Line IDs of the given element indices (vectorized)."""
        indices = np.asarray(indices, dtype=np.int64)
        return self.base_line + (indices * self.element_bytes) // self.line_bytes

    def byte_span_lines(self, first_element: np.ndarray, n_elements: int) -> Tuple[np.ndarray, int]:
        """First line and (constant) line count of fixed-size gathers.

        Used by SpMM, where each gather reads ``n_elements`` consecutive
        elements per node.  Requires the gather size to be line-aligned
        (a power-of-two multiple or divisor of the line size) so the
        span is the same for every node.
        """
        gather_bytes = n_elements * self.element_bytes
        if gather_bytes >= self.line_bytes:
            if gather_bytes % self.line_bytes != 0:
                raise ValidationError(
                    f"gather of {gather_bytes}B must be a multiple of the "
                    f"{self.line_bytes}B line size"
                )
            span = gather_bytes // self.line_bytes
        else:
            if self.line_bytes % gather_bytes != 0:
                raise ValidationError(
                    f"gather of {gather_bytes}B must divide the "
                    f"{self.line_bytes}B line size"
                )
            span = 1
        first = np.asarray(first_element, dtype=np.int64)
        start_lines = self.base_line + (first * self.element_bytes) // self.line_bytes
        return start_lines, int(span)


class AddressSpace:
    """Sequential allocator of non-overlapping regions."""

    def __init__(self, line_bytes: int = 32) -> None:
        if line_bytes <= 0:
            raise ValidationError(f"line_bytes must be positive, got {line_bytes}")
        self.line_bytes = int(line_bytes)
        self._next_line = 0
        self._regions: Dict[str, Region] = {}

    def allocate(self, name: str, n_elements: int, element_bytes: int) -> Region:
        if name in self._regions:
            raise ValidationError(f"region {name!r} already allocated")
        if n_elements < 0 or element_bytes <= 0:
            raise ValidationError(
                f"bad region spec: {n_elements} elements of {element_bytes}B"
            )
        region = Region(
            name=name,
            base_line=self._next_line,
            n_elements=max(1, int(n_elements)),
            element_bytes=int(element_bytes),
            line_bytes=self.line_bytes,
        )
        # Pad with one guard line so adjacent regions never share a line.
        self._next_line = region.end_line + 1
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        return self._regions[name]

    def region_bounds(self) -> List[Tuple[str, int, int]]:
        """(name, first line, one-past-last line) for every region."""
        return [
            (region.name, region.base_line, region.end_line)
            for region in self._regions.values()
        ]
