"""Line-granular access traces for SpMV (CSR/COO) and SpMM (CSR).

Each builder walks the arrays exactly as the reference kernel does
(paper Algorithm 1 for SpMV-CSR) and emits one line ID per access,
with consecutive same-line accesses collapsed.  The ``schedule``
parameter optionally interleaves row processing across partitions to
mimic concurrent GPU scheduling; the default sequential walk matches
the row-major traversal the paper's own simulator validated against
real-GPU counters (within 4%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.trace.layout import AddressSpace

#: Region names holding irregularly-accessed data (gathers through the
#: column indices); the performance model charges their misses at
#: reduced DRAM efficiency.
IRREGULAR_REGIONS = ("x", "b")

SCHEDULES = ("sequential", "interleaved")


@dataclass
class KernelTrace:
    """A kernel's memory trace plus the metadata the model needs."""

    kernel: str
    lines: np.ndarray
    regions: List[Tuple[str, int, int]]
    n_rows: int
    nnz: int
    #: Raw (pre-collapse) irregular gather count.
    n_irregular: int
    irregular_regions: Tuple[str, ...] = IRREGULAR_REGIONS
    line_bytes: int = 32
    element_bytes: int = 4
    #: Analytic compulsory-traffic estimate, paper Section IV-B formula.
    analytic_compulsory_bytes: int = 0
    schedule: str = "sequential"

    @property
    def n_accesses(self) -> int:
        return int(self.lines.size)


def _collapse(lines: np.ndarray) -> np.ndarray:
    """Drop consecutive duplicate line IDs (trivial hits)."""
    if lines.size == 0:
        return lines
    keep = np.empty(lines.size, dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    return lines[keep]


def _row_order(n_rows: int, schedule: str, n_partitions: int) -> np.ndarray:
    if schedule not in SCHEDULES:
        raise ValidationError(f"schedule must be one of {SCHEDULES}, got {schedule!r}")
    if schedule == "sequential" or n_rows == 0:
        return np.arange(n_rows, dtype=np.int64)
    if n_partitions < 1:
        raise ValidationError(f"n_partitions must be >= 1, got {n_partitions}")
    # Split rows into contiguous chunks and take one row per chunk in
    # round-robin order, mimicking concurrent SMs walking their chunks.
    parts = np.array_split(np.arange(n_rows, dtype=np.int64), n_partitions)
    width = max(part.size for part in parts)
    order = np.full((width, n_partitions), -1, dtype=np.int64)
    for column, part in enumerate(parts):
        order[: part.size, column] = part
    flat = order.reshape(-1)
    return flat[flat >= 0]


def spmv_csr_trace(
    matrix: CSRMatrix,
    element_bytes: int = 4,
    line_bytes: int = 32,
    schedule: str = "sequential",
    n_partitions: int = 32,
) -> KernelTrace:
    """Trace of ``y = A @ x`` with A in CSR (paper Algorithm 1).

    Per row: one ``rowOffsets`` read, then per non-zero a ``coords``
    read, a ``values`` read and the irregular ``x`` gather, and finally
    the ``y`` store.
    """
    n = matrix.n_rows
    nnz = matrix.nnz
    space = AddressSpace(line_bytes)
    ro = space.allocate("row_offsets", n + 1, element_bytes)
    coords = space.allocate("coords", nnz, element_bytes)
    values = space.allocate("values", nnz, element_bytes)
    x = space.allocate("x", matrix.n_cols, element_bytes)
    y = space.allocate("y", n, element_bytes)

    order = _row_order(n, schedule, n_partitions)
    degrees = np.diff(matrix.row_offsets)[order]
    seg_lengths = 3 * degrees + 2
    seg_offsets = np.zeros(order.size + 1, dtype=np.int64)
    np.cumsum(seg_lengths, out=seg_offsets[1:])
    out = np.empty(int(seg_offsets[-1]), dtype=np.int64)

    out[seg_offsets[:-1]] = ro.lines_of(order)
    out[seg_offsets[1:] - 1] = y.lines_of(order)

    # Non-zero entries, laid out in processing order.
    entry_index = _entries_in_row_order(matrix, order)
    if entry_index.size:
        row_position = np.repeat(np.arange(order.size, dtype=np.int64), degrees)
        local = _local_indices(degrees)
        base = seg_offsets[row_position] + 1 + 3 * local
        out[base] = coords.lines_of(entry_index)
        out[base + 1] = values.lines_of(entry_index)
        out[base + 2] = x.lines_of(matrix.col_indices[entry_index])

    analytic = (2 * n + (n + 1) + 2 * nnz) * element_bytes
    return KernelTrace(
        kernel="spmv-csr",
        lines=_collapse(out),
        regions=space.region_bounds(),
        n_rows=n,
        nnz=nnz,
        n_irregular=nnz,
        line_bytes=line_bytes,
        element_bytes=element_bytes,
        analytic_compulsory_bytes=analytic,
        schedule=schedule,
    )


def spmv_coo_trace(
    matrix: COOMatrix,
    element_bytes: int = 4,
    line_bytes: int = 32,
) -> KernelTrace:
    """Trace of ``y = A @ x`` with A in COO.

    Per non-zero: ``rows``, ``cols`` and ``vals`` stream reads, the
    irregular ``x`` gather, and the ``y`` update (streaming when the
    COO is row-sorted, which cuSPARSE requires).
    """
    n = matrix.n_rows
    nnz = matrix.nnz
    space = AddressSpace(line_bytes)
    rows = space.allocate("rows", nnz, element_bytes)
    cols = space.allocate("cols", nnz, element_bytes)
    vals = space.allocate("values", nnz, element_bytes)
    x = space.allocate("x", matrix.n_cols, element_bytes)
    y = space.allocate("y", n, element_bytes)

    # The kernel walks entries in row-sorted order (identity for an
    # already-sorted COO); *every* region must be indexed by that same
    # walk — the stream reads address position order[i] of the arrays
    # as laid out, and the x/y accesses belong to that same entry.
    order = np.argsort(matrix.rows, kind="stable")
    out = np.empty(5 * nnz, dtype=np.int64)
    out[0::5] = rows.lines_of(order)
    out[1::5] = cols.lines_of(order)
    out[2::5] = vals.lines_of(order)
    out[3::5] = x.lines_of(matrix.cols[order])
    out[4::5] = y.lines_of(matrix.rows[order])

    analytic = (2 * n + 3 * nnz) * element_bytes
    return KernelTrace(
        kernel="spmv-coo",
        lines=_collapse(out),
        regions=space.region_bounds(),
        n_rows=n,
        nnz=nnz,
        n_irregular=nnz,
        line_bytes=line_bytes,
        element_bytes=element_bytes,
        analytic_compulsory_bytes=analytic,
    )


def spmv_csc_trace(
    matrix: "object",
    element_bytes: int = 4,
    line_bytes: int = 32,
) -> KernelTrace:
    """Trace of scatter-style ``y = A @ x`` with A in CSC format.

    Column-major traversal: ``col_offsets``, ``row_indices``, ``values``
    and the input vector all stream; the *output* vector is the
    irregular side (``y[row_indices[i]] += ...``).  The irregular
    region is therefore ``y`` — the pull/push mirror image of the CSR
    trace.
    """
    from repro.sparse.csc import CSCMatrix

    if not isinstance(matrix, CSCMatrix):
        raise ValidationError(f"spmv_csc_trace requires a CSCMatrix, got {type(matrix).__name__}")
    n = matrix.n_rows
    nnz = matrix.nnz
    space = AddressSpace(line_bytes)
    co = space.allocate("col_offsets", matrix.n_cols + 1, element_bytes)
    rows_region = space.allocate("rows", max(1, nnz), element_bytes)
    values = space.allocate("values", max(1, nnz), element_bytes)
    x = space.allocate("x", matrix.n_cols, element_bytes)
    y = space.allocate("y", max(1, n), element_bytes)

    degrees = np.diff(matrix.col_offsets)
    seg_lengths = 2 + 3 * degrees  # col offset + x read + per entry triple
    seg_offsets = np.zeros(matrix.n_cols + 1, dtype=np.int64)
    np.cumsum(seg_lengths, out=seg_offsets[1:])
    out = np.empty(int(seg_offsets[-1]), dtype=np.int64)

    columns = np.arange(matrix.n_cols, dtype=np.int64)
    out[seg_offsets[:-1]] = co.lines_of(columns)
    out[seg_offsets[:-1] + 1] = x.lines_of(columns)

    if nnz:
        col_of_entry = np.repeat(columns, degrees)
        local = _local_indices(degrees)
        base = seg_offsets[col_of_entry] + 2 + 3 * local
        entries = np.arange(nnz, dtype=np.int64)
        out[base] = rows_region.lines_of(entries)
        out[base + 1] = values.lines_of(entries)
        out[base + 2] = y.lines_of(matrix.row_indices)

    analytic = (2 * n + (matrix.n_cols + 1) + 2 * nnz) * element_bytes
    return KernelTrace(
        kernel="spmv-csc",
        lines=_collapse(out),
        regions=space.region_bounds(),
        n_rows=n,
        nnz=nnz,
        n_irregular=nnz,
        irregular_regions=("y",),
        line_bytes=line_bytes,
        element_bytes=element_bytes,
        analytic_compulsory_bytes=analytic,
    )


def spmm_csr_trace(
    matrix: CSRMatrix,
    k: int,
    element_bytes: int = 4,
    line_bytes: int = 32,
) -> KernelTrace:
    """Trace of ``Y = A @ B`` with A in CSR and B dense ``n x k`` row-major.

    Per non-zero, the gather reads the whole ``k``-element row of B —
    the irregular footprint grows by a factor of ``k`` relative to
    SpMV, which is why the paper's Table IV ratios explode for
    SpMM-CSR-256.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    n = matrix.n_rows
    nnz = matrix.nnz
    space = AddressSpace(line_bytes)
    ro = space.allocate("row_offsets", n + 1, element_bytes)
    coords = space.allocate("coords", nnz, element_bytes)
    values = space.allocate("values", nnz, element_bytes)
    b = space.allocate("b", matrix.n_cols * k, element_bytes)
    y = space.allocate("y", n * k, element_bytes)

    gather_starts, span = b.byte_span_lines(matrix.col_indices * k, k)
    y_starts, y_span = y.byte_span_lines(np.arange(n, dtype=np.int64) * k, k)

    degrees = np.diff(matrix.row_offsets)
    per_entry = 2 + span
    seg_lengths = 1 + per_entry * degrees + y_span
    seg_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(seg_lengths, out=seg_offsets[1:])
    out = np.empty(int(seg_offsets[-1]), dtype=np.int64)

    out[seg_offsets[:-1]] = ro.lines_of(np.arange(n, dtype=np.int64))
    for t in range(y_span):
        out[seg_offsets[1:] - y_span + t] = y_starts + t

    if nnz:
        row_of_entry = np.repeat(np.arange(n, dtype=np.int64), degrees)
        local = _local_indices(degrees)
        base = seg_offsets[row_of_entry] + 1 + per_entry * local
        entries = np.arange(nnz, dtype=np.int64)
        out[base] = coords.lines_of(entries)
        out[base + 1] = values.lines_of(entries)
        for t in range(span):
            out[base + 2 + t] = gather_starts + t

    analytic = ((n + 1) + 2 * nnz + 2 * n * k) * element_bytes
    return KernelTrace(
        kernel=f"spmm-csr-{k}",
        lines=_collapse(out),
        regions=space.region_bounds(),
        n_rows=n,
        nnz=nnz,
        n_irregular=nnz * span,
        line_bytes=line_bytes,
        element_bytes=element_bytes,
        analytic_compulsory_bytes=analytic,
    )


def _local_indices(degrees: np.ndarray) -> np.ndarray:
    """Per-entry offset within its row: [0..d0), [0..d1), ..."""
    total = int(degrees.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    row_position = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    cumulative = np.concatenate([[0], np.cumsum(degrees)[:-1]])
    return np.arange(total, dtype=np.int64) - cumulative[row_position]


def _entries_in_row_order(matrix: CSRMatrix, order: np.ndarray) -> np.ndarray:
    """CSR entry indices laid out in the given row-processing order."""
    if matrix.nnz == 0:
        return np.empty(0, dtype=np.int64)
    degrees = np.diff(matrix.row_offsets)[order]
    starts = matrix.row_offsets[order]
    row_position = np.repeat(np.arange(order.size, dtype=np.int64), degrees)
    return starts[row_position] + _local_indices(degrees)
