"""Line-granular access traces for SpMV (CSR/COO) and SpMM (CSR).

Each builder walks the arrays exactly as the reference kernel does
(paper Algorithm 1 for SpMV-CSR) and emits one line ID per access,
with consecutive same-line accesses collapsed.  The ``schedule``
parameter optionally interleaves row processing across partitions to
mimic concurrent GPU scheduling; the default sequential walk matches
the row-major traversal the paper's own simulator validated against
real-GPU counters (within 4%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.trace.layout import AddressSpace

#: Region names holding irregularly-accessed data (gathers through the
#: column indices); the performance model charges their misses at
#: reduced DRAM efficiency.
IRREGULAR_REGIONS = ("x", "b")

#: Regions of the SpGEMM second operand, gathered through A's column
#: indices — the irregular side of the Gustavson walk.
SPGEMM_IRREGULAR_REGIONS = ("b_row_offsets", "b_coords", "b_values")

SCHEDULES = ("sequential", "interleaved", "clustered")


@dataclass
class KernelTrace:
    """A kernel's memory trace plus the metadata the model needs."""

    kernel: str
    lines: np.ndarray
    regions: List[Tuple[str, int, int]]
    n_rows: int
    nnz: int
    #: Raw (pre-collapse) irregular gather count.
    n_irregular: int
    irregular_regions: Tuple[str, ...] = IRREGULAR_REGIONS
    line_bytes: int = 32
    element_bytes: int = 4
    #: Analytic compulsory-traffic estimate, paper Section IV-B formula.
    analytic_compulsory_bytes: int = 0
    schedule: str = "sequential"

    @property
    def n_accesses(self) -> int:
        return int(self.lines.size)


def _collapse(lines: np.ndarray) -> np.ndarray:
    """Drop consecutive duplicate line IDs (trivial hits)."""
    if lines.size == 0:
        return lines
    keep = np.empty(lines.size, dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    return lines[keep]


def _row_order(n_rows: int, schedule: str, n_partitions: int) -> np.ndarray:
    if schedule not in SCHEDULES:
        raise ValidationError(f"schedule must be one of {SCHEDULES}, got {schedule!r}")
    # "clustered" groups contiguous row blocks; for single-operand kernels
    # the blocks are walked in order, which is exactly the sequential walk.
    if schedule in ("sequential", "clustered") or n_rows == 0:
        return np.arange(n_rows, dtype=np.int64)
    if n_partitions < 1:
        raise ValidationError(f"n_partitions must be >= 1, got {n_partitions}")
    # Split rows into contiguous chunks and take one row per chunk in
    # round-robin order, mimicking concurrent SMs walking their chunks.
    parts = np.array_split(np.arange(n_rows, dtype=np.int64), n_partitions)
    width = max(part.size for part in parts)
    order = np.full((width, n_partitions), -1, dtype=np.int64)
    for column, part in enumerate(parts):
        order[: part.size, column] = part
    flat = order.reshape(-1)
    return flat[flat >= 0]


def spmv_csr_trace(
    matrix: CSRMatrix,
    element_bytes: int = 4,
    line_bytes: int = 32,
    schedule: str = "sequential",
    n_partitions: int = 32,
) -> KernelTrace:
    """Trace of ``y = A @ x`` with A in CSR (paper Algorithm 1).

    Per row: one ``rowOffsets`` read, then per non-zero a ``coords``
    read, a ``values`` read and the irregular ``x`` gather, and finally
    the ``y`` store.
    """
    n = matrix.n_rows
    nnz = matrix.nnz
    space = AddressSpace(line_bytes)
    ro = space.allocate("row_offsets", n + 1, element_bytes)
    coords = space.allocate("coords", nnz, element_bytes)
    values = space.allocate("values", nnz, element_bytes)
    x = space.allocate("x", matrix.n_cols, element_bytes)
    y = space.allocate("y", n, element_bytes)

    order = _row_order(n, schedule, n_partitions)
    degrees = np.diff(matrix.row_offsets)[order]
    seg_lengths = 3 * degrees + 2
    seg_offsets = np.zeros(order.size + 1, dtype=np.int64)
    np.cumsum(seg_lengths, out=seg_offsets[1:])
    out = np.empty(int(seg_offsets[-1]), dtype=np.int64)

    out[seg_offsets[:-1]] = ro.lines_of(order)
    out[seg_offsets[1:] - 1] = y.lines_of(order)

    # Non-zero entries, laid out in processing order.
    entry_index = _entries_in_row_order(matrix, order)
    if entry_index.size:
        row_position = np.repeat(np.arange(order.size, dtype=np.int64), degrees)
        local = _local_indices(degrees)
        base = seg_offsets[row_position] + 1 + 3 * local
        out[base] = coords.lines_of(entry_index)
        out[base + 1] = values.lines_of(entry_index)
        out[base + 2] = x.lines_of(matrix.col_indices[entry_index])

    analytic = (2 * n + (n + 1) + 2 * nnz) * element_bytes
    return KernelTrace(
        kernel="spmv-csr",
        lines=_collapse(out),
        regions=space.region_bounds(),
        n_rows=n,
        nnz=nnz,
        n_irregular=nnz,
        line_bytes=line_bytes,
        element_bytes=element_bytes,
        analytic_compulsory_bytes=analytic,
        schedule=schedule,
    )


def spmv_coo_trace(
    matrix: COOMatrix,
    element_bytes: int = 4,
    line_bytes: int = 32,
) -> KernelTrace:
    """Trace of ``y = A @ x`` with A in COO.

    Per non-zero: ``rows``, ``cols`` and ``vals`` stream reads, the
    irregular ``x`` gather, and the ``y`` update (streaming when the
    COO is row-sorted, which cuSPARSE requires).
    """
    n = matrix.n_rows
    nnz = matrix.nnz
    space = AddressSpace(line_bytes)
    rows = space.allocate("rows", nnz, element_bytes)
    cols = space.allocate("cols", nnz, element_bytes)
    vals = space.allocate("values", nnz, element_bytes)
    x = space.allocate("x", matrix.n_cols, element_bytes)
    y = space.allocate("y", n, element_bytes)

    # The kernel walks entries in row-sorted order (identity for an
    # already-sorted COO); *every* region must be indexed by that same
    # walk — the stream reads address position order[i] of the arrays
    # as laid out, and the x/y accesses belong to that same entry.
    order = np.argsort(matrix.rows, kind="stable")
    out = np.empty(5 * nnz, dtype=np.int64)
    out[0::5] = rows.lines_of(order)
    out[1::5] = cols.lines_of(order)
    out[2::5] = vals.lines_of(order)
    out[3::5] = x.lines_of(matrix.cols[order])
    out[4::5] = y.lines_of(matrix.rows[order])

    analytic = (2 * n + 3 * nnz) * element_bytes
    return KernelTrace(
        kernel="spmv-coo",
        lines=_collapse(out),
        regions=space.region_bounds(),
        n_rows=n,
        nnz=nnz,
        n_irregular=nnz,
        line_bytes=line_bytes,
        element_bytes=element_bytes,
        analytic_compulsory_bytes=analytic,
    )


def spmv_csc_trace(
    matrix: "object",
    element_bytes: int = 4,
    line_bytes: int = 32,
) -> KernelTrace:
    """Trace of scatter-style ``y = A @ x`` with A in CSC format.

    Column-major traversal: ``col_offsets``, ``row_indices``, ``values``
    and the input vector all stream; the *output* vector is the
    irregular side (``y[row_indices[i]] += ...``).  The irregular
    region is therefore ``y`` — the pull/push mirror image of the CSR
    trace.
    """
    from repro.sparse.csc import CSCMatrix

    if not isinstance(matrix, CSCMatrix):
        raise ValidationError(f"spmv_csc_trace requires a CSCMatrix, got {type(matrix).__name__}")
    n = matrix.n_rows
    nnz = matrix.nnz
    space = AddressSpace(line_bytes)
    co = space.allocate("col_offsets", matrix.n_cols + 1, element_bytes)
    rows_region = space.allocate("rows", max(1, nnz), element_bytes)
    values = space.allocate("values", max(1, nnz), element_bytes)
    x = space.allocate("x", matrix.n_cols, element_bytes)
    y = space.allocate("y", max(1, n), element_bytes)

    degrees = np.diff(matrix.col_offsets)
    seg_lengths = 2 + 3 * degrees  # col offset + x read + per entry triple
    seg_offsets = np.zeros(matrix.n_cols + 1, dtype=np.int64)
    np.cumsum(seg_lengths, out=seg_offsets[1:])
    out = np.empty(int(seg_offsets[-1]), dtype=np.int64)

    columns = np.arange(matrix.n_cols, dtype=np.int64)
    out[seg_offsets[:-1]] = co.lines_of(columns)
    out[seg_offsets[:-1] + 1] = x.lines_of(columns)

    if nnz:
        col_of_entry = np.repeat(columns, degrees)
        local = _local_indices(degrees)
        base = seg_offsets[col_of_entry] + 2 + 3 * local
        entries = np.arange(nnz, dtype=np.int64)
        out[base] = rows_region.lines_of(entries)
        out[base + 1] = values.lines_of(entries)
        out[base + 2] = y.lines_of(matrix.row_indices)

    analytic = (2 * n + (matrix.n_cols + 1) + 2 * nnz) * element_bytes
    return KernelTrace(
        kernel="spmv-csc",
        lines=_collapse(out),
        regions=space.region_bounds(),
        n_rows=n,
        nnz=nnz,
        n_irregular=nnz,
        irregular_regions=("y",),
        line_bytes=line_bytes,
        element_bytes=element_bytes,
        analytic_compulsory_bytes=analytic,
    )


def spmm_csr_trace(
    matrix: CSRMatrix,
    k: int,
    element_bytes: int = 4,
    line_bytes: int = 32,
) -> KernelTrace:
    """Trace of ``Y = A @ B`` with A in CSR and B dense ``n x k`` row-major.

    Per non-zero, the gather reads the whole ``k``-element row of B —
    the irregular footprint grows by a factor of ``k`` relative to
    SpMV, which is why the paper's Table IV ratios explode for
    SpMM-CSR-256.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    n = matrix.n_rows
    nnz = matrix.nnz
    space = AddressSpace(line_bytes)
    ro = space.allocate("row_offsets", n + 1, element_bytes)
    coords = space.allocate("coords", nnz, element_bytes)
    values = space.allocate("values", nnz, element_bytes)
    b = space.allocate("b", matrix.n_cols * k, element_bytes)
    y = space.allocate("y", n * k, element_bytes)

    gather_starts, span = b.byte_span_lines(matrix.col_indices * k, k)
    y_starts, y_span = y.byte_span_lines(np.arange(n, dtype=np.int64) * k, k)

    degrees = np.diff(matrix.row_offsets)
    per_entry = 2 + span
    seg_lengths = 1 + per_entry * degrees + y_span
    seg_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(seg_lengths, out=seg_offsets[1:])
    out = np.empty(int(seg_offsets[-1]), dtype=np.int64)

    out[seg_offsets[:-1]] = ro.lines_of(np.arange(n, dtype=np.int64))
    for t in range(y_span):
        out[seg_offsets[1:] - y_span + t] = y_starts + t

    if nnz:
        row_of_entry = np.repeat(np.arange(n, dtype=np.int64), degrees)
        local = _local_indices(degrees)
        base = seg_offsets[row_of_entry] + 1 + per_entry * local
        entries = np.arange(nnz, dtype=np.int64)
        out[base] = coords.lines_of(entries)
        out[base + 1] = values.lines_of(entries)
        for t in range(span):
            out[base + 2 + t] = gather_starts + t

    analytic = ((n + 1) + 2 * nnz + 2 * n * k) * element_bytes
    return KernelTrace(
        kernel=f"spmm-csr-{k}",
        lines=_collapse(out),
        regions=space.region_bounds(),
        n_rows=n,
        nnz=nnz,
        n_irregular=nnz * span,
        line_bytes=line_bytes,
        element_bytes=element_bytes,
        analytic_compulsory_bytes=analytic,
    )


def spgemm_csr_structure(matrix: CSRMatrix) -> Tuple[np.ndarray, int]:
    """Symbolic phase of ``C = A @ A``: per-row output nnz and flop count.

    ``flops`` counts multiply-accumulates, i.e. for every non-zero
    ``(i, k)`` of A the length of B's row ``k`` — the standard SpGEMM
    work measure.  Fully vectorized: the expanded (row, col) candidate
    pairs are deduplicated with one ``np.unique`` over packed keys.
    """
    if matrix.n_rows != matrix.n_cols:
        raise ValidationError(
            f"spgemm-csr squares the matrix (C = A @ A) and needs a square "
            f"operand, got shape {matrix.shape}"
        )
    n = matrix.n_rows
    degrees = np.diff(matrix.row_offsets)
    if matrix.nnz == 0:
        return np.zeros(n, dtype=np.int64), 0
    b_deg = degrees[matrix.col_indices]
    flops = int(b_deg.sum())
    if flops == 0:
        return np.zeros(n, dtype=np.int64), 0
    row_of_entry = np.repeat(np.arange(n, dtype=np.int64), degrees)
    parent = np.repeat(np.arange(matrix.nnz, dtype=np.int64), b_deg)
    inner_local = _local_indices(b_deg)
    b_entry = matrix.row_offsets[matrix.col_indices[parent]] + inner_local
    keys = row_of_entry[parent] * np.int64(n) + matrix.col_indices[b_entry]
    unique = np.unique(keys)
    c_row_nnz = np.bincount(unique // n, minlength=n).astype(np.int64)
    return c_row_nnz, flops


def spgemm_csr_trace(
    matrix: CSRMatrix,
    element_bytes: int = 4,
    line_bytes: int = 32,
    schedule: str = "sequential",
    n_partitions: int = 32,
) -> KernelTrace:
    """Trace of Gustavson row-wise ``C = A @ A`` with both operands CSR.

    Per output row ``i``: one ``a_row_offsets`` read, then per non-zero
    ``(i, k)`` of A an ``a_coords``/``a_values`` stream pair followed by
    the irregular B-side gathers — ``b_row_offsets[k]`` plus the whole
    ``b_coords``/``b_values`` walk of B's row ``k`` — and finally the
    streamed ``c_row_offsets``/``c_coords``/``c_values`` output writes.
    The dense SPA accumulator lives on-chip and is not traced, matching
    how the reference Gustavson kernel keeps it in shared memory.

    Although B equals A numerically (the kernel squares the matrix), B
    is laid out as a distinct operand buffer so the simulator can
    attribute first- and second-operand traffic separately.

    ``schedule`` selects the computation order:

    * ``"sequential"`` — rows in order, the textbook Gustavson walk;
    * ``"interleaved"`` — rows round-robined across ``n_partitions``
      contiguous chunks, mimicking concurrent workers;
    * ``"clustered"`` — the cluster-wise computation schedule of
      arXiv 2507.21253: rows are grouped into ``n_partitions``
      contiguous clusters and within a cluster the A entries are
      processed sorted by column, so repeated walks of the same B row
      land adjacently and hit in cache.
    """
    if schedule not in SCHEDULES:
        raise ValidationError(f"schedule must be one of {SCHEDULES}, got {schedule!r}")
    if n_partitions < 1:
        raise ValidationError(f"n_partitions must be >= 1, got {n_partitions}")
    c_row_nnz, flops = spgemm_csr_structure(matrix)
    n = matrix.n_rows
    nnz = matrix.nnz
    nnz_c = int(c_row_nnz.sum())

    space = AddressSpace(line_bytes)
    a_ro = space.allocate("a_row_offsets", n + 1, element_bytes)
    a_coords = space.allocate("a_coords", nnz, element_bytes)
    a_values = space.allocate("a_values", nnz, element_bytes)
    b_ro = space.allocate("b_row_offsets", n + 1, element_bytes)
    b_coords = space.allocate("b_coords", nnz, element_bytes)
    b_values = space.allocate("b_values", nnz, element_bytes)
    c_ro = space.allocate("c_row_offsets", n + 1, element_bytes)
    c_coords = space.allocate("c_coords", nnz_c, element_bytes)
    c_values = space.allocate("c_values", nnz_c, element_bytes)

    # Unified group-based emission.  A group emits its rows' header
    # reads, then its entry segments, then its rows' output segments.
    # Sequential/interleaved schedules use single-row groups (which
    # degenerates to the per-row walk); clustered uses contiguous
    # multi-row clusters with entries sorted by column within a group.
    if schedule == "clustered":
        groups = [part for part in np.array_split(np.arange(n, dtype=np.int64), n_partitions)]
        groups = [part for part in groups if part.size]
        row_order = np.arange(n, dtype=np.int64)
        group_sizes = np.array([part.size for part in groups], dtype=np.int64)
    else:
        row_order = _row_order(n, schedule, n_partitions)
        group_sizes = np.ones(row_order.size, dtype=np.int64)
    n_groups = group_sizes.size

    degrees = np.diff(matrix.row_offsets)
    deg_in_order = degrees[row_order]
    c_deg_in_order = c_row_nnz[row_order]

    # Entries in processing order: rows laid out per row_order, then —
    # for the clustered schedule — stably re-sorted by target column
    # within each group so same-B-row gathers coalesce.
    entry_order = _entries_in_row_order(matrix, row_order)
    group_of_row = np.repeat(np.arange(n_groups, dtype=np.int64), group_sizes)
    group_of_entry = np.repeat(group_of_row, deg_in_order)
    if schedule == "clustered" and entry_order.size:
        key = group_of_entry * np.int64(n + 1) + matrix.col_indices[entry_order]
        resort = np.argsort(key, kind="stable")
        entry_order = entry_order[resort]

    targets = matrix.col_indices[entry_order]
    b_deg = degrees[targets] if entry_order.size else np.empty(0, dtype=np.int64)

    def _group_sums(per_item: np.ndarray, item_group_sizes: np.ndarray) -> np.ndarray:
        prefix = np.zeros(per_item.size + 1, dtype=np.int64)
        np.cumsum(per_item, out=prefix[1:])
        bounds = np.zeros(item_group_sizes.size + 1, dtype=np.int64)
        np.cumsum(item_group_sizes, out=bounds[1:])
        return prefix[bounds[1:]] - prefix[bounds[:-1]]

    entries_per_group = _group_sums(deg_in_order, group_sizes)
    bdeg_per_group = _group_sums(b_deg, entries_per_group)
    cdeg_per_group = _group_sums(c_deg_in_order, group_sizes)
    group_lengths = (
        2 * group_sizes + 3 * entries_per_group + 2 * bdeg_per_group + 2 * cdeg_per_group
    )
    group_offsets = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(group_lengths, out=group_offsets[1:])
    out = np.empty(int(group_offsets[-1]), dtype=np.int64)

    # Header block: a_row_offsets reads for the group's rows.
    row_starts = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(group_sizes, out=row_starts[1:])
    local_row = np.arange(row_order.size, dtype=np.int64) - row_starts[group_of_row]
    header_pos = group_offsets[group_of_row] + local_row
    out[header_pos] = a_ro.lines_of(row_order)

    # Entry block: per A entry the stream pair, the b_row_offsets
    # gather, then the full B-row coords/values walk.
    entry_starts = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(entries_per_group, out=entry_starts[1:])
    if entry_order.size:
        bdeg_prefix = np.zeros(entry_order.size + 1, dtype=np.int64)
        np.cumsum(b_deg, out=bdeg_prefix[1:])
        local_entry = np.arange(entry_order.size, dtype=np.int64) - entry_starts[group_of_entry]
        bdeg_before = bdeg_prefix[:-1] - bdeg_prefix[entry_starts[group_of_entry]]
        seg_start = (
            group_offsets[group_of_entry]
            + group_sizes[group_of_entry]
            + 3 * local_entry
            + 2 * bdeg_before
        )
        out[seg_start] = a_coords.lines_of(entry_order)
        out[seg_start + 1] = a_values.lines_of(entry_order)
        out[seg_start + 2] = b_ro.lines_of(targets)
        if flops:
            parent = np.repeat(np.arange(entry_order.size, dtype=np.int64), b_deg)
            inner_local = _local_indices(b_deg)
            b_entry = matrix.row_offsets[targets[parent]] + inner_local
            inner_pos = seg_start[parent] + 3 + 2 * inner_local
            out[inner_pos] = b_coords.lines_of(b_entry)
            out[inner_pos + 1] = b_values.lines_of(b_entry)

    # Output block: c_row_offsets plus the row's coords/values writes,
    # emitted after the group's compute in row order.  C entry indices
    # follow the canonical row-major CSR layout of the output.
    c_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(c_row_nnz, out=c_offsets[1:])
    c_area = (
        group_offsets[np.arange(n_groups, dtype=np.int64)]
        + group_sizes
        + 3 * entries_per_group
        + 2 * bdeg_per_group
    )
    c_seg_lengths = 1 + 2 * c_deg_in_order
    c_prefix = np.zeros(row_order.size + 1, dtype=np.int64)
    np.cumsum(c_seg_lengths, out=c_prefix[1:])
    c_before = c_prefix[:-1] - c_prefix[row_starts[group_of_row]]
    c_start = c_area[group_of_row] + c_before
    out[c_start] = c_ro.lines_of(row_order)
    if nnz_c:
        c_parent = np.repeat(np.arange(row_order.size, dtype=np.int64), c_deg_in_order)
        c_local = _local_indices(c_deg_in_order)
        c_entry = c_offsets[row_order[c_parent]] + c_local
        c_pos = c_start[c_parent] + 1 + 2 * c_local
        out[c_pos] = c_coords.lines_of(c_entry)
        out[c_pos + 1] = c_values.lines_of(c_entry)

    analytic = (3 * (n + 1) + 4 * nnz + 2 * nnz_c) * element_bytes
    return KernelTrace(
        kernel="spgemm-csr",
        lines=_collapse(out),
        regions=space.region_bounds(),
        n_rows=n,
        nnz=nnz,
        n_irregular=nnz + 2 * flops,
        irregular_regions=SPGEMM_IRREGULAR_REGIONS,
        line_bytes=line_bytes,
        element_bytes=element_bytes,
        analytic_compulsory_bytes=analytic,
        schedule=schedule,
    )


def _local_indices(degrees: np.ndarray) -> np.ndarray:
    """Per-entry offset within its row: [0..d0), [0..d1), ..."""
    total = int(degrees.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    row_position = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    cumulative = np.concatenate([[0], np.cumsum(degrees)[:-1]])
    return np.arange(total, dtype=np.int64) - cumulative[row_position]


def _entries_in_row_order(matrix: CSRMatrix, order: np.ndarray) -> np.ndarray:
    """CSR entry indices laid out in the given row-processing order."""
    if matrix.nnz == 0:
        return np.empty(0, dtype=np.int64)
    degrees = np.diff(matrix.row_offsets)[order]
    starts = matrix.row_offsets[order]
    row_position = np.repeat(np.arange(order.size, dtype=np.int64), degrees)
    return starts[row_position] + _local_indices(degrees)
