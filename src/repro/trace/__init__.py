"""Memory-trace generation for the sparse kernels.

The cache simulator consumes line-granular access traces.  This package
lays out the kernel's arrays in a virtual address space
(:mod:`repro.trace.layout`) and walks them exactly as the kernels in
:mod:`repro.sparse.kernels` do: CSR arrays and the output stream in
order, the input vector (or dense matrix) gathered through the column
indices — Algorithm 1 of the paper.  Consecutive accesses to the same
line are collapsed (they hit trivially and only slow the simulator).
"""

from repro.trace.layout import AddressSpace, Region
from repro.trace.kernel_traces import (
    KernelTrace,
    spgemm_csr_structure,
    spgemm_csr_trace,
    spmm_csr_trace,
    spmv_coo_trace,
    spmv_csc_trace,
    spmv_csr_trace,
)
from repro.trace.kernelspec import KernelSpec, kernel_kinds, register_kernel
from repro.trace.tiled import spmv_csr_tiled_trace

__all__ = [
    "AddressSpace",
    "KernelSpec",
    "KernelTrace",
    "Region",
    "kernel_kinds",
    "register_kernel",
    "spgemm_csr_structure",
    "spgemm_csr_trace",
    "spmm_csr_trace",
    "spmv_coo_trace",
    "spmv_csc_trace",
    "spmv_csr_trace",
    "spmv_csr_tiled_trace",
]
