"""High-level convenience API.

Most downstream users want three operations: "reorder this matrix with
technique X", "how good is this ordering on the modeled platform", and
"is reordering this matrix worth it at all".  These helpers wire the
pipeline together so none of them requires touching the trace,
simulator or predictor layers directly.

:func:`recommend` is the headline of the redesign: it answers the
worth-it question from cheap structural features alone — no candidate
reordering is computed, no trace is built, no cache is simulated.  The
same :class:`Recommendation` shape backs the serve tier's ``auto``
technique and ``/v1/recommend`` endpoint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ValidationError
from repro.gpu.amortization import amortization_iterations
from repro.gpu.perf import KernelRunModel, model_run
from repro.gpu.specs import PlatformSpec, SCALED_A6000
from repro.graphs.graph import Graph
from repro.reorder.base import ReorderingTechnique
from repro.reorder.registry import make_technique
from repro.sparse.csr import CSRMatrix
from repro.sparse.permute import permute_symmetric
from repro.trace.kernelspec import KernelSpec

#: The no-reordering reference order.
BASELINE_TECHNIQUE = "original"

#: Candidates within this fraction of the best predicted total cost are
#: interchangeable; the first (cheapest-to-compute) one wins.
CHEAP_TOLERANCE = 0.01


def reorder_matrix(
    matrix: Union[CSRMatrix, Graph],
    technique: Union[str, ReorderingTechnique],
) -> CSRMatrix:
    """Apply a reordering technique and return the permuted matrix."""
    graph = matrix if isinstance(matrix, Graph) else Graph(matrix)
    if isinstance(technique, str):
        technique = make_technique(technique)
    perm = technique.compute(graph)
    return permute_symmetric(graph.adjacency, perm)


def evaluate_ordering(
    matrix: Union[CSRMatrix, Graph],
    permutation: Optional[Union[np.ndarray, str, ReorderingTechnique]] = None,
    kernel: Union[str, KernelSpec] = "spmv-csr",
    platform: PlatformSpec = SCALED_A6000,
    policy: str = "lru",
    impl: Optional[str] = None,
) -> KernelRunModel:
    """Model one kernel run of (optionally permuted) ``matrix``.

    ``permutation`` is either ``perm[old_id] == new_id``, a technique
    name (or :class:`ReorderingTechnique`) whose permutation is
    computed here, or ``None`` to evaluate the matrix as-is.
    ``kernel`` is a :class:`KernelSpec` or a canonical kernel name
    (validated by :meth:`KernelSpec.parse`); ``impl`` selects the
    simulator engine (see :func:`repro.cache.simulate`).  Returns the
    full :class:`KernelRunModel`, whose ``normalized_traffic`` /
    ``normalized_runtime`` properties correspond to the paper's
    headline metrics.
    """
    spec = KernelSpec.coerce(kernel)
    csr = matrix.adjacency if isinstance(matrix, Graph) else matrix
    if isinstance(permutation, (str, ReorderingTechnique)):
        graph = matrix if isinstance(matrix, Graph) else Graph(matrix)
        technique = (
            make_technique(permutation)
            if isinstance(permutation, str)
            else permutation
        )
        permutation = technique.compute(graph)
    if permutation is not None:
        csr = permute_symmetric(csr, permutation)
    trace = spec.build_trace(csr, platform)
    return model_run(trace, platform, policy=policy, impl=impl)


@dataclass
class ReorderEvaluation:
    """Outcome of :func:`reorder_and_evaluate` for one technique."""

    technique: str
    permutation: np.ndarray
    matrix: CSRMatrix
    model: KernelRunModel
    reorder_seconds: float
    baseline: Optional[KernelRunModel] = None

    @property
    def speedup(self) -> Optional[float]:
        """Baseline-over-reordered modeled time (requires baseline)."""
        if self.baseline is None or self.model.modeled_seconds == 0:
            return None
        return self.baseline.modeled_seconds / self.model.modeled_seconds

    @property
    def break_even_iterations(self) -> Optional[float]:
        """Iterations needed to amortize the reordering cost.

        ``None`` when no baseline was evaluated; ``inf`` when the
        reordering does not improve the kernel.
        """
        if self.baseline is None:
            return None
        return amortization_iterations(
            self.reorder_seconds,
            self.baseline.modeled_seconds,
            self.model.modeled_seconds,
        )


def reorder_and_evaluate(
    matrix: Union[CSRMatrix, Graph],
    technique: Union[str, ReorderingTechnique],
    kernel: Union[str, KernelSpec] = "spmv-csr",
    platform: PlatformSpec = SCALED_A6000,
    policy: str = "lru",
    impl: Optional[str] = None,
    compare_baseline: bool = True,
) -> ReorderEvaluation:
    """Reorder ``matrix`` with ``technique`` and model the result.

    Times the permutation computation (wall clock) and, when
    ``compare_baseline`` is set, also models the un-reordered matrix so
    ``speedup`` and ``break_even_iterations`` are available.
    """
    graph = matrix if isinstance(matrix, Graph) else Graph(matrix)
    name = technique if isinstance(technique, str) else technique.name
    if isinstance(technique, str):
        technique = make_technique(technique)
    start = time.perf_counter()
    perm = technique.compute(graph)
    reorder_seconds = time.perf_counter() - start
    reordered = permute_symmetric(graph.adjacency, perm)
    model = evaluate_ordering(
        reordered, kernel=kernel, platform=platform, policy=policy, impl=impl
    )
    baseline = None
    if compare_baseline:
        baseline = evaluate_ordering(
            graph, kernel=kernel, platform=platform, policy=policy, impl=impl
        )
    return ReorderEvaluation(
        technique=name,
        permutation=perm,
        matrix=reordered,
        model=model,
        reorder_seconds=reorder_seconds,
        baseline=baseline,
    )


@dataclass
class Recommendation:
    """Predictor-backed answer to "is reordering this matrix worth it?".

    Produced without computing a single candidate reordering: every
    number is a structural-feature prediction anchored to absolute
    seconds by the kernel's closed-form compulsory traffic.  ``chosen``
    is :data:`BASELINE_TECHNIQUE` when no candidate is predicted to
    beat the no-reordering baseline over the ``iterations`` horizon.
    """

    kernel: str
    platform: str
    iterations: int
    #: Predicted per-run modeled seconds of the original order.
    baseline_seconds: float
    #: One row per candidate: ``technique``, ``reorder_seconds``,
    #: ``modeled_seconds``, ``speedup``, ``traffic_reduction``,
    #: ``total_seconds``, ``amortization_iterations`` (None = never).
    candidates: List[Dict[str, object]] = field(default_factory=list)
    chosen: str = BASELINE_TECHNIQUE
    reorder_worth_it: bool = False

    @property
    def best(self) -> Optional[Dict[str, object]]:
        """The chosen candidate's row (``None`` for the baseline)."""
        for row in self.candidates:
            if row["technique"] == self.chosen:
                return row
        return None

    def to_json(self) -> Dict[str, object]:
        """Serve-schema recommendation dict (``predicted: True``)."""
        return {
            "iterations": self.iterations,
            "predicted": True,
            "baseline": {
                "technique": BASELINE_TECHNIQUE,
                "modeled_seconds": self.baseline_seconds,
                "total_seconds": self.iterations * self.baseline_seconds,
            },
            "candidates": self.candidates,
            "reorder_worth_it": self.reorder_worth_it,
            "chosen": self.chosen,
        }


def recommendation_from_features(
    predictor,
    features: Dict[str, float],
    ideal_seconds: float,
    iterations: int = 100,
    candidates: Optional[Sequence[str]] = None,
) -> Recommendation:
    """Predictor core shared by :func:`recommend` and the serve tier.

    ``features`` comes from
    :func:`repro.predict.features.structural_features` and
    ``ideal_seconds`` from
    :func:`repro.predict.features.analytic_ideal_seconds` — the only
    two per-matrix computations on the whole path.  Total cost of a
    candidate over the horizon is ``reorder_seconds + iterations *
    modeled_seconds``; the cheapest-to-compute candidate within
    :data:`CHEAP_TOLERANCE` of the best total wins; if no candidate is
    predicted to beat the baseline, reordering is not worth paying for.
    """
    if iterations < 1:
        raise ValidationError(f"iterations must be >= 1, got {iterations}")
    names = tuple(candidates) if candidates is not None else predictor.techniques
    baseline_seconds = ideal_seconds * predictor.predict_baseline_norm_runtime(features)
    baseline_total = iterations * baseline_seconds
    rows: List[Dict[str, object]] = []
    for candidate in names:
        cell = predictor.predict_cell(features, candidate)
        modeled = baseline_seconds * max(cell["runtime_ratio"], 1e-12)
        reorder_seconds = max(cell["reorder_seconds"], 0.0)
        amort = amortization_iterations(reorder_seconds, baseline_seconds, modeled)
        rows.append(
            {
                "technique": candidate,
                "reorder_seconds": reorder_seconds,
                "modeled_seconds": modeled,
                "speedup": baseline_seconds / modeled,
                "traffic_reduction": cell["traffic_reduction"],
                "total_seconds": reorder_seconds + iterations * modeled,
                "amortization_iterations": (
                    None if amort == float("inf") else amort
                ),
            }
        )
    chosen = BASELINE_TECHNIQUE
    worth_it = False
    if rows:
        best_total = min(float(row["total_seconds"]) for row in rows)
        worth_it = best_total < baseline_total
        if worth_it:
            for row in rows:  # candidates are ordered lightweight-first
                if float(row["total_seconds"]) <= best_total * (1 + CHEAP_TOLERANCE):
                    chosen = str(row["technique"])
                    break
    return Recommendation(
        kernel=predictor.kernel,
        platform=predictor.platform,
        iterations=iterations,
        baseline_seconds=baseline_seconds,
        candidates=rows,
        chosen=chosen,
        reorder_worth_it=worth_it,
    )


def recommend(
    matrix: Union[CSRMatrix, Graph],
    kernel: Union[str, KernelSpec] = "spmv-csr",
    profile: str = "bench",
    iterations: int = 100,
    candidates: Optional[Sequence[str]] = None,
    predictor=None,
) -> Recommendation:
    """Should this matrix be reordered, and with which technique?

    Runs zero candidate reorderings: one community detection (for the
    insularity features), one closed-form compulsory-traffic
    computation, then a handful of dot products through the pretrained
    effectiveness predictor for ``(profile, kernel)``.  When no
    pretrained coefficient set is committed for that pair, one is
    fitted on the profile's corpus (slow the first time, cached by the
    experiment runner thereafter).
    """
    from repro.gpu.specs import scaled_platform
    from repro.predict.features import analytic_ideal_seconds, structural_features
    from repro.predict.pretrained import load_pretrained
    from repro.predict.validate import fit_predictor

    spec = KernelSpec.coerce(kernel)
    if predictor is None:
        predictor = load_pretrained(profile, spec.name)
    if predictor is None:
        predictor = fit_predictor(profile=profile, kernel=spec.name)
    platform = scaled_platform(profile)
    graph = matrix if isinstance(matrix, Graph) else Graph(matrix)
    features = structural_features(graph, platform)
    ideal = analytic_ideal_seconds(graph, spec, platform)
    return recommendation_from_features(
        predictor,
        features,
        ideal,
        iterations=iterations,
        candidates=candidates,
    )
