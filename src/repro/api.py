"""High-level convenience API.

Most downstream users want two operations: "reorder this matrix with
technique X" and "how good is this ordering on the modeled platform".
These helpers wire the pipeline together so neither requires touching
the trace or simulator layers directly.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.gpu.perf import KernelRunModel, model_run
from repro.gpu.specs import PlatformSpec, SCALED_A6000
from repro.graphs.graph import Graph
from repro.reorder.base import ReorderingTechnique
from repro.reorder.registry import make_technique
from repro.sparse.csr import CSRMatrix
from repro.sparse.permute import permute_symmetric
from repro.trace.kernelspec import KernelSpec


def reorder_matrix(
    matrix: Union[CSRMatrix, Graph],
    technique: Union[str, ReorderingTechnique],
) -> CSRMatrix:
    """Apply a reordering technique and return the permuted matrix."""
    graph = matrix if isinstance(matrix, Graph) else Graph(matrix)
    if isinstance(technique, str):
        technique = make_technique(technique)
    perm = technique.compute(graph)
    return permute_symmetric(graph.adjacency, perm)


def evaluate_ordering(
    matrix: Union[CSRMatrix, Graph],
    permutation: Optional[np.ndarray] = None,
    kernel: Union[str, KernelSpec] = "spmv-csr",
    platform: PlatformSpec = SCALED_A6000,
    policy: str = "lru",
    impl: Optional[str] = None,
) -> KernelRunModel:
    """Model one kernel run of (optionally permuted) ``matrix``.

    ``permutation`` is ``perm[old_id] == new_id``; ``None`` evaluates
    the matrix as-is.  ``kernel`` is a :class:`KernelSpec` or a
    canonical kernel name (validated by :meth:`KernelSpec.parse`);
    ``impl`` selects the simulator engine (see
    :func:`repro.cache.simulate`).  Returns the full
    :class:`KernelRunModel`, whose ``normalized_traffic`` /
    ``normalized_runtime`` properties correspond to the paper's
    headline metrics.
    """
    spec = KernelSpec.coerce(kernel)
    csr = matrix.adjacency if isinstance(matrix, Graph) else matrix
    if permutation is not None:
        csr = permute_symmetric(csr, permutation)
    trace = spec.build_trace(csr, platform)
    return model_run(trace, platform, policy=policy, impl=impl)
