"""Conjugate gradient over the CSR SpMV kernel."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.sparse.csr import CSRMatrix
from repro.sparse.kernels import spmv_csr


@dataclass
class SolveResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: List[float]


def conjugate_gradient(
    matrix: CSRMatrix,
    b: np.ndarray,
    tolerance: float = 1e-8,
    max_iterations: int = 1000,
    x0: np.ndarray = None,
) -> SolveResult:
    """Solve ``A x = b`` for symmetric positive-definite ``A``.

    Each iteration performs exactly one SpMV — the kernel whose memory
    behaviour the rest of the library models — so ``iterations`` plugs
    straight into the amortization analysis of paper Section VI-C.
    """
    if not matrix.is_square:
        raise ShapeError(f"CG needs a square matrix, got {matrix.shape}")
    if tolerance <= 0:
        raise ValidationError(f"tolerance must be positive, got {tolerance}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (matrix.n_rows,):
        raise ShapeError(f"rhs has shape {b.shape}, expected ({matrix.n_rows},)")

    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - spmv_csr(matrix, x)
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    history = [float(np.sqrt(rs_old)) / b_norm]

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        ap = spmv_csr(matrix, p)
        denominator = float(p @ ap)
        if denominator <= 0.0:
            # Not SPD (or numerically singular): stop early, report state.
            return SolveResult(x, iterations - 1, False, history[-1], history)
        alpha = rs_old / denominator
        x = x + alpha * p
        r = r - alpha * ap
        rs_new = float(r @ r)
        history.append(float(np.sqrt(rs_new)) / b_norm)
        if history[-1] < tolerance:
            return SolveResult(x, iterations, True, history[-1], history)
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    return SolveResult(x, iterations, False, history[-1], history)
