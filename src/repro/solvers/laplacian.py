"""Graph Laplacian construction.

``L = D - A`` of an undirected graph is symmetric positive
semi-definite; ``L + epsilon * I`` is SPD and the canonical test
system for conjugate gradient over our corpus graphs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.graphs.graph import Graph
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def graph_laplacian(graph: Graph, shift: float = 0.0) -> CSRMatrix:
    """``L = D - A (+ shift * I)`` over the undirected view of ``graph``.

    ``shift > 0`` yields a strictly positive-definite matrix suitable
    for conjugate gradient.
    """
    undirected = graph.to_undirected()
    adjacency = undirected.adjacency
    if not adjacency.is_square:
        raise ShapeError(f"Laplacian needs a square adjacency, got {adjacency.shape}")
    n = adjacency.n_rows
    row_of_entry = np.repeat(np.arange(n, dtype=np.int64), np.diff(adjacency.row_offsets))
    degrees = np.zeros(n, dtype=np.float64)
    np.add.at(degrees, row_of_entry, adjacency.values)

    rows = np.concatenate([row_of_entry, np.arange(n, dtype=np.int64)])
    cols = np.concatenate([adjacency.col_indices, np.arange(n, dtype=np.int64)])
    values = np.concatenate([-adjacency.values, degrees + shift])
    return coo_to_csr(COOMatrix(n, n, rows, cols, values))
