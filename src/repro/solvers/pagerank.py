"""PageRank power iteration over the CSR SpMV kernel.

Graph analytics is the other workload family the reordering literature
targets (DBG, GOrder and HubCluster were all evaluated on PageRank);
each power iteration is one SpMV on the column-stochastic transition
matrix, so the locality model applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.coo import COOMatrix
from repro.sparse.kernels import spmv_csr


@dataclass
class PageRankResult:
    scores: np.ndarray
    iterations: int
    converged: bool
    delta: float


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    tolerance: float = 1e-8,
    max_iterations: int = 200,
) -> PageRankResult:
    """Power-iteration PageRank with uniform teleport.

    Dangling nodes (no out-links) redistribute uniformly.  Scores sum
    to 1.
    """
    if not 0.0 < damping < 1.0:
        raise ValidationError(f"damping must be in (0, 1), got {damping}")
    if tolerance <= 0:
        raise ValidationError(f"tolerance must be positive, got {tolerance}")
    n = graph.n_nodes
    if n == 0:
        return PageRankResult(np.empty(0), 0, True, 0.0)

    # Column-stochastic transition matrix P = A^T with columns scaled
    # by *weighted* out-degree (entry weights may exceed 1, e.g. after
    # symmetrization), stored as CSR so each iteration is spmv_csr(P, x).
    adjacency = graph.adjacency
    coo = csr_to_coo(adjacency)
    out_weight = np.zeros(n, dtype=np.float64)
    np.add.at(out_weight, coo.rows, coo.values)
    scale = np.where(out_weight[coo.rows] > 0, 1.0 / out_weight[coo.rows], 0.0)
    transition = coo_to_csr(
        COOMatrix(n, n, coo.cols, coo.rows, coo.values * scale)
    )
    dangling = out_weight == 0

    scores = np.full(n, 1.0 / n)
    iterations = 0
    delta = 0.0
    for iterations in range(1, max_iterations + 1):
        dangling_mass = float(scores[dangling].sum())
        new_scores = damping * (
            spmv_csr(transition, scores) + dangling_mass / n
        ) + (1.0 - damping) / n
        delta = float(np.abs(new_scores - scores).sum())
        scores = new_scores
        if delta < tolerance:
            return PageRankResult(scores, iterations, True, delta)
    return PageRankResult(scores, iterations, False, delta)
