"""Iterative solvers and graph workloads built on the sparse kernels.

These are the downstream consumers that amortize reordering cost
(paper Section VI-C: "it can be amortized across multiple iterations
of the same kernel"): conjugate gradient and Jacobi for linear
systems, and PageRank-style power iteration for graph analytics.
Every iteration is one SpMV, so the per-iteration DRAM model of
:mod:`repro.gpu` composes directly with the iteration counts measured
here.
"""

from repro.solvers.cg import conjugate_gradient, SolveResult
from repro.solvers.jacobi import jacobi
from repro.solvers.pagerank import pagerank, PageRankResult
from repro.solvers.laplacian import graph_laplacian

__all__ = [
    "PageRankResult",
    "SolveResult",
    "conjugate_gradient",
    "graph_laplacian",
    "jacobi",
    "pagerank",
]
