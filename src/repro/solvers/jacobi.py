"""Jacobi iteration over the CSR SpMV kernel."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.solvers.cg import SolveResult
from repro.sparse.csr import CSRMatrix
from repro.sparse.kernels import spmv_csr


def jacobi(
    matrix: CSRMatrix,
    b: np.ndarray,
    tolerance: float = 1e-8,
    max_iterations: int = 2000,
) -> SolveResult:
    """Solve ``A x = b`` by Jacobi iteration (requires nonzero diagonal).

    ``x_{k+1} = D^{-1} (b - (A - D) x_k)``; converges for strictly
    diagonally dominant systems such as shifted graph Laplacians.
    """
    if not matrix.is_square:
        raise ShapeError(f"Jacobi needs a square matrix, got {matrix.shape}")
    if tolerance <= 0:
        raise ValidationError(f"tolerance must be positive, got {tolerance}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (matrix.n_rows,):
        raise ShapeError(f"rhs has shape {b.shape}, expected ({matrix.n_rows},)")

    diagonal = _diagonal(matrix)
    if np.any(diagonal == 0.0):
        raise ValidationError("Jacobi requires a nonzero diagonal")

    x = np.zeros_like(b)
    b_norm = float(np.linalg.norm(b)) or 1.0
    history = []
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        ax = spmv_csr(matrix, x)
        residual = float(np.linalg.norm(b - ax)) / b_norm
        history.append(residual)
        if residual < tolerance:
            return SolveResult(x, iterations - 1, True, residual, history)
        x = x + (b - ax) / diagonal
    residual = float(np.linalg.norm(b - spmv_csr(matrix, x))) / b_norm
    history.append(residual)
    return SolveResult(x, iterations, residual < tolerance, residual, history)


def _diagonal(matrix: CSRMatrix) -> np.ndarray:
    diagonal = np.zeros(matrix.n_rows, dtype=np.float64)
    for row in range(matrix.n_rows):
        cols = matrix.row_slice(row)
        vals = matrix.row_values(row)
        on_diag = cols == row
        if on_diag.any():
            diagonal[row] = float(vals[on_diag].sum())
    return diagonal
