"""Graph substrate: graph view, generators, I/O, and the input corpus.

The paper treats graphs and matrices interchangeably (nodes are
rows/columns, edges are non-zeros).  This subpackage provides the graph
view over CSR storage, deterministic synthetic generators spanning the
structural categories of the paper's 50-matrix corpus, Matrix-Market
I/O, and the corpus registry with the Section III selection criteria.
"""

from repro.graphs.graph import Graph
from repro.graphs.corpus import (
    CorpusEntry,
    corpus_entries,
    corpus_names,
    load_matrix,
    selection_report,
)
from repro.graphs.io import read_matrix_market, write_matrix_market

__all__ = [
    "CorpusEntry",
    "Graph",
    "corpus_entries",
    "corpus_names",
    "load_matrix",
    "read_matrix_market",
    "selection_report",
    "write_matrix_market",
]
