"""Graph substrate: graph view, generators, I/O, and the input corpus.

The paper treats graphs and matrices interchangeably (nodes are
rows/columns, edges are non-zeros).  This subpackage provides the graph
view over CSR storage, deterministic synthetic generators spanning the
structural categories of the paper's 50-matrix corpus, Matrix-Market
I/O, and the corpus registry with the Section III selection criteria.
"""

from repro.graphs.graph import Graph
from repro.graphs.corpus import (
    CorpusEntry,
    corpus_entries,
    corpus_names,
    load_matrix,
    selection_report,
)
from repro.graphs.matrixcache import (
    MIN_CACHE_SCALE,
    build_rmat_cache,
    cached_rmat_graph,
    load_cached_graph,
    rmat_cache_key,
)
from repro.graphs.io import (
    MtxHeader,
    iter_matrix_market_chunks,
    mtx_to_memmap_csr,
    read_matrix_market,
    scan_matrix_market_header,
    write_matrix_market,
)

__all__ = [
    "CorpusEntry",
    "Graph",
    "MIN_CACHE_SCALE",
    "MtxHeader",
    "build_rmat_cache",
    "cached_rmat_graph",
    "corpus_entries",
    "corpus_names",
    "iter_matrix_market_chunks",
    "load_cached_graph",
    "load_matrix",
    "rmat_cache_key",
    "mtx_to_memmap_csr",
    "read_matrix_market",
    "scan_matrix_market_header",
    "selection_report",
    "write_matrix_market",
]
