"""Matrix Market (``.mtx``) reader and writer.

SuiteSparse — the paper's main matrix repository — distributes matrices
in the Matrix Market exchange format, so the corpus tooling can both
export its synthetic matrices and ingest real SuiteSparse downloads
when they are available.  Supports the ``coordinate`` format with
``real``, ``integer`` and ``pattern`` fields and ``general`` or
``symmetric`` symmetry.
"""

from __future__ import annotations

import io
import os
from typing import List, TextIO, Union

import numpy as np

from repro.errors import FormatError
from repro.sparse.coo import COOMatrix

PathOrFile = Union[str, "os.PathLike[str]", TextIO]

_FIELDS = ("real", "integer", "pattern")
_SYMMETRIES = ("general", "symmetric")


def read_matrix_market(source: PathOrFile) -> COOMatrix:
    """Parse a Matrix Market coordinate file into a :class:`COOMatrix`.

    Symmetric files are expanded: every off-diagonal entry also yields
    its mirrored entry, matching SuiteSparse semantics.

    Parsing is two-tier: a bulk tokenizer handles well-formed files
    (whole-body split plus vectorized numeric conversion — roughly an
    order of magnitude faster than line-at-a-time parsing), and any
    structural surprise falls back to the reference line-by-line parser,
    which either handles the oddity (ragged extra tokens, exotic
    spellings the bulk converter rejects) or raises the precise error.

    Parse failures raise :class:`FormatError` prefixed with the source
    path and the 1-based line number of the offending line
    (``corpus/web.mtx:48312: ...``), so a bad file in a corpus-scale
    load is actionable without bisecting it by hand.
    """
    if hasattr(source, "read"):
        name = getattr(source, "name", None) or "<stream>"
        text = source.read()  # type: ignore[union-attr]
        return _read_text(text, str(name))
    path = os.fspath(source)  # type: ignore[arg-type]
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return _read_text(text, str(path))


class _Fallback(Exception):
    """Internal: bulk parse hit something only the slow path resolves."""


def _read_text(text: str, source: str) -> COOMatrix:
    try:
        return _parse_bulk(text)
    except _Fallback:
        # Reparse line-by-line: either the reference parser copes with
        # the irregularity, or it raises with the exact line number.
        return _read_stream(io.StringIO(text), source)


def _parse_bulk(text: str) -> COOMatrix:
    """Vectorized parse of a well-formed file; raises ``_Fallback`` else."""
    newline = text.find("\n")
    header = text[:newline] if newline >= 0 else text
    tokens = header.split()
    if not header.startswith("%%MatrixMarket") or len(tokens) != 5:
        raise _Fallback
    _, object_kind, fmt, field, symmetry = (token.lower() for token in tokens)
    if (
        object_kind != "matrix"
        or fmt != "coordinate"
        or field not in _FIELDS
        or symmetry not in _SYMMETRIES
    ):
        raise _Fallback

    body = text[newline + 1:] if newline >= 0 else ""
    data = [s for line in body.split("\n") if (s := line.strip()) and s[0] != "%"]
    if not data:
        raise _Fallback
    size_parts = data[0].split()
    if len(size_parts) != 3:
        raise _Fallback
    try:
        n_rows, n_cols, n_entries = (int(part) for part in size_parts)
    except ValueError:
        raise _Fallback from None
    if len(data) - 1 < n_entries or n_entries < 0:
        raise _Fallback

    if n_entries == 0:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
        return COOMatrix(n_rows, n_cols, rows, cols, values)

    # ``np.loadtxt``'s C tokenizer does the heavy lifting: the
    # structured dtype enforces strict per-column parsing (an integer
    # column rejects ``1e3``/``2.0``, ragged lines reject the whole
    # file) so any irregularity lands in the fallback instead of a
    # silent column misalignment.  ``comments=None`` keeps a stray
    # ``#`` from truncating a line the reference parser would reject.
    if field == "pattern":
        dtype = [("row", np.int64), ("col", np.int64)]
    else:
        dtype = [("row", np.int64), ("col", np.int64), ("value", np.float64)]
    try:
        table = np.loadtxt(
            data[1: 1 + n_entries], dtype=dtype, comments=None, ndmin=1
        )
    except Exception:
        raise _Fallback from None
    if table.shape[0] != n_entries:
        raise _Fallback
    rows = table["row"] - 1
    cols = table["col"] - 1
    if field == "pattern":
        values = np.ones(n_entries, dtype=np.float64)
    else:
        values = table["value"]

    if symmetry == "symmetric":
        # Expand mirrors *interleaved* — each off-diagonal entry is
        # immediately followed by its transpose, matching the reference
        # parser's append order entry for entry.
        entry = np.repeat(
            np.arange(n_entries, dtype=np.int64), 1 + (rows != cols)
        )
        mirror = np.zeros(entry.size, dtype=bool)
        mirror[1:] = entry[1:] == entry[:-1]
        out_rows = rows[entry]
        out_cols = cols[entry]
        out_rows[mirror] = cols[entry[mirror]]
        out_cols[mirror] = rows[entry[mirror]]
        rows, cols, values = out_rows, out_cols, values[entry]

    return COOMatrix(n_rows, n_cols, rows, cols, values)


class _LineReader:
    """Line iterator that remembers the 1-based number of the last line."""

    def __init__(self, handle: TextIO) -> None:
        self._handle = handle
        self.lineno = 0

    def next_data_line(self) -> Union[str, None]:
        """Next non-comment, non-blank line, or None at end of file."""
        for line in self._handle:
            self.lineno += 1
            stripped = line.strip()
            if stripped and not stripped.startswith("%"):
                return stripped
        return None


def _read_stream(handle: TextIO, source: str = "<stream>") -> COOMatrix:
    reader = _LineReader(handle)

    def fail(message: str) -> FormatError:
        return FormatError(f"{source}:{reader.lineno}: {message}")

    header = handle.readline()
    reader.lineno = 1
    if not header.startswith("%%MatrixMarket"):
        raise fail(f"not a Matrix Market file (header: {header.strip()!r})")
    tokens = header.strip().split()
    if len(tokens) != 5:
        raise fail(f"malformed Matrix Market header: {header.strip()!r}")
    _, object_kind, fmt, field, symmetry = (token.lower() for token in tokens)
    if object_kind != "matrix" or fmt != "coordinate":
        raise fail(
            f"only 'matrix coordinate' files are supported, got {object_kind} {fmt}"
        )
    if field not in _FIELDS:
        raise fail(f"unsupported field {field!r}; supported: {_FIELDS}")
    if symmetry not in _SYMMETRIES:
        raise fail(f"unsupported symmetry {symmetry!r}; supported: {_SYMMETRIES}")

    size_line = reader.next_data_line()
    if size_line is None:
        raise fail("missing size line")
    parts = size_line.split()
    if len(parts) != 3:
        raise fail(f"malformed size line: {size_line!r}")
    try:
        n_rows, n_cols, n_entries = (int(part) for part in parts)
    except ValueError as exc:
        raise fail(f"non-integer size line {size_line!r}: {exc}") from exc

    rows: List[int] = []
    cols: List[int] = []
    values: List[float] = []
    for _ in range(n_entries):
        line = reader.next_data_line()
        if line is None:
            raise fail(
                f"file ended after {len(rows)} of {n_entries} declared entries"
            )
        fields = line.split()
        if field == "pattern":
            if len(fields) < 2:
                raise fail(f"malformed pattern entry: {line!r}")
            value = 1.0
        else:
            if len(fields) < 3:
                raise fail(f"malformed entry: {line!r}")
            try:
                value = float(fields[2])
            except ValueError as exc:
                raise fail(f"non-numeric value in entry {line!r}: {exc}") from exc
        try:
            row = int(fields[0]) - 1
            col = int(fields[1]) - 1
        except ValueError as exc:
            raise fail(f"non-integer coordinate in entry {line!r}: {exc}") from exc
        rows.append(row)
        cols.append(col)
        values.append(value)
        if symmetry == "symmetric" and row != col:
            rows.append(col)
            cols.append(row)
            values.append(value)

    return COOMatrix(
        n_rows,
        n_cols,
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(values, dtype=np.float64),
    )


def write_matrix_market(matrix: COOMatrix, destination: PathOrFile, comment: str = "") -> None:
    """Write a :class:`COOMatrix` as a general, real coordinate file."""
    if hasattr(destination, "write"):
        _write_stream(matrix, destination, comment)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as handle:
        _write_stream(matrix, handle, comment)


def _write_stream(matrix: COOMatrix, handle: TextIO, comment: str) -> None:
    handle.write("%%MatrixMarket matrix coordinate real general\n")
    for line in comment.splitlines():
        handle.write(f"% {line}\n")
    handle.write(f"{matrix.n_rows} {matrix.n_cols} {matrix.nnz}\n")
    for row, col, value in zip(matrix.rows, matrix.cols, matrix.values):
        handle.write(f"{int(row) + 1} {int(col) + 1} {value:.17g}\n")
