"""Matrix Market (``.mtx``) reader and writer.

SuiteSparse — the paper's main matrix repository — distributes matrices
in the Matrix Market exchange format, so the corpus tooling can both
export its synthetic matrices and ingest real SuiteSparse downloads
when they are available.  Supports the ``coordinate`` format with
``real``, ``integer`` and ``pattern`` fields and ``general`` or
``symmetric`` symmetry.
"""

from __future__ import annotations

import os
from typing import List, TextIO, Union

import numpy as np

from repro.errors import FormatError
from repro.sparse.coo import COOMatrix

PathOrFile = Union[str, "os.PathLike[str]", TextIO]

_FIELDS = ("real", "integer", "pattern")
_SYMMETRIES = ("general", "symmetric")


def read_matrix_market(source: PathOrFile) -> COOMatrix:
    """Parse a Matrix Market coordinate file into a :class:`COOMatrix`.

    Symmetric files are expanded: every off-diagonal entry also yields
    its mirrored entry, matching SuiteSparse semantics.

    Parse failures raise :class:`FormatError` prefixed with the source
    path and the 1-based line number of the offending line
    (``corpus/web.mtx:48312: ...``), so a bad file in a corpus-scale
    load is actionable without bisecting it by hand.
    """
    if hasattr(source, "read"):
        name = getattr(source, "name", None) or "<stream>"
        return _read_stream(source, str(name))  # type: ignore[arg-type]
    path = os.fspath(source)  # type: ignore[arg-type]
    with open(path, "r", encoding="utf-8") as handle:
        return _read_stream(handle, str(path))


class _LineReader:
    """Line iterator that remembers the 1-based number of the last line."""

    def __init__(self, handle: TextIO) -> None:
        self._handle = handle
        self.lineno = 0

    def next_data_line(self) -> Union[str, None]:
        """Next non-comment, non-blank line, or None at end of file."""
        for line in self._handle:
            self.lineno += 1
            stripped = line.strip()
            if stripped and not stripped.startswith("%"):
                return stripped
        return None


def _read_stream(handle: TextIO, source: str = "<stream>") -> COOMatrix:
    reader = _LineReader(handle)

    def fail(message: str) -> FormatError:
        return FormatError(f"{source}:{reader.lineno}: {message}")

    header = handle.readline()
    reader.lineno = 1
    if not header.startswith("%%MatrixMarket"):
        raise fail(f"not a Matrix Market file (header: {header.strip()!r})")
    tokens = header.strip().split()
    if len(tokens) != 5:
        raise fail(f"malformed Matrix Market header: {header.strip()!r}")
    _, object_kind, fmt, field, symmetry = (token.lower() for token in tokens)
    if object_kind != "matrix" or fmt != "coordinate":
        raise fail(
            f"only 'matrix coordinate' files are supported, got {object_kind} {fmt}"
        )
    if field not in _FIELDS:
        raise fail(f"unsupported field {field!r}; supported: {_FIELDS}")
    if symmetry not in _SYMMETRIES:
        raise fail(f"unsupported symmetry {symmetry!r}; supported: {_SYMMETRIES}")

    size_line = reader.next_data_line()
    if size_line is None:
        raise fail("missing size line")
    parts = size_line.split()
    if len(parts) != 3:
        raise fail(f"malformed size line: {size_line!r}")
    try:
        n_rows, n_cols, n_entries = (int(part) for part in parts)
    except ValueError as exc:
        raise fail(f"non-integer size line {size_line!r}: {exc}") from exc

    rows: List[int] = []
    cols: List[int] = []
    values: List[float] = []
    for _ in range(n_entries):
        line = reader.next_data_line()
        if line is None:
            raise fail(
                f"file ended after {len(rows)} of {n_entries} declared entries"
            )
        fields = line.split()
        if field == "pattern":
            if len(fields) < 2:
                raise fail(f"malformed pattern entry: {line!r}")
            value = 1.0
        else:
            if len(fields) < 3:
                raise fail(f"malformed entry: {line!r}")
            try:
                value = float(fields[2])
            except ValueError as exc:
                raise fail(f"non-numeric value in entry {line!r}: {exc}") from exc
        try:
            row = int(fields[0]) - 1
            col = int(fields[1]) - 1
        except ValueError as exc:
            raise fail(f"non-integer coordinate in entry {line!r}: {exc}") from exc
        rows.append(row)
        cols.append(col)
        values.append(value)
        if symmetry == "symmetric" and row != col:
            rows.append(col)
            cols.append(row)
            values.append(value)

    return COOMatrix(
        n_rows,
        n_cols,
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(values, dtype=np.float64),
    )


def write_matrix_market(matrix: COOMatrix, destination: PathOrFile, comment: str = "") -> None:
    """Write a :class:`COOMatrix` as a general, real coordinate file."""
    if hasattr(destination, "write"):
        _write_stream(matrix, destination, comment)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as handle:
        _write_stream(matrix, handle, comment)


def _write_stream(matrix: COOMatrix, handle: TextIO, comment: str) -> None:
    handle.write("%%MatrixMarket matrix coordinate real general\n")
    for line in comment.splitlines():
        handle.write(f"% {line}\n")
    handle.write(f"{matrix.n_rows} {matrix.n_cols} {matrix.nnz}\n")
    for row, col, value in zip(matrix.rows, matrix.cols, matrix.values):
        handle.write(f"{int(row) + 1} {int(col) + 1} {value:.17g}\n")
