"""Matrix Market (``.mtx``) reader and writer.

SuiteSparse — the paper's main matrix repository — distributes matrices
in the Matrix Market exchange format, so the corpus tooling can both
export its synthetic matrices and ingest real SuiteSparse downloads
when they are available.  Supports the ``coordinate`` format with
``real``, ``integer`` and ``pattern`` fields and ``general`` or
``symmetric`` symmetry.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, TextIO, Tuple, Union

import numpy as np

from repro.errors import FormatError
from repro.sparse.coo import COOMatrix

PathOrFile = Union[str, "os.PathLike[str]", TextIO]

_FIELDS = ("real", "integer", "pattern")
_SYMMETRIES = ("general", "symmetric")

#: Entries per chunk for :func:`iter_matrix_market_chunks`.  1M entries
#: keeps the resident text + parsed arrays around ~100 MB regardless of
#: file size.
DEFAULT_CHUNK_ENTRIES = 1 << 20


def read_matrix_market(source: PathOrFile) -> COOMatrix:
    """Parse a Matrix Market coordinate file into a :class:`COOMatrix`.

    Symmetric files are expanded: every off-diagonal entry also yields
    its mirrored entry, matching SuiteSparse semantics.

    Parsing is two-tier: a bulk tokenizer handles well-formed files
    (whole-body split plus vectorized numeric conversion — roughly an
    order of magnitude faster than line-at-a-time parsing), and any
    structural surprise falls back to the reference line-by-line parser,
    which either handles the oddity (ragged extra tokens, exotic
    spellings the bulk converter rejects) or raises the precise error.

    Parse failures raise :class:`FormatError` prefixed with the source
    path and the 1-based line number of the offending line
    (``corpus/web.mtx:48312: ...``), so a bad file in a corpus-scale
    load is actionable without bisecting it by hand.
    """
    if hasattr(source, "read"):
        name = getattr(source, "name", None) or "<stream>"
        text = source.read()  # type: ignore[union-attr]
        return _read_text(text, str(name))
    path = os.fspath(source)  # type: ignore[arg-type]
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return _read_text(text, str(path))


class _Fallback(Exception):
    """Internal: bulk parse hit something only the slow path resolves."""


def _read_text(text: str, source: str) -> COOMatrix:
    try:
        return _parse_bulk(text)
    except _Fallback:
        # Reparse line-by-line: either the reference parser copes with
        # the irregularity, or it raises with the exact line number.
        return _read_stream(io.StringIO(text), source)


def _parse_bulk(text: str) -> COOMatrix:
    """Vectorized parse of a well-formed file; raises ``_Fallback`` else."""
    newline = text.find("\n")
    header = text[:newline] if newline >= 0 else text
    tokens = header.split()
    if not header.startswith("%%MatrixMarket") or len(tokens) != 5:
        raise _Fallback
    _, object_kind, fmt, field, symmetry = (token.lower() for token in tokens)
    if (
        object_kind != "matrix"
        or fmt != "coordinate"
        or field not in _FIELDS
        or symmetry not in _SYMMETRIES
    ):
        raise _Fallback

    body = text[newline + 1:] if newline >= 0 else ""
    data = [s for line in body.split("\n") if (s := line.strip()) and s[0] != "%"]
    if not data:
        raise _Fallback
    size_parts = data[0].split()
    if len(size_parts) != 3:
        raise _Fallback
    try:
        n_rows, n_cols, n_entries = (int(part) for part in size_parts)
    except ValueError:
        raise _Fallback from None
    if len(data) - 1 < n_entries or n_entries < 0:
        raise _Fallback

    if n_entries == 0:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
        return COOMatrix(n_rows, n_cols, rows, cols, values)

    # ``np.loadtxt``'s C tokenizer does the heavy lifting: the
    # structured dtype enforces strict per-column parsing (an integer
    # column rejects ``1e3``/``2.0``, ragged lines reject the whole
    # file) so any irregularity lands in the fallback instead of a
    # silent column misalignment.  ``comments=None`` keeps a stray
    # ``#`` from truncating a line the reference parser would reject.
    if field == "pattern":
        dtype = [("row", np.int64), ("col", np.int64)]
    else:
        dtype = [("row", np.int64), ("col", np.int64), ("value", np.float64)]
    try:
        table = np.loadtxt(
            data[1: 1 + n_entries], dtype=dtype, comments=None, ndmin=1
        )
    except Exception:
        raise _Fallback from None
    if table.shape[0] != n_entries:
        raise _Fallback
    rows = table["row"] - 1
    cols = table["col"] - 1
    if field == "pattern":
        values = np.ones(n_entries, dtype=np.float64)
    else:
        values = table["value"]

    if symmetry == "symmetric":
        rows, cols, values = _expand_symmetric(rows, cols, values)

    return COOMatrix(n_rows, n_cols, rows, cols, values)


def _expand_symmetric(
    rows: np.ndarray, cols: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand mirrors *interleaved* — each off-diagonal entry is
    immediately followed by its transpose, matching the reference
    parser's append order entry for entry."""
    entry = np.repeat(np.arange(rows.size, dtype=np.int64), 1 + (rows != cols))
    mirror = np.zeros(entry.size, dtype=bool)
    mirror[1:] = entry[1:] == entry[:-1]
    out_rows = rows[entry]
    out_cols = cols[entry]
    out_rows[mirror] = cols[entry[mirror]]
    out_cols[mirror] = rows[entry[mirror]]
    return out_rows, out_cols, values[entry]


class _LineReader:
    """Line iterator that remembers the 1-based number of the last line."""

    def __init__(self, handle: TextIO) -> None:
        self._handle = handle
        self.lineno = 0

    def next_data_line(self) -> Union[str, None]:
        """Next non-comment, non-blank line, or None at end of file."""
        for line in self._handle:
            self.lineno += 1
            stripped = line.strip()
            if stripped and not stripped.startswith("%"):
                return stripped
        return None


@dataclass(frozen=True)
class MtxHeader:
    """Parsed Matrix Market preamble (banner + size line)."""

    field: str
    symmetry: str
    n_rows: int
    n_cols: int
    n_entries: int


def _parse_preamble(
    handle: TextIO, reader: _LineReader, fail: Callable[[str], FormatError]
) -> MtxHeader:
    """Parse banner + size line; the single source of preamble errors.

    Shared by the line-by-line reference parser and the chunked reader
    so both emit byte-identical ``source:lineno`` diagnostics.
    """
    header = handle.readline()
    reader.lineno = 1
    if not header.startswith("%%MatrixMarket"):
        raise fail(f"not a Matrix Market file (header: {header.strip()!r})")
    tokens = header.strip().split()
    if len(tokens) != 5:
        raise fail(f"malformed Matrix Market header: {header.strip()!r}")
    _, object_kind, fmt, field, symmetry = (token.lower() for token in tokens)
    if object_kind != "matrix" or fmt != "coordinate":
        raise fail(
            f"only 'matrix coordinate' files are supported, got {object_kind} {fmt}"
        )
    if field not in _FIELDS:
        raise fail(f"unsupported field {field!r}; supported: {_FIELDS}")
    if symmetry not in _SYMMETRIES:
        raise fail(f"unsupported symmetry {symmetry!r}; supported: {_SYMMETRIES}")

    size_line = reader.next_data_line()
    if size_line is None:
        raise fail("missing size line")
    parts = size_line.split()
    if len(parts) != 3:
        raise fail(f"malformed size line: {size_line!r}")
    try:
        n_rows, n_cols, n_entries = (int(part) for part in parts)
    except ValueError as exc:
        raise fail(f"non-integer size line {size_line!r}: {exc}") from exc
    return MtxHeader(field, symmetry, n_rows, n_cols, n_entries)


def _parse_entry(line: str, field: str) -> Tuple[int, int, float]:
    """Parse one data line; the single source of per-entry errors.

    Raises an *unprefixed* :class:`FormatError`; callers re-raise via
    their ``fail`` helper to attach the ``source:lineno`` prefix, which
    keeps the reference parser and the chunked fallback byte-identical.
    """
    fields = line.split()
    if field == "pattern":
        if len(fields) < 2:
            raise FormatError(f"malformed pattern entry: {line!r}")
        value = 1.0
    else:
        if len(fields) < 3:
            raise FormatError(f"malformed entry: {line!r}")
        try:
            value = float(fields[2])
        except ValueError as exc:
            raise FormatError(f"non-numeric value in entry {line!r}: {exc}") from exc
    try:
        row = int(fields[0]) - 1
        col = int(fields[1]) - 1
    except ValueError as exc:
        raise FormatError(f"non-integer coordinate in entry {line!r}: {exc}") from exc
    return row, col, value


def _read_stream(handle: TextIO, source: str = "<stream>") -> COOMatrix:
    reader = _LineReader(handle)

    def fail(message: str) -> FormatError:
        return FormatError(f"{source}:{reader.lineno}: {message}")

    header = _parse_preamble(handle, reader, fail)

    rows: List[int] = []
    cols: List[int] = []
    values: List[float] = []
    for _ in range(header.n_entries):
        line = reader.next_data_line()
        if line is None:
            raise fail(
                f"file ended after {len(rows)} of {header.n_entries} declared entries"
            )
        try:
            row, col, value = _parse_entry(line, header.field)
        except FormatError as exc:
            raise fail(str(exc)) from exc
        rows.append(row)
        cols.append(col)
        values.append(value)
        if header.symmetry == "symmetric" and row != col:
            rows.append(col)
            cols.append(row)
            values.append(value)

    return COOMatrix(
        header.n_rows,
        header.n_cols,
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(values, dtype=np.float64),
    )


def write_matrix_market(matrix: COOMatrix, destination: PathOrFile, comment: str = "") -> None:
    """Write a :class:`COOMatrix` as a general, real coordinate file."""
    if hasattr(destination, "write"):
        _write_stream(matrix, destination, comment)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as handle:
        _write_stream(matrix, handle, comment)


def _write_stream(matrix: COOMatrix, handle: TextIO, comment: str) -> None:
    handle.write("%%MatrixMarket matrix coordinate real general\n")
    for line in comment.splitlines():
        handle.write(f"% {line}\n")
    handle.write(f"{matrix.n_rows} {matrix.n_cols} {matrix.nnz}\n")
    for row, col, value in zip(matrix.rows, matrix.cols, matrix.values):
        handle.write(f"{int(row) + 1} {int(col) + 1} {value:.17g}\n")


# -- chunked (out-of-core) reading --------------------------------------


def scan_matrix_market_header(path: Union[str, "os.PathLike[str]"]) -> MtxHeader:
    """Parse only the banner + size line of a ``.mtx`` file on disk."""
    source = os.fspath(path)
    with open(source, "r", encoding="utf-8") as handle:
        reader = _LineReader(handle)

        def fail(message: str) -> FormatError:
            return FormatError(f"{source}:{reader.lineno}: {message}")

        return _parse_preamble(handle, reader, fail)


def iter_matrix_market_chunks(
    path: Union[str, "os.PathLike[str]"],
    chunk_entries: int = DEFAULT_CHUNK_ENTRIES,
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Stream a coordinate ``.mtx`` file as ``(rows, cols, values)`` chunks.

    Never holds more than ``chunk_entries`` parsed entries (plus their
    raw text) in memory, so a scale-20 file flows through without
    materializing a :class:`COOMatrix`.  Symmetric files are expanded
    per chunk with the same interleaved mirror order as
    :func:`read_matrix_market`, and indices are 0-based on the way out.

    Error parity with the reference parser is a contract: each chunk is
    bulk-tokenized with ``np.loadtxt`` and, on any irregularity,
    re-parsed line by line through the same ``_parse_entry`` helper the
    reference parser uses, raising :class:`FormatError` with the exact
    ``source:lineno: message`` text a whole-file parse would have
    produced — a corrupt entry mid-file names its physical line even
    when it sits millions of entries in.
    """
    if chunk_entries < 1:
        raise FormatError(f"chunk_entries must be positive, got {chunk_entries}")
    source = os.fspath(path)
    with open(source, "r", encoding="utf-8") as handle:
        reader = _LineReader(handle)

        def fail(message: str) -> FormatError:
            return FormatError(f"{source}:{reader.lineno}: {message}")

        header = _parse_preamble(handle, reader, fail)
        remaining = header.n_entries
        expanded_total = 0  # mirrors included, matching the reference count
        while remaining > 0:
            take = min(remaining, chunk_entries)
            lines: List[str] = []
            linenos: List[int] = []
            while len(lines) < take:
                line = reader.next_data_line()
                if line is None:
                    # Parse what was collected first: a malformed entry
                    # earlier in the file outranks the truncation, just
                    # as it would in sequential parsing.
                    rows, cols, values = _parse_chunk_lines(
                        lines, linenos, header.field, source
                    )
                    if header.symmetry == "symmetric":
                        rows, cols, values = _expand_symmetric(rows, cols, values)
                    raise fail(
                        f"file ended after {expanded_total + rows.size} of "
                        f"{header.n_entries} declared entries"
                    )
                lines.append(line)
                linenos.append(reader.lineno)
            rows, cols, values = _parse_chunk_lines(
                lines, linenos, header.field, source
            )
            bad = (
                (rows < 0)
                | (rows >= header.n_rows)
                | (cols < 0)
                | (cols >= header.n_cols)
            )
            if bad.any():
                first = int(np.flatnonzero(bad)[0])
                raise FormatError(
                    f"{source}:{linenos[first]}: entry out of bounds for "
                    f"{header.n_rows}x{header.n_cols} matrix: {lines[first]!r}"
                )
            if header.symmetry == "symmetric":
                rows, cols, values = _expand_symmetric(rows, cols, values)
            expanded_total += rows.size
            remaining -= take
            yield rows, cols, values


def _parse_chunk_lines(
    lines: List[str], linenos: List[int], field: str, source: str
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Parse a batch of data lines, fast path first, exact errors second."""
    if not lines:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0, dtype=np.float64)
    if field == "pattern":
        dtype = [("row", np.int64), ("col", np.int64)]
    else:
        dtype = [("row", np.int64), ("col", np.int64), ("value", np.float64)]
    try:
        table = np.loadtxt(lines, dtype=dtype, comments=None, ndmin=1)
        if table.shape[0] != len(lines):
            raise _Fallback
    except Exception:
        # Reparse sequentially so the *first* offending line wins, with
        # its recorded physical line number.
        rows_list: List[int] = []
        cols_list: List[int] = []
        values_list: List[float] = []
        for lineno, line in zip(linenos, lines):
            try:
                row, col, value = _parse_entry(line, field)
            except FormatError as exc:
                raise FormatError(f"{source}:{lineno}: {exc}") from exc
            rows_list.append(row)
            cols_list.append(col)
            values_list.append(value)
        return (
            np.asarray(rows_list, dtype=np.int64),
            np.asarray(cols_list, dtype=np.int64),
            np.asarray(values_list, dtype=np.float64),
        )
    rows = table["row"] - 1
    cols = table["col"] - 1
    if field == "pattern":
        values = np.ones(len(lines), dtype=np.float64)
    else:
        values = table["value"]
    return rows, cols, values


def mtx_to_memmap_csr(
    path: Union[str, "os.PathLike[str]"],
    directory: str,
    chunk_entries: int = DEFAULT_CHUNK_ENTRIES,
    extra_meta: Optional[Dict[str, object]] = None,
):
    """Convert a ``.mtx`` file straight to an on-disk memmap CSR.

    The file is streamed twice (row histogram, then scatter) through
    :func:`iter_matrix_market_chunks`; peak memory is one chunk plus
    the memory-mapped output arrays, independent of nnz.  Entry
    ordering matches ``coo_to_csr(read_matrix_market(path))`` exactly.
    Returns the loaded memmap-backed :class:`~repro.sparse.csr.CSRMatrix`.
    """
    from repro.sparse.memmap import csr_from_coo_chunks

    header = scan_matrix_market_header(path)
    meta: Dict[str, object] = {
        "source": os.fspath(path),
        "field": header.field,
        "symmetry": header.symmetry,
        "declared_entries": header.n_entries,
    }
    meta.update(extra_meta or {})
    return csr_from_coo_chunks(
        lambda: iter_matrix_market_chunks(path, chunk_entries),
        header.n_rows,
        header.n_cols,
        directory,
        extra_meta=meta,
    )
