"""Power-law / skewed degree-distribution generators.

These model the social-network and web-crawl matrices whose hub nodes
the paper identifies as the main obstacle to community detection
quality (Section V-B).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.graphs.generators._util import (
    SeedLike,
    check_positive,
    directed_coo,
    make_rng,
    undirected_coo,
)
from repro.sparse.coo import COOMatrix


def barabasi_albert(n: int, m: int, seed: SeedLike = 0) -> COOMatrix:
    """Preferential-attachment graph (scale-free degree distribution).

    Each arriving node attaches ``m`` edges to existing nodes chosen
    proportionally to their current degree, via the standard
    repeated-endpoints sampling trick.
    """
    check_positive("n", n)
    check_positive("m", m)
    if m >= n:
        raise ValidationError(f"m ({m}) must be smaller than n ({n})")
    rng = make_rng(seed)
    # Endpoint multiset: each edge contributes both endpoints, so
    # sampling a uniform element is degree-proportional sampling.
    endpoints = np.empty(2 * m * n, dtype=np.int64)
    endpoint_count = 0
    u_list = np.empty(m * n, dtype=np.int64)
    v_list = np.empty(m * n, dtype=np.int64)
    edge_count = 0
    # Seed clique over the first m + 1 nodes keeps early sampling sane.
    for node in range(1, m + 1):
        for other in range(node):
            u_list[edge_count] = node
            v_list[edge_count] = other
            edge_count += 1
            endpoints[endpoint_count] = node
            endpoints[endpoint_count + 1] = other
            endpoint_count += 2
    for node in range(m + 1, n):
        picks = endpoints[rng.integers(0, endpoint_count, size=m)]
        u_list[edge_count: edge_count + m] = node
        v_list[edge_count: edge_count + m] = picks
        edge_count += m
        endpoints[endpoint_count: endpoint_count + m] = node
        endpoints[endpoint_count + m: endpoint_count + 2 * m] = picks
        endpoint_count += 2 * m
    return undirected_coo(n, u_list[:edge_count], v_list[:edge_count])


def rmat(
    scale: int,
    edge_factor: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: SeedLike = 0,
    directed: bool = True,
) -> COOMatrix:
    """Recursive MATrix (Kronecker) generator, Graph500 style.

    Produces ``2**scale`` nodes and ``edge_factor * 2**scale`` edge
    samples.  The default (a, b, c) = (0.57, 0.19, 0.19) are the
    Graph500 parameters which yield a strongly skewed degree
    distribution, the structural regime where the paper shows
    community detection struggles.
    """
    check_positive("scale", scale)
    check_positive("edge_factor", edge_factor)
    d = 1.0 - (a + b + c)
    if min(a, b, c, d) < 0:
        raise ValidationError(f"R-MAT quadrant probabilities must sum to <= 1, got d={d:.3f}")
    rng = make_rng(seed)
    n = 1 << scale
    n_edges = edge_factor * n
    u = np.zeros(n_edges, dtype=np.int64)
    v = np.zeros(n_edges, dtype=np.int64)
    for _ in range(scale):
        u <<= 1
        v <<= 1
        r = rng.random(n_edges)
        # Quadrant choice: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1).
        go_b = (r >= a) & (r < a + b)
        go_c = (r >= a + b) & (r < a + b + c)
        go_d = r >= a + b + c
        v[go_b] += 1
        u[go_c] += 1
        u[go_d] += 1
        v[go_d] += 1
    if directed:
        return directed_coo(n, u, v)
    return undirected_coo(n, u, v)
