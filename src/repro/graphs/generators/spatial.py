"""Spatially-embedded and chain-structured generators.

These model the low-degree, naturally-local matrix categories in the
paper's corpus: CFD meshes (grids), road networks (perturbed planar
grids), and protein k-mer / DNA electrophoresis graphs (long chains
with sparse branching).  They typically have high insularity and little
skew, the regime where RABBIT already reaches near-ideal traffic.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.generators._util import (
    SeedLike,
    check_positive,
    check_probability,
    make_rng,
    undirected_coo,
)
from repro.sparse.coo import COOMatrix


def grid_2d(nx: int, ny: int, periodic: bool = False) -> COOMatrix:
    """4-neighbor 2-D mesh with ``nx * ny`` nodes (CFD-style stencil)."""
    check_positive("nx", nx)
    check_positive("ny", ny)
    n = nx * ny
    ids = np.arange(n, dtype=np.int64)
    x = ids % nx
    y = ids // nx
    u_parts = []
    v_parts = []
    # Horizontal edges.
    right_ok = x < nx - 1
    u_parts.append(ids[right_ok])
    v_parts.append(ids[right_ok] + 1)
    # Vertical edges.
    up_ok = y < ny - 1
    u_parts.append(ids[up_ok])
    v_parts.append(ids[up_ok] + nx)
    if periodic:
        if nx > 2:
            wrap = ids[x == nx - 1]
            u_parts.append(wrap)
            v_parts.append(wrap - (nx - 1))
        if ny > 2:
            wrap = ids[y == ny - 1]
            u_parts.append(wrap)
            v_parts.append(wrap - nx * (ny - 1))
    return undirected_coo(n, np.concatenate(u_parts), np.concatenate(v_parts))


def grid_3d(nx: int, ny: int, nz: int) -> COOMatrix:
    """6-neighbor 3-D mesh (finite-volume / electromagnetics style)."""
    check_positive("nx", nx)
    check_positive("ny", ny)
    check_positive("nz", nz)
    n = nx * ny * nz
    ids = np.arange(n, dtype=np.int64)
    x = ids % nx
    y = (ids // nx) % ny
    z = ids // (nx * ny)
    u_parts = []
    v_parts = []
    for ok, step in (
        (x < nx - 1, 1),
        (y < ny - 1, nx),
        (z < nz - 1, nx * ny),
    ):
        u_parts.append(ids[ok])
        v_parts.append(ids[ok] + step)
    return undirected_coo(n, np.concatenate(u_parts), np.concatenate(v_parts))


def road_network(
    nx: int,
    ny: int,
    drop_prob: float = 0.25,
    diag_prob: float = 0.05,
    seed: SeedLike = 0,
) -> COOMatrix:
    """Road-network-like graph: a 2-D grid with dropped and diagonal links.

    Starts from a 4-neighbor grid, deletes each edge with probability
    ``drop_prob`` (dead ends, irregular street layout) and adds each
    diagonal with probability ``diag_prob`` (highway shortcuts).  The
    result keeps the near-planar, degree-2-to-4 profile of real road
    matrices.
    """
    check_positive("nx", nx)
    check_positive("ny", ny)
    check_probability("drop_prob", drop_prob)
    check_probability("diag_prob", diag_prob)
    rng = make_rng(seed)
    base = grid_2d(nx, ny)
    # Work on canonical (u < v) pairs to drop whole edges at once.
    canonical = base.rows < base.cols
    u = base.rows[canonical]
    v = base.cols[canonical]
    keep = rng.random(u.size) >= drop_prob
    u, v = u[keep], v[keep]

    n = nx * ny
    ids = np.arange(n, dtype=np.int64)
    x = ids % nx
    y = ids // nx
    diag_ok = (x < nx - 1) & (y < ny - 1)
    candidates = ids[diag_ok]
    chosen = candidates[rng.random(candidates.size) < diag_prob]
    u = np.concatenate([u, chosen])
    v = np.concatenate([v, chosen + nx + 1])
    return undirected_coo(n, u, v)


def kmer_chain(n: int, branch_prob: float = 0.02, n_chains: int = 8, seed: SeedLike = 0) -> COOMatrix:
    """Protein-k-mer-like graph: long paths with occasional branches.

    Nodes are laid out as ``n_chains`` independent chains.  Each node
    links to its chain predecessor; with probability ``branch_prob`` it
    *also* links to a random earlier node of the same chain, creating a
    branch point.  Average degree stays close to 2, like real k-mer
    graphs (the paper's corpus reaches average degree as low as 2).
    """
    check_positive("n", n)
    check_probability("branch_prob", branch_prob)
    check_positive("n_chains", n_chains)
    rng = make_rng(seed)
    ids = np.arange(n, dtype=np.int64)
    chain = ids % n_chains
    position = ids // n_chains
    # Chain predecessor: same chain id, previous position.
    has_prev = position > 0
    u_parts = [ids[has_prev]]
    v_parts = [ids[has_prev] - n_chains]
    # Branches to a random earlier node in the same chain.
    branchable = position > 1
    roll = rng.random(n) < branch_prob
    branch_nodes = ids[branchable & roll]
    if branch_nodes.size:
        earlier_pos = (rng.random(branch_nodes.size) * position[branch_nodes]).astype(np.int64)
        targets = chain[branch_nodes] + earlier_pos * n_chains
        u_parts.append(branch_nodes)
        v_parts.append(targets)
    return undirected_coo(n, np.concatenate(u_parts), np.concatenate(v_parts))
