"""Shared helpers for the synthetic generators."""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.errors import ValidationError
from repro.sparse.coo import COOMatrix

SeedLike = Union[int, np.random.Generator]


def make_rng(seed: SeedLike) -> np.random.Generator:
    """Normalize an integer seed or an existing generator to a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(int(seed))


def dedupe_undirected_pairs(
    n: int, u: np.ndarray, v: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Canonicalize endpoint pairs as ``u < v`` and drop duplicates/loops."""
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    if lo.size == 0:
        return lo.astype(np.int64), hi.astype(np.int64)
    keys = lo.astype(np.int64) * n + hi.astype(np.int64)
    unique_keys = np.unique(keys)
    return unique_keys // n, unique_keys % n


def undirected_coo(n: int, u: np.ndarray, v: np.ndarray) -> COOMatrix:
    """Build a symmetric COO adjacency from (possibly duplicated) pairs."""
    lo, hi = dedupe_undirected_pairs(n, u, v)
    rows = np.concatenate([lo, hi])
    cols = np.concatenate([hi, lo])
    return COOMatrix(n, n, rows, cols)


def directed_coo(n: int, u: np.ndarray, v: np.ndarray) -> COOMatrix:
    """Build a directed COO adjacency, dropping self loops and duplicates."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    keep = u != v
    u, v = u[keep], v[keep]
    if u.size:
        keys = u * n + v
        unique_keys = np.unique(keys)
        u, v = unique_keys // n, unique_keys % n
    return COOMatrix(n, n, u, v)


def check_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")


def check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
