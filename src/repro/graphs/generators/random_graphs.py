"""Unstructured and small-world random graphs.

Erdős–Rényi graphs are the "no structure" baseline — no community,
no skew — so reordering can at best pack rows densely.  Watts–Strogatz
graphs model the small-world behaviour the paper cites as a common
property of real matrices.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.generators._util import (
    SeedLike,
    check_positive,
    check_probability,
    make_rng,
    undirected_coo,
)
from repro.sparse.coo import COOMatrix


def erdos_renyi(n: int, avg_degree: float, seed: SeedLike = 0) -> COOMatrix:
    """G(n, m) random graph with ``m = n * avg_degree / 2`` edges.

    Sampled by drawing endpoint pairs uniformly (with replacement, then
    deduplicated), which is exact enough in the sparse regime and runs
    in O(m).
    """
    check_positive("n", n)
    check_positive("avg_degree", avg_degree)
    rng = make_rng(seed)
    target_edges = int(round(n * avg_degree / 2))
    # In the sparse regime duplicates and loops are rare (< 1% of
    # draws), so drawing exactly the target count loses almost nothing.
    u = rng.integers(0, n, size=target_edges, dtype=np.int64)
    v = rng.integers(0, n, size=target_edges, dtype=np.int64)
    return undirected_coo(n, u, v)


def watts_strogatz(n: int, k: int, beta: float, seed: SeedLike = 0) -> COOMatrix:
    """Small-world graph: ring lattice with ``k`` neighbors, rewired.

    Each node connects to its ``k // 2`` clockwise ring neighbors; each
    such edge is rewired to a uniformly random endpoint with probability
    ``beta``.  ``beta = 0`` is a pure ring (perfect locality under the
    natural order), ``beta = 1`` approaches an Erdős–Rényi graph.
    """
    check_positive("n", n)
    check_positive("k", k)
    check_probability("beta", beta)
    rng = make_rng(seed)
    half_k = max(1, k // 2)
    base = np.arange(n, dtype=np.int64)
    u_parts = []
    v_parts = []
    for offset in range(1, half_k + 1):
        u_parts.append(base)
        v_parts.append((base + offset) % n)
    u = np.concatenate(u_parts)
    v = np.concatenate(v_parts)
    rewire = rng.random(v.size) < beta
    v = v.copy()
    v[rewire] = rng.integers(0, n, size=int(rewire.sum()), dtype=np.int64)
    return undirected_coo(n, u, v)
