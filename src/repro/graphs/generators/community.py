"""Community-structured generators.

The degree-corrected stochastic block model (:func:`dcsbm`) is the
corpus workhorse because it independently controls the two structural
axes the paper identifies as decisive:

* **mixing** ``mu`` — the expected fraction of inter-community edges,
  which directly sets the achievable insularity (insularity of a
  perfect detection is roughly ``1 - mu``); and
* **degree skew** ``theta_exponent`` — Zipf-like node weights, which
  create the hub nodes the paper shows degrade community detection.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.graphs.generators._util import (
    SeedLike,
    check_positive,
    check_probability,
    make_rng,
    undirected_coo,
)
from repro.sparse.coo import COOMatrix


def dcsbm(
    n: int,
    n_blocks: int,
    avg_degree: float,
    mu: float,
    theta_exponent: float = 0.0,
    seed: SeedLike = 0,
) -> COOMatrix:
    """Degree-corrected stochastic block model.

    Nodes are split into ``n_blocks`` equal-size blocks.  A fraction
    ``1 - mu`` of edges is sampled inside blocks and ``mu`` between
    arbitrary nodes, with endpoints drawn proportionally to per-node
    Zipf weights ``(rank + 1) ** -theta_exponent`` (``0`` means uniform
    degrees; ``~0.8+`` produces strong hubs).  Node ranks are scattered
    pseudo-randomly across blocks so hubs exist in every block.
    """
    check_positive("n", n)
    check_positive("n_blocks", n_blocks)
    check_positive("avg_degree", avg_degree)
    check_probability("mu", mu)
    if theta_exponent < 0:
        raise ValidationError(f"theta_exponent must be >= 0, got {theta_exponent}")
    if n_blocks > n:
        raise ValidationError(f"n_blocks ({n_blocks}) cannot exceed n ({n})")
    rng = make_rng(seed)

    blocks = np.arange(n, dtype=np.int64) % n_blocks
    # Zipf weights over a random rank assignment (so block 0 does not
    # monopolize the hubs).
    ranks = rng.permutation(n)
    weights = np.power(ranks + 1.0, -theta_exponent)
    weights /= weights.sum()

    block_members = [np.flatnonzero(blocks == block) for block in range(n_blocks)]
    block_local_weights = []
    for members in block_members:
        local = weights[members]
        block_local_weights.append(local / local.sum())
    block_mass = np.zeros(n_blocks)
    np.add.at(block_mass, blocks, weights)
    block_share = block_mass**2
    block_share /= block_share.sum()

    def sample_pairs(count: int) -> "tuple[np.ndarray, np.ndarray]":
        n_inter = int(round(count * mu))
        n_intra = count - n_inter
        u_parts = []
        v_parts = []
        if n_inter:
            u_parts.append(_weighted_choice(rng, weights, n_inter))
            v_parts.append(_weighted_choice(rng, weights, n_inter))
        if n_intra:
            per_block = rng.multinomial(n_intra, block_share)
            for block in range(n_blocks):
                block_count = int(per_block[block])
                if block_count == 0:
                    continue
                members = block_members[block]
                picks_u = _weighted_choice(rng, block_local_weights[block], block_count)
                picks_v = _weighted_choice(rng, block_local_weights[block], block_count)
                u_parts.append(members[picks_u])
                v_parts.append(members[picks_v])
        u = np.concatenate(u_parts) if u_parts else np.empty(0, dtype=np.int64)
        v = np.concatenate(v_parts) if v_parts else np.empty(0, dtype=np.int64)
        return u, v

    # Skewed weights make duplicate pairs common, and duplicates are
    # merged by the canonicalization pass, which would silently halve
    # the density.  Top up in rounds until the unique-edge target is
    # met (or sampling saturates, with extreme skew).
    target_edges = int(round(n * avg_degree / 2))
    keys = np.empty(0, dtype=np.int64)
    for _ in range(8):
        shortfall = target_edges - keys.size
        if shortfall <= 0:
            break
        u, v = sample_pairs(int(shortfall * 1.2) + 8)
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        keep = lo != hi
        new_keys = lo[keep] * n + hi[keep]
        keys = np.unique(np.concatenate([keys, new_keys]))
    if keys.size > target_edges:
        keys = rng.choice(keys, size=target_edges, replace=False)
    lo = keys // n
    hi = keys % n
    return undirected_coo(n, lo, hi)


def _weighted_choice(rng: np.random.Generator, probabilities: np.ndarray, count: int) -> np.ndarray:
    """Sample ``count`` indices with replacement via inverse-CDF search.

    ``Generator.choice`` with probabilities is O(n) *per call setup*
    but uses an alias-free method that is slow for large draws; the
    cumulative-sum + searchsorted form is both exact and fast.
    """
    cdf = np.cumsum(probabilities)
    cdf[-1] = 1.0  # guard against floating-point shortfall
    return np.searchsorted(cdf, rng.random(count), side="right").astype(np.int64)


def planted_partition(
    n: int,
    n_blocks: int,
    avg_degree: float,
    mu: float,
    seed: SeedLike = 0,
) -> COOMatrix:
    """Classic planted-partition model: :func:`dcsbm` with uniform degrees."""
    return dcsbm(n, n_blocks, avg_degree, mu, theta_exponent=0.0, seed=seed)


def hub_overlay(
    base: COOMatrix,
    n_hubs: int,
    hub_degree: int,
    seed: SeedLike = 0,
) -> COOMatrix:
    """Superimpose broadly-connected hub nodes on an existing graph.

    Models hyperlink-style matrices: an underlying community structure
    (the ``base``) plus a small set of pages everyone links to.  The
    ``n_hubs`` lowest-ID nodes each gain ``hub_degree`` edges to
    uniformly random nodes.
    """
    check_positive("n_hubs", n_hubs)
    check_positive("hub_degree", hub_degree)
    if n_hubs > base.n_rows:
        raise ValidationError(f"n_hubs ({n_hubs}) exceeds node count ({base.n_rows})")
    rng = make_rng(seed)
    n = base.n_rows
    hub_ids = np.repeat(np.arange(n_hubs, dtype=np.int64), hub_degree)
    targets = rng.integers(0, n, size=hub_ids.size, dtype=np.int64)
    u = np.concatenate([base.rows, hub_ids, targets])
    v = np.concatenate([base.cols, targets, hub_ids])
    # base is already symmetric; re-canonicalize the union.
    return undirected_coo(n, u, v)


def star_burst(
    n: int,
    n_hubs: int,
    leaf_links: int = 1,
    hub_interlinks: int = 4,
    seed: SeedLike = 0,
) -> COOMatrix:
    """Traffic-trace-like graph: a few giant stars (mawi analogue).

    Every non-hub node connects to ``leaf_links`` hubs chosen with a
    heavily skewed (Zipf) preference, and the hubs form a small clique
    of ``hub_interlinks`` random interconnections each.  Community
    detection on such a graph merges each star into one near-whole-
    matrix community: insularity is high, but the giant community
    defeats cache blocking — the corner case of paper Section V-B.
    """
    check_positive("n", n)
    check_positive("n_hubs", n_hubs)
    check_positive("leaf_links", leaf_links)
    if n_hubs >= n:
        raise ValidationError(f"n_hubs ({n_hubs}) must be smaller than n ({n})")
    rng = make_rng(seed)
    hub_weights = np.power(np.arange(1, n_hubs + 1, dtype=np.float64), -1.2)
    hub_weights /= hub_weights.sum()
    leaves = np.repeat(np.arange(n_hubs, n, dtype=np.int64), leaf_links)
    targets = _weighted_choice(rng, hub_weights, leaves.size)
    hub_u = np.repeat(np.arange(n_hubs, dtype=np.int64), hub_interlinks)
    hub_v = rng.integers(0, n_hubs, size=hub_u.size, dtype=np.int64)
    u = np.concatenate([leaves, hub_u])
    v = np.concatenate([targets, hub_v])
    return undirected_coo(n, u, v)


def hierarchical_blocks(
    n: int,
    levels: int,
    degree_per_level: float,
    decay: float = 0.5,
    seed: SeedLike = 0,
    rewire: float = 0.0,
) -> COOMatrix:
    """Nested-community graph modelling circuit netlists / VLSI matrices.

    The node range is recursively halved ``levels`` times.  At level 0
    edges connect nodes anywhere; at level ``l`` edges connect nodes
    within the same ``2**l``-way block.  Edge budget per level grows
    toward the leaves (factor ``1/decay`` per level), so most wiring is
    local with a thin global interconnect — the hierarchy RABBIT's
    dendrogram is designed to capture.

    ``rewire`` optionally replaces that fraction of endpoints with
    uniform random nodes (process noise).
    """
    check_positive("n", n)
    check_positive("levels", levels)
    check_positive("degree_per_level", degree_per_level)
    check_probability("rewire", rewire)
    if not 0.0 < decay <= 1.0:
        raise ValidationError(f"decay must be in (0, 1], got {decay}")
    rng = make_rng(seed)
    u_parts = []
    v_parts = []
    # Leaf level gets weight 1, parents get progressively `decay`.
    level_weights = np.array([decay ** (levels - 1 - l) for l in range(levels)])
    level_weights /= level_weights.sum()
    total_edges = int(round(n * degree_per_level * levels / 2))
    for level in range(levels):
        n_level_edges = int(round(total_edges * level_weights[level]))
        if n_level_edges == 0:
            continue
        n_blocks = 1 << level
        block_size = max(1, n // n_blocks)
        block_of_edge = rng.integers(0, n_blocks, size=n_level_edges, dtype=np.int64)
        starts = block_of_edge * block_size
        widths = np.minimum(block_size, n - starts)
        widths = np.maximum(widths, 1)
        u = starts + (rng.random(n_level_edges) * widths).astype(np.int64)
        v = starts + (rng.random(n_level_edges) * widths).astype(np.int64)
        u_parts.append(u)
        v_parts.append(v)
    u = np.concatenate(u_parts)
    v = np.concatenate(v_parts)
    if rewire > 0:
        flip = rng.random(v.size) < rewire
        v = v.copy()
        v[flip] = rng.integers(0, n, size=int(flip.sum()), dtype=np.int64)
    return undirected_coo(n, u, v)
