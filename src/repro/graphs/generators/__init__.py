"""Deterministic synthetic graph/matrix generators.

Each generator returns a :class:`repro.sparse.COOMatrix` and is seeded,
so a corpus entry is fully determined by its recipe.  The generators
span the structural categories of the paper's corpus (Section III):
social networks, hyperlink graphs, circuit simulation, CFD meshes, road
networks, protein k-mer graphs, knowledge databases, and unstructured
baselines.
"""

from repro.graphs.generators.community import (
    dcsbm,
    hierarchical_blocks,
    hub_overlay,
    planted_partition,
    star_burst,
)
from repro.graphs.generators.powerlaw import barabasi_albert, rmat
from repro.graphs.generators.random_graphs import erdos_renyi, watts_strogatz
from repro.graphs.generators.spatial import (
    grid_2d,
    grid_3d,
    kmer_chain,
    road_network,
)

__all__ = [
    "barabasi_albert",
    "dcsbm",
    "erdos_renyi",
    "grid_2d",
    "grid_3d",
    "hierarchical_blocks",
    "hub_overlay",
    "kmer_chain",
    "planted_partition",
    "rmat",
    "road_network",
    "star_burst",
    "watts_strogatz",
]
