"""Input-matrix corpus and selection process (paper Section III).

The paper curates 50 matrices from SuiteSparse, KONECT and Web Data
Commons with explicit criteria (square, > 1.5M nodes so the
input-vector footprint exceeds the 6 MB L2, bounded non-zeros, one
matrix per publisher group).  Without network access to those
repositories, this module provides a *synthetic corpus*: deterministic
recipes spanning the same structural categories the paper lists, at a
scale matched to the scaled platform model (see DESIGN.md Section 5).

Each entry records a ``publisher_order``: ``"native"`` keeps the
generator's natural node order (analogous to sk-2005, whose publisher
pre-applied a sophisticated ordering) while ``"scrambled"`` applies a
seeded random permutation (analogous to pld-arc, whose ORIGINAL order
behaves like RANDOM) — reproducing the paper's Observation 3 that
ORIGINAL is an ill-defined baseline.

Three profiles select different scales:

* ``"full"``  — the main evaluation corpus (large entries);
* ``"bench"`` — reduced sizes for the pytest-benchmark harness;
* ``"test"``  — tiny instances for unit/integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.errors import CorpusError, ValidationError
from repro.graphs.generators import (
    barabasi_albert,
    dcsbm,
    erdos_renyi,
    grid_2d,
    grid_3d,
    hierarchical_blocks,
    hub_overlay,
    kmer_chain,
    planted_partition,
    rmat,
    road_network,
    star_burst,
    watts_strogatz,
)
from repro.graphs.graph import Graph
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.permute import permute_coo

PROFILES = ("full", "bench", "test")

#: Minimum node count per profile so the input-vector footprint
#: (4 bytes per node) exceeds the profile's modeled L2 capacity, the
#: paper's "> 1.5M nodes vs. 6 MB L2" criterion at reduced scale.
MIN_NODES = {"full": 8192, "bench": 2048, "test": 512}

#: Maximum non-zeros per profile (the paper's 2.5B memory-capacity cap,
#: scaled to keep simulation time sane).
MAX_NNZ = {"full": 4_000_000, "bench": 400_000, "test": 40_000}


@dataclass(frozen=True)
class CorpusEntry:
    """A named, deterministic matrix recipe.

    Attributes
    ----------
    name:
        Unique corpus identifier.
    category:
        Structural category (mirrors the paper's source domains).
    builder:
        Zero-argument callable producing the raw :class:`COOMatrix`.
    publisher_order:
        ``"native"`` or ``"scrambled"`` (see module docstring).
    directed:
        Whether the matrix should be treated as a directed graph.
    profiles:
        Profiles this entry belongs to.
    description:
        Human-readable provenance note.
    """

    name: str
    category: str
    builder: Callable[[], COOMatrix]
    publisher_order: str = "native"
    directed: bool = False
    profiles: Tuple[str, ...] = ("full",)
    description: str = ""

    def __post_init__(self) -> None:
        if self.publisher_order not in ("native", "scrambled"):
            raise ValidationError(
                f"publisher_order must be 'native' or 'scrambled', got {self.publisher_order!r}"
            )
        for profile in self.profiles:
            if profile not in PROFILES:
                raise ValidationError(f"unknown profile {profile!r} on entry {self.name}")


_REGISTRY: Dict[str, CorpusEntry] = {}


def _register(entry: CorpusEntry) -> None:
    if entry.name in _REGISTRY:
        raise ValidationError(f"duplicate corpus entry {entry.name!r}")
    _REGISTRY[entry.name] = entry


def _scramble_seed(name: str) -> int:
    """Stable per-entry seed for the publisher scrambling permutation."""
    return (hash_name(name) % (2**31)) + 7


def hash_name(name: str) -> int:
    """Deterministic (process-independent) string hash."""
    value = 2166136261
    for char in name.encode("utf-8"):
        value = ((value ^ char) * 16777619) % (2**32)
    return value


# ---------------------------------------------------------------------------
# Full-profile corpus: the main evaluation data set.
# ---------------------------------------------------------------------------

def _full_entries() -> List[CorpusEntry]:
    return [
        # --- Social networks: community structure + strong degree skew.
        CorpusEntry(
            "soc-forum", "social",
            lambda: dcsbm(16384, 64, 16.0, mu=0.35, theta_exponent=0.9, seed=101),
            publisher_order="scrambled", profiles=("full",),
            description="DC-SBM, 64 communities, moderate mixing, strong hubs",
        ),
        CorpusEntry(
            "soc-follow", "social",
            lambda: barabasi_albert(16384, 8, seed=102),
            publisher_order="scrambled", profiles=("full",),
            description="Preferential attachment (scale-free, weak community)",
        ),
        CorpusEntry(
            "soc-messages", "social",
            lambda: dcsbm(32768, 128, 12.0, mu=0.45, theta_exponent=1.0, seed=103),
            publisher_order="scrambled", profiles=("full",),
            description="DC-SBM, heavy mixing + hubs (low-insularity regime)",
        ),
        CorpusEntry(
            "soc-mega", "social",
            lambda: dcsbm(65536, 256, 10.0, mu=0.5, theta_exponent=1.1, seed=104),
            publisher_order="scrambled", profiles=("full",),
            description="Largest, hardest social instance (most mixing, most skew)",
        ),
        # --- Web / hyperlink graphs.
        CorpusEntry(
            "web-crawl-ordered", "web",
            lambda: hub_overlay(
                dcsbm(32768, 128, 10.0, mu=0.15, theta_exponent=0.6, seed=111),
                n_hubs=48, hub_degree=768, seed=112,
            ),
            publisher_order="native", profiles=("full",),
            description="Host-community web crawl; publisher kept a good order (sk-2005 analogue)",
        ),
        CorpusEntry(
            "web-crawl-raw", "web",
            lambda: hub_overlay(
                dcsbm(32768, 128, 10.0, mu=0.15, theta_exponent=0.6, seed=113),
                n_hubs=48, hub_degree=768, seed=114,
            ),
            publisher_order="scrambled", profiles=("full",),
            description="Same structure, arbitrary publisher order (pld-arc analogue)",
        ),
        CorpusEntry(
            "web-rmat", "web",
            lambda: rmat(14, 16, seed=115),
            publisher_order="scrambled", directed=True, profiles=("full",),
            description="Graph500 R-MAT scale 14 (extreme skew, weak community)",
        ),
        CorpusEntry(
            "soc-rmat", "social",
            lambda: rmat(16, 64, seed=7),
            publisher_order="scrambled", directed=True, profiles=("full",),
            description="R-MAT scale 16, Orkut-class density (~128 avg degree "
            "symmetric); the bench-reorder detection-throughput matrix — "
            "over the profile nnz cap, so excluded by selection like the "
            "paper's capacity-limited inputs",
        ),
        # --- Knowledge databases.
        CorpusEntry(
            "know-base", "knowledge",
            lambda: dcsbm(16384, 32, 20.0, mu=0.25, theta_exponent=0.7, seed=121),
            publisher_order="scrambled", profiles=("full",),
            description="Few large topical communities with skewed entity degrees",
        ),
        # --- Circuit simulation.
        CorpusEntry(
            "circuit-hier", "circuit",
            lambda: hierarchical_blocks(16384, 10, 3.0, seed=131),
            publisher_order="native", profiles=("full",),
            description="Hierarchical netlist, publisher order follows the hierarchy",
        ),
        CorpusEntry(
            "circuit-flat", "circuit",
            lambda: hierarchical_blocks(32768, 12, 2.5, seed=132, rewire=0.05),
            publisher_order="scrambled", profiles=("full",),
            description="Hierarchical netlist with noise, flattened publisher order",
        ),
        # --- CFD / electromagnetics meshes.
        CorpusEntry(
            "mesh2d-cfd", "mesh",
            lambda: grid_2d(128, 128),
            publisher_order="native", profiles=("full",),
            description="2-D stencil mesh in natural row-major order",
        ),
        CorpusEntry(
            "mesh2d-remap", "mesh",
            lambda: grid_2d(192, 192),
            publisher_order="scrambled", profiles=("full",),
            description="2-D stencil mesh, node order lost by the publisher",
        ),
        CorpusEntry(
            "mesh3d-em", "mesh",
            lambda: grid_3d(32, 32, 32),
            publisher_order="native", profiles=("full",),
            description="3-D electromagnetics stencil, natural order",
        ),
        CorpusEntry(
            "mesh3d-large", "mesh",
            lambda: grid_3d(48, 40, 34),
            publisher_order="scrambled", profiles=("full",),
            description="3-D stencil, scrambled",
        ),
        # --- Road networks.
        CorpusEntry(
            "road-city", "road",
            lambda: road_network(128, 128, seed=141),
            publisher_order="native", profiles=("full",),
            description="Perturbed planar grid, natural (spatial) order",
        ),
        CorpusEntry(
            "road-state", "road",
            lambda: road_network(181, 181, seed=142),
            publisher_order="scrambled", profiles=("full",),
            description="Larger road network, arbitrary node IDs",
        ),
        # --- Protein k-mer / DNA electrophoresis.
        CorpusEntry(
            "kmer-protein", "kmer",
            lambda: kmer_chain(32768, branch_prob=0.02, seed=151),
            publisher_order="native", profiles=("full",),
            description="Long chains with light branching, chain-major order",
        ),
        CorpusEntry(
            "kmer-dna", "kmer",
            lambda: kmer_chain(65536, branch_prob=0.01, n_chains=16, seed=152),
            publisher_order="scrambled", profiles=("full",),
            description="DNA electrophoresis model, scrambled",
        ),
        # --- Non-linear optimization (arrow structure: mesh + dense rows).
        CorpusEntry(
            "optim-arrow", "optimization",
            lambda: hub_overlay(grid_2d(128, 128), n_hubs=32, hub_degree=512, seed=161),
            publisher_order="native", profiles=("full",),
            description="KKT-like system: local stencil plus dense coupling rows",
        ),
        # --- Strong planted community structure (insularity >= 0.95 regime).
        CorpusEntry(
            "comm-tight", "community",
            lambda: planted_partition(16384, 256, 16.0, mu=0.04, seed=171),
            publisher_order="scrambled", profiles=("full",),
            description="256 tight communities, 4% mixing",
        ),
        CorpusEntry(
            "comm-many", "community",
            lambda: planted_partition(32768, 512, 8.0, mu=0.08, seed=172),
            publisher_order="scrambled", profiles=("full",),
            description="512 small communities, 8% mixing",
        ),
        CorpusEntry(
            "comm-skewed", "community",
            lambda: dcsbm(16384, 128, 14.0, mu=0.10, theta_exponent=0.8, seed=173),
            publisher_order="scrambled", profiles=("full",),
            description="Tight communities but hubby degrees",
        ),
        # --- Traffic-trace anomaly (mawi analogue): giant community.
        CorpusEntry(
            "traffic-trace", "traffic",
            lambda: star_burst(16384, 4, leaf_links=1, seed=181),
            publisher_order="scrambled", profiles=("full",),
            description="Few giant stars; detection yields near-whole-matrix communities (mawi analogue)",
        ),
        # --- Small-world.
        CorpusEntry(
            "sw-ring", "smallworld",
            lambda: watts_strogatz(16384, 12, 0.05, seed=191),
            publisher_order="native", profiles=("full",),
            description="Small-world, mostly-ring structure, natural order",
        ),
        CorpusEntry(
            "sw-rewired", "smallworld",
            lambda: watts_strogatz(16384, 8, 0.3, seed=192),
            publisher_order="scrambled", profiles=("full",),
            description="Heavily rewired small-world",
        ),
        # --- Unstructured baselines.
        CorpusEntry(
            "rand-sparse", "random",
            lambda: erdos_renyi(16384, 8.0, seed=201),
            publisher_order="native", profiles=("full",),
            description="Erdős–Rényi (no exploitable structure)",
        ),
        CorpusEntry(
            "rand-dense", "random",
            lambda: erdos_renyi(8192, 24.0, seed=202),
            publisher_order="scrambled", profiles=("full",),
            description="Denser Erdős–Rényi",
        ),
    ]


# ---------------------------------------------------------------------------
# Bench-profile corpus: same categories, reduced scale.
# ---------------------------------------------------------------------------

def _bench_entries() -> List[CorpusEntry]:
    return [
        CorpusEntry(
            "bench-social", "social",
            lambda: dcsbm(4096, 32, 12.0, mu=0.35, theta_exponent=0.9, seed=301),
            publisher_order="scrambled", profiles=("bench",),
        ),
        CorpusEntry(
            "bench-scalefree", "social",
            lambda: barabasi_albert(4096, 6, seed=302),
            publisher_order="scrambled", profiles=("bench",),
        ),
        CorpusEntry(
            "bench-web", "web",
            lambda: hub_overlay(
                dcsbm(4096, 32, 8.0, mu=0.15, theta_exponent=0.6, seed=303),
                n_hubs=16, hub_degree=192, seed=304,
            ),
            publisher_order="scrambled", profiles=("bench",),
        ),
        CorpusEntry(
            "bench-rmat", "web",
            lambda: rmat(12, 8, seed=305),
            publisher_order="scrambled", directed=True, profiles=("bench",),
        ),
        CorpusEntry(
            "bench-circuit", "circuit",
            lambda: hierarchical_blocks(4096, 8, 3.0, seed=306),
            publisher_order="scrambled", profiles=("bench",),
        ),
        CorpusEntry(
            "bench-mesh", "mesh",
            lambda: grid_2d(64, 64),
            publisher_order="scrambled", profiles=("bench",),
        ),
        CorpusEntry(
            "bench-road", "road",
            lambda: road_network(64, 64, seed=307),
            publisher_order="scrambled", profiles=("bench",),
        ),
        CorpusEntry(
            "bench-kmer", "kmer",
            lambda: kmer_chain(4096, branch_prob=0.02, seed=308),
            publisher_order="scrambled", profiles=("bench",),
        ),
        CorpusEntry(
            "bench-comm", "community",
            lambda: planted_partition(4096, 64, 12.0, mu=0.05, seed=309),
            publisher_order="scrambled", profiles=("bench",),
        ),
        CorpusEntry(
            "bench-traffic", "traffic",
            lambda: star_burst(4096, 4, leaf_links=1, seed=310),
            publisher_order="scrambled", profiles=("bench",),
        ),
        CorpusEntry(
            "bench-smallworld", "smallworld",
            lambda: watts_strogatz(4096, 8, 0.1, seed=311),
            publisher_order="native", profiles=("bench",),
        ),
        CorpusEntry(
            "bench-random", "random",
            lambda: erdos_renyi(4096, 8.0, seed=312),
            publisher_order="native", profiles=("bench",),
        ),
    ]


# ---------------------------------------------------------------------------
# Test-profile corpus: tiny instances for unit/integration tests.
# ---------------------------------------------------------------------------

def _test_entries() -> List[CorpusEntry]:
    return [
        CorpusEntry(
            "test-comm", "community",
            lambda: planted_partition(512, 16, 8.0, mu=0.05, seed=401),
            publisher_order="scrambled", profiles=("test",),
        ),
        CorpusEntry(
            "test-social", "social",
            lambda: dcsbm(512, 8, 8.0, mu=0.4, theta_exponent=0.9, seed=402),
            publisher_order="scrambled", profiles=("test",),
        ),
        CorpusEntry(
            "test-mesh", "mesh",
            lambda: grid_2d(24, 24),
            publisher_order="scrambled", profiles=("test",),
        ),
        CorpusEntry(
            "test-kmer", "kmer",
            lambda: kmer_chain(512, branch_prob=0.03, n_chains=4, seed=403),
            publisher_order="native", profiles=("test",),
        ),
        CorpusEntry(
            "test-rmat", "web",
            lambda: rmat(9, 8, seed=404),
            publisher_order="scrambled", directed=True, profiles=("test",),
        ),
        CorpusEntry(
            "test-random", "random",
            lambda: erdos_renyi(512, 6.0, seed=405),
            publisher_order="native", profiles=("test",),
        ),
    ]


for _entry in _full_entries() + _bench_entries() + _test_entries():
    _register(_entry)


# ---------------------------------------------------------------------------
# Public accessors.
# ---------------------------------------------------------------------------

def corpus_entries(profile: str = "full") -> List[CorpusEntry]:
    """All entries belonging to ``profile``, in registration order."""
    if profile not in PROFILES:
        raise ValidationError(f"unknown profile {profile!r}; valid: {PROFILES}")
    return [entry for entry in _REGISTRY.values() if profile in entry.profiles]


def corpus_names(profile: str = "full") -> List[str]:
    return [entry.name for entry in corpus_entries(profile)]


def get_entry(name: str) -> CorpusEntry:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CorpusError(f"unknown corpus entry {name!r}") from None


@lru_cache(maxsize=None)
def load_matrix(name: str) -> COOMatrix:
    """Build (and cache) a corpus matrix with its publisher order applied."""
    entry = get_entry(name)
    matrix = entry.builder()
    if entry.publisher_order == "scrambled":
        rng = np.random.default_rng(_scramble_seed(name))
        perm = rng.permutation(matrix.n_rows).astype(np.int64)
        matrix = permute_coo(matrix, perm)
    return matrix


def load_graph(name: str) -> Graph:
    """Corpus matrix as a :class:`Graph` (CSR-backed)."""
    entry = get_entry(name)
    return Graph(coo_to_csr(load_matrix(name)), directed=entry.directed)


@dataclass
class SelectionRecord:
    """Outcome of applying the Section III criteria to one entry."""

    name: str
    category: str
    n_nodes: int
    nnz: int
    avg_degree: float
    selected: bool
    reason: str = ""


def selection_report(profile: str = "full") -> List[SelectionRecord]:
    """Apply the scaled Section III selection criteria to a profile.

    Mirrors the paper's process: square (always true by construction),
    node count large enough that the input vector exceeds the modeled
    L2, and a non-zero cap.  Returns one record per entry so the
    process is auditable rather than implicit.
    """
    min_nodes = MIN_NODES[profile]
    max_nnz = MAX_NNZ[profile]
    records = []
    for entry in corpus_entries(profile):
        matrix = load_matrix(entry.name)
        selected = True
        reason = ""
        if matrix.n_rows < min_nodes:
            selected = False
            reason = f"fewer than {min_nodes} nodes (input vector fits in L2)"
        elif matrix.nnz > max_nnz:
            selected = False
            reason = f"more than {max_nnz} non-zeros (exceeds memory budget)"
        records.append(
            SelectionRecord(
                name=entry.name,
                category=entry.category,
                n_nodes=matrix.n_rows,
                nnz=matrix.nnz,
                avg_degree=matrix.nnz / max(1, matrix.n_rows),
                selected=selected,
                reason=reason,
            )
        )
    return records
