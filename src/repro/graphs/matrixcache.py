"""Checksummed disk cache for large generated matrices.

R-MAT matrices at ``scale >= MIN_CACHE_SCALE`` take long enough to
generate and symmetrize that rebuilding them per run dominates every
scale benchmark.  The first build persists both views as memmap CSR
directories under the shared experiment cache::

    <cache>/matrices/rmat-s{scale}-ef{edge_factor}-seed{seed}/
      graph.json     # integrity-enveloped parameters + shape record
      adjacency/     # directed adjacency (csr-memmap directory)
      undirected/    # symmetrized view (what detection consumes)

Loads memmap both views and pre-seed ``Graph._undirected_cache``, so
``generate -> detect -> order -> evaluate`` never re-symmetrizes and
never materializes nnz-sized arrays in RAM.  Every layer is
checksummed: ``graph.json`` carries the memo-cache envelope, each
memmap directory carries its own enveloped ``meta.json`` with
per-array byte lengths and sha256 digests.  A damaged entry is moved
to ``<cache>/quarantine/`` — never deleted — and rebuilt, the same
policy the experiment memo cache applies to torn memo files.

Below the scale threshold caching buys nothing, so the graph is built
in RAM exactly as before; results are identical either way because the
memmap build reproduces ``coo_to_csr`` + ``to_undirected`` ordering
bit-for-bit (unit-weight inputs; see
:func:`repro.sparse.memmap.symmetrize_to_memmap`).
"""

from __future__ import annotations

import os
import shutil
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import CacheIntegrityError
from repro.graphs.generators.powerlaw import rmat
from repro.graphs.graph import Graph
from repro.obs import get_obs, logger
from repro.resilience.integrity import (
    atomic_write_document,
    load_verified,
    quarantine_path,
    unique_tmp_path,
    wrap_payload,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.memmap import csr_from_coo_chunks, load_csr_memmap, symmetrize_to_memmap

#: Below this R-MAT scale, generation is cheap enough to stay in RAM.
MIN_CACHE_SCALE = 14

#: Bump when the entry layout changes; stale entries rebuild.
MATRIX_CACHE_VERSION = 1

MATRICES_DIRNAME = "matrices"
GRAPH_META_FILENAME = "graph.json"
ADJACENCY_DIRNAME = "adjacency"
UNDIRECTED_DIRNAME = "undirected"

#: COO entries fed to the CSR builder per chunk during a cache build.
_GEN_CHUNK = 4 << 20


def rmat_cache_key(scale: int, edge_factor: int, seed: int) -> str:
    """Directory name for one (scale, edge_factor, seed) R-MAT entry."""
    return f"rmat-s{scale}-ef{edge_factor}-seed{seed}"


def matrix_cache_root(cache_dir: Optional[str] = None) -> str:
    """``<cache>/matrices`` under the shared experiment cache dir."""
    # Deferred import: repro.experiments' package init reaches back into
    # repro.graphs via the figure modules.
    from repro.experiments.runner import resolve_cache_dir

    return os.path.join(resolve_cache_dir(cache_dir), MATRICES_DIRNAME)


def cached_rmat_graph(
    scale: int,
    edge_factor: int,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    min_cache_scale: int = MIN_CACHE_SCALE,
) -> Graph:
    """R-MAT graph, memmap-backed from the disk cache when large.

    Small instances (``scale < min_cache_scale``) build in RAM as
    always.  Large instances load from the cache, building it on the
    first miss; the returned graph's adjacency *and* pre-seeded
    undirected view are then memmaps, so downstream passes stream.
    """
    if scale < min_cache_scale:
        return Graph.from_coo(rmat(scale, edge_factor, seed=seed), directed=True)
    expect = _expected_payload(scale, edge_factor, seed)
    directory = os.path.join(
        matrix_cache_root(cache_dir), rmat_cache_key(scale, edge_factor, seed)
    )
    obs = get_obs()
    try:
        graph = load_cached_graph(directory, expect=expect)
        obs.counter("matrixcache.hit")
        return graph
    except FileNotFoundError:
        obs.counter("matrixcache.miss")
    except CacheIntegrityError as exc:
        logger.warning("matrix cache entry damaged, rebuilding: %s", exc)
        _quarantine_entry(directory, cache_dir)
        obs.counter("matrixcache.quarantined")
    build_rmat_cache(directory, scale, edge_factor, seed)
    return load_cached_graph(directory, expect=expect)


def _expected_payload(scale: int, edge_factor: int, seed: int) -> Dict[str, object]:
    return {
        "generator": "rmat",
        "scale": int(scale),
        "edge_factor": int(edge_factor),
        "seed": int(seed),
    }


def _quarantine_entry(directory: str, cache_dir: Optional[str]) -> Optional[str]:
    """Move a damaged entry directory under ``<cache>/quarantine/``."""
    from repro.experiments.runner import resolve_cache_dir  # deferred, as above

    if not os.path.isdir(directory):
        return None
    target_dir = quarantine_path(resolve_cache_dir(cache_dir))
    os.makedirs(target_dir, exist_ok=True)
    target = unique_tmp_path(os.path.join(target_dir, os.path.basename(directory)))
    try:
        os.replace(directory, target)
    except OSError:
        return None  # a concurrent worker quarantined it first
    return target


def _coo_chunks(coo: COOMatrix):
    """Replayable bounded-chunk stream over an in-RAM COO matrix."""

    def chunks() -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        for start in range(0, coo.nnz, _GEN_CHUNK):
            stop = min(start + _GEN_CHUNK, coo.nnz)
            yield coo.rows[start:stop], coo.cols[start:stop], coo.values[start:stop]

    return chunks


def build_rmat_cache(directory: str, scale: int, edge_factor: int, seed: int) -> str:
    """Generate one R-MAT entry and publish it atomically.

    Generation itself is transient RAM (the generator samples the full
    edge list); both CSR views are built straight into memmaps, and the
    whole entry lands via staging-dir + ``os.replace`` so readers never
    see a partial entry.  Returns ``directory``.
    """
    obs = get_obs()
    provenance = _expected_payload(scale, edge_factor, seed)
    staging = unique_tmp_path(directory)
    os.makedirs(staging)
    try:
        with obs.span("matrixcache-build", **provenance):
            with obs.span("matrixcache-generate"):
                coo = rmat(scale, edge_factor, seed=seed)
            n = coo.n_rows
            with obs.span("matrixcache-adjacency"):
                adjacency = csr_from_coo_chunks(
                    _coo_chunks(coo),
                    n,
                    n,
                    os.path.join(staging, ADJACENCY_DIRNAME),
                    extra_meta={**provenance, "role": "adjacency"},
                )
            del coo  # release the generation arrays before symmetrizing
            with obs.span("matrixcache-symmetrize"):
                undirected = symmetrize_to_memmap(
                    adjacency,
                    os.path.join(staging, UNDIRECTED_DIRNAME),
                    extra_meta={**provenance, "role": "undirected"},
                )
            payload: Dict[str, object] = {
                "kind": "matrix-cache",
                "version": MATRIX_CACHE_VERSION,
                **provenance,
                "directed": True,
                "n_nodes": int(n),
                "nnz": int(adjacency.nnz),
                "undirected_nnz": int(undirected.nnz),
            }
            del adjacency, undirected
            atomic_write_document(
                os.path.join(staging, GRAPH_META_FILENAME), wrap_payload(payload)
            )
        os.makedirs(os.path.dirname(os.path.abspath(directory)), exist_ok=True)
        if os.path.isdir(directory):
            shutil.rmtree(directory)  # concurrent rebuild: last writer wins
        os.replace(staging, directory)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return directory


def load_cached_graph(
    directory: str, expect: Optional[Dict[str, object]] = None
) -> Graph:
    """Open one cache entry as a memmap-backed :class:`Graph`.

    Raises :class:`FileNotFoundError` when the entry is absent and
    :class:`CacheIntegrityError` when any layer fails verification —
    including a parameter mismatch against ``expect``, which guards
    against a foreign directory squatting on the entry's name.
    """
    meta_path = os.path.join(directory, GRAPH_META_FILENAME)
    if not os.path.exists(meta_path):
        raise FileNotFoundError(meta_path)
    payload = load_verified(meta_path)
    if (
        payload.get("kind") != "matrix-cache"
        or payload.get("version") != MATRIX_CACHE_VERSION
    ):
        raise CacheIntegrityError(
            f"{meta_path}: not a matrix-cache v{MATRIX_CACHE_VERSION} entry "
            f"(kind={payload.get('kind')!r}, version={payload.get('version')!r})"
        )
    for key, value in (expect or {}).items():
        if payload.get(key) != value:
            raise CacheIntegrityError(
                f"{meta_path}: cached {key}={payload.get(key)!r} "
                f"does not match requested {value!r}"
            )
    adjacency = load_csr_memmap(os.path.join(directory, ADJACENCY_DIRNAME))
    undirected = load_csr_memmap(os.path.join(directory, UNDIRECTED_DIRNAME))
    if (
        adjacency.n_rows != payload.get("n_nodes")
        or adjacency.nnz != payload.get("nnz")
        or undirected.n_rows != payload.get("n_nodes")
        or undirected.nnz != payload.get("undirected_nnz")
    ):
        raise CacheIntegrityError(
            f"{directory}: array shapes disagree with {GRAPH_META_FILENAME}"
        )
    graph = Graph(adjacency, directed=bool(payload.get("directed", True)))
    undirected_graph = Graph(undirected, directed=False)
    # Pre-seed both caches: to_undirected() must return the memmap view
    # instead of re-symmetrizing (which would materialize nnz in RAM).
    undirected_graph._undirected_cache = undirected_graph
    graph._undirected_cache = undirected_graph
    return graph
