"""Graph view over sparse-matrix storage.

A :class:`Graph` wraps a square CSR matrix and exposes graph-flavoured
accessors (neighbors, degrees, undirected view).  Reordering techniques
and community detection operate on this view; the kernels and the cache
simulator operate on the underlying matrix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.sparse.convert import coo_to_csr, csr_to_coo
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import drop_self_loops, is_symmetric, symmetrize, transpose


class Graph:
    """An (optionally directed) graph backed by a CSR adjacency matrix.

    Parameters
    ----------
    adjacency:
        Square CSR matrix; entry ``(u, v)`` is an edge from ``u`` to ``v``.
    directed:
        Whether the edge set should be interpreted as directed.  When
        false, the adjacency is expected to be structurally symmetric
        (validated lazily by :meth:`validate_undirected`).
    """

    __slots__ = ("adjacency", "directed", "_undirected_cache", "_in_adjacency_cache")

    def __init__(self, adjacency: CSRMatrix, directed: bool = False) -> None:
        if not adjacency.is_square:
            raise ShapeError(f"a graph needs a square adjacency, got {adjacency.shape}")
        self.adjacency = adjacency
        self.directed = bool(directed)
        self._undirected_cache: Optional["Graph"] = None
        self._in_adjacency_cache: Optional[CSRMatrix] = None

    @classmethod
    def from_coo(cls, coo: COOMatrix, directed: bool = False) -> "Graph":
        return cls(coo_to_csr(coo), directed=directed)

    @property
    def n_nodes(self) -> int:
        return self.adjacency.n_rows

    @property
    def n_edges(self) -> int:
        """Number of stored adjacency entries.

        For an undirected graph each edge ``{u, v}`` with ``u != v`` is
        stored twice, so this equals ``2 * |E| + |self loops|``.
        """
        return self.adjacency.nnz

    def out_degrees(self) -> np.ndarray:
        return self.adjacency.row_degrees()

    def in_degrees(self) -> np.ndarray:
        return self.adjacency.col_degrees()

    def degrees(self) -> np.ndarray:
        """Total degree; for undirected graphs this equals out-degree."""
        if self.directed:
            return self.out_degrees() + self.in_degrees()
        return self.out_degrees()

    def average_degree(self) -> float:
        """Mean number of non-zeros per row — the paper's hub threshold."""
        if self.n_nodes == 0:
            return 0.0
        return self.adjacency.nnz / self.n_nodes

    def neighbors(self, node: int) -> np.ndarray:
        """Out-neighbors of ``node`` (a view into the CSR indices)."""
        return self.adjacency.row_slice(node)

    def edge_weights(self, node: int) -> np.ndarray:
        return self.adjacency.row_values(node)

    @property
    def in_adjacency(self) -> CSRMatrix:
        """CSR of the transposed adjacency (in-neighbors per row), cached.

        GOrder and any consumer needing in-neighbor expansion share one
        transpose instead of rebuilding it per call.
        """
        if self._in_adjacency_cache is None:
            self._in_adjacency_cache = coo_to_csr(transpose(csr_to_coo(self.adjacency)))
        return self._in_adjacency_cache

    def validate_undirected(self) -> bool:
        """Check the adjacency is structurally symmetric."""
        return is_symmetric(csr_to_coo(self.adjacency))

    def to_undirected(self, drop_loops: bool = True) -> "Graph":
        """Symmetrized copy (used by community detection).

        The result is cached: community detection and the insularity
        metrics both need it, and symmetrization is the most expensive
        structural operation on large inputs.
        """
        if not self.directed and self._undirected_cache is None and not drop_loops:
            return self
        if self._undirected_cache is None:
            coo = csr_to_coo(self.adjacency)
            if drop_loops:
                coo = drop_self_loops(coo)
            if self.directed:
                coo = symmetrize(coo)
            else:
                coo = symmetrize(coo)  # also merges duplicate entries
            self._undirected_cache = Graph(coo_to_csr(coo), directed=False)
        return self._undirected_cache

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"Graph({kind}, n_nodes={self.n_nodes}, entries={self.n_edges})"
