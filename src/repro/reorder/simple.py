"""Baseline orderings: ORIGINAL and RANDOM (paper Section IV-A).

ORIGINAL keeps the node IDs found in the public dataset — an ordering
the paper shows is "an ill-defined concept" because it reflects an
arbitrary publisher choice.  RANDOM assigns IDs uniformly at random and
is the worst-case locality baseline.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.reorder.base import ReorderingTechnique


class OriginalOrder(ReorderingTechnique):
    """Identity permutation: keep the dataset's node IDs."""

    name = "original"

    def _compute(self, graph: Graph) -> np.ndarray:
        return np.arange(graph.n_nodes, dtype=np.int64)


class RandomOrder(ReorderingTechnique):
    """Uniformly random node IDs (seeded, so runs are repeatable)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def _compute(self, graph: Graph) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return rng.permutation(graph.n_nodes).astype(np.int64)
