"""Recursive-bisection (partition-based) ordering.

The graph-partitioning family the paper cites (METIS [24], nested
dissection [29], GraphGrind [39]) assigns contiguous IDs per
partition.  This implementation recursively splits the node set by a
BFS sweep: grow a breadth-first region from a low-degree seed until it
holds half the nodes (a cheap Kernighan-Lin-free bisection that keeps
each half connected-ish), recurse on both halves, and emit leaves in
order.  Leaf size defaults to roughly a cache-tile's worth of nodes.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.reorder.base import ReorderingTechnique, stable_order_to_permutation


class RecursiveBisection(ReorderingTechnique):
    """BFS-sweep recursive bisection with contiguous partition IDs."""

    name = "bisection"

    def __init__(self, leaf_size: int = 128) -> None:
        if leaf_size < 1:
            raise ValidationError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = int(leaf_size)

    def _compute(self, graph: Graph) -> np.ndarray:
        adjacency = graph.to_undirected().adjacency
        offsets = adjacency.row_offsets
        indices = adjacency.col_indices
        degrees = np.diff(offsets)
        order: List[np.ndarray] = []

        stack = [np.arange(adjacency.n_rows, dtype=np.int64)]
        while stack:
            block = stack.pop()
            if block.size <= self.leaf_size:
                order.append(block)
                continue
            first, second = _bfs_bisect(block, offsets, indices, degrees)
            # Depth-first emit: process `first` before `second`.
            stack.append(second)
            stack.append(first)
        visit = np.concatenate(order) if order else np.empty(0, dtype=np.int64)
        return stable_order_to_permutation(visit)


def _bfs_bisect(
    block: np.ndarray,
    offsets: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """Split ``block`` into two halves by a BFS sweep inside the block."""
    target = block.size // 2
    in_block = np.zeros(offsets.size - 1, dtype=bool)
    in_block[block] = True
    taken = np.zeros(offsets.size - 1, dtype=bool)

    # Seed at the lowest-degree block member (periphery-ish).
    seed = int(block[np.argmin(degrees[block])])
    first: List[int] = []
    queue = deque([seed])
    taken[seed] = True
    candidates = iter(block[np.argsort(degrees[block], kind="stable")])
    while len(first) < target:
        if not queue:
            # Disconnected remainder: restart from the next untaken seed.
            for candidate in candidates:
                if not taken[candidate]:
                    taken[candidate] = True
                    queue.append(int(candidate))
                    break
            else:
                break
        v = queue.popleft()
        first.append(v)
        neighbors = indices[offsets[v]: offsets[v + 1]]
        for u in np.unique(neighbors):
            if in_block[u] and not taken[u]:
                taken[u] = True
                queue.append(int(u))

    first_array = np.asarray(first, dtype=np.int64)
    first_mask = np.zeros(offsets.size - 1, dtype=bool)
    first_mask[first_array] = True
    second_array = block[~first_mask[block]]
    return first_array, second_array
