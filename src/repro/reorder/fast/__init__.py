"""Vectorized fast engines for reordering techniques.

Each module here mirrors one reference technique in
:mod:`repro.reorder` and produces **bit-identical permutations**; the
dispatch in the technique classes (driven by
:mod:`repro.reorder.dispatch`) picks between them.  The CSR-native
community detectors backing rabbit/rabbit++/louvain live in
:mod:`repro.community.fast`.
"""
