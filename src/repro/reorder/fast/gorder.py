"""Batched GOrder: array-backed priority keys, argmax selection.

Bit-identical to :class:`repro.reorder.gorder.GOrder`.  The reference
keeps a lazy max-heap of ``(-key, node)`` entries with stale-entry
reinsertion; a popped entry is accepted only when its key matches the
current array value, so every accepted pop returns the unplaced node
with the maximum current key, ties broken by smallest node id (heap
order on the second tuple element).  ``np.argmax`` over a key array
returns the first maximum — the same node — so the heap, its pushes on
every increment, and the invalid-entry churn can all be dropped: placed
nodes simply have a huge constant subtracted from their key (later
deltas keep applying; the offset dwarfs any achievable score mass, so
they can never win the argmax).

Window-delta application is identical (``np.add.at`` with +/-1 per
affected occurrence; integer adds commute, so only the multiset of
targets matters), and the affected-set expansion through capped
in-neighbor sibling lists is one vectorized CSR gather instead of a
Python loop.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.graphs.graph import Graph

#: Subtracted from a node's key when it is placed.  Keys move by +/-1
#: per affected-set occurrence, bounded by total expansion mass (far
#: below 2^40 for any graph that fits in memory), so a placed node can
#: never reach an unplaced node's key range again.
_PLACED_OFFSET = np.int64(1) << np.int64(40)


def _capped_gather(
    offsets: np.ndarray,
    indices: np.ndarray,
    rows: np.ndarray,
    cap: Optional[int],
) -> np.ndarray:
    """Concatenate CSR rows, truncating each to its first ``cap`` entries."""
    starts = offsets[rows]
    counts = offsets[rows + 1] - starts
    if cap is not None:
        counts = np.minimum(counts, cap)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    rank = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
    segment_base = np.cumsum(counts) - counts
    positions = np.arange(total, dtype=np.int64) - segment_base[rank] + starts[rank]
    return indices[positions]


def gorder_visit_fast(graph: Graph, window: int, max_expand: Optional[int]) -> np.ndarray:
    """Greedy GOrder visit sequence (old IDs in placement order)."""
    n = graph.n_nodes
    out_csr = graph.adjacency
    in_csr = graph.in_adjacency

    out_offsets = out_csr.row_offsets
    out_indices = out_csr.col_indices
    in_offsets = in_csr.row_offsets
    in_indices = in_csr.col_indices

    key = np.zeros(n, dtype=np.int64)

    def affected(z: int) -> np.ndarray:
        out_neighbors = out_indices[out_offsets[z]: out_offsets[z + 1]]
        in_neighbors = in_indices[in_offsets[z]: in_offsets[z + 1]]
        capped = in_neighbors
        if max_expand is not None and capped.size > max_expand:
            capped = capped[:max_expand]
        siblings = _capped_gather(out_offsets, out_indices, capped, max_expand)
        return np.concatenate([out_neighbors, in_neighbors, siblings])

    visit = np.empty(n, dtype=np.int64)
    window_queue: deque = deque()
    in_degrees = np.diff(in_offsets)
    seed = int(np.argmax(in_degrees))

    for position in range(n):
        v = seed if position == 0 else int(np.argmax(key))
        key[v] -= _PLACED_OFFSET
        visit[position] = v

        if len(window_queue) == window:
            z = window_queue.popleft()
            targets = affected(z)
            if targets.size:
                np.subtract.at(key, targets, 1)
        window_queue.append(v)
        targets = affected(v)
        if targets.size:
            np.add.at(key, targets, 1)
    return visit
