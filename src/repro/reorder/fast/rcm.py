"""Generation-batched Reverse Cuthill–McKee.

Bit-identical to :class:`repro.reorder.rcm.ReverseCuthillMcKee`: the
reference dequeues one parent at a time and appends its unvisited
neighbors deduplicated and sorted by ``(degree, node id)``.  Within a
BFS level that sequential process is equivalent to

1. gather all neighbors of the level's parents (parents in queue
   order),
2. keep unvisited ones and resolve duplicates to the *earliest* parent
   (the parent that would have marked the child visited first),
3. sort the claimed children by ``(parent rank, degree, node id)``.

Step 3's triple sort reproduces the per-parent ``np.unique`` +
stable-argsort-by-degree order exactly, so one ``np.lexsort`` per BFS
level replaces the per-parent Python loop.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graphs.graph import Graph
from repro.reorder.base import stable_order_to_permutation


def _gather_rows(
    offsets: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Concatenate CSR rows; returns (entries, per-entry row rank)."""
    counts = offsets[rows + 1] - offsets[rows]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype), np.empty(0, dtype=np.int64)
    rank = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
    segment_base = np.cumsum(counts) - counts
    positions = np.arange(total, dtype=np.int64) - segment_base[rank] + offsets[rows][rank]
    return indices[positions], rank


def _bfs_levels_fast(start: int, offsets: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Vectorized level assignment (same result as the reference BFS)."""
    n = offsets.size - 1
    levels = np.full(n, -1, dtype=np.int64)
    levels[start] = 0
    frontier = np.asarray([start], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        neighbors, _ = _gather_rows(offsets, indices, frontier)
        if neighbors.size == 0:
            break
        neighbors = np.unique(neighbors)
        fresh = neighbors[levels[neighbors] < 0]
        if fresh.size == 0:
            break
        levels[fresh] = depth
        frontier = fresh
    return levels


def _pseudo_peripheral_fast(
    start: int, offsets: np.ndarray, indices: np.ndarray, degrees: np.ndarray
) -> int:
    """George–Liu heuristic (reference ``_pseudo_peripheral``)."""
    current = start
    for _ in range(2):
        levels = _bfs_levels_fast(current, offsets, indices)
        last_level = levels.max()
        if last_level <= 0:
            return current
        frontier = np.flatnonzero(levels == last_level)
        current = int(frontier[np.argmin(degrees[frontier])])
    return current


def _component_bfs_fast(
    start: int,
    offsets: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    visited: np.ndarray,
) -> List[np.ndarray]:
    """Cuthill–McKee BFS, one lexsort per level; marks ``visited``."""
    visited[start] = True
    frontier = np.asarray([start], dtype=np.int64)
    chunks = [frontier]
    while frontier.size:
        children, parent_rank = _gather_rows(offsets, indices, frontier)
        if children.size:
            keep = ~visited[children]
            children = children[keep]
            parent_rank = parent_rank[keep]
        if children.size == 0:
            break
        # Earliest parent claims each child (sequential marking order).
        by_child = np.lexsort((parent_rank, children))
        children = children[by_child]
        parent_rank = parent_rank[by_child]
        first = np.ones(children.size, dtype=bool)
        first[1:] = children[1:] != children[:-1]
        children = children[first]
        parent_rank = parent_rank[first]
        order = np.lexsort((children, degrees[children], parent_rank))
        frontier = children[order]
        visited[frontier] = True
        chunks.append(frontier)
    return chunks


def rcm_permutation_fast(graph: Graph) -> np.ndarray:
    """RCM permutation via generation-batched BFS."""
    undirected = graph.to_undirected()
    adjacency = undirected.adjacency
    n = adjacency.n_rows
    offsets = adjacency.row_offsets
    indices = adjacency.col_indices
    degrees = np.diff(offsets)

    visited = np.zeros(n, dtype=bool)
    chunks: List[np.ndarray] = []
    for candidate in np.argsort(degrees, kind="stable").tolist():
        if visited[candidate]:
            continue
        start = _pseudo_peripheral_fast(candidate, offsets, indices, degrees)
        chunks.extend(_component_bfs_fast(start, offsets, indices, degrees, visited))
    if not chunks:
        return np.empty(0, dtype=np.int64)
    visit = np.concatenate(chunks)[::-1]
    return stable_order_to_permutation(np.ascontiguousarray(visit))
