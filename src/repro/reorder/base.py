"""Reordering technique interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.obs import get_obs
from repro.sparse.permute import check_permutation


class ReorderingTechnique(abc.ABC):
    """A node-relabeling strategy.

    Subclasses implement :meth:`_compute`; :meth:`compute` wraps it with
    permutation validation so a buggy technique fails loudly instead of
    silently corrupting the matrix.
    """

    #: Short display name used in tables and the registry.
    name: str = "unnamed"

    #: Engine selection for techniques with a vectorized fast path
    #: (``"auto"``, ``"fast"``, ``"reference"``, or ``None`` = auto; see
    #: :mod:`repro.reorder.dispatch`).  Techniques without a fast path
    #: ignore it.  Every engine produces bit-identical permutations.
    impl: Optional[str] = None

    def compute(self, graph: Graph) -> np.ndarray:
        """Return a validated permutation ``perm[old_id] == new_id``."""
        perm = self._compute(graph)
        return check_permutation(perm, graph.n_nodes)

    @abc.abstractmethod
    def _compute(self, graph: Graph) -> np.ndarray:
        """Produce the raw permutation (validated by :meth:`compute`)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class TimedReordering:
    """A permutation together with its pre-processing wall time."""

    technique: str
    permutation: np.ndarray
    seconds: float


def reorder_with_timing(technique: ReorderingTechnique, graph: Graph) -> TimedReordering:
    """Compute a reordering and measure its pre-processing cost.

    The measured time backs the paper's Figure 9 (pre-processing cost
    vs. matrix size) and the amortization-iteration analysis.  Timing
    goes through the instrumentation clock (a ``reorder`` span when
    observability is enabled), so tests can inject a fake clock.
    """
    obs = get_obs()
    with obs.span("reorder", technique=technique.name, n_nodes=graph.n_nodes):
        start = obs.clock.now()
        permutation = technique.compute(graph)
        elapsed = obs.clock.now() - start
    return TimedReordering(technique.name, permutation, elapsed)


def stable_order_to_permutation(visit_order: np.ndarray) -> np.ndarray:
    """Convert a visit order (old IDs in new-ID sequence) to ``perm``."""
    perm = np.empty(visit_order.size, dtype=np.int64)
    perm[visit_order] = np.arange(visit_order.size, dtype=np.int64)
    return perm
