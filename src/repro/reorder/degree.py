"""Degree-based reordering techniques (paper Section IV-A).

All four techniques here exploit skewed (power-law) degree
distributions by packing highly-connected vertices into few cache
lines.  Following the paper (and the prior work it cites), the degree
used is the *in-degree*, because push-style kernels such as SpMV gather
through incoming references.

* DEGSORT — full ID reassignment by descending in-degree.
* DBG — degree-based grouping (Faldu et al.): coarse power-of-two
  degree buckets, hottest bucket first, *original relative order kept
  inside each bucket* so any pre-existing locality survives.
* HUBSORT — hubs (degree > average) first in descending degree order,
  non-hubs keep their relative order.
* HUBCLUSTER — hubs first in their original relative order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.reorder.base import ReorderingTechnique, stable_order_to_permutation


def _in_degrees(graph: Graph) -> np.ndarray:
    return np.asarray(graph.in_degrees(), dtype=np.int64)


class DegSort(ReorderingTechnique):
    """Assign IDs in decreasing order of in-degree (stable)."""

    name = "degsort"

    def _compute(self, graph: Graph) -> np.ndarray:
        degrees = _in_degrees(graph)
        # Stable sort on negated degree: ties keep original order.
        visit = np.argsort(-degrees, kind="stable")
        return stable_order_to_permutation(visit)


class DBG(ReorderingTechnique):
    """Degree-Based Grouping: coarse degree buckets, order kept within.

    Bucket ``b`` holds vertices with in-degree in ``[2^b, 2^(b+1))``
    (bucket 0 additionally holds degree-0 vertices).  Buckets are laid
    out from hottest (highest degree range) to coldest, and vertices
    within a bucket keep their original relative order.
    """

    name = "dbg"

    def __init__(self, n_buckets: int = 0) -> None:
        """``n_buckets = 0`` means as many power-of-two buckets as needed."""
        if n_buckets < 0:
            raise ValidationError(f"n_buckets must be >= 0, got {n_buckets}")
        self.n_buckets = int(n_buckets)

    def _compute(self, graph: Graph) -> np.ndarray:
        degrees = _in_degrees(graph)
        # floor(log2(degree)) with degree 0 mapped to bucket 0.
        buckets = np.zeros(graph.n_nodes, dtype=np.int64)
        positive = degrees > 0
        buckets[positive] = np.floor(np.log2(degrees[positive])).astype(np.int64)
        if self.n_buckets:
            buckets = np.minimum(buckets, self.n_buckets - 1)
        # Hot buckets first; stable sort keeps original order within.
        visit = np.argsort(-buckets, kind="stable")
        return stable_order_to_permutation(visit)


class HubSort(ReorderingTechnique):
    """Hubs first, sorted by descending in-degree; others keep order."""

    name = "hubsort"

    def _compute(self, graph: Graph) -> np.ndarray:
        degrees = _in_degrees(graph)
        hubs = hub_mask(graph)
        hub_ids = np.flatnonzero(hubs)
        hub_visit = hub_ids[np.argsort(-degrees[hub_ids], kind="stable")]
        non_hub_visit = np.flatnonzero(~hubs)
        return stable_order_to_permutation(np.concatenate([hub_visit, non_hub_visit]))


class HubCluster(ReorderingTechnique):
    """Hubs first in original relative order; others keep order."""

    name = "hubcluster"

    def _compute(self, graph: Graph) -> np.ndarray:
        hubs = hub_mask(graph)
        visit = np.concatenate([np.flatnonzero(hubs), np.flatnonzero(~hubs)])
        return stable_order_to_permutation(visit)


def hub_mask(graph: Graph, degrees: np.ndarray = None) -> np.ndarray:
    """Boolean mask of hub nodes: in-degree above the average degree.

    The paper defines hubs as "nodes with degree greater than the
    average degree of the graph" (Section VI-A).
    """
    if degrees is None:
        degrees = _in_degrees(graph)
    return degrees > graph.average_degree()
