"""Graph-traversal orderings: BFS and DFS.

Classic lightweight locality baselines (the family RCM refines): a
breadth-first order places each frontier contiguously, so neighbors
land near each other; a depth-first order makes paths contiguous,
which suits chain-like matrices.  Both visit components by ascending
minimum-degree start node for determinism.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.graphs.graph import Graph
from repro.reorder.base import ReorderingTechnique, stable_order_to_permutation


class BFSOrder(ReorderingTechnique):
    """Breadth-first visit order over the undirected view."""

    name = "bfs"

    def _compute(self, graph: Graph) -> np.ndarray:
        adjacency = graph.to_undirected().adjacency
        offsets = adjacency.row_offsets
        indices = adjacency.col_indices
        n = adjacency.n_rows
        visited = np.zeros(n, dtype=bool)
        order: List[int] = []
        for start in _component_starts(adjacency):
            if visited[start]:
                continue
            visited[start] = True
            queue = deque([start])
            while queue:
                v = queue.popleft()
                order.append(v)
                neighbors = np.unique(indices[offsets[v]: offsets[v + 1]])
                for u in neighbors[~visited[neighbors]]:
                    visited[u] = True
                    queue.append(int(u))
        return stable_order_to_permutation(np.asarray(order, dtype=np.int64))


class DFSOrder(ReorderingTechnique):
    """Depth-first (preorder) visit order over the undirected view."""

    name = "dfs"

    def _compute(self, graph: Graph) -> np.ndarray:
        adjacency = graph.to_undirected().adjacency
        offsets = adjacency.row_offsets
        indices = adjacency.col_indices
        n = adjacency.n_rows
        visited = np.zeros(n, dtype=bool)
        order: List[int] = []
        for start in _component_starts(adjacency):
            if visited[start]:
                continue
            stack = [start]
            while stack:
                v = stack.pop()
                if visited[v]:
                    continue
                visited[v] = True
                order.append(v)
                neighbors = np.unique(indices[offsets[v]: offsets[v + 1]])
                # Reverse so the smallest-ID neighbor is explored first.
                stack.extend(int(u) for u in neighbors[::-1] if not visited[u])
        return stable_order_to_permutation(np.asarray(order, dtype=np.int64))


def _component_starts(adjacency) -> np.ndarray:
    """Candidate start nodes: every node, by ascending degree."""
    degrees = np.diff(adjacency.row_offsets)
    return np.argsort(degrees, kind="stable")
