"""GORDER: greedy window locality-score maximization (paper ref. [41]).

GOrder (Wei et al., SIGMOD 2016) seeks a permutation maximizing

    F(order) = sum over pairs (u, v) within a sliding window of
               S_s(u, v) + S_n(u, v)

where ``S_n(u, v)`` is 1 when u and v are adjacent and ``S_s(u, v)``
counts their common in-neighbors.  The greedy algorithm places one node
at a time, always picking the unplaced node with the highest score
against the current window, maintained incrementally with a lazy
max-heap.

Faithful to the original, this is by far the most expensive technique
here — which is exactly the trade-off the paper's Figure 9 quantifies.
One approximation keeps worst-case inputs tractable: when updating
sibling scores through a node's in-neighbors, each expansion list is
capped at ``max_expand`` entries (hub in-neighbors shared by tens of
thousands of nodes contribute near-uniform score mass, so truncating
them barely changes the argmax).  Set ``max_expand=None`` to disable.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.reorder.base import ReorderingTechnique, stable_order_to_permutation
from repro.reorder.dispatch import resolve_for_graph


class GOrder(ReorderingTechnique):
    """Greedy GOrder with window ``w`` (paper and original use w = 5)."""

    name = "gorder"

    def __init__(self, window: int = 5, max_expand: Optional[int] = 64) -> None:
        if window < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        if max_expand is not None and max_expand < 1:
            raise ValidationError(f"max_expand must be >= 1 or None, got {max_expand}")
        self.window = int(window)
        self.max_expand = max_expand

    def _compute(self, graph: Graph) -> np.ndarray:
        n = graph.n_nodes
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if resolve_for_graph(self.impl, n, graph.n_edges) == "fast":
            from repro.reorder.fast.gorder import gorder_visit_fast

            visit = gorder_visit_fast(graph, self.window, self.max_expand)
            return stable_order_to_permutation(visit)
        out_csr = graph.adjacency
        in_csr = graph.in_adjacency

        out_offsets = out_csr.row_offsets
        out_indices = out_csr.col_indices
        in_offsets = in_csr.row_offsets
        in_indices = in_csr.col_indices

        key = np.zeros(n, dtype=np.int64)
        placed = np.zeros(n, dtype=bool)
        heap: List = [(0, v) for v in range(n)]
        # Already sorted by (0, v); heapq accepts any heap-ordered list.

        def affected(z: int) -> np.ndarray:
            """Nodes whose window score changes when z enters/leaves."""
            parts = [
                out_indices[out_offsets[z]: out_offsets[z + 1]],
                in_indices[in_offsets[z]: in_offsets[z + 1]],
            ]
            in_neighbors = in_indices[in_offsets[z]: in_offsets[z + 1]]
            if self.max_expand is not None and in_neighbors.size > self.max_expand:
                in_neighbors = in_neighbors[: self.max_expand]
            for x in in_neighbors:
                siblings = out_indices[out_offsets[x]: out_offsets[x + 1]]
                if self.max_expand is not None and siblings.size > self.max_expand:
                    siblings = siblings[: self.max_expand]
                parts.append(siblings)
            return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

        visit = np.empty(n, dtype=np.int64)
        window: deque = deque()
        # Seed with the maximum in-degree node, as in the original.
        in_degrees = np.diff(in_offsets)
        seed = int(np.argmax(in_degrees))

        for position in range(n):
            if position == 0:
                v = seed
            else:
                v = self._pop_best(heap, key, placed)
            placed[v] = True
            visit[position] = v

            if len(window) == self.window:
                z = window.popleft()
                self._apply_delta(affected(int(z)), -1, key, placed, heap)
            window.append(v)
            self._apply_delta(affected(v), +1, key, placed, heap)
        return stable_order_to_permutation(visit)

    @staticmethod
    def _pop_best(heap: List, key: np.ndarray, placed: np.ndarray) -> int:
        """Pop the valid maximum-key node (lazy heap discipline).

        Entries are ``(-key_at_push, node)``.  Stale-high entries (key
        decreased since push) are re-inserted with the current key;
        stale-low entries cannot exist because every increment pushes.
        """
        while heap:
            neg_key, v = heapq.heappop(heap)
            if placed[v]:
                continue
            if -neg_key != key[v]:
                heapq.heappush(heap, (-int(key[v]), v))
                continue
            return int(v)
        # Heap exhausted (graph smaller than bookkeeping assumed):
        # fall back to the first unplaced node.
        remaining = np.flatnonzero(~placed)
        return int(remaining[0])

    @staticmethod
    def _apply_delta(
        targets: np.ndarray,
        delta: int,
        key: np.ndarray,
        placed: np.ndarray,
        heap: List,
    ) -> None:
        if targets.size == 0:
            return
        np.add.at(key, targets, delta)
        if delta > 0:
            # Only increments need fresh heap entries; decrements are
            # handled lazily at pop time.
            for v in np.unique(targets):
                if not placed[v]:
                    heapq.heappush(heap, (-int(key[v]), int(v)))
