"""BOBA-style parallel bucket placement (arXiv 2306.10410).

BOBA's observation is that a *lightweight* ordering — one parallel pass
of bucket placement, no community detection — lands within a few
percent of heavyweight orders at a tiny fraction of their cost.  This
adaptation composes the two keys the paper's corpus analysis says
matter:

* **degree key** (hot buckets): hubs (in-degree above the graph
  average, the paper's Section VI-A definition) are placed first,
  grouped into DBG-style power-of-two degree buckets, hottest bucket
  first, original order kept within a bucket;
* **community key** (anchors): every non-hub is keyed by its *anchor* —
  the highest-in-degree hub among its out-neighbors (first occurrence
  wins ties) — and non-hubs sharing an anchor are laid out
  consecutively, in the order their anchors were placed.  Non-hubs with
  no hub neighbor keep their original relative order at the tail.

Both passes are bucket placements (stable counting sorts), which is
what makes the technique embarrassingly parallel: anchor selection is
independent per row, so the row range shards across
:func:`repro.parallel.pool.map_in_pool` workers, and the final
placement is a stable sort of per-node integer keys — a pure function
of the graph.  The permutation is therefore **identical for every
``n_shards`` and ``jobs`` value**, and the reference engine (plain
Python loops) is bit-identical to the vectorized fast engine; both
facts are locked by differential tests.

The row scan touches the CSR arrays once, sequentially, in bounded
blocks — memmap-backed matrices stream through without materializing.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.obs import get_obs
from repro.reorder.base import ReorderingTechnique, stable_order_to_permutation
from repro.reorder.dispatch import resolve_for_graph
from repro.sparse.csr import CSRMatrix

#: Max adjacency entries materialized per block in the fast anchor scan.
_SCAN_BLOCK = 4 << 20


class BobaOrder(ReorderingTechnique):
    """Parallel two-level bucket placement over degree/anchor keys.

    Parameters
    ----------
    n_shards:
        Row-range shards for the anchor scan.  Any value produces the
        identical permutation; more shards means smaller parallel work
        units.
    jobs:
        Worker processes for the anchor scan (``1`` = in-process).
        Never affects the result.  Only the fast engine shards; the
        reference engine is the sequential ground truth.
    """

    name = "boba"

    def __init__(self, n_shards: int = 1, jobs: int = 1) -> None:
        if n_shards < 1:
            raise ValidationError(f"n_shards must be positive, got {n_shards}")
        if jobs < 1:
            raise ValidationError(f"jobs must be positive, got {jobs}")
        self.n_shards = int(n_shards)
        self.jobs = int(jobs)

    def _compute(self, graph: Graph) -> np.ndarray:
        resolved = resolve_for_graph(self.impl, graph.n_nodes, graph.n_edges)
        with get_obs().span(
            "boba-place",
            impl=resolved,
            n_nodes=graph.n_nodes,
            n_shards=self.n_shards,
            jobs=self.jobs,
        ):
            if resolved == "fast":
                return _boba_fast(graph, self.n_shards, self.jobs)
            return _boba_reference(graph)


def _hub_order(graph: Graph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared key pass: ``(in_degrees, hub mask, hub visit order)``."""
    degrees = np.asarray(graph.in_degrees(), dtype=np.int64)
    hubs = degrees > graph.average_degree()
    buckets = np.zeros(graph.n_nodes, dtype=np.int64)
    positive = degrees > 0
    buckets[positive] = np.floor(np.log2(degrees[positive])).astype(np.int64)
    hub_ids = np.flatnonzero(hubs)
    hub_visit = hub_ids[np.argsort(-buckets[hub_ids], kind="stable")]
    return degrees, hubs, hub_visit


def _boba_reference(graph: Graph) -> np.ndarray:
    """Sequential ground truth: per-node loops, no vectorization."""
    n = graph.n_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    degrees, hubs, hub_visit = _hub_order(graph)
    hub_pos = {int(vertex): pos for pos, vertex in enumerate(hub_visit)}
    n_hubs = hub_visit.size

    keyed: List[Tuple[int, int]] = []  # (placement key, node) for non-hubs
    for vertex in range(n):
        if hubs[vertex]:
            continue
        anchor = -1
        for neighbor in graph.neighbors(vertex):
            u = int(neighbor)
            if hubs[u] and (anchor < 0 or degrees[u] > degrees[anchor]):
                anchor = u
        key = hub_pos[anchor] if anchor >= 0 else n_hubs
        keyed.append((key, vertex))
    keyed.sort()  # stable not required: (key, vertex) pairs are unique
    visit = np.concatenate(
        [hub_visit, np.asarray([vertex for _, vertex in keyed], dtype=np.int64)]
    ) if keyed else hub_visit
    return stable_order_to_permutation(visit)


def _boba_fast(graph: Graph, n_shards: int, jobs: int) -> np.ndarray:
    n = graph.n_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    degrees, hubs, hub_visit = _hub_order(graph)
    hub_pos = np.full(n, -1, dtype=np.int64)
    hub_pos[hub_visit] = np.arange(hub_visit.size, dtype=np.int64)

    keys = _anchor_keys(
        graph.adjacency, degrees, hubs, hub_pos, int(hub_visit.size), n_shards, jobs
    )
    nonhub_ids = np.flatnonzero(~hubs)
    nonhub_visit = nonhub_ids[np.argsort(keys[nonhub_ids], kind="stable")]
    visit = np.concatenate([hub_visit, nonhub_visit])
    return stable_order_to_permutation(visit)


def _anchor_keys(
    adjacency: CSRMatrix,
    degrees: np.ndarray,
    hubs: np.ndarray,
    hub_pos: np.ndarray,
    n_hubs: int,
    n_shards: int,
    jobs: int,
) -> np.ndarray:
    """Per-node placement key: anchor's hub position, ``n_hubs`` if none.

    Rows are independent, so the computation shards by row range.  With
    ``jobs == 1`` shards stream through in-process (nothing staged);
    with ``jobs > 1`` each shard's CSR slice ships to a pool worker.
    """
    from repro.community.sharded import shard_bounds
    from repro.parallel.pool import map_in_pool

    n = adjacency.n_rows
    bounds = shard_bounds(n, n_shards)
    keys = np.empty(n, dtype=np.int64)
    if jobs <= 1 or len(bounds) <= 1:
        for lo, hi in bounds:
            keys[lo:hi] = _shard_anchor_keys(
                (_shard_slice(adjacency, lo, hi), degrees, hub_pos, n_hubs)
            )
    else:
        payloads = [
            (_shard_slice(adjacency, lo, hi), degrees, hub_pos, n_hubs)
            for lo, hi in bounds
        ]
        for (lo, hi), part in zip(bounds, map_in_pool(_shard_anchor_keys, payloads, jobs=jobs)):
            keys[lo:hi] = part
    # ``hubs`` rows get scanned too (their key is unused); mask is only
    # consulted by the caller, so nothing to fix up here.
    del hubs
    return keys


def _shard_slice(
    adjacency: CSRMatrix, lo: int, hi: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Rebased ``(row_offsets, col_indices)`` for rows ``[lo, hi)``."""
    start = int(adjacency.row_offsets[lo])
    stop = int(adjacency.row_offsets[hi])
    offsets = np.asarray(adjacency.row_offsets[lo: hi + 1]) - start
    return offsets.astype(np.int64, copy=False), adjacency.col_indices[start:stop]


def _shard_anchor_keys(
    payload: Tuple[Tuple[np.ndarray, np.ndarray], np.ndarray, np.ndarray, int]
) -> np.ndarray:
    """Anchor keys for one shard, in bounded blocks of entries.

    The anchor is the neighbor maximizing ``(degree, earliest position
    in row)``, restricted to hubs; encoded as a single integer composite
    so a segmented ``maximum.reduceat`` finds it without a Python loop.
    """
    (offsets, cols), degrees, hub_pos, n_hubs = payload
    n_local = offsets.size - 1
    keys = np.full(n_local, n_hubs, dtype=np.int64)
    for row_lo, row_hi in _row_blocks(offsets, n_local):
        start = int(offsets[row_lo])
        stop = int(offsets[row_hi])
        if stop == start:
            continue
        block_cols = np.asarray(cols[start:stop])
        span = stop - start
        position = np.arange(span, dtype=np.int64)
        # Composite: degree major, earlier-position minor; non-hub
        # entries sink below every hub entry.
        composite = degrees[block_cols] * (span + 1) + (span - position)
        composite[hub_pos[block_cols] < 0] = -1
        starts = np.asarray(offsets[row_lo:row_hi], dtype=np.int64) - start
        lengths = np.diff(offsets[row_lo: row_hi + 1])
        nonempty = lengths > 0
        # Sentinel keeps every index in range without clipping — a
        # clipped trailing start would silently truncate the previous
        # row's segment.  ``maximum`` ignores the -1 sentinel; segments
        # reduceat invents for empty rows are masked out below.
        row_best = np.maximum.reduceat(
            np.concatenate([composite, np.asarray([-1], dtype=np.int64)]), starts
        )
        row_best[~nonempty] = -1
        found = row_best >= 0
        if found.any():
            best_position = span - (row_best[found] % (span + 1))
            anchors = block_cols[best_position]
            keys[row_lo:row_hi][found] = hub_pos[anchors]
    return keys


def _row_blocks(offsets: np.ndarray, n_rows: int) -> Iterator[Tuple[int, int]]:
    """Row ranges whose entry counts stay under ``_SCAN_BLOCK``."""
    row = 0
    while row < n_rows:
        start = int(offsets[row])
        end_row = row
        while end_row < n_rows and int(offsets[end_row + 1]) - start <= _SCAN_BLOCK:
            end_row += 1
        end_row = max(end_row, row + 1)
        yield row, end_row
        row = end_row
