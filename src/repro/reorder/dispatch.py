"""Implementation selection for the reordering engine.

Mirrors the cache-simulation dispatch (:mod:`repro.cache.dispatch`):
every technique with a vectorized fast path accepts
``impl="auto"|"fast"|"reference"``, the ``$REPRO_REORDER_IMPL``
environment variable steers a whole run without code changes, and
``"auto"`` picks the fast engine whenever the graph is large enough
for numpy vectorization to beat the reference Python loops (Louvain is
the one exception — see :func:`repro.community.louvain.louvain`).

Both engines produce **bit-identical permutations** (asserted by the
differential suite in ``tests/test_reorder_fast.py`` and re-checked by
``repro bench-reorder``), so the choice only affects wall time — and
therefore the memoized artifacts are byte-identical across impls.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ValidationError

#: Environment variable overriding the default implementation choice.
IMPL_ENV_VAR = "REPRO_REORDER_IMPL"

IMPLS = ("auto", "fast", "reference")

#: Below both bounds the reference loops win: the vectorized engines
#: pay a handful of numpy-call overheads per visited node, which only
#: amortizes once rows carry enough neighbors (measured on the seeded
#: corpus generators; tiny fixtures run ~2x faster on the reference).
AUTO_MIN_NODES = 192
AUTO_MIN_EDGES = 1024


def resolve_impl(impl: Optional[str] = None) -> str:
    """Validate ``impl``, consulting ``$REPRO_REORDER_IMPL`` when ``None``."""
    if impl is None:
        impl = os.environ.get(IMPL_ENV_VAR, "").strip().lower() or "auto"
    if impl not in IMPLS:
        raise ValidationError(f"impl must be one of {IMPLS}, got {impl!r}")
    return impl


def choose_impl(n_nodes: int, n_edges: int) -> str:
    """Resolve ``"auto"`` from the graph size (fast iff big enough)."""
    if n_nodes >= AUTO_MIN_NODES or n_edges >= AUTO_MIN_EDGES:
        return "fast"
    return "reference"


def resolve_for_graph(impl: Optional[str], n_nodes: int, n_edges: int) -> str:
    """Full resolution: explicit arg or env, then auto thresholds."""
    resolved = resolve_impl(impl)
    if resolved == "auto":
        return choose_impl(n_nodes, n_edges)
    return resolved
