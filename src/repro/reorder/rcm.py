"""Reverse Cuthill–McKee ordering (paper ref. [23]).

The classic bandwidth-minimizing ordering: breadth-first traversal from
a pseudo-peripheral vertex, visiting neighbors in ascending degree
order, with the final order reversed.  Included because the paper lists
RCM among the techniques RABBIT was shown to match or exceed; useful as
an extra comparison point and for mesh-like matrices where RCM shines.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.graphs.graph import Graph
from repro.reorder.base import ReorderingTechnique, stable_order_to_permutation
from repro.reorder.dispatch import resolve_for_graph


class ReverseCuthillMcKee(ReorderingTechnique):
    """RCM over the undirected view, one BFS per connected component."""

    name = "rcm"

    def _compute(self, graph: Graph) -> np.ndarray:
        if resolve_for_graph(self.impl, graph.n_nodes, graph.n_edges) == "fast":
            from repro.reorder.fast.rcm import rcm_permutation_fast

            return rcm_permutation_fast(graph)
        undirected = graph.to_undirected()
        adjacency = undirected.adjacency
        n = adjacency.n_rows
        offsets = adjacency.row_offsets
        indices = adjacency.col_indices
        degrees = np.diff(offsets)

        visited = np.zeros(n, dtype=bool)
        order: List[int] = []
        # Process components by ascending minimum-degree start node.
        for candidate in np.argsort(degrees, kind="stable"):
            start = int(candidate)
            if visited[start]:
                continue
            start = _pseudo_peripheral(start, offsets, indices, degrees)
            order.extend(_component_bfs(start, offsets, indices, degrees, visited))
        visit = np.asarray(order[::-1], dtype=np.int64)
        return stable_order_to_permutation(visit)


def _component_bfs(
    start: int,
    offsets: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    visited: np.ndarray,
) -> List[int]:
    """Cuthill–McKee BFS marking ``visited`` in place."""
    order = [start]
    visited[start] = True
    queue = deque([start])
    while queue:
        v = queue.popleft()
        neighbors = indices[offsets[v]: offsets[v + 1]]
        fresh = neighbors[~visited[neighbors]]
        if fresh.size:
            fresh = np.unique(fresh)  # dedupe multi-entries
            fresh = fresh[~visited[fresh]]
            fresh = fresh[np.argsort(degrees[fresh], kind="stable")]
            for u in fresh:
                visited[u] = True
                order.append(int(u))
                queue.append(int(u))
    return order


def _pseudo_peripheral(
    start: int, offsets: np.ndarray, indices: np.ndarray, degrees: np.ndarray
) -> int:
    """George–Liu heuristic: walk to a far, low-degree vertex.

    Two rounds of BFS: each round moves the start to the lowest-degree
    vertex of the last BFS level, which empirically lands near the
    graph periphery and keeps RCM's bandwidth low.
    """
    current = start
    for _ in range(2):
        levels = _bfs_levels(current, offsets, indices)
        last_level = levels.max()
        if last_level <= 0:
            return current
        frontier = np.flatnonzero(levels == last_level)
        current = int(frontier[np.argmin(degrees[frontier])])
    return current


def _bfs_levels(start: int, offsets: np.ndarray, indices: np.ndarray) -> np.ndarray:
    n = offsets.size - 1
    levels = np.full(n, -1, dtype=np.int64)
    levels[start] = 0
    frontier = np.asarray([start], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        neighbor_parts = [
            indices[offsets[v]: offsets[v + 1]] for v in frontier
        ]
        if not neighbor_parts:
            break
        neighbors = np.unique(np.concatenate(neighbor_parts))
        fresh = neighbors[levels[neighbors] < 0]
        if fresh.size == 0:
            break
        levels[fresh] = depth
        frontier = fresh
    return levels
