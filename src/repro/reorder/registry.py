"""Technique registry: build reordering techniques by name.

The experiment drivers and the CLI refer to techniques by the names the
paper uses; this registry maps those names to configured instances.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ValidationError
from repro.reorder.base import ReorderingTechnique
from repro.reorder.boba import BobaOrder
from repro.reorder.dispatch import resolve_impl
from repro.reorder.bisection import RecursiveBisection
from repro.reorder.degree import DBG, DegSort, HubCluster, HubSort
from repro.reorder.gorder import GOrder
from repro.reorder.louvain_order import LouvainOrder
from repro.reorder.rabbit import RabbitOrder, RabbitShardedOrder
from repro.reorder.rabbitpp import HubPolicy, RabbitPlusPlus
from repro.reorder.rcm import ReverseCuthillMcKee
from repro.reorder.simple import OriginalOrder, RandomOrder
from repro.reorder.slashburn import SlashBurn
from repro.reorder.traversal import BFSOrder, DFSOrder

#: The six orderings of the paper's Figure 2, in presentation order,
#: plus the proposed RABBIT++.
PAPER_TECHNIQUES = (
    "random",
    "original",
    "degsort",
    "dbg",
    "gorder",
    "rabbit",
    "rabbit++",
)

_FACTORIES: Dict[str, Callable[[], ReorderingTechnique]] = {
    "original": OriginalOrder,
    "random": RandomOrder,
    "degsort": DegSort,
    "dbg": DBG,
    "hubsort": HubSort,
    "hubcluster": HubCluster,
    "gorder": GOrder,
    "louvain": LouvainOrder,
    "bfs": BFSOrder,
    "dfs": DFSOrder,
    "bisection": RecursiveBisection,
    "rcm": ReverseCuthillMcKee,
    "slashburn": SlashBurn,
    "rabbit": RabbitOrder,
    "rabbit-sharded": RabbitShardedOrder,
    "boba": BobaOrder,
    "rabbit++": RabbitPlusPlus,
    "rabbit+insular": lambda: RabbitPlusPlus(
        group_insular=True, hub_policy=HubPolicy.NONE
    ),
    "rabbit+hubsort": lambda: RabbitPlusPlus(
        group_insular=False, hub_policy=HubPolicy.SORT
    ),
    "rabbit+hubgroup": lambda: RabbitPlusPlus(
        group_insular=False, hub_policy=HubPolicy.GROUP
    ),
    "rabbit+hubsort+insular": lambda: RabbitPlusPlus(
        group_insular=True, hub_policy=HubPolicy.SORT
    ),
    "rabbit++/hubs-first": lambda: RabbitPlusPlus(
        group_insular=True, hub_policy=HubPolicy.GROUP, segment_policy="hubs-first"
    ),
}


def available_techniques() -> List[str]:
    """All registered technique names, sorted."""
    return sorted(_FACTORIES)


def make_technique(name: str, impl: Optional[str] = None) -> ReorderingTechnique:
    """Instantiate a technique by its registry name.

    ``impl`` pins the engine (``"auto"``/``"fast"``/``"reference"``) for
    techniques that have a vectorized fast path; ``None`` keeps the
    default auto selection (still overridable via
    ``$REPRO_REORDER_IMPL``).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValidationError(
            f"unknown reordering technique {name!r}; available: {available_techniques()}"
        ) from None
    technique = factory()
    if impl is not None:
        resolve_impl(impl)  # validate eagerly so typos fail at build time
        technique.impl = impl
    return technique
