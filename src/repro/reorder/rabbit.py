"""RABBIT community-based reordering (paper Section IV-A, reference [1]).

Runs Rabbit-style incremental-aggregation community detection and
assigns IDs by depth-first traversal of the merge dendrogram, so
community members (and nested sub-communities) receive consecutive IDs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.community.rabbit import RabbitResult, rabbit_communities
from repro.graphs.graph import Graph
from repro.reorder.base import ReorderingTechnique


class RabbitOrder(ReorderingTechnique):
    """Community-based ordering via dendrogram DFS.

    Parameters
    ----------
    n_passes:
        Detection sweeps (1 = faithful single-pass Rabbit).
    """

    name = "rabbit"

    def __init__(self, n_passes: int = 1) -> None:
        self.n_passes = int(n_passes)
        #: Detection output of the most recent :meth:`compute` call;
        #: exposed because RABBIT++ and the insularity metrics reuse the
        #: community assignment that produced the ordering.
        self.last_result: Optional[RabbitResult] = None

    def _compute(self, graph: Graph) -> np.ndarray:
        result = rabbit_communities(graph, n_passes=self.n_passes, impl=self.impl)
        self.last_result = result
        return result.dendrogram.ordering()

    def detect(self, graph: Graph) -> RabbitResult:
        """Run (or reuse) detection without computing the permutation."""
        if self.last_result is None or self.last_result.assignment.n_nodes != graph.n_nodes:
            self.last_result = rabbit_communities(
                graph, n_passes=self.n_passes, impl=self.impl
            )
        return self.last_result
