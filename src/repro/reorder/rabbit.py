"""RABBIT community-based reordering (paper Section IV-A, reference [1]).

Runs Rabbit-style incremental-aggregation community detection and
assigns IDs by depth-first traversal of the merge dendrogram, so
community members (and nested sub-communities) receive consecutive IDs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.community.rabbit import RabbitResult, rabbit_communities
from repro.graphs.graph import Graph
from repro.reorder.base import ReorderingTechnique


class RabbitOrder(ReorderingTechnique):
    """Community-based ordering via dendrogram DFS.

    Parameters
    ----------
    n_passes:
        Detection sweeps (1 = faithful single-pass Rabbit).
    """

    name = "rabbit"

    def __init__(self, n_passes: int = 1) -> None:
        self.n_passes = int(n_passes)
        #: Detection output of the most recent :meth:`compute` call;
        #: exposed because RABBIT++ and the insularity metrics reuse the
        #: community assignment that produced the ordering.
        self.last_result: Optional[RabbitResult] = None

    def _compute(self, graph: Graph) -> np.ndarray:
        result = rabbit_communities(graph, n_passes=self.n_passes, impl=self.impl)
        self.last_result = result
        return result.dendrogram.ordering()

    def detect(self, graph: Graph) -> RabbitResult:
        """Run (or reuse) detection without computing the permutation."""
        if self.last_result is None or self.last_result.assignment.n_nodes != graph.n_nodes:
            self.last_result = rabbit_communities(
                graph, n_passes=self.n_passes, impl=self.impl
            )
        return self.last_result


class RabbitShardedOrder(ReorderingTechnique):
    """RABBIT ordering from two-level sharded detection.

    Same dendrogram-DFS placement as :class:`RabbitOrder`, but the
    detection phase runs :func:`~repro.community.sharded.
    sharded_rabbit_communities` — local Rabbit per vertex-range shard
    (optionally across processes) stitched by a coarse pass.  The
    permutation is a pure function of ``(graph, n_shards, n_passes)``;
    ``jobs`` never changes it.
    """

    name = "rabbit-sharded"

    def __init__(self, n_shards: int = 4, jobs: int = 1, n_passes: int = 1) -> None:
        self.n_shards = int(n_shards)
        self.jobs = int(jobs)
        self.n_passes = int(n_passes)
        #: Detection output of the most recent :meth:`compute` call.
        self.last_result = None

    def _compute(self, graph: Graph) -> np.ndarray:
        # Deferred import: repro.community.sharded imports the pool
        # lazily but lives below this module in the import graph.
        from repro.community.sharded import sharded_rabbit_communities

        result = sharded_rabbit_communities(
            graph,
            n_shards=self.n_shards,
            jobs=self.jobs,
            n_passes=self.n_passes,
            impl=self.impl,
        )
        self.last_result = result
        return result.dendrogram.ordering()
