"""Matrix reordering techniques (paper Sections IV and VI).

Every technique consumes a :class:`repro.graphs.Graph` and produces a
permutation array ``perm`` with ``perm[old_id] == new_id``.  Techniques
characterized by the paper:

* ORIGINAL / RANDOM — baselines (Section IV-A);
* DEGSORT, DBG — degree-based (power-law leveraging);
* HUBSORT, HUBCLUSTER — hub-packing variants (prior work, reused as
  RABBIT++ building blocks);
* GORDER — window locality-score maximization;
* RABBIT — community-based (dendrogram DFS);
* RABBIT++ — the paper's contribution: RABBIT + insular-node grouping +
  hub grouping, plus the full Table II design space;
* RCM, SLASHBURN — additional orderings the paper references.
"""

from repro.reorder.base import ReorderingTechnique, TimedReordering, reorder_with_timing
from repro.reorder.boba import BobaOrder
from repro.reorder.simple import OriginalOrder, RandomOrder
from repro.reorder.degree import DBG, DegSort, HubCluster, HubSort
from repro.reorder.gorder import GOrder
from repro.reorder.rabbit import RabbitOrder, RabbitShardedOrder
from repro.reorder.rabbitpp import HubPolicy, RabbitPlusPlus
from repro.reorder.rcm import ReverseCuthillMcKee
from repro.reorder.slashburn import SlashBurn
from repro.reorder.registry import (
    available_techniques,
    make_technique,
    PAPER_TECHNIQUES,
)

__all__ = [
    "BobaOrder",
    "DBG",
    "DegSort",
    "GOrder",
    "HubCluster",
    "HubPolicy",
    "HubSort",
    "OriginalOrder",
    "PAPER_TECHNIQUES",
    "RabbitOrder",
    "RabbitShardedOrder",
    "RabbitPlusPlus",
    "RandomOrder",
    "ReorderingTechnique",
    "ReverseCuthillMcKee",
    "SlashBurn",
    "TimedReordering",
    "available_techniques",
    "make_technique",
    "reorder_with_timing",
]
