"""SlashBurn ordering (paper ref. [31]).

SlashBurn (Lim, Kang, Faloutsos) exploits the observation that
real-world graphs shatter when their hubs are removed: repeatedly
"slash" the top-k highest-degree nodes (assigning them the lowest free
IDs), then "burn" — every connected component except the giant one is
assigned IDs from the high end (grouped per component), and the process
recurses on the giant connected component.  Included as an additional
community-flavoured comparison point the paper cites.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.reorder.base import ReorderingTechnique, stable_order_to_permutation


class SlashBurn(ReorderingTechnique):
    """SlashBurn with ``k = max(1, k_fraction * n)`` hubs per round."""

    name = "slashburn"

    def __init__(self, k_fraction: float = 0.005, max_rounds: int = 1000) -> None:
        if not 0.0 < k_fraction <= 1.0:
            raise ValidationError(f"k_fraction must be in (0, 1], got {k_fraction}")
        if max_rounds < 1:
            raise ValidationError(f"max_rounds must be >= 1, got {max_rounds}")
        self.k_fraction = float(k_fraction)
        self.max_rounds = int(max_rounds)

    def _compute(self, graph: Graph) -> np.ndarray:
        undirected = graph.to_undirected()
        adjacency = undirected.adjacency
        n = adjacency.n_rows
        offsets = adjacency.row_offsets
        indices = adjacency.col_indices

        alive = np.ones(n, dtype=bool)
        # Degrees within the still-alive subgraph, updated per round.
        visit = np.empty(n, dtype=np.int64)
        front = 0
        back = n  # exclusive
        k = max(1, int(round(self.k_fraction * n)))

        for _ in range(self.max_rounds):
            alive_ids = np.flatnonzero(alive)
            if alive_ids.size == 0:
                break
            if alive_ids.size <= k:
                # Remainder too small to slash further: emit in degree order.
                degrees = _alive_degrees(alive_ids, alive, offsets, indices)
                order = alive_ids[np.argsort(-degrees, kind="stable")]
                visit[front: front + order.size] = order
                front += order.size
                alive[alive_ids] = False
                break
            # Slash: top-k alive degrees get the lowest free IDs.
            degrees = _alive_degrees(alive_ids, alive, offsets, indices)
            top = alive_ids[np.argsort(-degrees, kind="stable")[:k]]
            visit[front: front + k] = top
            front += k
            alive[top] = False
            # Burn: components of the remainder; all but the giant one
            # are assigned from the back, grouped per component
            # (smallest components outermost).
            components = _connected_components(alive, offsets, indices)
            if not components:
                break
            components.sort(key=len)
            giant = components.pop()  # largest keeps getting slashed
            for block in components:
                back -= block.size
                visit[back: back + block.size] = block
                alive[block] = False
            if giant.size == 0:
                break
        leftovers = np.flatnonzero(alive)
        if leftovers.size:
            visit[front: front + leftovers.size] = leftovers
            front += leftovers.size
        if front != back:
            raise AssertionError(
                f"SlashBurn bookkeeping mismatch: front={front}, back={back}"
            )
        return stable_order_to_permutation(visit)


def _alive_degrees(
    alive_ids: np.ndarray,
    alive: np.ndarray,
    offsets: np.ndarray,
    indices: np.ndarray,
) -> np.ndarray:
    """Degrees of ``alive_ids`` within the alive-induced subgraph."""
    n = offsets.size - 1
    row_of_entry = np.repeat(np.arange(n), np.diff(offsets))
    live_entry = alive[row_of_entry] & alive[indices]
    degree_all = np.zeros(n, dtype=np.int64)
    np.add.at(degree_all, row_of_entry[live_entry], 1)
    return degree_all[alive_ids]


def _connected_components(
    alive: np.ndarray, offsets: np.ndarray, indices: np.ndarray
) -> List[np.ndarray]:
    """Connected components of the alive-induced subgraph (frontier BFS)."""
    seen = ~alive
    components: List[np.ndarray] = []
    for start in np.flatnonzero(alive):
        if seen[start]:
            continue
        seen[start] = True
        frontier = np.asarray([start], dtype=np.int64)
        parts = [frontier]
        while frontier.size:
            neighbor_parts = [indices[offsets[v]: offsets[v + 1]] for v in frontier]
            neighbors = np.unique(np.concatenate(neighbor_parts))
            fresh = neighbors[~seen[neighbors]]
            if fresh.size == 0:
                break
            seen[fresh] = True
            parts.append(fresh)
            frontier = fresh
        components.append(np.concatenate(parts))
    return components
