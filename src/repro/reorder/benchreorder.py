"""Reference-vs-fast reordering micro-benchmark (``repro bench-reorder``).

Two seeded workloads, mirroring the simulator benchmark
(:mod:`repro.cache.benchsim`):

- **Detection throughput** — RABBIT community detection on the
  ``soc-rmat`` corpus matrix (R-MAT scale 16, edge factor 64 — an
  Orkut-class social-network density).  Detection dominates every
  community-based technique, and this row carries the engine's headline
  speedup target (>= 5x single-core).
- **Technique end-to-end** — full permutation computation (detection +
  ordering) for each technique with a fast path, on a mid-size R-MAT so
  the slowest reference (GOrder) stays in CLI territory.

Every fast run is checked for equality against its reference run —
permutations for techniques, labels/merge counts for detection — so the
benchmark doubles as a large-scale differential test.  The ``smoke``
variant shrinks both graphs for CI.  Results serialize to the
``BENCH_reorder.json`` schema written by
``benchmarks/test_bench_reorder.py`` and the ``--json`` CLI flag.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.community.rabbit import rabbit_communities
from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.obs import get_obs

#: R-MAT parameters: detection benchmark == the ``soc-rmat`` corpus
#: entry; technique benchmark sized so reference GOrder finishes in
#: tens of seconds; smoke shrinks everything to CI scale.
DETECT_GRAPH = {"scale": 16, "edge_factor": 64, "seed": 7}
TECHNIQUE_GRAPH = {"scale": 13, "edge_factor": 16, "seed": 7}
SMOKE_GRAPH = {"scale": 10, "edge_factor": 8, "seed": 7}

#: Techniques with a dispatchable fast path, benchmarked end-to-end.
BENCH_TECHNIQUES = ("rabbit", "rabbit++", "louvain", "rcm", "gorder")

#: Name of the detection-throughput row in results/speedups.
DETECT_ROW = "rabbit-detect"

#: Default workload of the scale-out mode (``--scale``): large enough
#: that the undirected view alone is several hundred MB of CSR arrays,
#: small enough that one pass of every technique stays in CLI
#: territory on a single core.
SCALE_GRAPH = {"scale": 18, "edge_factor": 16, "seed": 7}

#: Techniques timed by the scale-out mode: the community-based
#: heavyweight, the BOBA-style lightweight, and the degree-bucket
#: baseline BOBA approximates.
SCALE_TECHNIQUES = ("rabbit", "boba", "dbg")


@dataclass(frozen=True)
class BenchRow:
    """One (name, impl) timing."""

    name: str
    impl: str
    seconds: float
    nodes_per_s: float

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "impl": self.impl,
            "seconds": self.seconds,
            "nodes_per_s": self.nodes_per_s,
        }


def build_bench_graphs(smoke: bool = False) -> "tuple[Graph, Graph]":
    """(detection graph, technique graph), symmetrization prewarmed.

    Prewarming ``to_undirected()`` (cached on :class:`Graph`) keeps the
    timed region to the engine under test: both impls symmetrize
    identically, so including it would only dilute the comparison.
    """
    from repro.graphs.generators.powerlaw import rmat

    detect_params = SMOKE_GRAPH if smoke else DETECT_GRAPH
    technique_params = SMOKE_GRAPH if smoke else TECHNIQUE_GRAPH
    with get_obs().span("bench-reorder-setup", **detect_params):
        detect_graph = Graph.from_coo(rmat(**detect_params), directed=True)
        detect_graph.to_undirected()
        if technique_params == detect_params:
            technique_graph = detect_graph
        else:
            technique_graph = Graph.from_coo(rmat(**technique_params), directed=True)
            technique_graph.to_undirected()
        # GOrder reads the cached transpose; warm it so the reference
        # row (timed first) does not pay the one-off build.
        technique_graph.in_adjacency
    return detect_graph, technique_graph


def _timed_best(
    action: Callable[[], object], repeats: int, clock: Callable[[], float]
) -> "tuple[float, object]":
    best = None
    result = None
    for _ in range(repeats):
        start = clock()
        result = action()
        elapsed = clock() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def run_bench(
    detect_graph: Graph,
    technique_graph: Graph,
    techniques: Sequence[str] = BENCH_TECHNIQUES,
    repeats: int = 3,
    clock: Optional[Callable[[], float]] = None,
) -> Dict[str, object]:
    """Time reference vs fast; verify identical outputs.

    Returns the ``BENCH_reorder.json`` payload: per-(name, impl)
    timings in nodes/sec, per-name fast-over-reference speedups, and a
    ``results_match`` flag (a divergence raises instead — the benchmark
    must not report throughput for a wrong answer).
    """
    from repro.reorder.registry import make_technique

    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    clock = clock or time.perf_counter
    rows: List[BenchRow] = []
    speedups: Dict[str, float] = {}

    def record(name: str, graph: Graph, runs: Dict[str, "tuple[float, object]"],
               same: bool) -> None:
        if not same:
            raise AssertionError(
                f"fast {name} output diverges from reference on the bench graph"
            )
        for impl in ("reference", "fast"):
            seconds = runs[impl][0]
            rows.append(
                BenchRow(
                    name=name,
                    impl=impl,
                    seconds=seconds,
                    nodes_per_s=graph.n_nodes / seconds if seconds > 0 else float("inf"),
                )
            )
        fast_seconds = runs["fast"][0]
        speedups[name] = (
            runs["reference"][0] / fast_seconds if fast_seconds > 0 else float("inf")
        )

    # Detection throughput (the headline row).
    detect_runs = {}
    for impl in ("reference", "fast"):
        detect_runs[impl] = _timed_best(
            lambda impl=impl: rabbit_communities(detect_graph, impl=impl),
            repeats,
            clock,
        )
    ref_result, fast_result = detect_runs["reference"][1], detect_runs["fast"][1]
    record(
        DETECT_ROW,
        detect_graph,
        detect_runs,
        np.array_equal(ref_result.assignment.labels, fast_result.assignment.labels)
        and ref_result.n_merges == fast_result.n_merges
        and np.array_equal(
            ref_result.dendrogram.ordering(), fast_result.dendrogram.ordering()
        ),
    )

    # Technique end-to-end permutations.
    for name in techniques:
        runs = {}
        for impl in ("reference", "fast"):
            technique = make_technique(name, impl=impl)
            runs[impl] = _timed_best(
                lambda technique=technique: technique.compute(technique_graph),
                repeats,
                clock,
            )
        record(
            name,
            technique_graph,
            runs,
            np.array_equal(runs["reference"][1], runs["fast"][1]),
        )

    return {
        "workloads": {
            "detection": _graph_json(detect_graph),
            "techniques": _graph_json(technique_graph),
        },
        "repeats": repeats,
        "results": [row.to_json() for row in rows],
        "speedups": speedups,
        "results_match": True,
    }


def _sha256_array(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def run_scale_bench(
    scale: int = SCALE_GRAPH["scale"],
    edge_factor: int = SCALE_GRAPH["edge_factor"],
    seed: int = SCALE_GRAPH["seed"],
    n_shards: int = 4,
    jobs: int = 1,
    use_memmap: bool = True,
    techniques: Sequence[str] = SCALE_TECHNIQUES,
    cache_dir: Optional[str] = None,
    clock: Optional[Callable[[], float]] = None,
) -> Dict[str, object]:
    """Scale-out benchmark: one end-to-end pass on a large R-MAT.

    Unlike :func:`run_bench` (reference vs fast, repeated timings), this
    mode measures how the pipeline behaves when the matrix is big:

    - the graph comes from the memmap-backed matrix cache
      (:func:`repro.graphs.matrixcache.cached_rmat_graph`) unless
      ``use_memmap`` is false, so detection and ordering stream from
      disk;
    - community detection runs once single-shard and once sharded
      (``n_shards``/``jobs``), recording nodes/s for both, their
      speedup ratio, and the modularity each achieves (the merge's
      quality cost stays visible, not just its throughput);
    - each technique runs once end-to-end, recording nodes/s and the
      permutation's sha256 — runs with different ``jobs`` values must
      produce identical digests (the CI scale-smoke job diffs them);
    - the process peak RSS is snapshotted after every phase
      (``ru_maxrss`` is monotonic, so each snapshot bounds everything
      before it) — the ground truth that the memmap path actually kept
      nnz-sized arrays off the heap.

    Returns a ``{"mode": "scale", ...}`` payload — a separate schema
    from :func:`run_bench`, so the perf-regression gate's
    ``BENCH_reorder.json`` contract is untouched.
    """
    from repro.community.modularity import modularity_csr
    from repro.community.rabbit import rabbit_communities
    from repro.community.sharded import sharded_rabbit_communities
    from repro.graphs.generators.powerlaw import rmat
    from repro.graphs.matrixcache import cached_rmat_graph
    from repro.obs.rss import peak_rss_kb
    from repro.reorder.boba import BobaOrder
    from repro.reorder.registry import make_technique
    from repro.sparse.memmap import is_memmap_backed

    clock = clock or time.perf_counter
    rss: Dict[str, Optional[int]] = {}

    def snapshot_rss(phase: str) -> None:
        peak = peak_rss_kb()
        if peak is not None:
            rss[phase] = peak

    obs = get_obs()
    with obs.span("bench-scale-setup", scale=scale, edge_factor=edge_factor):
        start = clock()
        if use_memmap:
            # min_cache_scale=0 forces the memmap cache even below the
            # usual threshold, so CI can exercise the path at scale 13.
            graph = cached_rmat_graph(
                scale, edge_factor, seed=seed, cache_dir=cache_dir, min_cache_scale=0
            )
        else:
            graph = Graph.from_coo(rmat(scale, edge_factor, seed=seed), directed=True)
        undirected = graph.to_undirected()
        setup_seconds = clock() - start
    snapshot_rss("setup")

    n_nodes = graph.n_nodes
    with obs.span("bench-scale-detect", n_shards=n_shards, jobs=jobs):
        start = clock()
        single = rabbit_communities(graph)
        single_seconds = clock() - start
        start = clock()
        sharded = sharded_rabbit_communities(graph, n_shards=n_shards, jobs=jobs)
        sharded_seconds = clock() - start
    detection = {
        "single": {
            "seconds": single_seconds,
            "nodes_per_s": n_nodes / single_seconds if single_seconds > 0 else float("inf"),
            "modularity": modularity_csr(undirected.adjacency, single.assignment.labels),
            "n_communities": int(single.assignment.n_communities),
        },
        "sharded": {
            "seconds": sharded_seconds,
            "nodes_per_s": n_nodes / sharded_seconds if sharded_seconds > 0 else float("inf"),
            "modularity": modularity_csr(undirected.adjacency, sharded.assignment.labels),
            "n_communities": int(sharded.assignment.n_communities),
            "n_shards": n_shards,
            "jobs": jobs,
            "labels_sha256": _sha256_array(sharded.assignment.labels),
        },
        "sharded_speedup": (
            single_seconds / sharded_seconds if sharded_seconds > 0 else float("inf")
        ),
    }
    snapshot_rss("detect")

    rows: List[Dict[str, object]] = []
    with obs.span("bench-scale-order"):
        for name in techniques:
            technique = (
                BobaOrder(n_shards=n_shards, jobs=jobs)
                if name == "boba"
                else make_technique(name)
            )
            start = clock()
            perm = technique.compute(graph)
            seconds = clock() - start
            rows.append(
                {
                    "name": name,
                    "seconds": seconds,
                    "nodes_per_s": n_nodes / seconds if seconds > 0 else float("inf"),
                    "permutation_sha256": _sha256_array(perm),
                }
            )
    snapshot_rss("order")
    overall = peak_rss_kb()
    if overall is not None:
        rss["overall"] = overall

    return {
        "mode": "scale",
        "workload": {
            "scale": scale,
            "edge_factor": edge_factor,
            "seed": seed,
            "n_nodes": n_nodes,
            "nnz": int(graph.adjacency.nnz),
            "undirected_nnz": int(undirected.adjacency.nnz),
            "memmap": bool(is_memmap_backed(graph.adjacency)),
            "setup_seconds": setup_seconds,
        },
        "detection": detection,
        "techniques": rows,
        "rss_peak_kb": rss,
    }


def _graph_json(graph: Graph) -> Dict[str, object]:
    return {
        "n_nodes": graph.n_nodes,
        "nnz": int(graph.adjacency.nnz),
        "undirected_nnz": int(graph.to_undirected().adjacency.nnz),
    }
