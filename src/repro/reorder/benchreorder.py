"""Reference-vs-fast reordering micro-benchmark (``repro bench-reorder``).

Two seeded workloads, mirroring the simulator benchmark
(:mod:`repro.cache.benchsim`):

- **Detection throughput** — RABBIT community detection on the
  ``soc-rmat`` corpus matrix (R-MAT scale 16, edge factor 64 — an
  Orkut-class social-network density).  Detection dominates every
  community-based technique, and this row carries the engine's headline
  speedup target (>= 5x single-core).
- **Technique end-to-end** — full permutation computation (detection +
  ordering) for each technique with a fast path, on a mid-size R-MAT so
  the slowest reference (GOrder) stays in CLI territory.

Every fast run is checked for equality against its reference run —
permutations for techniques, labels/merge counts for detection — so the
benchmark doubles as a large-scale differential test.  The ``smoke``
variant shrinks both graphs for CI.  Results serialize to the
``BENCH_reorder.json`` schema written by
``benchmarks/test_bench_reorder.py`` and the ``--json`` CLI flag.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.community.rabbit import rabbit_communities
from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.obs import get_obs

#: R-MAT parameters: detection benchmark == the ``soc-rmat`` corpus
#: entry; technique benchmark sized so reference GOrder finishes in
#: tens of seconds; smoke shrinks everything to CI scale.
DETECT_GRAPH = {"scale": 16, "edge_factor": 64, "seed": 7}
TECHNIQUE_GRAPH = {"scale": 13, "edge_factor": 16, "seed": 7}
SMOKE_GRAPH = {"scale": 10, "edge_factor": 8, "seed": 7}

#: Techniques with a dispatchable fast path, benchmarked end-to-end.
BENCH_TECHNIQUES = ("rabbit", "rabbit++", "louvain", "rcm", "gorder")

#: Name of the detection-throughput row in results/speedups.
DETECT_ROW = "rabbit-detect"


@dataclass(frozen=True)
class BenchRow:
    """One (name, impl) timing."""

    name: str
    impl: str
    seconds: float
    nodes_per_s: float

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "impl": self.impl,
            "seconds": self.seconds,
            "nodes_per_s": self.nodes_per_s,
        }


def build_bench_graphs(smoke: bool = False) -> "tuple[Graph, Graph]":
    """(detection graph, technique graph), symmetrization prewarmed.

    Prewarming ``to_undirected()`` (cached on :class:`Graph`) keeps the
    timed region to the engine under test: both impls symmetrize
    identically, so including it would only dilute the comparison.
    """
    from repro.graphs.generators.powerlaw import rmat

    detect_params = SMOKE_GRAPH if smoke else DETECT_GRAPH
    technique_params = SMOKE_GRAPH if smoke else TECHNIQUE_GRAPH
    with get_obs().span("bench-reorder-setup", **detect_params):
        detect_graph = Graph.from_coo(rmat(**detect_params), directed=True)
        detect_graph.to_undirected()
        if technique_params == detect_params:
            technique_graph = detect_graph
        else:
            technique_graph = Graph.from_coo(rmat(**technique_params), directed=True)
            technique_graph.to_undirected()
        # GOrder reads the cached transpose; warm it so the reference
        # row (timed first) does not pay the one-off build.
        technique_graph.in_adjacency
    return detect_graph, technique_graph


def _timed_best(
    action: Callable[[], object], repeats: int, clock: Callable[[], float]
) -> "tuple[float, object]":
    best = None
    result = None
    for _ in range(repeats):
        start = clock()
        result = action()
        elapsed = clock() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def run_bench(
    detect_graph: Graph,
    technique_graph: Graph,
    techniques: Sequence[str] = BENCH_TECHNIQUES,
    repeats: int = 3,
    clock: Optional[Callable[[], float]] = None,
) -> Dict[str, object]:
    """Time reference vs fast; verify identical outputs.

    Returns the ``BENCH_reorder.json`` payload: per-(name, impl)
    timings in nodes/sec, per-name fast-over-reference speedups, and a
    ``results_match`` flag (a divergence raises instead — the benchmark
    must not report throughput for a wrong answer).
    """
    from repro.reorder.registry import make_technique

    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    clock = clock or time.perf_counter
    rows: List[BenchRow] = []
    speedups: Dict[str, float] = {}

    def record(name: str, graph: Graph, runs: Dict[str, "tuple[float, object]"],
               same: bool) -> None:
        if not same:
            raise AssertionError(
                f"fast {name} output diverges from reference on the bench graph"
            )
        for impl in ("reference", "fast"):
            seconds = runs[impl][0]
            rows.append(
                BenchRow(
                    name=name,
                    impl=impl,
                    seconds=seconds,
                    nodes_per_s=graph.n_nodes / seconds if seconds > 0 else float("inf"),
                )
            )
        fast_seconds = runs["fast"][0]
        speedups[name] = (
            runs["reference"][0] / fast_seconds if fast_seconds > 0 else float("inf")
        )

    # Detection throughput (the headline row).
    detect_runs = {}
    for impl in ("reference", "fast"):
        detect_runs[impl] = _timed_best(
            lambda impl=impl: rabbit_communities(detect_graph, impl=impl),
            repeats,
            clock,
        )
    ref_result, fast_result = detect_runs["reference"][1], detect_runs["fast"][1]
    record(
        DETECT_ROW,
        detect_graph,
        detect_runs,
        np.array_equal(ref_result.assignment.labels, fast_result.assignment.labels)
        and ref_result.n_merges == fast_result.n_merges
        and np.array_equal(
            ref_result.dendrogram.ordering(), fast_result.dendrogram.ordering()
        ),
    )

    # Technique end-to-end permutations.
    for name in techniques:
        runs = {}
        for impl in ("reference", "fast"):
            technique = make_technique(name, impl=impl)
            runs[impl] = _timed_best(
                lambda technique=technique: technique.compute(technique_graph),
                repeats,
                clock,
            )
        record(
            name,
            technique_graph,
            runs,
            np.array_equal(runs["reference"][1], runs["fast"][1]),
        )

    return {
        "workloads": {
            "detection": _graph_json(detect_graph),
            "techniques": _graph_json(technique_graph),
        },
        "repeats": repeats,
        "results": [row.to_json() for row in rows],
        "speedups": speedups,
        "results_match": True,
    }


def _graph_json(graph: Graph) -> Dict[str, object]:
    return {
        "n_nodes": graph.n_nodes,
        "nnz": int(graph.adjacency.nnz),
        "undirected_nnz": int(graph.to_undirected().adjacency.nnz),
    }
