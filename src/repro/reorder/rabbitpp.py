"""RABBIT++ — the paper's enhanced community-based reordering (Section VI).

RABBIT++ starts from a RABBIT ordering and applies up to two
modifications (paper Figure 5):

1. **Insular-node grouping** — nodes whose every neighbor lies in their
   own community are grouped together, preserving RABBIT's relative
   order inside both the insular and non-insular groups.  The insular
   sub-matrix then enjoys near-compulsory traffic (Figure 6).
2. **Hub grouping** — hub nodes (degree above the graph average) are
   packed contiguously.  ``HubPolicy.GROUP`` keeps RABBIT's relative
   order among hubs (preserving residual community structure, the
   paper's winning choice), while ``HubPolicy.SORT`` orders hubs by
   descending in-degree (shown by the paper to consistently *hurt*).

The full Table II design space — {RABBIT, +HUBSORT, +HUBGROUP} x
{with, without insular grouping} — is expressible through the
constructor flags; :func:`table2_variants` enumerates all six cells.

Segment layout note: the paper's prose orders the modifications
"first group the insular nodes and then group the hub nodes".  Two
readings exist: hub grouping over the whole matrix
(``segment_policy="hubs-first"``: ``[hubs | insular non-hubs |
remaining]``) or over the non-insular remainder
(``segment_policy="insular-first"``: ``[insular | non-insular hubs |
remaining]``).  Table II of the paper decides it: with insular nodes
grouped, RABBIT+HUBGROUP matches plain RABBIT exactly (1.25x) on
insularity >= 0.95 matrices, which can only happen if hub grouping
leaves the (almost all insular) nodes untouched — i.e. the
insular-first reading.  That is therefore the default; hubs-first is
kept as an ablation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.community.assignment import CommunityAssignment
from repro.community.rabbit import RabbitResult, rabbit_communities
from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.metrics.insularity import insular_mask
from repro.reorder.base import ReorderingTechnique, stable_order_to_permutation


class HubPolicy(enum.Enum):
    """How (and whether) hub nodes are packed contiguously."""

    NONE = "none"
    SORT = "sort"
    GROUP = "group"


@dataclass
class RabbitPlusPlusResult:
    """Introspection data from the latest RABBIT++ computation."""

    rabbit: RabbitResult
    insular: np.ndarray
    hubs: np.ndarray

    @property
    def assignment(self) -> CommunityAssignment:
        return self.rabbit.assignment


class RabbitPlusPlus(ReorderingTechnique):
    """RABBIT ordering enhanced with insular and hub grouping.

    The default configuration (``group_insular=True``,
    ``hub_policy=HubPolicy.GROUP``) is the paper's RABBIT++.
    """

    def __init__(
        self,
        group_insular: bool = True,
        hub_policy: HubPolicy = HubPolicy.GROUP,
        segment_policy: str = "insular-first",
        n_passes: int = 1,
    ) -> None:
        if segment_policy not in ("hubs-first", "insular-first"):
            raise ValidationError(
                f"segment_policy must be 'hubs-first' or 'insular-first', got {segment_policy!r}"
            )
        if not isinstance(hub_policy, HubPolicy):
            raise ValidationError(f"hub_policy must be a HubPolicy, got {hub_policy!r}")
        self.group_insular = bool(group_insular)
        self.hub_policy = hub_policy
        self.segment_policy = segment_policy
        self.n_passes = int(n_passes)
        self.last_result: Optional[RabbitPlusPlusResult] = None

    @property
    def name(self) -> str:  # type: ignore[override]
        parts = ["rabbit"]
        if self.hub_policy is HubPolicy.SORT:
            parts.append("hubsort")
        elif self.hub_policy is HubPolicy.GROUP:
            parts.append("hubgroup")
        label = "+".join(parts)
        if self.group_insular and self.hub_policy is HubPolicy.GROUP:
            if self.segment_policy == "insular-first":
                return "rabbit++"
            return "rabbit++/hubs-first"
        if self.group_insular:
            label += "+insular"
        return label

    def _compute(self, graph: Graph) -> np.ndarray:
        rabbit = rabbit_communities(graph, n_passes=self.n_passes, impl=self.impl)
        rank = rabbit.dendrogram.ordering()  # old_id -> rabbit new_id

        n = graph.n_nodes
        insular = np.zeros(n, dtype=bool)
        if self.group_insular:
            insular = insular_mask(graph, rabbit.assignment)
        hubs = np.zeros(n, dtype=bool)
        if self.hub_policy is not HubPolicy.NONE:
            in_degrees = np.asarray(graph.in_degrees(), dtype=np.int64)
            hubs = in_degrees > graph.average_degree()
        else:
            in_degrees = np.zeros(n, dtype=np.int64)

        self.last_result = RabbitPlusPlusResult(rabbit, insular, hubs)

        segments = self._segments(insular, hubs)
        visit_parts: List[np.ndarray] = []
        for ids, sort_by_degree in segments:
            if ids.size == 0:
                continue
            if sort_by_degree:
                # Descending degree; rabbit rank breaks ties stably.
                order = np.lexsort((rank[ids], -in_degrees[ids]))
            else:
                order = np.argsort(rank[ids], kind="stable")
            visit_parts.append(ids[order])
        if not visit_parts:
            return np.arange(n, dtype=np.int64)
        visit = np.concatenate(visit_parts)
        return stable_order_to_permutation(visit)

    def _segments(
        self, insular: np.ndarray, hubs: np.ndarray
    ) -> List[Tuple[np.ndarray, bool]]:
        """Node-ID segments in output order; flag = sort hubs by degree."""
        n = insular.size
        everyone = np.arange(n, dtype=np.int64)
        sort_hubs = self.hub_policy is HubPolicy.SORT

        if self.hub_policy is HubPolicy.NONE and not self.group_insular:
            return [(everyone, False)]
        if self.hub_policy is HubPolicy.NONE:
            return [
                (np.flatnonzero(insular), False),
                (np.flatnonzero(~insular), False),
            ]
        if not self.group_insular:
            return [
                (np.flatnonzero(hubs), sort_hubs),
                (np.flatnonzero(~hubs), False),
            ]
        if self.segment_policy == "hubs-first":
            return [
                (np.flatnonzero(hubs), sort_hubs),
                (np.flatnonzero(insular & ~hubs), False),
                (np.flatnonzero(~insular & ~hubs), False),
            ]
        return [
            (np.flatnonzero(insular), False),
            (np.flatnonzero(hubs & ~insular), sort_hubs),
            (np.flatnonzero(~hubs & ~insular), False),
        ]


def table2_variants(n_passes: int = 1) -> List[Tuple[str, str, ReorderingTechnique]]:
    """The six Table II cells as (row label, column label, technique).

    Rows: RABBIT, RABBIT+HUBSORT, RABBIT+HUBGROUP.
    Columns: without / with insular-node grouping.
    """
    from repro.reorder.rabbit import RabbitOrder  # local import: avoids cycle

    variants: List[Tuple[str, str, ReorderingTechnique]] = []
    for hub_policy, row in (
        (HubPolicy.NONE, "RABBIT"),
        (HubPolicy.SORT, "RABBIT+HUBSORT"),
        (HubPolicy.GROUP, "RABBIT+HUBGROUP"),
    ):
        for group_insular, column in ((False, "without-insular"), (True, "with-insular")):
            if hub_policy is HubPolicy.NONE and not group_insular:
                technique: ReorderingTechnique = RabbitOrder(n_passes=n_passes)
            else:
                technique = RabbitPlusPlus(
                    group_insular=group_insular,
                    hub_policy=hub_policy,
                    n_passes=n_passes,
                )
            variants.append((row, column, technique))
    return variants
