"""Louvain-based community ordering (detector ablation).

Orders nodes by Louvain community, members in original relative order.
This is the "any community detector + contiguous IDs" strawman against
which Rabbit's dendrogram-DFS ordering can be ablated: Louvain finds
slightly higher-modularity partitions but provides no intra-community
hierarchy, so nested sub-communities are not kept contiguous.
"""

from __future__ import annotations

import numpy as np

from repro.community.louvain import louvain
from repro.graphs.graph import Graph
from repro.reorder.base import ReorderingTechnique, stable_order_to_permutation


class LouvainOrder(ReorderingTechnique):
    """Contiguous-community ordering from Louvain detection."""

    name = "louvain"

    def __init__(self, max_levels: int = 10) -> None:
        self.max_levels = int(max_levels)

    def _compute(self, graph: Graph) -> np.ndarray:
        result = louvain(graph, max_levels=self.max_levels, impl=self.impl)
        labels = result.assignment.labels
        # Stable sort: communities contiguous, original order within.
        visit = np.argsort(labels, kind="stable")
        return stable_order_to_permutation(visit)
