"""Degree-distribution skew (paper Section V-B).

The paper defines skew as "the percentage of non-zeros connected to the
top 10% most connected rows".  High skew indicates strong power-law
behaviour — hub vertices so disproportionately connected that community
detection cannot isolate communities around them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph


def degree_skew(graph: Graph, top_fraction: float = 0.10) -> float:
    """Share of non-zeros owned by the top ``top_fraction`` of rows.

    Returns a value in [0, 1]; the paper reports it as a percentage
    (e.g. 16.37% average for high-insularity matrices vs. 41.74% for
    the rest).  Uses the undirected view so in- and out-connectivity
    both count, matching "most connected rows".
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValidationError(f"top_fraction must be in (0, 1], got {top_fraction}")
    undirected = graph.to_undirected()
    degrees = np.sort(np.asarray(undirected.out_degrees(), dtype=np.int64))[::-1]
    total = int(degrees.sum())
    if total == 0:
        return 0.0
    top_rows = max(1, int(round(degrees.size * top_fraction)))
    return float(degrees[:top_rows].sum()) / float(total)
