"""Degree-distribution statistics.

Summaries used by the corpus report and the skew analysis: percentile
profile, Gini coefficient (an alternative skew measure), and the
maximum-likelihood power-law exponent (Clauset-style discrete MLE with
``x_min = 1``), which quantifies the "power-law degree distribution"
property the degree-based techniques exploit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class DegreeStats:
    """Summary of an (undirected) degree distribution."""

    n_nodes: int
    min_degree: int
    median_degree: float
    mean_degree: float
    p90_degree: float
    max_degree: int
    gini: float
    powerlaw_alpha: float


def degree_statistics(graph: Graph) -> DegreeStats:
    """Compute the summary over the undirected view of ``graph``."""
    undirected = graph.to_undirected()
    degrees = np.asarray(undirected.out_degrees(), dtype=np.int64)
    if degrees.size == 0:
        raise ValidationError("degree statistics of an empty graph are undefined")
    return DegreeStats(
        n_nodes=int(degrees.size),
        min_degree=int(degrees.min()),
        median_degree=float(np.median(degrees)),
        mean_degree=float(degrees.mean()),
        p90_degree=float(np.percentile(degrees, 90)),
        max_degree=int(degrees.max()),
        gini=gini_coefficient(degrees),
        powerlaw_alpha=powerlaw_alpha(degrees),
    )


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient in [0, 1]; 0 = all equal, ->1 = one node owns all."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        raise ValidationError("Gini of an empty sequence is undefined")
    if np.any(values < 0):
        raise ValidationError("Gini requires non-negative values")
    total = values.sum()
    if total == 0.0:
        return 0.0
    n = values.size
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (ranks * values).sum()) / (n * total) - (n + 1) / n)


def powerlaw_alpha(degrees: np.ndarray, x_min: int = 1) -> float:
    """Discrete power-law exponent via the standard MLE approximation.

        alpha = 1 + n / sum(ln(d / (x_min - 0.5)))

    over degrees >= ``x_min``.  The 0.5 continuity correction keeps the
    discrete estimator accurate for ``x_min >= ~5``; at smaller cutoffs
    it is a rough indicator only.
    """
    if x_min < 1:
        raise ValidationError(f"x_min must be >= 1, got {x_min}")
    degrees = np.asarray(degrees, dtype=np.float64)
    tail = degrees[degrees >= x_min]
    if tail.size == 0:
        raise ValidationError(f"no degrees >= x_min ({x_min})")
    log_sum = float(np.log(tail / (x_min - 0.5)).sum())
    if log_sum == 0.0:
        return math.inf
    return 1.0 + tail.size / log_sum
