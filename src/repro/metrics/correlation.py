"""Pearson correlation (paper Section V-B).

The paper reports Pearson correlations between insularity and skew
(−0.721) and between insularity and normalized community size
(−0.472).  Implemented here (rather than pulled from scipy) so the
library has no hard scientific-stack dependency beyond numpy.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ShapeError, ValidationError


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences.

    Raises if fewer than two points are supplied or either sequence is
    constant (the coefficient is undefined in both cases).
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ShapeError(f"inputs must be equal-length 1-D sequences, got {x.shape} and {y.shape}")
    if x.size < 2:
        raise ValidationError(f"need at least 2 points, got {x.size}")
    dx = x - x.mean()
    dy = y - y.mean()
    denom = math.sqrt(float((dx * dx).sum()) * float((dy * dy).sum()))
    if denom == 0.0:
        raise ValidationError("correlation undefined for constant input")
    return float((dx * dy).sum()) / denom
