"""Analysis metrics (paper Section V).

* :func:`insularity` — fraction of intra-community edges (the paper's
  visualizable alternative to modularity);
* :func:`insular_mask` / :func:`insular_node_fraction` — nodes only
  referenced from within their own community (Figure 4, and the first
  RABBIT++ modification);
* :func:`degree_skew` — share of non-zeros owned by the top-10% most
  connected rows (the paper's hub-skew measure);
* community-size statistics (Section V-B correlations);
* :func:`pearson` — the correlation coefficient the paper reports;
* locality estimators (cache footprint, neighbor ID spans, matrix
  bandwidth/profile for RCM-style analysis).
"""

from repro.metrics.community_stats import community_size_stats, CommunitySizeStats
from repro.metrics.correlation import pearson
from repro.metrics.degree_stats import (
    DegreeStats,
    degree_statistics,
    gini_coefficient,
    powerlaw_alpha,
)
from repro.metrics.insularity import (
    insular_mask,
    insular_node_fraction,
    insularity,
)
from repro.metrics.locality import (
    average_neighbor_span,
    hub_cache_footprint_bytes,
    matrix_bandwidth,
    matrix_profile,
)
from repro.metrics.skew import degree_skew

__all__ = [
    "CommunitySizeStats",
    "DegreeStats",
    "average_neighbor_span",
    "community_size_stats",
    "degree_skew",
    "degree_statistics",
    "gini_coefficient",
    "powerlaw_alpha",
    "hub_cache_footprint_bytes",
    "insular_mask",
    "insular_node_fraction",
    "insularity",
    "matrix_bandwidth",
    "matrix_profile",
    "pearson",
]
