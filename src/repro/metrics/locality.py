"""Static locality estimators.

These estimate cache behaviour from matrix structure alone (no
simulation): the cache-line footprint of the hub working set (the
paper's sx-stackoverflow analysis shrinks it from 5.5 MB to 1.7 MB by
grouping hubs), the average neighbor-ID span, and the classic
bandwidth/profile measures that RCM-style orderings minimize.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sparse.csr import CSRMatrix


def hub_cache_footprint_bytes(
    hub_ids: np.ndarray,
    element_bytes: int = 4,
    line_bytes: int = 32,
) -> int:
    """Bytes of cache occupied by the hub entries of the input vector.

    Counts the *distinct cache lines* covering ``X[hub]`` for every hub
    ID.  Scattered hubs touch one line each; grouped hubs share lines,
    which is precisely the effect of RABBIT++'s hub grouping.
    """
    if element_bytes <= 0 or line_bytes <= 0:
        raise ValidationError("element_bytes and line_bytes must be positive")
    hub_ids = np.asarray(hub_ids, dtype=np.int64)
    if hub_ids.size == 0:
        return 0
    lines = np.unique(hub_ids * element_bytes // line_bytes)
    return int(lines.size) * line_bytes


def average_neighbor_span(csr: CSRMatrix) -> float:
    """Mean over rows of (max neighbor ID − min neighbor ID).

    A cheap proxy for the irregular-access working set per row; good
    orderings produce small spans.
    """
    if csr.nnz == 0:
        return 0.0
    # Non-empty rows partition col_indices into contiguous runs whose
    # starts are strictly increasing, exactly what reduceat needs.
    nonempty = np.diff(csr.row_offsets) > 0
    starts = csr.row_offsets[:-1][nonempty]
    spans = (
        np.maximum.reduceat(csr.col_indices, starts)
        - np.minimum.reduceat(csr.col_indices, starts)
    )
    return float(np.mean(spans))


def matrix_bandwidth(csr: CSRMatrix) -> int:
    """Maximum ``|row − col|`` over all non-zeros (RCM's objective)."""
    if csr.nnz == 0:
        return 0
    row_of_entry = np.repeat(np.arange(csr.n_rows), np.diff(csr.row_offsets))
    return int(np.abs(row_of_entry - csr.col_indices).max())


def matrix_profile(csr: CSRMatrix) -> int:
    """Sum over rows of the distance from the diagonal to the leftmost entry."""
    if csr.nnz == 0:
        return 0
    nonempty = np.diff(csr.row_offsets) > 0
    starts = csr.row_offsets[:-1][nonempty]
    rows = np.nonzero(nonempty)[0]
    leftmost = np.minimum.reduceat(csr.col_indices, starts)
    return int(np.maximum(rows - leftmost, 0).sum())


def working_set_lines(
    ids: np.ndarray, element_bytes: int = 4, line_bytes: int = 32
) -> int:
    """Distinct cache lines covering the given element IDs."""
    ids = np.asarray(ids, dtype=np.int64)
    if ids.size == 0:
        return 0
    return int(np.unique(ids * element_bytes // line_bytes).size)
