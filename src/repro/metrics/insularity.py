"""Insularity: the paper's community-quality metric (Section V-A).

Insularity is the fraction of edges that only connect members of the
same community.  It ranges over [0, 1]; high insularity means most
irregular accesses stay inside one community at a time, which is what
lets a community-ordered matrix fit its working set in cache.  A node
is *insular* when every edge incident to it stays inside its community
(Section VI-A, Figure 4).
"""

from __future__ import annotations

import numpy as np

from repro.community.assignment import CommunityAssignment
from repro.errors import ShapeError
from repro.graphs.graph import Graph
from repro.sparse.csr import CSRMatrix


def insularity(graph: Graph, assignment: CommunityAssignment) -> float:
    """Fraction of intra-community edges on the undirected view.

    The example of paper Figure 1 evaluates to ``20 / 24 = 0.83``;
    both directions of each undirected edge are counted, which leaves
    the ratio unchanged.
    """
    undirected = graph.to_undirected()
    return insularity_csr(undirected.adjacency, assignment.labels)


def insularity_csr(adjacency: CSRMatrix, labels: np.ndarray) -> float:
    """Insularity over the entries of a CSR adjacency."""
    labels = _checked_labels(adjacency, labels)
    if adjacency.nnz == 0:
        return 1.0
    row_of_entry = np.repeat(
        np.arange(adjacency.n_rows), np.diff(adjacency.row_offsets)
    )
    intra = labels[row_of_entry] == labels[adjacency.col_indices]
    return float(intra.sum()) / float(adjacency.nnz)


def insular_mask(graph: Graph, assignment: CommunityAssignment) -> np.ndarray:
    """Boolean mask of insular nodes.

    A node is insular when it has no edge (in the undirected view)
    leaving its community.  Isolated nodes are trivially insular.
    """
    undirected = graph.to_undirected()
    adjacency = undirected.adjacency
    labels = _checked_labels(adjacency, assignment.labels)
    row_of_entry = np.repeat(
        np.arange(adjacency.n_rows), np.diff(adjacency.row_offsets)
    )
    crossing = labels[row_of_entry] != labels[adjacency.col_indices]
    cross_count = np.zeros(adjacency.n_rows, dtype=np.int64)
    np.add.at(cross_count, row_of_entry, crossing.astype(np.int64))
    return cross_count == 0


def insular_node_fraction(graph: Graph, assignment: CommunityAssignment) -> float:
    """Percentage basis of Figure 4: share of nodes that are insular."""
    if graph.n_nodes == 0:
        return 1.0
    return float(insular_mask(graph, assignment).sum()) / float(graph.n_nodes)


def _checked_labels(adjacency: CSRMatrix, labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.shape != (adjacency.n_rows,):
        raise ShapeError(
            f"labels shape {labels.shape} != ({adjacency.n_rows},)"
        )
    return labels
