"""Community-size statistics (paper Section V-B).

The paper correlates insularity with *average community size
normalized to the number of nodes* (Pearson −0.472) and uses the
largest-community share to diagnose the mawi corner case (one community
covering ~98% of the matrix).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.community.assignment import CommunityAssignment


@dataclass(frozen=True)
class CommunitySizeStats:
    """Summary of a community partition's size distribution."""

    n_communities: int
    average_size: float
    median_size: float
    largest_size: int
    #: Average size divided by node count (the paper's normalization).
    normalized_average_size: float
    #: Largest community's share of all nodes (mawi detector).
    largest_fraction: float


def community_size_stats(assignment: CommunityAssignment) -> CommunitySizeStats:
    """Compute the size statistics of a partition."""
    sizes = assignment.sizes()
    n_nodes = assignment.n_nodes
    if sizes.size == 0 or n_nodes == 0:
        return CommunitySizeStats(0, 0.0, 0.0, 0, 0.0, 0.0)
    return CommunitySizeStats(
        n_communities=int(sizes.size),
        average_size=float(sizes.mean()),
        median_size=float(np.median(sizes)),
        largest_size=int(sizes.max()),
        normalized_average_size=float(sizes.mean()) / float(n_nodes),
        largest_fraction=float(sizes.max()) / float(n_nodes),
    )
