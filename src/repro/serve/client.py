"""Resilient HTTP client for the serve tier.

:class:`ServeClient` wraps :mod:`urllib` with the retry discipline an
overload-safe server expects from its callers:

* **capped exponential backoff with full jitter** — attempt *k* sleeps
  ``uniform(0, min(cap, base * 2**k))``, the decorrelating schedule
  that keeps a thundering herd of retriers from re-synchronizing on
  the very server they just overloaded;
* **Retry-After honoring** — a ``429``/``503`` carrying ``Retry-After``
  overrides the computed backoff (still capped, still jittered down,
  never up), so the client sleeps exactly as long as the server's
  admission controller or circuit breaker asked it to;
* **idempotent retry** — every request carries an
  ``X-Repro-Idempotency-Key`` header: the SHA-256 of the canonical
  (sorted-keys) request JSON.  The serve tier's responses are already
  deterministic functions of the request content (content-addressed
  store), so replaying a request is always safe; the header makes the
  retry's identity explicit and greppable in server logs.

Retried outcomes: HTTP 429/502/503 and connection-level
``OSError``/``URLError``.  Everything else (including 500) returns
immediately — a deterministic failure does not get better with
repetition.  The rng and sleep hooks are injectable so tests assert
the schedule without waiting it out.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import ValidationError

#: HTTP statuses worth retrying: shed (429), bad gateway (502) and
#: not-ready/breaker-open (503).  504 (deadline exceeded) is excluded:
#: the request already consumed a full deadline budget server-side.
RETRY_STATUSES = frozenset((429, 502, 503))


def idempotency_key(payload: Dict[str, object]) -> str:
    """Content digest of one request: SHA-256 of its canonical JSON."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class ClientResponse:
    """Final outcome of one (possibly retried) request."""

    status: int  #: HTTP status, or -1 when every attempt failed to connect
    body: Optional[Dict[str, object]]
    headers: Dict[str, str] = field(default_factory=dict)
    attempts: int = 1
    retries: int = 0  #: attempts beyond the first
    retry_wait_seconds: float = 0.0  #: total time spent backing off
    error: Optional[str] = None  #: connection-level failure description

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ServeClient:
    """Retrying JSON client bound to one serve base URL."""

    def __init__(
        self,
        base_url: str,
        max_retries: int = 4,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        timeout: float = 120.0,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base <= 0 or backoff_cap <= 0:
            raise ValidationError(
                f"backoff base/cap must be > 0, got "
                f"{backoff_base!r}/{backoff_cap!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.max_retries = max_retries
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.timeout = float(timeout)
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep

    # -- endpoint helpers -------------------------------------------------

    def reorder(self, request: Dict[str, object]) -> ClientResponse:
        return self.post_json("/v1/reorder", request)

    def recommend(self, request: Dict[str, object]) -> ClientResponse:
        return self.post_json("/v1/recommend", request)

    # -- core -------------------------------------------------------------

    def post_json(self, path: str, payload: Dict[str, object]) -> ClientResponse:
        """POST ``payload``; retry shed/transient outcomes with backoff."""
        body = json.dumps(payload).encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "X-Repro-Idempotency-Key": idempotency_key(payload),
        }
        attempts = 0
        waited = 0.0
        last: Optional[ClientResponse] = None
        while True:
            attempts += 1
            last = self._attempt(path, body, headers)
            retryable = last.status in RETRY_STATUSES or last.status < 0
            if not retryable or attempts > self.max_retries:
                break
            pause = self._backoff(attempts - 1, last.headers.get("Retry-After"))
            waited += pause
            self._sleep(pause)
        last.attempts = attempts
        last.retries = attempts - 1
        last.retry_wait_seconds = waited
        return last

    def _attempt(
        self, path: str, body: bytes, headers: Dict[str, str]
    ) -> ClientResponse:
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=dict(headers)
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return ClientResponse(
                    status=response.status,
                    body=self._parse(response.read()),
                    headers=dict(response.headers),
                )
        except urllib.error.HTTPError as exc:
            return ClientResponse(
                status=exc.code,
                body=self._parse(exc.read()),
                headers=dict(exc.headers or {}),
            )
        except (urllib.error.URLError, OSError) as exc:
            return ClientResponse(status=-1, body=None, error=str(exc))

    def _backoff(self, attempt: int, retry_after: Optional[str]) -> float:
        """Sleep budget before retry ``attempt`` (0-based), jittered."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2.0**attempt))
        if retry_after is not None:
            try:
                hinted = float(retry_after)
            except ValueError:
                hinted = 0.0
            if hinted > 0:
                # Honor the server's ask, capped so a confused server
                # cannot park the client for minutes; jitter *down*
                # from the hint so retriers spread out before it.
                ceiling = min(self.backoff_cap, max(ceiling, hinted))
        return self._rng.uniform(0.0, ceiling)

    @staticmethod
    def _parse(raw: bytes) -> Optional[Dict[str, object]]:
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        return parsed if isinstance(parsed, dict) else None
