"""Load-test harness for the serve tier (``repro serve-bench``).

Replays a synthetic request trace against a running ``repro serve``
instance (or one it spawns itself) and writes ``BENCH_serve.json``:

* matrix popularity is zipf-skewed (weight ``1 / rank**skew``), the
  canonical shape of repeat traffic a reordering service exists to
  absorb — a few hot matrices dominate, a long tail stays cold;
* the mix of store hits and misses therefore emerges naturally: first
  touches miss and pay the full reorder+simulate pipeline, repeats hit
  the content-addressed store;
* client-side latency is recorded per request into the same
  log-bucketed :class:`~repro.obs.histogram.Histogram` the server uses,
  split by the ``X-Repro-Store`` response header, so the report can
  state hit-path and miss-path p50/p99 from real distributions;
* the server's own ``/stats`` snapshot (counters + histogram
  summaries) is appended for the server-side view.

The report's headline numbers: ``store_hit_rate`` (fraction of
requests answered from the store) and ``hit_speedup_p50``
(miss-path p50 / hit-path p50 — the acceptance floor is 10x).

``run_overload_bench`` is the overload harness behind ``repro
serve-bench --overload``: it spawns a *calibration* server to measure
the un-contended miss latency, then an *overload* server with a
deliberately small admission gate and hammers it at ``offered_factor``x
compute capacity with mostly-unique cold keys (distinct kernel B
widths, so nothing coalesces) plus a pre-warmed hot key.  The report
records goodput (accepted requests/s), shed rate (429s/total) and the
accepted-request p99 against the calibrated baseline — the acceptance
contract is zero 500s and accepted p99 within 2x of baseline.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.graphs.corpus import corpus_names
from repro.obs.histogram import Histogram
from repro.serve.client import ClientResponse, ServeClient

BENCH_SCHEMA = 2

#: Latency classes, keyed by the ``X-Repro-Store`` response header
#: ("degraded" is the 202 predictor-only answer under an open breaker).
_CLASSES = ("hit", "miss", "coalesced", "degraded")


def zipf_trace(
    names: Sequence[str], n_requests: int, skew: float = 1.1, seed: int = 0
) -> List[str]:
    """A zipf-skewed request trace over ``names`` (rank = given order).

    ``weight(rank k) = 1 / k**skew``; ``skew=0`` degenerates to uniform.
    Deterministic for a given seed, so bench runs are reproducible.
    """
    if not names:
        raise ValidationError("zipf_trace needs at least one matrix name")
    if n_requests < 1:
        raise ValidationError(f"n_requests must be >= 1, got {n_requests}")
    weights = [1.0 / (rank**skew) for rank in range(1, len(names) + 1)]
    rng = random.Random(seed)
    return rng.choices(list(names), weights=weights, k=n_requests)


def _post_json(
    base_url: str, path: str, payload: Dict[str, object], timeout: float
) -> Tuple[int, Dict[str, str], bytes]:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base_url + path, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), exc.read()


def _get_json(base_url: str, path: str, timeout: float) -> Dict[str, object]:
    with urllib.request.urlopen(base_url + path, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def wait_for_server(base_url: str, timeout: float = 30.0) -> None:
    """Poll ``/health`` until the server answers (or raise TimeoutError).

    Only *connection-level* failures keep the poll going (the server is
    still binding).  An HTTP-level error means the server is up but
    broken — that fails fast with the status and body instead of
    burning the whole timeout.  (``HTTPError`` subclasses ``OSError``,
    so it must be caught first or it silently looks like
    connection-refused.)
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            if _get_json(base_url, "/health", timeout=2.0).get("ok"):
                return
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8", errors="replace")[:500]
            raise RuntimeError(
                f"serve endpoint {base_url} is up but unhealthy: "
                f"HTTP {exc.code} on /health: {body}"
            ) from exc
        except (OSError, ValueError):
            pass
        if time.monotonic() >= deadline:
            raise TimeoutError(f"serve endpoint {base_url} not healthy after {timeout}s")
        time.sleep(0.05)


class _LoadState:
    """Shared, lock-guarded client-side measurement state.

    Every request lands in exactly one bucket: a latency class (200 by
    ``X-Repro-Store`` header, 202 as ``degraded``), the ``shed`` count
    (429), or a named error class — ``timeout``, ``connection``, or the
    HTTP status as a string.  A failed request never aborts the run; it
    is counted and the workers move on.
    """

    def __init__(self, trace: Sequence[object]) -> None:
        self.trace = trace
        self.next_index = 0
        self.lock = threading.Lock()
        self.overall = Histogram()
        #: Latency of every non-error answer (200 + 202): what an
        #: admitted caller actually waited, the overload p99 source.
        self.accepted = Histogram()
        self.by_class: Dict[str, Histogram] = {name: Histogram() for name in _CLASSES}
        self.errors: Dict[str, int] = {}
        self.attempted = 0
        self.shed = 0
        self.retries = 0

    def take(self) -> Optional[object]:
        with self.lock:
            if self.next_index >= len(self.trace):
                return None
            item = self.trace[self.next_index]
            self.next_index += 1
            return item

    def record(self, seconds: float, response: ClientResponse) -> None:
        store = response.headers.get("X-Repro-Store")
        with self.lock:
            self.attempted += 1
            self.retries += response.retries
            if response.status == 200 and store in self.by_class:
                self.overall.observe(seconds)
                self.accepted.observe(seconds)
                self.by_class[store].observe(seconds)
            elif response.status == 202:
                self.accepted.observe(seconds)
                self.by_class["degraded"].observe(seconds)
            elif response.status == 429:
                self.shed += 1
            elif response.status < 0:
                error = response.error or ""
                key = "timeout" if "timed out" in error else "connection"
                self.errors[key] = self.errors.get(key, 0) + 1
            else:
                key = str(response.status)
                self.errors[key] = self.errors.get(key, 0) + 1


def run_load(
    base_url: str,
    trace: Sequence[object],
    concurrency: int = 4,
    request_template: Optional[Dict[str, object]] = None,
    timeout: float = 120.0,
    max_retries: int = 2,
) -> _LoadState:
    """Replay ``trace`` against ``base_url`` with ``concurrency`` workers.

    Trace items are corpus names (merged into the template) or complete
    request dicts.  Workers use the resilient :class:`ServeClient`;
    pass ``max_retries=0`` to observe shed 429s instead of retrying
    through them (the overload harness does).
    """
    if concurrency < 1:
        raise ValidationError(f"concurrency must be >= 1, got {concurrency}")
    state = _LoadState(trace)
    template = dict(request_template or {})

    def worker(index: int) -> None:
        client = ServeClient(
            base_url,
            max_retries=max_retries,
            timeout=timeout,
            rng=random.Random(index),
        )
        while True:
            item = state.take()
            if item is None:
                return
            if isinstance(item, dict):
                payload = dict(template)
                payload.update(item)
            else:
                payload = dict(template)
                payload["matrix"] = item
            started = time.monotonic()
            response = client.reorder(payload)
            state.record(time.monotonic() - started, response)

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"serve-bench-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return state


def _class_summary(hist: Histogram) -> Dict[str, object]:
    summary = hist.summary()
    summary["mean"] = hist.mean()
    return summary


def bench_payload(
    state: _LoadState,
    server_stats: Optional[Dict[str, object]],
    config: Dict[str, object],
) -> Dict[str, object]:
    """Assemble the ``BENCH_serve.json`` document."""
    total = state.overall.count
    hits = state.by_class["hit"].count
    hit_p50 = state.by_class["hit"].percentile_or(0.50)
    miss_p50 = state.by_class["miss"].percentile_or(0.50)
    speedup = None
    if hit_p50 and miss_p50 and hit_p50 > 0:
        speedup = miss_p50 / hit_p50
    # Server-side view of the same split, from the serve.request.{hit,
    # miss} histograms: excludes client/socket overhead, so it isolates
    # what the store actually saves (request parse + store read vs the
    # full reorder+simulate pipeline).
    server_speedup = None
    if server_stats:
        histograms = server_stats.get("histograms") or {}
        server_hit = (histograms.get("serve.request.hit") or {}).get("p50")
        server_miss = (histograms.get("serve.request.miss") or {}).get("p50")
        if server_hit and server_miss:
            server_speedup = server_miss / server_hit
    return {
        "schema": BENCH_SCHEMA,
        "config": config,
        "requests": {
            "total": total,
            "attempted": state.attempted,
            "shed": state.shed,
            "retries": state.retries,
            "errors": dict(sorted(state.errors.items())),
        },
        "client": {
            "overall": _class_summary(state.overall),
            **{name: _class_summary(state.by_class[name]) for name in _CLASSES},
        },
        "store_hit_rate": (hits / total) if total else 0.0,
        "hit_speedup_p50": speedup,
        "hit_speedup_p50_server": server_speedup,
        "server": server_stats,
    }


def spawn_server(
    profile: str = "test",
    store_dir: Optional[str] = None,
    extra_args: Sequence[str] = (),
    timeout: float = 60.0,
) -> Tuple[subprocess.Popen, str]:
    """Launch ``repro serve`` on a free port; returns (process, base_url).

    The child writes its bound port to a temp file (``--port-file``), so
    there is no port race; the caller owns the process and must
    ``terminate()`` it.
    """
    fd, port_file = tempfile.mkstemp(prefix="repro-serve-port-")
    os.close(fd)
    os.unlink(port_file)
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--profile",
        profile,
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--port-file",
        port_file,
        *extra_args,
    ]
    env = dict(os.environ)
    if store_dir is not None:
        env["REPRO_SERVE_STORE"] = store_dir
    process = subprocess.Popen(command, env=env)
    deadline = time.monotonic() + timeout
    try:
        while not os.path.exists(port_file):
            if process.poll() is not None:
                raise RuntimeError(
                    f"repro serve exited with {process.returncode} before binding"
                )
            if time.monotonic() >= deadline:
                raise TimeoutError(f"repro serve did not bind a port in {timeout}s")
            time.sleep(0.05)
        with open(port_file, "r", encoding="utf-8") as handle:
            port = int(handle.read().strip())
        base_url = f"http://127.0.0.1:{port}"
        wait_for_server(base_url, timeout=max(1.0, deadline - time.monotonic()))
    except BaseException:
        process.terminate()
        process.wait(timeout=10)
        raise
    finally:
        if os.path.exists(port_file):
            os.unlink(port_file)
    return process, base_url


def run_bench(
    base_url: Optional[str] = None,
    profile: str = "test",
    n_requests: int = 60,
    concurrency: int = 4,
    skew: float = 1.1,
    seed: int = 0,
    technique: str = "rabbit++",
    kernel: str = "spmv-csr",
    policy: str = "lru",
    matrices: Optional[Sequence[str]] = None,
    store_dir: Optional[str] = None,
    timeout: float = 120.0,
) -> Dict[str, object]:
    """One full bench run; spawns a server when ``base_url`` is None."""
    names = list(matrices) if matrices else corpus_names(profile)
    trace = zipf_trace(names, n_requests, skew=skew, seed=seed)
    template: Dict[str, object] = {
        "technique": technique,
        "kernel": kernel,
        "policy": policy,
        "include_permutation": False,
    }
    config: Dict[str, object] = {
        "profile": profile,
        "n_requests": n_requests,
        "concurrency": concurrency,
        "skew": skew,
        "seed": seed,
        "technique": technique,
        "kernel": kernel,
        "policy": policy,
        "matrices": names,
        "spawned": base_url is None,
    }
    process: Optional[subprocess.Popen] = None
    try:
        if base_url is None:
            process, base_url = spawn_server(profile=profile, store_dir=store_dir)
        state = run_load(
            base_url, trace, concurrency=concurrency,
            request_template=template, timeout=timeout,
        )
        try:
            server_stats: Optional[Dict[str, object]] = _get_json(
                base_url, "/stats", timeout=10.0
            )
        except (OSError, ValueError):
            server_stats = None
    finally:
        if process is not None:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                process.wait(timeout=10)
    return bench_payload(state, server_stats, config)


def _stop_server(process: subprocess.Popen) -> None:
    process.terminate()
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:  # pragma: no cover
        process.kill()
        process.wait(timeout=10)


def _overload_request(
    matrix: str, kernel: str, technique: str, policy: str
) -> Dict[str, object]:
    return {
        "matrix": matrix,
        "kernel": kernel,
        "technique": technique,
        "policy": policy,
        "include_permutation": False,
    }


def run_overload_bench(
    profile: str = "test",
    n_requests: int = 96,
    offered_factor: float = 6.0,
    max_inflight: int = 1,
    max_queue: int = 2,
    hot_fraction: float = 0.3,
    calibration_requests: int = 8,
    technique: str = "rabbit++",
    policy: str = "lru",
    seed: int = 0,
    timeout: float = 120.0,
) -> Dict[str, object]:
    """Overload harness: drive a small admission gate past capacity.

    Two phases, each against a private spawned server with a fresh
    store:

    1. **Calibration** — default (ample) admission, concurrency 1:
       measures the un-contended accepted p99 (the *baseline*) over
       cold misses sampled from the same kernel-width range the
       overload phase uses.  The overload server's ``queue_timeout``
       is set to 80% of that baseline, which is what bounds the
       accepted-request p99 at roughly (queue wait) + (one compute)
       ≤ 2x baseline.
    2. **Overload** — ``max_inflight``/``max_queue`` deliberately
       small, client concurrency = ``offered_factor * max_inflight``
       with retries off, a mostly-unique cold trace (distinct
       ``spmm-csr-K`` widths, so nothing coalesces) plus a pre-warmed
       hot key whose store hits are always admitted.  Keep
       ``max_inflight`` at or below the physical core count: extra
       slots only time-slice the compute, which inflates accepted p99
       without adding capacity.

    Cold keys vary the dense-operand width K because it is the only
    per-request knob that changes the eval store key without changing
    the permutation — every cold request is a genuine compute, none of
    them coalesce, and the permutation itself is computed exactly once.
    """
    if offered_factor < 1:
        raise ValidationError(
            f"offered_factor must be >= 1, got {offered_factor}"
        )
    if not 0.0 <= hot_fraction < 1.0:
        raise ValidationError(
            f"hot_fraction must be in [0, 1), got {hot_fraction}"
        )
    if n_requests < 4 or calibration_requests < 2:
        raise ValidationError("overload bench needs >= 4 requests, >= 2 calibration")
    matrix = corpus_names(profile)[0]
    n_hot = int(n_requests * hot_fraction)
    n_cold = n_requests - n_hot
    # Dense-operand widths stride by 8: K 4-byte elements per gather
    # must fill whole 32B cache lines, so other widths are a 400.
    k_base, k_stride = 24, 8
    cold_widths = [k_base + k_stride * i for i in range(n_cold)]
    hot_kernel = "spmv-csr"

    # Phase 1: calibration — un-contended miss latency, sampled across
    # the same K range so the baseline reflects the expensive end too.
    ks = sorted(
        {
            cold_widths[(i * (n_cold - 1)) // max(1, calibration_requests - 1)]
            for i in range(calibration_requests)
        }
    )
    cal_trace = [
        _overload_request(matrix, f"spmm-csr-{k}", technique, policy) for k in ks
    ]
    with tempfile.TemporaryDirectory(prefix="repro-overload-cal-") as cal_store:
        process, base_url = spawn_server(profile=profile, store_dir=cal_store)
        try:
            cal_state = run_load(
                base_url, cal_trace, concurrency=1, timeout=timeout, max_retries=2
            )
        finally:
            _stop_server(process)
    baseline_p99 = cal_state.accepted.percentile_or(0.99)
    baseline_miss_p50 = cal_state.by_class["miss"].percentile_or(0.50)
    if not baseline_p99 or not cal_state.accepted.count:
        raise RuntimeError(
            f"overload calibration produced no accepted requests "
            f"(errors: {cal_state.errors})"
        )
    queue_timeout = max(0.02, 0.8 * baseline_p99)

    # Phase 2: overload — offered load ≈ offered_factor x capacity.
    concurrency = max(1, int(round(offered_factor * max_inflight)))
    trace: List[Dict[str, object]] = [
        _overload_request(matrix, f"spmm-csr-{k}", technique, policy)
        for k in cold_widths
    ] + [
        _overload_request(matrix, hot_kernel, technique, policy)
        for _ in range(n_hot)
    ]
    random.Random(seed).shuffle(trace)
    with tempfile.TemporaryDirectory(prefix="repro-overload-") as store:
        process, base_url = spawn_server(
            profile=profile,
            store_dir=store,
            extra_args=(
                "--max-inflight", str(max_inflight),
                "--max-queue", str(max_queue),
                "--queue-timeout", f"{queue_timeout:.4f}",
            ),
        )
        try:
            # Pre-warm the hot key: its store hits bypass admission, so
            # they are the goodput floor no overload can shed.
            warm = ServeClient(base_url, max_retries=4, timeout=timeout)
            prewarm = warm.reorder(
                _overload_request(matrix, hot_kernel, technique, policy)
            )
            started = time.monotonic()
            state = run_load(
                base_url,
                trace,
                concurrency=concurrency,
                timeout=timeout,
                max_retries=0,  # count 429s as shed, don't retry through them
            )
            elapsed = time.monotonic() - started
            try:
                server_stats: Optional[Dict[str, object]] = _get_json(
                    base_url, "/stats", timeout=10.0
                )
            except (OSError, ValueError):
                server_stats = None
        finally:
            _stop_server(process)

    total = state.attempted
    accepted = state.accepted.count
    accepted_p99 = state.accepted.percentile_or(0.99)
    config: Dict[str, object] = {
        "mode": "overload",
        "profile": profile,
        "n_requests": n_requests,
        "concurrency": concurrency,
        "seed": seed,
        "technique": technique,
        "kernel": (
            f"spmm-csr-{cold_widths[0]}..{cold_widths[-1]}"
            f" step {k_stride} + {hot_kernel}"
        ),
        "policy": policy,
        "matrices": [matrix],
        "spawned": True,
    }
    payload = bench_payload(state, server_stats, config)
    payload["overload"] = {
        "offered_factor": offered_factor,
        "max_inflight": max_inflight,
        "max_queue": max_queue,
        "queue_timeout": queue_timeout,
        "hot_fraction": hot_fraction,
        "prewarm_status": prewarm.status,
        "requests": total,
        "accepted": accepted,
        "shed": state.shed,
        "errors": dict(sorted(state.errors.items())),
        "elapsed_seconds": elapsed,
        "offered_rps": (total / elapsed) if elapsed > 0 else None,
        "goodput_rps": (accepted / elapsed) if elapsed > 0 else None,
        "shed_rate": (state.shed / total) if total else 0.0,
        "accepted_p99": accepted_p99,
        "baseline_p99": baseline_p99,
        "baseline_miss_p50": baseline_miss_p50,
        "p99_ratio": (
            accepted_p99 / baseline_p99 if accepted_p99 and baseline_p99 else None
        ),
    }
    return payload
