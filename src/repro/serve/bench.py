"""Load-test harness for the serve tier (``repro serve-bench``).

Replays a synthetic request trace against a running ``repro serve``
instance (or one it spawns itself) and writes ``BENCH_serve.json``:

* matrix popularity is zipf-skewed (weight ``1 / rank**skew``), the
  canonical shape of repeat traffic a reordering service exists to
  absorb — a few hot matrices dominate, a long tail stays cold;
* the mix of store hits and misses therefore emerges naturally: first
  touches miss and pay the full reorder+simulate pipeline, repeats hit
  the content-addressed store;
* client-side latency is recorded per request into the same
  log-bucketed :class:`~repro.obs.histogram.Histogram` the server uses,
  split by the ``X-Repro-Store`` response header, so the report can
  state hit-path and miss-path p50/p99 from real distributions;
* the server's own ``/stats`` snapshot (counters + histogram
  summaries) is appended for the server-side view.

The report's headline numbers: ``store_hit_rate`` (fraction of
requests answered from the store) and ``hit_speedup_p50``
(miss-path p50 / hit-path p50 — the acceptance floor is 10x).
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.graphs.corpus import corpus_names
from repro.obs.histogram import Histogram

BENCH_SCHEMA = 1

#: Latency classes, keyed by the ``X-Repro-Store`` response header.
_CLASSES = ("hit", "miss", "coalesced")


def zipf_trace(
    names: Sequence[str], n_requests: int, skew: float = 1.1, seed: int = 0
) -> List[str]:
    """A zipf-skewed request trace over ``names`` (rank = given order).

    ``weight(rank k) = 1 / k**skew``; ``skew=0`` degenerates to uniform.
    Deterministic for a given seed, so bench runs are reproducible.
    """
    if not names:
        raise ValidationError("zipf_trace needs at least one matrix name")
    if n_requests < 1:
        raise ValidationError(f"n_requests must be >= 1, got {n_requests}")
    weights = [1.0 / (rank**skew) for rank in range(1, len(names) + 1)]
    rng = random.Random(seed)
    return rng.choices(list(names), weights=weights, k=n_requests)


def _post_json(
    base_url: str, path: str, payload: Dict[str, object], timeout: float
) -> Tuple[int, Dict[str, str], bytes]:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base_url + path, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), exc.read()


def _get_json(base_url: str, path: str, timeout: float) -> Dict[str, object]:
    with urllib.request.urlopen(base_url + path, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def wait_for_server(base_url: str, timeout: float = 30.0) -> None:
    """Poll ``/health`` until the server answers (or raise TimeoutError)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            if _get_json(base_url, "/health", timeout=2.0).get("ok"):
                return
        except (OSError, ValueError):
            pass
        if time.monotonic() >= deadline:
            raise TimeoutError(f"serve endpoint {base_url} not healthy after {timeout}s")
        time.sleep(0.05)


class _LoadState:
    """Shared, lock-guarded client-side measurement state."""

    def __init__(self, trace: Sequence[str]) -> None:
        self.trace = trace
        self.next_index = 0
        self.lock = threading.Lock()
        self.overall = Histogram()
        self.by_class: Dict[str, Histogram] = {name: Histogram() for name in _CLASSES}
        self.errors: Dict[str, int] = {}

    def take(self) -> Optional[str]:
        with self.lock:
            if self.next_index >= len(self.trace):
                return None
            name = self.trace[self.next_index]
            self.next_index += 1
            return name

    def record(self, seconds: float, status: int, store: Optional[str]) -> None:
        with self.lock:
            if status == 200 and store in self.by_class:
                self.overall.observe(seconds)
                self.by_class[store].observe(seconds)
            else:
                key = str(status)
                self.errors[key] = self.errors.get(key, 0) + 1


def run_load(
    base_url: str,
    trace: Sequence[str],
    concurrency: int = 4,
    request_template: Optional[Dict[str, object]] = None,
    timeout: float = 120.0,
) -> _LoadState:
    """Replay ``trace`` against ``base_url`` with ``concurrency`` workers."""
    if concurrency < 1:
        raise ValidationError(f"concurrency must be >= 1, got {concurrency}")
    state = _LoadState(trace)
    template = dict(request_template or {})

    def worker() -> None:
        while True:
            name = state.take()
            if name is None:
                return
            payload = dict(template)
            payload["matrix"] = name
            started = time.monotonic()
            try:
                status, headers, _body = _post_json(
                    base_url, "/v1/reorder", payload, timeout
                )
            except OSError:
                state.record(0.0, -1, None)
                continue
            state.record(
                time.monotonic() - started, status, headers.get("X-Repro-Store")
            )

    threads = [
        threading.Thread(target=worker, name=f"serve-bench-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return state


def _class_summary(hist: Histogram) -> Dict[str, object]:
    summary = hist.summary()
    summary["mean"] = hist.mean()
    return summary


def bench_payload(
    state: _LoadState,
    server_stats: Optional[Dict[str, object]],
    config: Dict[str, object],
) -> Dict[str, object]:
    """Assemble the ``BENCH_serve.json`` document."""
    total = state.overall.count
    hits = state.by_class["hit"].count
    hit_p50 = state.by_class["hit"].percentile_or(0.50)
    miss_p50 = state.by_class["miss"].percentile_or(0.50)
    speedup = None
    if hit_p50 and miss_p50 and hit_p50 > 0:
        speedup = miss_p50 / hit_p50
    # Server-side view of the same split, from the serve.request.{hit,
    # miss} histograms: excludes client/socket overhead, so it isolates
    # what the store actually saves (request parse + store read vs the
    # full reorder+simulate pipeline).
    server_speedup = None
    if server_stats:
        histograms = server_stats.get("histograms") or {}
        server_hit = (histograms.get("serve.request.hit") or {}).get("p50")
        server_miss = (histograms.get("serve.request.miss") or {}).get("p50")
        if server_hit and server_miss:
            server_speedup = server_miss / server_hit
    return {
        "schema": BENCH_SCHEMA,
        "config": config,
        "requests": {
            "total": total,
            "errors": dict(sorted(state.errors.items())),
        },
        "client": {
            "overall": _class_summary(state.overall),
            **{name: _class_summary(state.by_class[name]) for name in _CLASSES},
        },
        "store_hit_rate": (hits / total) if total else 0.0,
        "hit_speedup_p50": speedup,
        "hit_speedup_p50_server": server_speedup,
        "server": server_stats,
    }


def spawn_server(
    profile: str = "test",
    store_dir: Optional[str] = None,
    extra_args: Sequence[str] = (),
    timeout: float = 60.0,
) -> Tuple[subprocess.Popen, str]:
    """Launch ``repro serve`` on a free port; returns (process, base_url).

    The child writes its bound port to a temp file (``--port-file``), so
    there is no port race; the caller owns the process and must
    ``terminate()`` it.
    """
    fd, port_file = tempfile.mkstemp(prefix="repro-serve-port-")
    os.close(fd)
    os.unlink(port_file)
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--profile",
        profile,
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--port-file",
        port_file,
        *extra_args,
    ]
    env = dict(os.environ)
    if store_dir is not None:
        env["REPRO_SERVE_STORE"] = store_dir
    process = subprocess.Popen(command, env=env)
    deadline = time.monotonic() + timeout
    try:
        while not os.path.exists(port_file):
            if process.poll() is not None:
                raise RuntimeError(
                    f"repro serve exited with {process.returncode} before binding"
                )
            if time.monotonic() >= deadline:
                raise TimeoutError(f"repro serve did not bind a port in {timeout}s")
            time.sleep(0.05)
        with open(port_file, "r", encoding="utf-8") as handle:
            port = int(handle.read().strip())
        base_url = f"http://127.0.0.1:{port}"
        wait_for_server(base_url, timeout=max(1.0, deadline - time.monotonic()))
    except BaseException:
        process.terminate()
        process.wait(timeout=10)
        raise
    finally:
        if os.path.exists(port_file):
            os.unlink(port_file)
    return process, base_url


def run_bench(
    base_url: Optional[str] = None,
    profile: str = "test",
    n_requests: int = 60,
    concurrency: int = 4,
    skew: float = 1.1,
    seed: int = 0,
    technique: str = "rabbit++",
    kernel: str = "spmv-csr",
    policy: str = "lru",
    matrices: Optional[Sequence[str]] = None,
    store_dir: Optional[str] = None,
    timeout: float = 120.0,
) -> Dict[str, object]:
    """One full bench run; spawns a server when ``base_url`` is None."""
    names = list(matrices) if matrices else corpus_names(profile)
    trace = zipf_trace(names, n_requests, skew=skew, seed=seed)
    template: Dict[str, object] = {
        "technique": technique,
        "kernel": kernel,
        "policy": policy,
        "include_permutation": False,
    }
    config: Dict[str, object] = {
        "profile": profile,
        "n_requests": n_requests,
        "concurrency": concurrency,
        "skew": skew,
        "seed": seed,
        "technique": technique,
        "kernel": kernel,
        "policy": policy,
        "matrices": names,
        "spawned": base_url is None,
    }
    process: Optional[subprocess.Popen] = None
    try:
        if base_url is None:
            process, base_url = spawn_server(profile=profile, store_dir=store_dir)
        state = run_load(
            base_url, trace, concurrency=concurrency,
            request_template=template, timeout=timeout,
        )
        try:
            server_stats: Optional[Dict[str, object]] = _get_json(
                base_url, "/stats", timeout=10.0
            )
        except (OSError, ValueError):
            server_stats = None
    finally:
        if process is not None:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                process.wait(timeout=10)
    return bench_payload(state, server_stats, config)
