"""The serve-tier request pipeline (transport-agnostic core).

:class:`ReorderService` turns one JSON request — a corpus matrix name
or an uploaded ``.mtx`` body, plus a kernel spec — into the recommended
technique, the permutation, and the predicted traffic/runtime from the
existing simulator.  It is deliberately free of HTTP concerns so the
integration tests can drive it directly and the stdlib HTTP front end
(:mod:`repro.serve.httpd`) stays a thin adapter.

Request schema, wire version ``"v": 1`` (all fields optional unless
noted; unknown top-level keys are rejected with a 400 naming the
key)::

    {
      "matrix": "soc-forum",          # corpus name ... or:
      "mtx": "%%MatrixMarket ...",    # MatrixMarket text upload
      "technique": "auto",            # or any registry technique name
      "kernel": "spmv-csr",
      "policy": "lru",
      "iterations": 100,              # amortization horizon for "auto"
      "deadline_seconds": 2.0,        # per-request budget
      "include_permutation": true
    }

Technique selection (``"auto"``) follows the amortization framing of
arXiv 2506.10356 — reordering is only worth paying for if the
per-iteration saving covers the one-time reordering cost within the
requested iteration horizon — and prefers cheap orderings when they
suffice (arXiv 2001.08448): candidates are ordered lightweight-first
and a cheaper ordering within 1% of the best total cost wins.

Since wire version 1 the auto recommendation is *predicted*, not
measured: the structural effectiveness predictor
(:mod:`repro.predict`) maps one community detection plus closed-form
compulsory traffic to per-candidate modeled seconds, so choosing a
technique computes **zero** candidate reorderings and zero cache
simulations (``serve.compute.*`` counters stay untouched).  Only the
chosen technique is then evaluated — and ``/v1/recommend``
(:meth:`ReorderService.handle_recommend`) skips even that.

Responses are *deterministic* given the store contents: a store hit is
byte-identical to the miss response that created the entry, because
both are rendered from the same stored evaluation payload.  Wall-clock
metadata lives in transport headers, never in the body.

Concurrency: every (structure, technique, impl, kernel, policy) key is
computed at most once at a time (:class:`SingleFlight`), each stage
checks the cooperative per-request deadline
(:func:`~repro.resilience.check_deadline`), and all store writes are
atomic with unique temp names.
"""

from __future__ import annotations

import io
import threading
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api import recommendation_from_features
from repro.errors import (
    BreakerOpenError,
    CorpusError,
    OverloadedError,
    ValidationError,
)
from repro.gpu.perf import model_run
from repro.gpu.specs import PlatformSpec, scaled_platform
from repro.graphs.corpus import PROFILES, load_graph
from repro.graphs.graph import Graph
from repro.graphs.io import read_matrix_market
from repro.obs import get_obs, logger
from repro.reorder.base import reorder_with_timing
from repro.reorder.registry import available_techniques, make_technique
from repro.resilience import cell_deadline, check_deadline
from repro.resilience.faults import fault_point
from repro.serve.admission import Admission
from repro.serve.breaker import CircuitBreaker
from repro.serve.coalesce import SingleFlight
from repro.serve.store import PermutationStore, eval_key, perm_key, structure_digest
from repro.sparse.convert import coo_to_csr
from repro.sparse.ops import is_symmetric
from repro.sparse.permute import permute_symmetric
from repro.trace.kernelspec import KernelSpec

#: Response/entry payload schema; bump on incompatible layout changes.
RESPONSE_SCHEMA = 1

#: Wire version of the request/response format, carried as ``"v"`` in
#: every response body so clients can pin what they parse.
WIRE_VERSION = 1

#: The no-reordering baseline the amortization comparison runs against.
BASELINE_TECHNIQUE = "original"

#: Lightweight-first candidate shortlist for ``technique: "auto"``
#: (arXiv 2001.08448: prefer cheap orderings when they suffice).
DEFAULT_CANDIDATES = ("degsort", "rcm", "rabbit", "rabbit++")

#: The complete ``/v1/reorder`` request vocabulary; anything else is a
#: 400 naming the offending key.
ALLOWED_KEYS = frozenset(
    (
        "matrix",
        "mtx",
        "technique",
        "kernel",
        "policy",
        "iterations",
        "deadline_seconds",
        "include_permutation",
    )
)

#: The ``/v1/recommend`` request vocabulary (prediction needs no
#: policy, permutation or technique).
RECOMMEND_KEYS = frozenset(
    ("matrix", "mtx", "kernel", "iterations", "deadline_seconds")
)


@dataclass(frozen=True)
class ServeConfig:
    """Server-side knobs for one :class:`ReorderService` instance."""

    profile: str = "bench"
    platform: Optional[PlatformSpec] = None
    store_dir: Optional[str] = None
    reorder_impl: Optional[str] = None
    default_technique: str = "auto"
    default_kernel: str = "spmv-csr"
    default_policy: str = "lru"
    default_iterations: int = 100
    default_deadline_seconds: Optional[float] = None
    candidates: Tuple[str, ...] = DEFAULT_CANDIDATES
    max_upload_bytes: int = 16 * 1024 * 1024
    #: Admission control: at most ``max_inflight`` reorderings run at
    #: once, at most ``max_queue`` more wait up to ``queue_timeout``
    #: seconds for a slot; anything beyond is shed as a 429.  Store
    #: hits, coalesced followers and ``/v1/recommend`` bypass the gate.
    max_inflight: int = 4
    max_queue: int = 8
    queue_timeout: float = 2.0
    #: Circuit breakers around the compute and store fault domains
    #: (see :mod:`repro.serve.breaker` for the state machine).
    breaker_window: int = 16
    breaker_min_failures: int = 4
    breaker_failure_rate: float = 0.5
    breaker_recovery_seconds: float = 2.0
    breaker_probe_budget: int = 2

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ValidationError(
                f"unknown profile {self.profile!r}; valid: {PROFILES}"
            )
        known = available_techniques()
        for name in self.candidates + (BASELINE_TECHNIQUE,):
            if name not in known:
                raise ValidationError(f"unknown candidate technique {name!r}")


@dataclass
class ServeResult:
    """One handled request: deterministic body + transport metadata."""

    payload: Dict[str, object]
    #: "hit" (store read), "miss" (computed here), "coalesced"
    #: (piggybacked on a concurrent identical computation), "predicted"
    #: (``/v1/recommend``) or "degraded" (predictor-only fallback).
    store: str = "miss"
    #: HTTP status the transport should use (202 for degraded answers).
    status: int = 200
    #: ``Retry-After`` hint in seconds, set on degraded answers so the
    #: client knows when the compute tier is worth asking again.
    retry_after: Optional[float] = None


class ReorderService:
    """Reordering-as-a-service request pipeline over a content store."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.platform = (
            self.config.platform
            if self.config.platform is not None
            else scaled_platform(self.config.profile)
        )
        self.store = PermutationStore(self.config.store_dir)
        self.admission = Admission(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
            queue_timeout=self.config.queue_timeout,
        )
        self.breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(
                name,
                window=self.config.breaker_window,
                min_failures=self.config.breaker_min_failures,
                failure_rate=self.config.breaker_failure_rate,
                recovery_seconds=self.config.breaker_recovery_seconds,
                probe_budget=self.config.breaker_probe_budget,
            )
            for name in ("compute", "store")
        }
        #: Recent 500s, keyed by error_id, for ledger correlation.
        self._errors: deque = deque(maxlen=64)
        self._errors_lock = threading.Lock()
        self._flight = SingleFlight()
        self._graph_lock = threading.Lock()
        self._corpus_graphs: Dict[str, Tuple[Graph, str]] = {}
        self._predict_lock = threading.Lock()
        #: digest -> structural feature dict (one detection per matrix).
        self._features: Dict[str, Dict[str, float]] = {}
        #: (digest, kernel) -> analytic ideal seconds.
        self._ideal: Dict[Tuple[str, str], float] = {}
        #: kernel -> effectiveness predictor (pretrained or lazily fit).
        self._predictors: Dict[str, object] = {}

    # -- request entry point --------------------------------------------

    def handle(self, request: Dict[str, object]) -> ServeResult:
        """Serve one request dict (see module docstring for the schema).

        Raises :class:`ValidationError` for malformed requests,
        :class:`~repro.errors.CorpusError` for unknown corpus names and
        :class:`~repro.errors.CellTimeoutError` when the per-request
        deadline expires; the transport maps these to 400/404/504.
        """
        if not isinstance(request, dict):
            raise ValidationError("request body must be a JSON object")
        self._reject_unknown_keys(request, ALLOWED_KEYS)
        technique = self._str_field(
            request, "technique", self.config.default_technique
        )
        kernel = self._str_field(request, "kernel", self.config.default_kernel)
        KernelSpec.parse(kernel)  # reject malformed kernel names up front
        policy = self._str_field(request, "policy", self.config.default_policy)
        if policy not in ("lru", "belady"):
            raise ValidationError(f"policy must be 'lru' or 'belady', got {policy!r}")
        if technique != "auto" and technique not in available_techniques():
            raise ValidationError(
                f"unknown technique {technique!r} (or 'auto'); "
                f"available: {available_techniques()}"
            )
        iterations = request.get("iterations", self.config.default_iterations)
        if not isinstance(iterations, int) or isinstance(iterations, bool) or iterations < 1:
            raise ValidationError(
                f"iterations must be a positive integer, got {iterations!r}"
            )
        deadline = request.get(
            "deadline_seconds", self.config.default_deadline_seconds
        )
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise ValidationError(
                f"deadline_seconds must be a positive number, got {deadline!r}"
            )
        include_permutation = bool(request.get("include_permutation", True))

        name = request.get("matrix")
        mtx = request.get("mtx")
        if (name is None) == (mtx is None):
            raise ValidationError(
                "request needs exactly one of 'matrix' (corpus name) or "
                "'mtx' (MatrixMarket text)"
            )

        requested = technique
        label = f"serve:{name if name is not None else 'upload'}:{technique}"
        with cell_deadline(deadline, label):
            with get_obs().span("serve-load", matrix=name or "upload"):
                graph, digest = self._resolve_graph(name, mtx)
            check_deadline()
            recommendation = None
            if technique == "auto":
                technique, recommendation = self._recommend(
                    graph, digest, kernel, iterations
                )
            try:
                payload, store_state = self._evaluate(
                    graph, digest, technique, kernel, policy
                )
            except BreakerOpenError as exc:
                # Degraded mode: the compute tier is sick, but an
                # "auto" request already has a full predictor answer —
                # serve that (marked degraded, 202) instead of failing.
                if recommendation is None:
                    raise
                get_obs().counter("serve.request.degrade")
                return self._degraded_result(
                    name, graph, digest, technique, kernel, policy,
                    iterations, recommendation, exc,
                )

        body: Dict[str, object] = {
            "v": WIRE_VERSION,
            "schema": RESPONSE_SCHEMA,
            "degraded": False,
            "matrix": {
                "name": name,
                "digest": digest,
                "n_nodes": graph.n_nodes,
                "nnz": graph.adjacency.nnz,
            },
            "technique": technique,
            "requested_technique": requested,
            "kernel": kernel,
            "policy": policy,
            "impl": self._impl_name(),
            "platform": self.platform.name,
            "iterations": iterations,
            "recommendation": recommendation,
            "reorder_seconds": payload["reorder_seconds"],
            "perm_key": payload["perm_key"],
            "eval_key": payload["eval_key"],
            "model": payload["model"],
            "permutation": payload["permutation"] if include_permutation else None,
        }
        return ServeResult(payload=body, store=store_state)

    def _degraded_result(
        self,
        name: Optional[object],
        graph: Graph,
        digest: str,
        technique: str,
        kernel: str,
        policy: str,
        iterations: int,
        recommendation: Dict[str, object],
        exc: BreakerOpenError,
    ) -> ServeResult:
        """Predictor-only answer for an ``auto`` request under an open
        compute breaker: same body shape as a normal response, but the
        model numbers are *predicted* (no permutation, no store keys)
        and ``"degraded": true`` tells the client to retry later for
        the real evaluation."""
        row: Dict[str, object] = {}
        for candidate in recommendation.get("candidates", ()):
            if candidate.get("technique") == technique:
                row = candidate
                break
        else:
            baseline = recommendation.get("baseline") or {}
            if baseline.get("technique") == technique:
                row = baseline
        body: Dict[str, object] = {
            "v": WIRE_VERSION,
            "schema": RESPONSE_SCHEMA,
            "degraded": True,
            "matrix": {
                "name": name,
                "digest": digest,
                "n_nodes": graph.n_nodes,
                "nnz": graph.adjacency.nnz,
            },
            "technique": technique,
            "requested_technique": "auto",
            "kernel": kernel,
            "policy": policy,
            "impl": self._impl_name(),
            "platform": self.platform.name,
            "iterations": iterations,
            "recommendation": recommendation,
            "reorder_seconds": row.get("reorder_seconds"),
            "perm_key": None,
            "eval_key": None,
            "model": {
                "predicted": True,
                "modeled_seconds": row.get("modeled_seconds"),
                "total_seconds": row.get("total_seconds"),
            },
            "permutation": None,
        }
        return ServeResult(
            payload=body,
            store="degraded",
            status=202,
            retry_after=max(0.1, exc.retry_after),
        )

    # -- matrix resolution ----------------------------------------------

    def _resolve_graph(
        self, name: Optional[object], mtx: Optional[object]
    ) -> Tuple[Graph, str]:
        if name is not None:
            if not isinstance(name, str):
                raise ValidationError("'matrix' must be a corpus name string")
            with self._graph_lock:
                cached = self._corpus_graphs.get(name)
            if cached is not None:
                return cached
            graph = load_graph(name)  # raises CorpusError on unknown names
            digest = structure_digest(graph.adjacency)
            with self._graph_lock:
                self._corpus_graphs[name] = (graph, digest)
            return graph, digest
        if not isinstance(mtx, str):
            raise ValidationError("'mtx' must be MatrixMarket text")
        if len(mtx) > self.config.max_upload_bytes:
            raise ValidationError(
                f"upload exceeds {self.config.max_upload_bytes} bytes"
            )
        coo = read_matrix_market(io.StringIO(mtx))
        csr = coo_to_csr(coo)
        graph = Graph(csr, directed=not is_symmetric(coo))
        return graph, structure_digest(csr)

    # -- evaluation (store-backed, coalesced) ---------------------------

    def _impl_name(self) -> str:
        return self.config.reorder_impl if self.config.reorder_impl else "auto"

    # -- store access behind its circuit breaker -------------------------
    #
    # A sick store (failing disk, injected serve.store.* faults) must
    # degrade the service to recompute-and-skip-persist, never fail a
    # request: reads become misses, writes become no-ops, and once the
    # failure rate trips the breaker the store is bypassed outright
    # until half-open probes see it recover.

    def _store_get(self, kind: str, key: str) -> Optional[Dict[str, object]]:
        breaker = self.breakers["store"]
        if not breaker.acquire():
            get_obs().counter("serve.store.bypass")
            return None
        try:
            value = self.store.get(kind, key)
        except Exception:
            breaker.failure()
            logger.exception("serve: store get failed for %s/%s…", kind, key[:12])
            return None
        breaker.success()
        return value

    def _store_put(self, kind: str, key: str, payload: Dict[str, object]) -> None:
        breaker = self.breakers["store"]
        if not breaker.acquire():
            get_obs().counter("serve.store.bypass")
            return
        try:
            self.store.put(kind, key, payload)
        except Exception:
            breaker.failure()
            logger.exception("serve: store put failed for %s/%s…", kind, key[:12])
            return
        breaker.success()

    def _evaluate(
        self, graph: Graph, digest: str, technique: str, kernel: str, policy: str
    ) -> Tuple[Dict[str, object], str]:
        """Evaluated (permutation, kernel) payload plus its store state."""
        impl = self._impl_name()
        key = eval_key(digest, technique, impl, kernel, policy, self.platform.name)
        cached = self._store_get("eval", key)
        if cached is not None:
            return cached, "hit"

        def compute() -> Dict[str, object]:
            # A concurrent flight (or another process) may have landed
            # the entry between our miss and winning the flight lead.
            landed = self._store_get("eval", key)
            if landed is not None:
                return landed
            # Only genuine compute passes the breaker + admission gate:
            # hits, coalesced followers and /v1/recommend never queue.
            breaker = self.breakers["compute"]
            if not breaker.acquire():
                raise BreakerOpenError(
                    f"compute breaker open ({technique}|{kernel})",
                    retry_after=max(0.1, breaker.retry_after()),
                )
            try:
                with self.admission.admit(label=f"{technique}|{kernel}"):
                    get_obs().counter("serve.compute.eval")
                    fault_point("serve.compute", label=f"{technique}|{kernel}")
                    check_deadline()
                    with get_obs().span(
                        "serve-eval", technique=technique, kernel=kernel,
                        policy=policy,
                    ):
                        perm_payload = self._permutation(graph, digest, technique)
                        check_deadline()
                        perm = np.asarray(
                            perm_payload["permutation"], dtype=np.int64
                        )
                        permuted = permute_symmetric(graph.adjacency, perm)
                        check_deadline()
                        trace = KernelSpec.parse(kernel).build_trace(
                            permuted, self.platform
                        )
                        run = model_run(trace, self.platform, policy=policy)
                    payload: Dict[str, object] = {
                        "schema": RESPONSE_SCHEMA,
                        "eval_key": key,
                        "perm_key": perm_payload["perm_key"],
                        "matrix_digest": digest,
                        "technique": technique,
                        "impl": impl,
                        "kernel": kernel,
                        "policy": policy,
                        "platform": self.platform.name,
                        "reorder_seconds": perm_payload["seconds"],
                        "permutation": perm_payload["permutation"],
                        "model": {
                            "normalized_traffic": run.normalized_traffic,
                            "normalized_runtime": run.normalized_runtime,
                            "traffic_bytes": run.traffic_bytes,
                            "compulsory_bytes": run.compulsory_bytes,
                            "modeled_seconds": run.modeled_seconds,
                            "ideal_seconds": run.ideal_seconds,
                            "hit_rate": run.stats.hit_rate,
                            "dead_line_fraction": run.stats.dead_line_fraction,
                            "accesses": run.stats.accesses,
                            "misses": run.stats.misses,
                        },
                    }
                    self._store_put("eval", key, payload)
            except OverloadedError:
                # Shed before the pipeline ran: says nothing about the
                # compute tier's health, so no breaker outcome.
                breaker.cancel()
                raise
            except (ValidationError, CorpusError):
                # Client errors (e.g. a kernel spec incompatible with
                # this matrix, caught during trace build) must not
                # count against the compute tier: a burst of bad
                # requests would otherwise open the breaker and take
                # down service for well-formed ones.
                breaker.cancel()
                raise
            except BaseException:
                breaker.failure()
                raise
            breaker.success()
            return payload

        result, led = self._flight.do(f"eval:{key}", compute)
        return result, ("miss" if led else "coalesced")

    def _permutation(
        self, graph: Graph, digest: str, technique: str
    ) -> Dict[str, object]:
        """Store-backed, coalesced permutation computation."""
        impl = self._impl_name()
        key = perm_key(digest, technique, impl)
        cached = self._store_get("perm", key)
        if cached is not None:
            return cached

        def compute() -> Dict[str, object]:
            # Runs under the eval flight's admission slot and breaker
            # accounting — no second gate here.
            landed = self._store_get("perm", key)
            if landed is not None:
                return landed
            get_obs().counter("serve.compute.permutation")
            check_deadline()
            timed = reorder_with_timing(
                make_technique(technique, impl=self.config.reorder_impl), graph
            )
            payload: Dict[str, object] = {
                "schema": RESPONSE_SCHEMA,
                "perm_key": key,
                "matrix_digest": digest,
                "technique": technique,
                "impl": impl,
                "n_nodes": graph.n_nodes,
                "seconds": timed.seconds,
                "permutation": timed.permutation.tolist(),
            }
            self._store_put("perm", key, payload)
            return payload

        result, _led = self._flight.do(f"perm:{key}", compute)
        return result

    # -- technique recommendation (predictor-backed) ---------------------

    def handle_recommend(self, request: Dict[str, object]) -> ServeResult:
        """Serve one ``/v1/recommend`` request.

        Pure prediction: resolves the matrix, extracts structural
        features (one community detection, cached per structure
        digest), and runs the candidate list through the effectiveness
        predictor.  No permutation is computed, no trace is built, no
        cache is simulated — the ``serve.compute.*`` counters never
        move on this path.
        """
        if not isinstance(request, dict):
            raise ValidationError("request body must be a JSON object")
        self._reject_unknown_keys(request, RECOMMEND_KEYS)
        kernel = self._str_field(request, "kernel", self.config.default_kernel)
        KernelSpec.parse(kernel)
        iterations = request.get("iterations", self.config.default_iterations)
        if not isinstance(iterations, int) or isinstance(iterations, bool) or iterations < 1:
            raise ValidationError(
                f"iterations must be a positive integer, got {iterations!r}"
            )
        deadline = request.get(
            "deadline_seconds", self.config.default_deadline_seconds
        )
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise ValidationError(
                f"deadline_seconds must be a positive number, got {deadline!r}"
            )
        name = request.get("matrix")
        mtx = request.get("mtx")
        if (name is None) == (mtx is None):
            raise ValidationError(
                "request needs exactly one of 'matrix' (corpus name) or "
                "'mtx' (MatrixMarket text)"
            )
        with cell_deadline(deadline, f"recommend:{name or 'upload'}"):
            with get_obs().span("serve-load", matrix=name or "upload"):
                graph, digest = self._resolve_graph(name, mtx)
            check_deadline()
            chosen, recommendation = self._recommend(
                graph, digest, kernel, iterations
            )
        body: Dict[str, object] = {
            "v": WIRE_VERSION,
            "schema": RESPONSE_SCHEMA,
            "matrix": {
                "name": name,
                "digest": digest,
                "n_nodes": graph.n_nodes,
                "nnz": graph.adjacency.nnz,
            },
            "kernel": kernel,
            "platform": self.platform.name,
            "iterations": iterations,
            "technique": chosen,
            "recommendation": recommendation,
        }
        return ServeResult(payload=body, store="predicted")

    def _recommend(
        self,
        graph: Graph,
        digest: str,
        kernel: str,
        iterations: int,
    ) -> Tuple[str, Dict[str, object]]:
        """Predicted amortization-framed technique choice.

        Delegates the cost comparison to
        :func:`repro.api.recommendation_from_features`: total candidate
        cost over the horizon is ``reorder_seconds + iterations *
        modeled_seconds`` — all four numbers per candidate predicted
        from structural features, so no candidate reordering or
        simulation runs here.
        """
        with get_obs().span("serve-recommend", kernel=kernel):
            predictor = self._predictor(kernel)
            features = self._features_for(graph, digest)
            check_deadline()
            ideal_key = (digest, kernel)
            with self._predict_lock:
                ideal = self._ideal.get(ideal_key)
            if ideal is None:
                from repro.predict.features import analytic_ideal_seconds

                ideal = analytic_ideal_seconds(graph, kernel, self.platform)
                with self._predict_lock:
                    self._ideal[ideal_key] = ideal
            recommendation = recommendation_from_features(
                predictor,
                features,
                ideal,
                iterations=iterations,
                candidates=self.config.candidates,
            )
        return recommendation.chosen, recommendation.to_json()

    def _features_for(self, graph: Graph, digest: str) -> Dict[str, float]:
        with self._predict_lock:
            cached = self._features.get(digest)
        if cached is not None:
            return cached
        from repro.predict.features import structural_features

        with get_obs().span("serve-features", digest=digest[:12]):
            features = structural_features(graph, self.platform)
        with self._predict_lock:
            self._features[digest] = features
        return features

    def _predictor(self, kernel: str):
        """Per-kernel predictor: pretrained coefficients, else one fit.

        Pretrained sets are committed for the common (profile, kernel)
        pairs; the fallback fit runs the profile corpus through the
        memoized experiment runner (slow once, then disk-cached).
        """
        with self._predict_lock:
            cached = self._predictors.get(kernel)
        if cached is not None:
            return cached
        from repro.predict.pretrained import load_pretrained

        predictor = load_pretrained(self.config.profile, kernel)
        if predictor is None:
            from repro.predict.validate import fit_predictor

            predictor = fit_predictor(profile=self.config.profile, kernel=kernel)
        with self._predict_lock:
            return self._predictors.setdefault(kernel, predictor)

    # -- misc ------------------------------------------------------------

    @staticmethod
    def _reject_unknown_keys(request: Dict[str, object], allowed) -> None:
        for key in request:
            if key not in allowed:
                raise ValidationError(
                    f"unknown request key {key!r}; allowed keys: "
                    f"{', '.join(sorted(allowed))}"
                )

    @staticmethod
    def _str_field(request: Dict[str, object], key: str, default: str) -> str:
        value = request.get(key, default)
        if not isinstance(value, str):
            raise ValidationError(f"{key!r} must be a string, got {value!r}")
        return value

    def record_error(
        self, error_id: str, path: str, message: str, traceback_text: str = ""
    ) -> None:
        """Remember one 500 by its ``error_id`` (echoed to the client)
        so the run-ledger record correlates a client-visible failure
        with the server-side traceback."""
        with self._errors_lock:
            self._errors.append(
                {
                    "error_id": error_id,
                    "path": path,
                    "error": message,
                    "traceback": traceback_text,
                }
            )

    def recent_errors(self) -> List[Dict[str, object]]:
        """The most recent 500s (bounded), oldest first."""
        with self._errors_lock:
            return list(self._errors)

    def stats(self) -> Dict[str, object]:
        """Store/coalescing/overload stats for the ``/stats`` endpoint."""
        return {
            "store": self.store.stats(),
            "inflight": self._flight.inflight(),
            "admission": {
                "max_inflight": self.admission.max_inflight,
                "max_queue": self.admission.max_queue,
                "queue_timeout": self.admission.queue_timeout,
                "inflight": self.admission.inflight(),
                "queued": self.admission.depth(),
            },
            "breakers": {
                name: breaker.snapshot()
                for name, breaker in self.breakers.items()
            },
            "errors_recorded": len(self._errors),
            "profile": self.config.profile,
            "platform": self.platform.name,
        }
