"""repro.serve — reordering-as-a-service (ROADMAP north-star item 1).

A long-lived HTTP/JSON tier that turns the single-shot pipeline into
something that can absorb heavy repeat traffic by caching permutations
instead of recomputing them:

* :class:`~repro.serve.store.PermutationStore` — a content-addressed
  on-disk store: key = SHA-256 of the CSR *structure* + technique +
  impl, every entry wrapped in the PR 4 checksummed cache envelope, so
  a damaged entry quarantines and recomputes instead of poisoning the
  service;
* :class:`~repro.serve.coalesce.SingleFlight` — request coalescing:
  concurrent requests for the same key block on one in-flight
  computation via a keyed-lock table;
* :class:`~repro.serve.service.ReorderService` — the request pipeline
  (corpus name or ``.mtx`` upload -> recommended technique ->
  permutation -> predicted traffic/runtime from the existing
  simulator), with per-request deadlines reusing
  :func:`~repro.resilience.cell_deadline` semantics;
* :mod:`repro.serve.httpd` — the stdlib ``ThreadingHTTPServer`` front
  end (``repro serve``), with ``/ready`` + SIGTERM graceful drain;
* :class:`~repro.serve.admission.Admission` — bounded in-flight
  compute semaphore + bounded wait queue; excess load is shed as 429
  with ``Retry-After`` instead of melting the box;
* :class:`~repro.serve.breaker.CircuitBreaker` — closed→open→half-open
  breakers around the compute and store fault domains; an open compute
  breaker degrades ``"auto"`` requests to predictor-only answers
  (``"degraded": true``, 202);
* :class:`~repro.serve.client.ServeClient` — the resilient client:
  capped exponential backoff with full jitter, ``Retry-After``
  honoring, idempotent retries keyed on the request content digest;
* :mod:`repro.serve.bench` — the load-test harness (``repro
  serve-bench``) replaying a zipf-skewed synthetic trace and writing
  ``BENCH_serve.json``, including an ``--overload`` mode that drives
  the admission controller past capacity and reports goodput/shed/p99.

Everything is stdlib + numpy; there is no new dependency.
"""

from repro.serve.admission import Admission
from repro.serve.breaker import CircuitBreaker
from repro.serve.client import ClientResponse, ServeClient
from repro.serve.coalesce import SingleFlight
from repro.serve.service import ReorderService, ServeConfig, ServeResult
from repro.serve.store import PermutationStore, structure_digest

__all__ = [
    "Admission",
    "CircuitBreaker",
    "ClientResponse",
    "PermutationStore",
    "ReorderService",
    "ServeClient",
    "ServeConfig",
    "ServeResult",
    "SingleFlight",
    "structure_digest",
]
