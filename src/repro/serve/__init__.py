"""repro.serve — reordering-as-a-service (ROADMAP north-star item 1).

A long-lived HTTP/JSON tier that turns the single-shot pipeline into
something that can absorb heavy repeat traffic by caching permutations
instead of recomputing them:

* :class:`~repro.serve.store.PermutationStore` — a content-addressed
  on-disk store: key = SHA-256 of the CSR *structure* + technique +
  impl, every entry wrapped in the PR 4 checksummed cache envelope, so
  a damaged entry quarantines and recomputes instead of poisoning the
  service;
* :class:`~repro.serve.coalesce.SingleFlight` — request coalescing:
  concurrent requests for the same key block on one in-flight
  computation via a keyed-lock table;
* :class:`~repro.serve.service.ReorderService` — the request pipeline
  (corpus name or ``.mtx`` upload -> recommended technique ->
  permutation -> predicted traffic/runtime from the existing
  simulator), with per-request deadlines reusing
  :func:`~repro.resilience.cell_deadline` semantics;
* :mod:`repro.serve.httpd` — the stdlib ``ThreadingHTTPServer`` front
  end (``repro serve``);
* :mod:`repro.serve.bench` — the load-test harness (``repro
  serve-bench``) replaying a zipf-skewed synthetic trace and writing
  ``BENCH_serve.json``.

Everything is stdlib + numpy; there is no new dependency.
"""

from repro.serve.coalesce import SingleFlight
from repro.serve.service import ReorderService, ServeConfig
from repro.serve.store import PermutationStore, structure_digest

__all__ = [
    "PermutationStore",
    "ReorderService",
    "ServeConfig",
    "SingleFlight",
    "structure_digest",
]
