"""Admission control: a bounded compute gate for the serve tier.

The ThreadingHTTPServer front end spawns one thread per connection, so
without a gate a burst of cold ``/v1/reorder`` misses runs one
reordering per connection until the box thrashes.  :class:`Admission`
bounds that: at most ``max_inflight`` reorderings run concurrently and
at most ``max_queue`` further callers wait (up to ``queue_timeout``
seconds) for a slot.  Anything beyond that is *shed* immediately with
:class:`~repro.errors.OverloadedError`, which the HTTP layer maps to
``429`` + ``Retry-After`` — bounded latency for admitted requests,
fast feedback for the rest, and the server never melts.

Only genuine compute enters the gate: store hits, coalesced followers,
and ``/v1/recommend`` predictions are always admitted because they do
no reordering (the service calls :meth:`admit` from inside the
single-flight leader, after the in-flight store re-check).

Counters: ``serve.shed.queue_full`` (queue was already at capacity),
``serve.shed.queue_timeout`` (waited ``queue_timeout`` without getting
a slot); gauges ``serve.queue.depth`` (peak waiters) and
``serve.inflight.compute`` (peak concurrent computations).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.errors import OverloadedError, ValidationError
from repro.obs import get_obs


class Admission:
    """Bounded in-flight semaphore plus a small bounded wait queue."""

    def __init__(
        self,
        max_inflight: int = 4,
        max_queue: int = 8,
        queue_timeout: float = 2.0,
    ) -> None:
        if max_inflight < 1:
            raise ValidationError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValidationError(f"max_queue must be >= 0, got {max_queue}")
        if queue_timeout <= 0:
            raise ValidationError(
                f"queue_timeout must be > 0, got {queue_timeout}"
            )
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout = float(queue_timeout)
        self._slots = threading.Semaphore(max_inflight)
        self._lock = threading.Lock()
        self._queued = 0
        self._inflight = 0

    def depth(self) -> int:
        """Current number of waiters in the queue (for ``/stats``)."""
        with self._lock:
            return self._queued

    def inflight(self) -> int:
        """Current number of admitted computations (for ``/stats``)."""
        with self._lock:
            return self._inflight

    @contextmanager
    def admit(self, label: str = "") -> Iterator[None]:
        """Hold one compute slot for the duration of the ``with`` block.

        Raises :class:`OverloadedError` (→ 429) when the wait queue is
        full or the queue wait times out.  ``retry_after`` is sized to
        the queue timeout: by then at least one in-flight computation
        has either finished or been shed itself.
        """
        suffix = f" ({label})" if label else ""
        # Fast path: a free slot means no queueing at all.
        if not self._slots.acquire(blocking=False):
            with self._lock:
                if self._queued >= self.max_queue:
                    get_obs().counter("serve.shed.queue_full")
                    raise OverloadedError(
                        f"compute queue full: {self.max_inflight} in flight, "
                        f"{self._queued} queued{suffix}",
                        retry_after=self.queue_timeout,
                    )
                self._queued += 1
                get_obs().gauge("serve.queue.depth", self._queued)
            try:
                acquired = self._slots.acquire(timeout=self.queue_timeout)
            finally:
                with self._lock:
                    self._queued -= 1
            if not acquired:
                get_obs().counter("serve.shed.queue_timeout")
                raise OverloadedError(
                    f"compute slot wait exceeded {self.queue_timeout:g}s"
                    f"{suffix}",
                    retry_after=self.queue_timeout,
                )
        with self._lock:
            self._inflight += 1
            get_obs().gauge("serve.inflight.compute", self._inflight)
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1
            self._slots.release()
