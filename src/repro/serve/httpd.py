"""Stdlib HTTP/JSON front end for :class:`~repro.serve.service.ReorderService`.

A :class:`~http.server.ThreadingHTTPServer` (one daemon thread per
connection, no new dependencies) exposing:

* ``POST /v1/reorder`` — the request schema documented in
  :mod:`repro.serve.service`; responds with the deterministic JSON body
  plus transport headers:

  - ``X-Repro-Store``: ``hit`` | ``miss`` | ``coalesced``,
  - ``X-Repro-Seconds``: server-side wall time for this request.

  The *body* of a store hit is byte-identical to the body of the miss
  that created the entry — everything nondeterministic travels in
  headers (``json.dumps(..., sort_keys=True)`` keeps the rendering
  canonical).

* ``POST /v1/recommend`` (and ``GET /v1/recommend?matrix=...``) — the
  predictor-backed "is reordering worth it?" endpoint
  (:meth:`~repro.serve.service.ReorderService.handle_recommend`).
  Accepts the ``matrix``/``mtx``/``kernel``/``iterations``/
  ``deadline_seconds`` subset of the reorder schema (GET takes
  ``matrix``, ``kernel`` and ``iterations`` as query parameters) and
  answers without computing a single candidate reordering;
  ``X-Repro-Store`` is always ``predicted``.

* ``GET /health`` — liveness probe.
* ``GET /stats`` — store/coalescing stats plus the live counter and
  histogram snapshot (``serve.request.hit`` / ``serve.request.miss``
  latency histograms back the bench harness's server-side view).

Error mapping (all JSON, none of them kill the server):
``400`` malformed request / validation failure, ``404`` unknown corpus
matrix or path, ``413`` oversized body, ``504`` per-request deadline
exceeded (:class:`~repro.errors.CellTimeoutError`), ``500`` anything
else.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import CellTimeoutError, CorpusError, ValidationError
from repro.obs import get_obs, logger
from repro.serve.service import ReorderService


def render_body(payload: Dict[str, object]) -> bytes:
    """Canonical JSON rendering — the byte-identity contract.

    Sorted keys and fixed separators mean two renderings of equal
    payloads are equal as *bytes*, which is what the store-hit
    integration test asserts against the original miss response.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


class ReorderHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ReorderService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: ReorderService) -> None:
        super().__init__(address, ServeHandler)
        self.service = service


class ServeHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    @property
    def service(self) -> ReorderService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        # Route access logs through the repro logger (silent unless the
        # operator opts into --log-level debug) instead of stderr.
        logger.debug("serve: %s - %s", self.address_string(), format % args)

    # -- GET --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/health":
            self._send_json(200, {"ok": True})
            return
        if self.path == "/stats":
            obs = get_obs()
            snapshot = obs.counters.snapshot()
            histograms = {
                name: hist.summary()
                for name, hist in obs.counters.histograms().items()
            }
            self._send_json(
                200,
                {
                    "service": self.service.stats(),
                    "counters": snapshot["counters"],
                    "histograms": histograms,
                },
            )
            return
        parsed = urlsplit(self.path)
        if parsed.path == "/v1/recommend":
            request: Dict[str, object] = {
                key: values[-1] for key, values in parse_qs(parsed.query).items()
            }
            for key, cast in (("iterations", int), ("deadline_seconds", float)):
                if key in request:
                    try:
                        request[key] = cast(request[key])  # type: ignore[call-overload]
                    except (TypeError, ValueError):
                        self._send_error_json(
                            400, f"query parameter {key!r} must be a number"
                        )
                        return
            self._dispatch(self.service.handle_recommend, request)
            return
        self._send_json(404, {"error": f"unknown path {self.path!r}"})

    # -- POST -------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        handlers: Dict[str, Callable] = {
            "/v1/reorder": self.service.handle,
            "/v1/recommend": self.service.handle_recommend,
        }
        handler = handlers.get(self.path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        body = self._read_body()
        if body is None:
            return  # error response already sent
        try:
            request = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_error_json(400, f"request body is not valid JSON: {exc}")
            return
        self._dispatch(handler, request)

    def _dispatch(self, handler: Callable, request: object) -> None:
        """Run one service call with the shared error mapping."""
        started = time.monotonic()
        obs = get_obs()
        try:
            with obs.span("serve-request"):
                result = handler(request)
        except ValidationError as exc:
            self._send_error_json(400, str(exc))
            return
        except CorpusError as exc:
            # CorpusError is a KeyError; str() of a KeyError quotes the
            # message, so unwrap the original argument.
            detail = exc.args[0] if exc.args else str(exc)
            self._send_error_json(404, str(detail))
            return
        except CellTimeoutError as exc:
            self._send_error_json(504, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 - a request must not kill the server
            logger.exception("serve: unhandled error for %s", self.path)
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            return
        elapsed = time.monotonic() - started
        obs.counter(f"serve.request.{result.store}")
        obs.observe(f"serve.request.{result.store}", elapsed)
        self._send_json(
            200,
            result.payload,
            extra_headers={
                "X-Repro-Store": result.store,
                "X-Repro-Seconds": f"{elapsed:.6f}",
            },
        )

    # -- plumbing ---------------------------------------------------------

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_json(400, "malformed Content-Length header")
            return None
        if length <= 0:
            self._send_error_json(400, "POST requires a JSON body (Content-Length)")
            return None
        limit = self.service.config.max_upload_bytes + 64 * 1024
        if length > limit:
            self._send_error_json(413, f"request body exceeds {limit} bytes")
            return None
        return self.rfile.read(length)

    def _send_error_json(self, status: int, message: str) -> None:
        get_obs().counter(f"serve.request.error.{status}")
        self._send_json(status, {"error": message})

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = render_body(payload)
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away; nothing to clean up


def make_server(
    service: ReorderService, host: str = "127.0.0.1", port: int = 0
) -> ReorderHTTPServer:
    """Bind (but do not start) a server; ``port=0`` picks a free port."""
    return ReorderHTTPServer((host, port), service)
