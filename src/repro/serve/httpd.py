"""Stdlib HTTP/JSON front end for :class:`~repro.serve.service.ReorderService`.

A :class:`~http.server.ThreadingHTTPServer` (one daemon thread per
connection, no new dependencies) exposing:

* ``POST /v1/reorder`` — the request schema documented in
  :mod:`repro.serve.service`; responds with the deterministic JSON body
  plus transport headers:

  - ``X-Repro-Store``: ``hit`` | ``miss`` | ``coalesced``,
  - ``X-Repro-Seconds``: server-side wall time for this request.

  The *body* of a store hit is byte-identical to the body of the miss
  that created the entry — everything nondeterministic travels in
  headers (``json.dumps(..., sort_keys=True)`` keeps the rendering
  canonical).

* ``POST /v1/recommend`` (and ``GET /v1/recommend?matrix=...``) — the
  predictor-backed "is reordering worth it?" endpoint
  (:meth:`~repro.serve.service.ReorderService.handle_recommend`).
  Accepts the ``matrix``/``mtx``/``kernel``/``iterations``/
  ``deadline_seconds`` subset of the reorder schema (GET takes
  ``matrix``, ``kernel`` and ``iterations`` as query parameters) and
  answers without computing a single candidate reordering;
  ``X-Repro-Store`` is always ``predicted``.

* ``GET /health`` — liveness probe (200 even while draining).
* ``GET /ready`` — readiness probe: 503 once a SIGTERM drain starts,
  so load balancers stop routing before the process exits.
* ``GET /stats`` — store/coalescing/admission/breaker stats plus the
  live counter and histogram snapshot (``serve.request.hit`` /
  ``serve.request.miss`` latency histograms back the bench harness's
  server-side view).

Error mapping (all JSON, none of them kill the server):
``400`` malformed request / validation failure, ``404`` unknown corpus
matrix or path, ``413`` oversized body, ``429`` shed by admission
control (:class:`~repro.errors.OverloadedError`, with ``Retry-After``),
``503`` circuit breaker open / draining (also with ``Retry-After``),
``504`` per-request deadline exceeded
(:class:`~repro.errors.CellTimeoutError`), ``500`` anything else — a
500 body carries an ``"error_id"`` that is echoed into the run-ledger
record so operators can correlate it with the server-side traceback.
``202`` is success in degraded mode: an ``"auto"`` request answered
from the predictor alone (``"degraded": true``) while the compute
breaker is open.
"""

from __future__ import annotations

import json
import math
import threading
import time
import traceback
import uuid
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterator, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    BreakerOpenError,
    CellTimeoutError,
    CorpusError,
    OverloadedError,
    ValidationError,
)
from repro.obs import get_obs, logger
from repro.resilience.faults import fault_point
from repro.serve.service import ReorderService


def _retry_after(seconds: float) -> str:
    """``Retry-After`` header value: integer seconds, floored at 1."""
    return str(max(1, math.ceil(seconds)))


def render_body(payload: Dict[str, object]) -> bytes:
    """Canonical JSON rendering — the byte-identity contract.

    Sorted keys and fixed separators mean two renderings of equal
    payloads are equal as *bytes*, which is what the store-hit
    integration test asserts against the original miss response.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


class ReorderHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ReorderService`.

    Tracks in-flight requests so :meth:`drain` (SIGTERM) can refuse new
    work — ``/ready`` flips to 503, service endpoints answer 503 with
    ``Retry-After`` — while every already-admitted request (including
    coalesced followers parked on an in-flight leader) runs to
    completion before the listener shuts down.
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: ReorderService) -> None:
        super().__init__(address, ServeHandler)
        self.service = service
        self.draining = False
        self._active = 0
        self._idle = threading.Condition()

    @contextmanager
    def track_request(self) -> Iterator[None]:
        """Count one service request as in-flight for drain purposes."""
        with self._idle:
            self._active += 1
        try:
            yield
        finally:
            with self._idle:
                self._active -= 1
                if self._active == 0:
                    self._idle.notify_all()

    def active_requests(self) -> int:
        with self._idle:
            return self._active

    def drain(self, deadline_seconds: float = 10.0) -> bool:
        """Stop admitting, wait out in-flight requests, shut down.

        Returns True when the server went idle within the deadline;
        either way the listener is shut down (``serve_forever``
        returns) so the process can exit.  Safe to call from a signal-
        handler-spawned thread — never from the ``serve_forever``
        thread itself (``shutdown`` would deadlock there).
        """
        self.draining = True
        get_obs().counter("serve.drain.started")
        with self._idle:
            clean = self._idle.wait_for(
                lambda: self._active == 0, timeout=deadline_seconds
            )
        get_obs().counter(
            "serve.drain.clean" if clean else "serve.drain.timeout"
        )
        self.shutdown()
        return clean


class ServeHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    @property
    def service(self) -> ReorderService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        # Route access logs through the repro logger (silent unless the
        # operator opts into --log-level debug) instead of stderr.
        logger.debug("serve: %s - %s", self.address_string(), format % args)

    # -- GET --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/health":
            # Liveness: answers 200 even while draining — the process
            # is alive and finishing work, just not accepting more.
            self._send_json(200, {"ok": True})
            return
        if self.path == "/ready":
            # Readiness: flips to 503 the moment a drain starts so a
            # load balancer stops routing here before the exit.
            if self.server.draining:  # type: ignore[attr-defined]
                self._send_json(
                    503,
                    {"ready": False, "draining": True},
                    extra_headers={"Retry-After": "1"},
                )
                return
            self._send_json(200, {"ready": True, "draining": False})
            return
        if self.path == "/stats":
            obs = get_obs()
            snapshot = obs.counters.snapshot()
            histograms = {
                name: hist.summary()
                for name, hist in obs.counters.histograms().items()
            }
            self._send_json(
                200,
                {
                    "service": self.service.stats(),
                    "counters": snapshot["counters"],
                    "histograms": histograms,
                },
            )
            return
        parsed = urlsplit(self.path)
        if parsed.path == "/v1/recommend":
            request: Dict[str, object] = {
                key: values[-1] for key, values in parse_qs(parsed.query).items()
            }
            for key, cast in (("iterations", int), ("deadline_seconds", float)):
                if key in request:
                    try:
                        request[key] = cast(request[key])  # type: ignore[call-overload]
                    except (TypeError, ValueError):
                        self._send_error_json(
                            400, f"query parameter {key!r} must be a number"
                        )
                        return
            self._dispatch(self.service.handle_recommend, request)
            return
        self._send_json(404, {"error": f"unknown path {self.path!r}"})

    # -- POST -------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        handlers: Dict[str, Callable] = {
            "/v1/reorder": self.service.handle,
            "/v1/recommend": self.service.handle_recommend,
        }
        handler = handlers.get(self.path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        body = self._read_body()
        if body is None:
            return  # error response already sent
        try:
            request = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_error_json(400, f"request body is not valid JSON: {exc}")
            return
        self._dispatch(handler, request)

    def _dispatch(self, handler: Callable, request: object) -> None:
        """Run one service call with the shared error mapping."""
        server: ReorderHTTPServer = self.server  # type: ignore[assignment]
        if server.draining:
            self._send_error_json(
                503, "server is draining", extra_headers={"Retry-After": "1"}
            )
            return
        started = time.monotonic()
        obs = get_obs()
        with server.track_request():
            try:
                with obs.span("serve-request"):
                    result = handler(request)
                # Chaos site: a fault here fails the request *after* the
                # service succeeded (lost-response path) — it must map
                # to a clean error, never kill the server.
                fault_point("serve.render", label=f"{self.path}|{result.store}")
            except ValidationError as exc:
                self._send_error_json(400, str(exc))
                return
            except CorpusError as exc:
                # CorpusError is a KeyError; str() of a KeyError quotes
                # the message, so unwrap the original argument.
                detail = exc.args[0] if exc.args else str(exc)
                self._send_error_json(404, str(detail))
                return
            except OverloadedError as exc:
                self._send_error_json(
                    429,
                    str(exc),
                    extra_headers={"Retry-After": _retry_after(exc.retry_after)},
                )
                return
            except BreakerOpenError as exc:
                self._send_error_json(
                    503,
                    str(exc),
                    extra_headers={"Retry-After": _retry_after(exc.retry_after)},
                )
                return
            except CellTimeoutError as exc:
                self._send_error_json(504, str(exc))
                return
            except Exception as exc:  # noqa: BLE001 - a request must not kill the server
                error_id = uuid.uuid4().hex[:12]
                message = f"{type(exc).__name__}: {exc}"
                logger.exception(
                    "serve: unhandled error %s for %s", error_id, self.path
                )
                self.service.record_error(
                    error_id,
                    self.path,
                    message,
                    "".join(
                        traceback.format_exception(
                            type(exc), exc, exc.__traceback__
                        )
                    ),
                )
                self._send_error_json(500, message, error_id=error_id)
                return
            elapsed = time.monotonic() - started
            obs.counter(f"serve.request.{result.store}")
            obs.observe(f"serve.request.{result.store}", elapsed)
            headers = {
                "X-Repro-Store": result.store,
                "X-Repro-Seconds": f"{elapsed:.6f}",
            }
            if result.retry_after is not None:
                headers["Retry-After"] = _retry_after(result.retry_after)
            self._send_json(result.status, result.payload, extra_headers=headers)

    # -- plumbing ---------------------------------------------------------

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_json(400, "malformed Content-Length header")
            return None
        if length <= 0:
            self._send_error_json(400, "POST requires a JSON body (Content-Length)")
            return None
        limit = self.service.config.max_upload_bytes + 64 * 1024
        if length > limit:
            self._send_error_json(413, f"request body exceeds {limit} bytes")
            return None
        return self.rfile.read(length)

    def _send_error_json(
        self,
        status: int,
        message: str,
        extra_headers: Optional[Dict[str, str]] = None,
        error_id: Optional[str] = None,
    ) -> None:
        get_obs().counter(f"serve.request.error.{status}")
        body: Dict[str, object] = {"error": message}
        if error_id is not None:
            body["error_id"] = error_id
        self._send_json(status, body, extra_headers=extra_headers)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = render_body(payload)
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away; nothing to clean up


def make_server(
    service: ReorderService, host: str = "127.0.0.1", port: int = 0
) -> ReorderHTTPServer:
    """Bind (but do not start) a server; ``port=0`` picks a free port."""
    return ReorderHTTPServer((host, port), service)
