"""Request coalescing: one in-flight computation per key.

:class:`SingleFlight` is a keyed-lock table.  The first caller of
:meth:`~SingleFlight.do` for a key becomes the *leader* and runs the
computation; concurrent callers for the same key become *followers* and
block on the leader's completion event instead of recomputing.  This is
what keeps a thundering herd of identical serve requests down to
exactly one solver invocation.

Semantics:

* the leader's result (or exception) is shared with every follower of
  that flight — an exception raised by the computation is re-raised in
  each waiting caller;
* the flight is removed from the table as soon as the leader finishes,
  so a *later* request for the same key starts a fresh flight (which
  typically then hits the store instead of computing);
* followers wait deadline-aware: the wait honours the caller's active
  :func:`~repro.resilience.current_deadline`, so a follower with a
  tight per-request deadline raises ``CellTimeoutError`` instead of
  waiting out a slow leader.

Counters: ``serve.coalesce.lead`` (flights led), ``serve.coalesce.wait``
(requests that piggybacked on an in-flight computation).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Tuple

from repro.errors import CellTimeoutError
from repro.obs import get_obs
from repro.resilience import current_deadline


class _Flight:
    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None


class SingleFlight:
    """Keyed-lock table coalescing concurrent same-key computations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Flight] = {}

    def inflight(self) -> int:
        """Number of keys currently being computed (for ``/stats``)."""
        with self._lock:
            return len(self._inflight)

    def do(self, key: str, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` once per concurrent batch of callers of ``key``.

        Returns ``(result, led)`` where ``led`` is True for the caller
        that actually ran ``fn``.  Followers re-raise the leader's
        exception, or ``CellTimeoutError`` if their own deadline
        expires while waiting.
        """
        with self._lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = self._inflight[key] = _Flight()
                lead = True
            else:
                lead = False

        if lead:
            get_obs().counter("serve.coalesce.lead")
            try:
                flight.result = fn()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    # The flight may only be removed by its own leader.
                    if self._inflight.get(key) is flight:
                        del self._inflight[key]
                flight.done.set()
            return flight.result, True

        get_obs().counter("serve.coalesce.wait")
        self._wait(flight, key)
        if flight.error is not None:
            raise flight.error
        return flight.result, False

    @staticmethod
    def _wait(flight: _Flight, key: str) -> None:
        deadline = current_deadline()
        if deadline is None:
            flight.done.wait()
            return
        while not flight.done.wait(timeout=max(0.0, deadline.remaining())):
            if deadline.expired():
                raise CellTimeoutError(
                    f"cell {deadline.label} exceeded its "
                    f"{deadline.seconds:g}s wall-clock timeout waiting on an "
                    f"in-flight computation for {key[:12]}…"
                )
